#!/usr/bin/env python3
"""Profile a workload's gather trace before simulating it.

Reuse-distance analysis predicts cache behaviour analytically: the miss
rate at a given cache size falls straight out of the stack-distance
distribution (Mattson). This example profiles each Table II workload and
cross-checks the analytic curve against the simulator.

Run:  python examples/trace_profile.py
      (scale honours $REPRO_EXAMPLE_SCALE; default 0.25)
"""

import os

from repro import run_workload
from repro.analysis import format_table
from repro.analysis.traces import (
    gather_line_trace,
    miss_rate_curve,
    profile_trace,
)
from repro.workloads import WORKLOAD_ORDER, build_workload

SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", 0.25))


def main() -> None:
    rows = []
    for workload in WORKLOAD_ORDER:
        program = build_workload(workload, scale=SCALE)
        profile = profile_trace(program)
        trace = gather_line_trace(program)
        l2_lines = 256 * 1024 // 64
        analytic = miss_rate_curve(trace, [l2_lines])[l2_lines]
        result = run_workload(workload, mechanism="inorder", scale=SCALE)
        simulated = result.stats.l2.demand_misses / result.stats.l2.demand_accesses
        rows.append(
            [
                workload,
                profile.accesses,
                profile.unique_lines,
                round(profile.cold_fraction, 3),
                int(profile.median_reuse_distance),
                round(analytic, 3),
                round(simulated, 3),
            ]
        )
    print(
        format_table(
            [
                "workload",
                "accesses",
                "unique",
                "cold frac",
                "median RD",
                "analytic miss @256K",
                "simulated miss",
            ],
            rows,
            title="gather-trace reuse profiles vs simulated L2 behaviour",
        )
    )
    print(
        "\nThe analytic (fully-associative LRU) curve tracks the simulated\n"
        "set-associative L2: the trace statistics, not simulator details,\n"
        "determine sparse-workload cache behaviour."
    )


if __name__ == "__main__":
    main()
