#!/usr/bin/env python3
"""LLM inference with sparse KV-cache attention (the paper's Fig. 8).

Calibrates the roofline model from the micro-simulator's Double-Sparsity
runs, then prints prefill and decode throughput-vs-bandwidth series for
the baseline NPU and NVR — the paper's system-level evaluation.

Run:  python examples/llm_decode.py
      (calibration scale honours $REPRO_EXAMPLE_SCALE; default 0.3)
"""

import os

from repro.analysis import format_series
from repro.llm import (
    NPUHardware,
    TransformerSpec,
    calibrate_memory_efficiency,
    decode_throughput,
    layer_miss_rates,
    prefill_throughput,
)


SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", 0.3))


def main() -> None:
    spec = TransformerSpec()
    hw = NPUHardware()
    print("calibrating memory behaviour from the DS micro-benchmark ...")
    calibs = {
        "baseline": calibrate_memory_efficiency("inorder", scale=SCALE),
        "nvr": calibrate_memory_efficiency("nvr", scale=SCALE),
    }
    for name, calib in calibs.items():
        print(
            f"  {name:8s} gather efficiency={calib.gather_efficiency:.3f} "
            f"traffic ratio={calib.traffic_ratio:.3f}"
        )

    bandwidths = [100, 200, 400, 800, 1600, 2400, 3200, 4000]

    print("\n-- Fig. 8b: prefill throughput (tokens/s), l=2048 --")
    series = {
        name: [prefill_throughput(spec, hw, 2048, bw, c) for bw in bandwidths]
        for name, c in calibs.items()
    }
    print(format_series("GB/s", bandwidths, series, floatfmt=".0f"))

    print("\n-- Fig. 8c: decode throughput (tokens/s per sequence) --")
    for context in (512, 1024, 2048):
        series = {
            name: [decode_throughput(spec, hw, context, bw, c) for bw in bandwidths]
            for name, c in calibs.items()
        }
        gain = series["nvr"][-1] / series["baseline"][-1] - 1
        print(
            format_series(
                "GB/s",
                bandwidths,
                series,
                title=f"context length {context} (NVR gain {gain * 100:+.0f}%)",
            )
        )
        print()

    print("-- Fig. 8a: per-layer miss rates (batch / element) --")
    rates = layer_miss_rates(scale=SCALE)
    for layer, per_mech in rates.items():
        cells = ", ".join(
            f"{mech}: {b:.4f}/{e:.4f}" for mech, (b, e) in per_mech.items()
        )
        print(f"  {layer:4s}  {cells}")


if __name__ == "__main__":
    main()
