#!/usr/bin/env python3
"""Design-space sensitivity: NSB vs L2 area (Fig. 9) and runahead depth.

Sweeps the NSB/L2 sizing grid with the paper's metric
(perf = 1 / (latency x area)) and then ablates NVR's runahead distance
and fuzzy-boundary setting on the Double-Sparsity workload.

Run:  python examples/sensitivity_sweep.py
"""

from repro import run_workload
from repro.analysis import fig9_nsb_sensitivity, format_grid, format_table
from repro.core import NVRConfig


def main() -> None:
    print("-- Fig. 9: NSB x L2 sensitivity (perf = 1/(latency x area)) --")
    grid = fig9_nsb_sensitivity(scale=0.3)
    print(
        format_grid(
            [f"NSB {n} KiB" for n in grid.nsb_sizes],
            [f"L2 {l}" for l in grid.l2_sizes],
            grid.perf,
        )
    )
    print(
        f"\nGrowing NSB 4->16 KiB at 256 KiB L2 yields "
        f"{grid.nsb_vs_l2_benefit():.1f}x the benefit of growing the L2 "
        f"256->1024 KiB (paper: ~5x).\n"
    )

    print("-- Ablation: runahead depth (tiles ahead) --")
    rows = []
    for depth in (1, 2, 4, 8, 16):
        result = run_workload(
            "ds",
            mechanism="nvr",
            scale=0.4,
            nvr_config=NVRConfig(depth_tiles=depth),
        )
        rows.append([depth, result.total_cycles, round(result.stats.coverage(), 3)])
    print(format_table(["depth", "cycles", "coverage"], rows))

    print("\n-- Ablation: fuzzy boundary prefetch --")
    rows = []
    for fuzz in (0, 1, 2, 4):
        result = run_workload(
            "gcn",
            mechanism="nvr",
            scale=0.4,
            nvr_config=NVRConfig(fuzz_vectors=fuzz),
        )
        rows.append(
            [
                fuzz,
                result.total_cycles,
                round(result.stats.prefetch.accuracy, 3),
                round(result.stats.coverage(), 3),
            ]
        )
    print(format_table(["fuzz vectors", "cycles", "accuracy", "coverage"], rows))


if __name__ == "__main__":
    main()
