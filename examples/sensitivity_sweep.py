#!/usr/bin/env python3
"""Design-space sensitivity with Grid + ResultSet.

Sweeps the NSB/L2 sizing grid (Fig. 9) with the paper's metric
(perf = 1 / (latency x area)) as a two-axis :meth:`ResultSet.pivot`,
then ablates NVR's runahead distance and fuzzy-boundary setting on the
same shared :class:`repro.Session` — the derived platform axes
(``nsb_kib``, ``l2_kib``, ``nvr_depth``, ``nvr_fuzz``) are plain Grid
keywords, no config objects required.

Run:  python examples/sensitivity_sweep.py
      (scale honours $REPRO_EXAMPLE_SCALE; default 0.3/0.4)
"""

import os

from repro import Grid, Session
from repro.analysis import format_grid, format_table

SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", 0.3))
ABLATE_SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", 0.4))


def main() -> None:
    with Session() as session:
        print("-- Fig. 9: NSB x L2 sensitivity (perf = 1/(latency x area)) --")
        nsb_sizes, l2_sizes = (4, 8, 16, 32), (64, 128, 256, 512, 1024)
        rs = session.sweep(
            Grid(
                workload="ds",
                mechanism="nvr",
                scale=SCALE,
                nsb_kib=nsb_sizes,
                l2_kib=l2_sizes,
            )
        )
        pivot = rs.pivot(rows="nsb_kib", cols="l2_kib", value="total_cycles")
        # Area-normalise each cell: perf = 1 / (latency x (nsb + l2)).
        perf = [
            [1e9 / (cycles * (nsb + l2)) for cycles, l2 in zip(series, pivot.cols)]
            for series, nsb in zip(pivot.values, pivot.rows)
        ]
        print(
            format_grid(
                [f"NSB {n} KiB" for n in pivot.rows],
                [f"L2 {l}" for l in pivot.cols],
                perf,
            )
        )
        nsb_gain = perf[2][2] / perf[0][2]  # NSB 4->16 at 256 KiB L2
        l2_gain = perf[0][4] / perf[0][2]  # L2 256->1024 at 4 KiB NSB
        print(
            f"\nGrowing NSB 4->16 KiB at 256 KiB L2 yields "
            f"{nsb_gain / l2_gain:.1f}x the benefit of growing the L2 "
            f"256->1024 KiB (paper: ~5x).\n"
        )

        print("-- Ablation: runahead depth (tiles ahead) --")
        rs = session.sweep(
            Grid(
                workload="ds",
                mechanism="nvr",
                scale=ABLATE_SCALE,
                nvr_depth=(1, 2, 4, 8, 16),
            )
        )
        rows = [
            [depth, r.total_cycles, round(r.stats.coverage(), 3)]
            for depth, r in ((d, rs.one(nvr_depth=d)) for d in (1, 2, 4, 8, 16))
        ]
        print(format_table(["depth", "cycles", "coverage"], rows))

        print("\n-- Ablation: fuzzy boundary prefetch --")
        rs = session.sweep(
            Grid(
                workload="gcn",
                mechanism="nvr",
                scale=ABLATE_SCALE,
                nvr_fuzz=(0, 1, 2, 4),
            )
        )
        rows = [
            [
                fuzz,
                r.total_cycles,
                round(r.stats.prefetch.accuracy, 3),
                round(r.stats.coverage(), 3),
            ]
            for fuzz, r in ((f, rs.one(nvr_fuzz=f)) for f in (0, 1, 2, 4))
        ]
        print(format_table(["fuzz vectors", "cycles", "accuracy", "coverage"], rows))
        print(
            f"\n(session: {session.submitted} simulated, "
            f"{session.cache_hits} cache hits)"
        )


if __name__ == "__main__":
    main()
