#!/usr/bin/env python3
"""Sweep-as-a-service: submit a paper sweep to a ``repro serve`` daemon.

Self-hosts the whole loop in one process so the example runs with no
setup: a :class:`~repro.server.SweepEngine` + HTTP server on a daemon
thread, one queue worker draining it, and a
:class:`~repro.client.SweepClient` talking to it over real HTTP — the
exact same wire protocol as a daemon started with::

    repro serve --work work/ --port 8080
    repro queue worker --work-dir work/ &

Shows the three server guarantees: live SSE progress as points land,
an identical resubmission answered entirely from cache (nothing
enqueued), and two tenants with the same sweep kept in isolated cache
namespaces.

Run:  python examples/serve_client.py
      (scale honours $REPRO_EXAMPLE_SCALE; default 0.2)
"""

import json
import os
import tempfile
import threading
from pathlib import Path

from repro import Grid, SweepClient
from repro.runner import run_queue_worker
from repro.server import SweepEngine, start_in_thread

SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", 0.2))


def main() -> None:
    scratch = tempfile.TemporaryDirectory(prefix="repro-serve-")
    work = Path(scratch.name) / "work"
    cache = Path(scratch.name) / "cache"

    engine = SweepEngine(work, cache_dir=cache)
    server = start_in_thread(engine)
    print(f"daemon listening on {server.base_url}")

    worker = threading.Thread(
        target=run_queue_worker,
        kwargs=dict(work_dir=work, poll=0.02, idle_timeout=60),
        daemon=True,
    )
    worker.start()

    grid = Grid(workload="gcn", mechanism=["inorder", "nvr"], scale=SCALE)
    client = SweepClient(server.base_url)

    accepted = client.submit(grid, meta={"figure": "speedup"})
    print(
        f"submitted sweep {accepted['id']}: {accepted['points']['unique']} "
        f"unique point(s), state '{accepted['state']}'"
    )
    for event in client.events(accepted["id"]):
        if event["event"] == "point":
            print(f"  [{event['done']}/{event['total']}] {event['label']}")
        else:
            print(f"  sweep {event['event']}")

    records = json.loads(client.results(accepted["id"]))
    for record in records:
        print(
            f"  {record['workload']}/{record['mechanism']}: "
            f"{record['total_cycles']} cycles"
        )

    again = client.submit(grid, meta={"figure": "speedup"})
    print(
        f"resubmission: state '{again['state']}', "
        f"{again['points']['cached_at_submit']}/{again['points']['unique']} "
        "point(s) answered from cache, nothing enqueued"
    )

    alice = SweepClient(server.base_url, tenant="alice")
    accepted = alice.submit(grid)
    alice.wait(accepted["id"], timeout=120)
    print(
        f"tenant 'alice' ran the same sweep in its own cache namespace "
        f"({engine.cache_for('alice').root})"
    )

    stats = client.stats()
    print(
        f"server stats: {stats['server']['sweeps']['total']} sweep(s), "
        f"cache hit rate {stats['cache']['hit_rate']}, "
        f"{len(stats['workers'])} worker(s) seen"
    )

    server.stop()
    scratch.cleanup()


if __name__ == "__main__":
    main()
