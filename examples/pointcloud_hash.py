#!/usr/bin/env python3
"""Point-cloud sparse convolution: the hash-table capability gap.

MinkowskiNet/SparseConvNet gather neighbour features through hashed
rulebooks. The index-to-address map is *not affine*, so:

* IMP cannot fit its (base, shift) pattern — near-zero coverage;
* DVR executes CPU code, but the hash lives in the NPU's sparse unit —
  it covers only the index side of the chain;
* NVR evaluates ``sparse_func`` on the idle sparse unit — full coverage.

This is the paper's central capability argument, shown live.

Run:  python examples/pointcloud_hash.py
      (scale honours $REPRO_EXAMPLE_SCALE; default 0.5)
"""

import os

from repro import compare_mechanisms
from repro.analysis import format_table
from repro.workloads import build_workload, trace_stats


SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", 0.5))


def main() -> None:
    for workload in ("mk", "scn"):
        program = build_workload(workload, scale=SCALE)
        stats = trace_stats(program)
        print(
            f"{workload}: {stats.gather_elements} gathers over "
            f"{stats.footprint_bytes // 1024} KiB table, "
            f"address locality {stats.locality_score:.2f} "
            f"(hash-scattered)"
        )
        results = compare_mechanisms(
            workload,
            mechanisms=("inorder", "stream", "imp", "dvr", "nvr"),
            scale=SCALE,
        )
        base = results["inorder"].total_cycles
        rows = [
            [
                mech,
                round(r.total_cycles / base, 3),
                round(r.stats.prefetch.accuracy, 3),
                round(r.stats.coverage(), 3),
                r.stats.l2.demand_misses,
            ]
            for mech, r in results.items()
        ]
        print(
            format_table(
                ["mechanism", "norm latency", "accuracy", "coverage", "misses"],
                rows,
            )
        )
        nvr, dvr = results["nvr"], results["dvr"]
        print(
            f"-> NVR covers {nvr.stats.coverage():.0%} where DVR manages "
            f"{dvr.stats.coverage():.0%}: only the sparse unit can evaluate "
            f"the hash.\n"
        )


if __name__ == "__main__":
    main()
