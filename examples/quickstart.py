#!/usr/bin/env python3
"""Quickstart: one Session, one Grid, one ResultSet.

Reproduces one group of Fig. 5 bars in miniature: the GCN SpMM workload
executed by the in-order NPU, ideal OoO, the three baseline prefetchers
and NVR — with and without the NSB. Everything runs through a single
:class:`repro.Session`, so the points are cached on disk
(``$REPRO_CACHE_DIR`` or ``.repro-cache/``) and re-running this script
simulates nothing.

Run:  python examples/quickstart.py [scale]
      (scale also honours $REPRO_EXAMPLE_SCALE; default 0.5)
"""

import os
import sys

from repro import MECHANISM_ORDER, Grid, Session
from repro.analysis import format_table


def main() -> None:
    scale = float(
        sys.argv[1] if len(sys.argv) > 1 else os.environ.get("REPRO_EXAMPLE_SCALE", 0.5)
    )
    workload = "gcn"
    print(f"workload: {workload} (scale={scale})\n")

    with Session() as session:
        # The six Fig. 5 mechanisms plus the NVR+NSB configuration, as
        # one declarative grid (nsb=True only pairs with nvr, so the NSB
        # point is a second one-point grid appended to the plan).
        grid = Grid(
            workload=workload,
            mechanism=MECHANISM_ORDER,
            scale=scale,
            with_base=True,
        )
        nsb_point = Grid(
            workload=workload, mechanism="nvr", nsb=True, scale=scale, with_base=True
        )
        rs = session.sweep(grid.specs() + nsb_point.specs())

        baseline = rs.one(mechanism="inorder", nsb=False)
        rows = []
        for spec, result in rs:
            label = spec.mechanism + ("+nsb" if spec.nsb else "")
            rows.append(
                [
                    label,
                    result.total_cycles,
                    round(result.total_cycles / baseline.total_cycles, 3),
                    round(result.stall_cycles / result.total_cycles, 3),
                    round(result.stats.prefetch.accuracy, 3),
                    round(result.stats.coverage(), 3),
                    result.stats.l2.demand_misses,
                ]
            )
        print(
            format_table(
                [
                    "mechanism",
                    "cycles",
                    "norm",
                    "stall%",
                    "accuracy",
                    "coverage",
                    "L2 misses",
                ],
                rows,
                title="GCN sparse aggregation - mechanism comparison",
            )
        )

        nsb = rs.one(mechanism="nvr", nsb=True)
        speedup = baseline.total_cycles / nsb.total_cycles
        print(f"\nNVR+NSB speedup over the in-order NPU: {speedup:.2f}x")
        report = session.last_report
        print(
            f"(session: {session.submitted} points simulated, "
            f"{session.cache_hits} cache hits; rerun this script for a "
            f"{report.total}-point warm pass)"
        )


if __name__ == "__main__":
    main()
