#!/usr/bin/env python3
"""Quickstart: run one sparse workload under every mechanism.

Reproduces one group of Fig. 5 bars in miniature: the GCN SpMM workload
executed by the in-order NPU, ideal OoO, the three baseline prefetchers
and NVR — with and without the NSB.

Run:  python examples/quickstart.py [scale]
"""

import sys

from repro import MECHANISM_ORDER, run_workload
from repro.analysis import format_table


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    workload = "gcn"
    print(f"workload: {workload} (scale={scale})\n")

    rows = []
    baseline_cycles = None
    for mechanism in MECHANISM_ORDER:
        result = run_workload(
            workload, mechanism=mechanism, scale=scale, with_base=True
        )
        if baseline_cycles is None:
            baseline_cycles = result.total_cycles
        stats = result.stats
        rows.append(
            [
                mechanism,
                result.total_cycles,
                round(result.total_cycles / baseline_cycles, 3),
                round(result.stall_cycles / result.total_cycles, 3),
                round(stats.prefetch.accuracy, 3),
                round(stats.coverage(), 3),
                stats.l2.demand_misses,
            ]
        )

    nsb = run_workload(workload, mechanism="nvr", nsb=True, scale=scale, with_base=True)
    rows.append(
        [
            "nvr+nsb",
            nsb.total_cycles,
            round(nsb.total_cycles / baseline_cycles, 3),
            round(nsb.stall_cycles / nsb.total_cycles, 3),
            round(nsb.stats.prefetch.accuracy, 3),
            round(nsb.stats.coverage(), 3),
            nsb.stats.l2.demand_misses,
        ]
    )

    print(
        format_table(
            [
                "mechanism",
                "cycles",
                "norm",
                "stall%",
                "accuracy",
                "coverage",
                "L2 misses",
            ],
            rows,
            title="GCN sparse aggregation - mechanism comparison",
        )
    )
    speedup = baseline_cycles / nsb.total_cycles
    print(f"\nNVR+NSB speedup over the in-order NPU: {speedup:.2f}x")


if __name__ == "__main__":
    main()
