#!/usr/bin/env python3
"""GNN aggregation (GCN/GAT): dynamic loop bounds and dual chains.

Power-law graphs give hub rows hundreds of neighbours while most rows
have a handful — the paper's "dynamic loop boundaries". This example
shows how NVR's Loop Boundary Detector handles them, and what GAT's
second gather chain (attention coefficients) costs.

Run:  python examples/gnn_spmm.py
      (scale honours $REPRO_EXAMPLE_SCALE; default 0.5)
"""

import os

import numpy as np

from repro import run_workload
from repro.analysis import format_table
from repro.workloads import build_workload, trace_stats


SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", 0.5))


def main() -> None:
    rows = []
    for workload in ("gcn", "gat"):
        program = build_workload(workload, scale=SCALE)
        stats = trace_stats(program)
        degrees = np.diff(program.rowptr)
        degrees = degrees[degrees > 0]
        print(
            f"{workload}: rows {program.n_rows}, degree p50/p99 = "
            f"{int(np.percentile(degrees, 50))}/"
            f"{int(np.percentile(degrees, 99))} "
            f"(row-length CV {stats.row_length_cv:.2f}), "
            f"{len(program.tiles[0].gathers)} gather chain(s) per index"
        )
        for mechanism in ("inorder", "dvr", "nvr"):
            result = run_workload(
                workload, mechanism=mechanism, scale=SCALE, with_base=True
            )
            rows.append(
                [
                    workload,
                    mechanism,
                    result.total_cycles,
                    round(result.stall_cycles / result.total_cycles, 3),
                    round(result.stats.coverage(), 3),
                ]
            )
    print()
    print(
        format_table(
            ["workload", "mechanism", "cycles", "stall frac", "coverage"],
            rows,
            title="GNN aggregation under runahead prefetching",
        )
    )
    gcn_base = [r for r in rows if r[0] == "gcn" and r[1] == "inorder"][0][2]
    gcn_nvr = [r for r in rows if r[0] == "gcn" and r[1] == "nvr"][0][2]
    print(f"\nGCN: NVR speedup over in-order = {gcn_base / gcn_nvr:.2f}x")


if __name__ == "__main__":
    main()
