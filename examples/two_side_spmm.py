#!/usr/bin/env python3
"""Two-sides sparsity: both operands compressed (Fig. 2, second listing).

When IA is itself CSR-compressed, every gather's base address *and
length* come from IA's rowptr — a depth-2 dependency chain. Affine
prefetchers (IMP) and CPU-side runahead (DVR) cover only the W index
stream; NVR walks the full chain on the sparse unit.

Run:  python examples/two_side_spmm.py
      (matrix sizes honour $REPRO_EXAMPLE_SCALE; default 1.0)
"""

import os

import numpy as np

from repro.analysis import format_table
from repro.core import NVRPrefetcher
from repro.prefetch import (
    DecoupledVectorRunahead,
    IndirectMemoryPrefetcher,
    NullPrefetcher,
    StreamPrefetcher,
)
from repro.sim.npu.program import ProgramConfig
from repro.sim.npu.two_side import build_two_side_program
from repro.sim.soc import System
from repro.sparse.generate import uniform_csr
from repro.sparse.spmm import spmm_two_side


SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", 1.0))


def main() -> None:
    inner = max(64, int(1024 * SCALE))
    weights = uniform_csr(max(16, int(120 * SCALE)), inner, 0.03, seed=1)
    activations = uniform_csr(inner, max(64, int(2048 * SCALE)), 0.02, seed=2)

    # Functional ground truth: the reference kernel agrees with dense math.
    reference = spmm_two_side(weights, activations)
    dense = weights.to_dense() @ activations.to_dense()
    assert np.allclose(reference, dense, atol=1e-4)
    print(
        f"two-side SpMM: W {weights.n_rows}x{weights.n_cols} "
        f"(nnz={weights.nnz}) x IA {activations.n_rows}x{activations.n_cols} "
        f"(nnz={activations.nnz}) - reference kernel verified\n"
    )

    program = build_two_side_program(
        "two-side", weights, activations, ProgramConfig(elem_bytes=2)
    )
    mechanisms = [
        ("inorder", NullPrefetcher),
        ("stream", StreamPrefetcher),
        ("imp", IndirectMemoryPrefetcher),
        ("dvr", DecoupledVectorRunahead),
        ("nvr", NVRPrefetcher),
    ]
    rows = []
    base = None
    for name, factory in mechanisms:
        result = System(program=program, prefetcher_factory=factory).run()
        if base is None:
            base = result.total_cycles
        rows.append(
            [
                name,
                round(result.total_cycles / base, 3),
                round(result.stats.prefetch.accuracy, 3),
                round(result.stats.coverage(), 3),
                result.stats.l2.demand_misses,
            ]
        )
    print(
        format_table(
            ["mechanism", "norm latency", "accuracy", "coverage", "misses"],
            rows,
            title="two-sides-sparse SpMM (depth-2 dependency chain)",
        )
    )
    print(
        "\nIMP/DVR cover only the index stream; NVR resolves base *and*\n"
        "length through the sparse unit's compressed-format metadata."
    )


if __name__ == "__main__":
    main()
