"""The declarative system description: :class:`SystemSpec`.

A :class:`SystemSpec` is *everything about the simulated platform except
the workload*: which mechanism runs, on which engine, over which memory
hierarchy, with which NVR and executor tuning. It is pure data — frozen,
comparable, JSON round-trippable via :meth:`to_dict`/:meth:`from_dict`,
and stably hashable — so a full sensitivity-study point can flow through
the sweep runner's plan → dedupe → cache → pool pipeline exactly like a
scalar knob.

Construction validates the combination, not just the parts
(the checks :func:`repro.api.make_system` used to skip):

* the mechanism must be registered;
* ``nvr`` tuning is only accepted by mechanisms that declare
  ``uses_nvr_config`` (silently ignoring it used to make depth sweeps
  of 'inorder' look flat);
* the ``nsb`` convenience toggle conflicts with a ``memory`` override
  that already configures an NSB — one of them must own the buffer.

``build(program)`` turns the description into a live
:class:`~repro.sim.soc.System`, resolving the mechanism and engine
through the registries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..core.controller import NVRConfig
from ..errors import ConfigError
from ..registry import MECHANISMS, MechanismDef
from ..sim.memory.hierarchy import MemoryConfig
from ..sim.npu.executor import ENGINES, ExecutorConfig
from . import serde

if TYPE_CHECKING:
    from ..sim.npu.program import SparseProgram
    from ..sim.soc import System


def _canonical_engine(engine: str | None) -> str | None:
    """Validate and canonicalise a simulation-kernel choice.

    ``None`` and ``"reference"`` describe the same computation (the
    registry's reference dispatcher instantiates the same per-mode
    classes the default path uses), so they fold to one spelling and
    equal platforms stay equal specs — same equality, hash, cache key.
    """
    if engine is None or engine == "reference":
        return None
    entry = ENGINES.get(engine)  # raises ConfigError on unknown names
    if not getattr(entry, "needs_mode", False):
        raise ConfigError(
            f"'{engine}' is an execution mode, not a simulation kernel — "
            "SystemSpec.engine selects a kernel implementation "
            "('reference', 'vectorized' or 'batched'); the mode comes "
            "from the mechanism"
        )
    return engine


@dataclass(frozen=True)
class SystemSpec:
    """Declarative, serialisable description of one simulated platform.

    Attributes:
        mechanism: registered mechanism name (``repro.registry.MECHANISMS``).
        nsb: convenience toggle for the paper's default 16 KiB NSB; only
            valid when ``memory`` does not already configure one.
        memory: full hierarchy override; ``None`` keeps the paper's
            defaults (256 KiB L2, no NSB).
        nvr: NVR tuning override; only for ``uses_nvr_config`` mechanisms.
        executor: issue-width / OoO-window / preload-granule override.
        engine: simulation-kernel implementation (``"vectorized"``,
            ``"batched"``, or ``None``/``"reference"`` for the per-event
            reference kernels).
            Purely a speed knob — every engine must produce bit-identical
            statistics, so ``"reference"`` canonicalises to ``None`` and
            the choice never changes a result, only how fast it arrives.
    """

    mechanism: str = "nvr"
    nsb: bool = False
    memory: MemoryConfig | None = None
    nvr: NVRConfig | None = None
    executor: ExecutorConfig | None = None
    engine: str | None = None
    # Derived canonical identity, computed once in __post_init__; not
    # part of the public constructor, repr, or equality.
    _key: str = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "nsb", bool(self.nsb))
        mdef = self.mechanism_def()  # raises ConfigError on unknown names
        for name, value, cls in (
            ("memory", self.memory, MemoryConfig),
            ("nvr", self.nvr, NVRConfig),
            ("executor", self.executor, ExecutorConfig),
        ):
            if value is not None and not isinstance(value, cls):
                raise ConfigError(
                    f"SystemSpec.{name} must be a {cls.__name__}, got "
                    f"{type(value).__name__} (call .build() on shorthand "
                    "specs first)"
                )
        if self.nvr is not None and not mdef.uses_nvr_config:
            raise ConfigError(
                f"mechanism '{self.mechanism}' does not take an nvr config "
                "(only NVR-family mechanisms are tuned by NVRConfig)"
            )
        if self.nsb and self.memory is not None and self.memory.nsb is not None:
            raise ConfigError(
                "nsb=True conflicts with a memory override that already "
                "configures an NSB — size the buffer on the MemoryConfig "
                "or use the toggle, not both"
            )
        # Canonicalise: equal platforms must be equal specs — same
        # equality, hash and content key — however they were written.
        # The nsb toggle folds into the memory config, explicit
        # all-defaults configs fold to None, and the stored nsb flag is
        # (re)derived from the folded memory.
        memory = self.memory if self.memory is not None else MemoryConfig()
        if self.nsb and memory.nsb is None:
            memory = memory.with_nsb(True)
        if memory == MemoryConfig():
            memory = None
        object.__setattr__(self, "memory", memory)
        object.__setattr__(self, "nsb", memory is not None and memory.nsb is not None)
        if self.nvr == NVRConfig():
            object.__setattr__(self, "nvr", None)
        if self.executor == ExecutorConfig():
            object.__setattr__(self, "executor", None)
        object.__setattr__(self, "engine", _canonical_engine(self.engine))
        # Frozen content — compute the canonical key once.
        object.__setattr__(self, "_key", serde.canonical_json(self.to_dict()))

    # -- resolution ----------------------------------------------------------

    def mechanism_def(self) -> MechanismDef:
        return MECHANISMS.get(self.mechanism)

    def resolved_memory(self) -> MemoryConfig:
        """The effective hierarchy (the nsb toggle is already folded)."""
        return self.memory if self.memory is not None else MemoryConfig()

    def build(self, program: SparseProgram) -> System:
        """Instantiate a live :class:`~repro.sim.soc.System`."""
        from ..sim.soc import System  # soc ← spec would cycle the other way

        mdef = self.mechanism_def()
        return System(
            program=program,
            memory=self.resolved_memory(),
            prefetcher_factory=mdef.factory(self.nvr),
            mode=mdef.mode,
            executor=(self.executor if self.executor is not None else ExecutorConfig()),
            engine=self.engine,
        )

    # -- identity ------------------------------------------------------------

    def to_dict(self) -> dict:
        """Canonical plain-scalar dict (see :mod:`repro.spec.serde`).

        The ``nsb`` toggle does not appear: construction folds it into
        the memory config, so the flag is derived state. (Hand-written
        dicts may still say ``"nsb": true`` with no memory override —
        :meth:`from_dict` accepts it.) ``engine`` appears only when a
        non-reference kernel is selected, so every pre-engine content
        key — and the result cache it addresses — is unchanged.
        """
        d = {
            "mechanism": self.mechanism,
            "memory": (
                serde.memory_config_to_dict(self.memory)
                if self.memory is not None
                else None
            ),
            "nvr": (
                serde.nvr_config_to_dict(self.nvr)
                if self.nvr is not None
                else None
            ),
            "executor": (
                serde.executor_config_to_dict(self.executor)
                if self.executor is not None
                else None
            ),
        }
        if self.engine is not None:
            d["engine"] = self.engine
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "SystemSpec":
        if not isinstance(d, dict):
            raise ConfigError(f"system spec must be a dict, got {d!r}")
        unknown = sorted(
            set(d) - {"mechanism", "nsb", "memory", "nvr", "executor", "engine"}
        )
        if unknown:
            raise ConfigError(f"unknown SystemSpec field(s): {', '.join(unknown)}")
        return cls(
            mechanism=d.get("mechanism", "nvr"),
            nsb=d.get("nsb", False),
            engine=d.get("engine"),
            memory=(
                serde.memory_config_from_dict(d["memory"])
                if d.get("memory") is not None
                else None
            ),
            nvr=(
                serde.nvr_config_from_dict(d["nvr"])
                if d.get("nvr") is not None
                else None
            ),
            executor=(
                serde.executor_config_from_dict(d["executor"])
                if d.get("executor") is not None
                else None
            ),
        )

    def key(self) -> str:
        """Canonical JSON serialisation of the full description."""
        return self._key

    def stable_hash(self) -> str:
        """Content hash, stable across interpreter runs and platforms."""
        return serde.stable_hash(self.to_dict())

    def __hash__(self) -> int:
        # The generated frozen-dataclass hash would raise on the
        # (non-frozen) config dataclasses; hash the canonical form.
        return hash(self._key)

    def label(self) -> str:
        """Compact human-readable form for progress lines and tables."""
        parts = [self.mechanism]
        memory = self.memory
        if self.nsb or (memory is not None and memory.nsb is not None):
            parts.append("nsb")
        text = "/".join(parts)
        if memory is not None:
            l2_kib = memory.l2.size_bytes // 1024
            if l2_kib != 256:
                text += f" l2={l2_kib}K"
            if memory.nsb is not None and memory.nsb.size_bytes != 16 * 1024:
                text += f" nsb={memory.nsb.size_bytes // 1024}K"
        if self.nvr is not None:
            text += f" nvr(d{self.nvr.depth_tiles},w{self.nvr.vector_width})"
        if self.executor is not None:
            text += f" iw{self.executor.issue_width}"
        if self.engine is not None:
            text += f" [{self.engine}]"
        return text
