"""Canonical dict serialisation for the simulator's config objects.

Every knob the simulator exposes — :class:`~repro.sim.memory.hierarchy.
MemoryConfig` (with its nested cache/DRAM/CPU-traffic configs),
:class:`~repro.core.controller.NVRConfig` and
:class:`~repro.sim.npu.executor.ExecutorConfig` — round-trips through a
plain-scalar dict here, so a full system description can be content-
addressed, JSON-dumped, diffed, and rebuilt bit-identically in a worker
process or on another machine.

Canonical form rules:

* every field of the dataclass appears, defaults included — two configs
  are equal iff their dicts are equal, with no "absent means default"
  ambiguity;
* values are JSON scalars (``bool | int | float | str``) or nested
  canonical dicts / ``None``;
* :func:`canonical_json` fixes key order and separators, so
  :func:`stable_hash` is reproducible across interpreter runs and
  platforms (the golden-hash tests pin this).

``from_dict`` directions re-run each config's ``__post_init__``
validation, so a hand-edited JSON spec fails with the same
:class:`~repro.errors.ConfigError` a hand-built config would.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import fields, is_dataclass
from typing import Any, TypeVar, cast

from ..core.controller import NVRConfig
from ..errors import ConfigError
from ..sim.memory.cache import CacheConfig
from ..sim.memory.dram import DRAMConfig
from ..sim.memory.hierarchy import CPUTrafficConfig, MemoryConfig
from ..sim.npu.executor import ExecutorConfig

SCALAR_TYPES = (bool, int, float, str)

_T = TypeVar("_T")


def scalar_dict(config: object) -> dict:
    """Flat dataclass -> dict of scalars, with every field present."""
    assert is_dataclass(config), config
    out: dict = {}
    for f in fields(config):
        value = getattr(config, f.name)
        if value is not None and not isinstance(value, SCALAR_TYPES):
            raise ConfigError(
                f"{type(config).__name__}.{f.name} is not a scalar "
                f"({type(value).__name__}); cannot serialise"
            )
        out[f.name] = value
    return out


def from_scalar_dict(cls: type[_T], d: dict) -> _T:
    """Rebuild a flat config dataclass, rejecting unknown keys.

    Unknown keys are a hard error rather than ignored: a typo'd field in
    a JSON spec that silently falls back to the default would corrupt the
    content address of every run derived from it.
    """
    if not isinstance(d, dict):
        raise ConfigError(f"{cls.__name__} spec must be a dict, got {d!r}")
    known = {f.name for f in fields(cast(Any, cls))}
    unknown = sorted(set(d) - known)
    if unknown:
        raise ConfigError(
            f"unknown {cls.__name__} field(s): {', '.join(unknown)} "
            f"(known: {', '.join(sorted(known))})"
        )
    return cls(**d)


# -- per-config entry points -------------------------------------------------


def nvr_config_to_dict(config: NVRConfig) -> dict:
    return scalar_dict(config)


def nvr_config_from_dict(d: dict) -> NVRConfig:
    return from_scalar_dict(NVRConfig, d)


def executor_config_to_dict(config: ExecutorConfig) -> dict:
    return scalar_dict(config)


def executor_config_from_dict(d: dict) -> ExecutorConfig:
    return from_scalar_dict(ExecutorConfig, d)


def memory_config_to_dict(config: MemoryConfig) -> dict:
    """Serialise the full hierarchy, nested configs included."""
    return {
        "l2": scalar_dict(config.l2),
        "dram": scalar_dict(config.dram),
        "nsb": scalar_dict(config.nsb) if config.nsb is not None else None,
        "cpu_traffic": (
            scalar_dict(config.cpu_traffic)
            if config.cpu_traffic is not None
            else None
        ),
    }


def memory_config_from_dict(d: dict) -> MemoryConfig:
    if not isinstance(d, dict):
        raise ConfigError(f"memory spec must be a dict, got {d!r}")
    unknown = sorted(set(d) - {"l2", "dram", "nsb", "cpu_traffic"})
    if unknown:
        raise ConfigError(f"unknown MemoryConfig field(s): {', '.join(unknown)}")
    kwargs: dict = {}
    if d.get("l2") is not None:
        kwargs["l2"] = from_scalar_dict(CacheConfig, d["l2"])
    if d.get("dram") is not None:
        kwargs["dram"] = from_scalar_dict(DRAMConfig, d["dram"])
    if d.get("nsb") is not None:
        kwargs["nsb"] = from_scalar_dict(CacheConfig, d["nsb"])
    if d.get("cpu_traffic") is not None:
        kwargs["cpu_traffic"] = from_scalar_dict(CPUTrafficConfig, d["cpu_traffic"])
    return MemoryConfig(**kwargs)


# -- wire format -------------------------------------------------------------


def parse_json(text: str, what: str = "spec") -> dict:
    """Parse a wire-format JSON object, mapping failures to ConfigError.

    Plan files, shard files and worker result files all travel between
    machines as JSON; a truncated upload or a hand-edit must surface as
    the same :class:`~repro.errors.ConfigError` a bad config value would,
    not as a raw ``JSONDecodeError`` traceback.
    """
    try:
        value = json.loads(text)
    except ValueError as exc:
        raise ConfigError(f"{what} is not valid JSON: {exc}") from None
    if not isinstance(value, dict):
        raise ConfigError(f"{what} must be a JSON object, got {type(value).__name__}")
    return value


# -- hashing -----------------------------------------------------------------


def canonical_json(d: object) -> str:
    """The one true serialisation: sorted keys, no whitespace.

    ``allow_nan=False`` makes a non-finite float a hard error here: a
    NaN inside a hashed spec would canonicalise to a literal that no
    strict parser round-trips, so it must be rejected at the source
    (specs carry no non-finite scalars by construction).
    """
    return json.dumps(d, sort_keys=True, allow_nan=False, separators=(",", ":"))


def stable_hash(d: object) -> str:
    """Platform- and process-stable content hash of a canonical dict."""
    return hashlib.sha256(canonical_json(d).encode()).hexdigest()
