"""Declarative, serialisable system descriptions.

The config-as-data layer: every simulator knob — memory hierarchy, NVR
tuning, executor widths, mechanism choice — round-trips through plain
JSON-able dicts with stable content hashes, so any scenario the
simulator can express flows through the sweep runner's cache and worker
pool.

* :mod:`repro.spec.serde` — canonical ``to_dict``/``from_dict`` for each
  config dataclass, plus :func:`stable_hash`;
* :mod:`repro.spec.system` — :class:`SystemSpec`, the composed platform
  description consumed by :class:`repro.runner.RunSpec`.
"""

from .serde import (
    canonical_json,
    executor_config_from_dict,
    executor_config_to_dict,
    memory_config_from_dict,
    memory_config_to_dict,
    nvr_config_from_dict,
    nvr_config_to_dict,
    parse_json,
    stable_hash,
)
from .system import SystemSpec

__all__ = [
    "SystemSpec",
    "canonical_json",
    "executor_config_from_dict",
    "executor_config_to_dict",
    "memory_config_from_dict",
    "memory_config_to_dict",
    "nvr_config_from_dict",
    "nvr_config_to_dict",
    "parse_json",
    "stable_hash",
]
