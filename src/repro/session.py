"""Session + Grid: the one experiment object behind every entry point.

A :class:`Session` owns the execution policy of a set of experiments —
result cache, backend, worker count, progress — exactly once, and every
front door routes through one: :func:`repro.api.run_workload` and
:func:`repro.api.compare_mechanisms` are shims over the process-wide
:func:`default_session`, the CLI builds one per invocation from the
shared flags, and the figure runners accept one so a whole report shares
a single cache and worker pool::

    from repro import Grid, Session

    with Session(jobs=4) as session:
        point = session.run("gcn", mechanism="nvr", scale=0.3)
        rs = session.sweep(
            Grid(
                workload=["gcn", "ds"],
                mechanism=["inorder", "nvr"],
                dtype=["int8", "fp16"],
                scale=0.3,
            )
        )
        print(rs.pivot("workload", "mechanism").to_markdown())

:class:`Grid` is the declarative sweep builder: every keyword is an axis
(scalar or sequence), and the cartesian product expands deterministically
— in axis declaration order, workload-major for the canonical axes — to
:class:`~repro.runner.RunSpec` points. Besides the spec axes
(``workload``/``mechanism``/``dtype``/``nsb``/``scale``/``seed``/
``with_base``/``kind`` and the object-valued
``memory``/``nvr``/``executor`` overrides) it accepts derived platform
axes (``l2_kib``, ``nsb_kib``, ``cpu_traffic``, ``nvr_depth``,
``nvr_width``, ``nvr_fuzz``, ``issue_width``, ``ooo_window``); any other
keyword sweeps a workload argument (``topk_ratio=[2, 4, 8]``). Grid
expansion is pinned by the golden hashes in
``tests/golden_spec_keys.json`` — the same discipline as the spec
serialisation format.

``session.sweep`` returns a :class:`~repro.resultset.ResultSet`;
``session.run`` executes a single point through the same dedupe/cache
path, so repeated point runs (examples, notebooks) are warm hits like
sweeps.

The default cache directory honours the ``REPRO_CACHE_DIR`` environment
variable (falling back to ``.repro-cache/``), so examples, tests and CI
jobs can share one cache without threading a path everywhere.
"""

from __future__ import annotations

import argparse
import itertools
import os
from typing import Iterator, Sequence

from .errors import ConfigError
from .resultset import ResultSet
from .runner import (
    BACKEND_NAMES,
    Backend,
    DEFAULT_CACHE_DIR,
    MemorySpec,
    NVRSpec,
    Plan,
    PlanReport,
    QueueBackend,
    ResultCache,
    RunSpec,
    SweepRunner,
    make_backend,
)
from .runner.plan import _tuple
from .runner.progress import NullProgress, Progress
from .sim.npu.executor import ExecutorConfig
from .spec import SystemSpec

__all__ = [
    "Grid",
    "Session",
    "add_session_arguments",
    "coerce_session",
    "default_session",
    "resolve_cache_dir",
    "session_from_args",
    "set_default_session",
]

#: Environment override for the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def resolve_cache_dir(explicit: str | os.PathLike | None = None) -> str | os.PathLike:
    """Explicit path > ``$REPRO_CACHE_DIR`` > ``.repro-cache/``."""
    if explicit is not None:
        return explicit
    return os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR


# ---------------------------------------------------------------------------
# Grid — declarative cartesian sweep builder
# ---------------------------------------------------------------------------

#: Axes forwarded to RunSpec verbatim (in canonical expansion order).
_SPEC_AXES: tuple[str, ...] = (
    "workload",
    "mechanism",
    "dtype",
    "nsb",
    "scale",
    "seed",
    "with_base",
    "kind",
    "memory",
    "nvr",
    "executor",
    "engine",
)

#: Derived axes: grid name -> (RunSpec argument, shorthand field).
_MEMORY_AXES = {"l2_kib": "l2_kib", "nsb_kib": "nsb_kib", "cpu_traffic": "cpu_traffic"}
_NVR_AXES = {
    "nvr_depth": "depth_tiles",
    "nvr_width": "vector_width",
    "nvr_fuzz": "fuzz_vectors",
}
_EXECUTOR_AXES = {"issue_width": "issue_width", "ooo_window": "ooo_window"}


class Grid:
    """A declarative cartesian sweep: every keyword is an axis.

    Expansion is deterministic: axes expand in declaration order (later
    axes vary fastest), so ``Grid(workload=ws, mechanism=ms)`` is
    workload-major like the paper figures' bar order. Derived platform
    axes combine into one shorthand override per point (``l2_kib`` +
    ``nsb_kib`` become a single
    :class:`~repro.runner.MemorySpec`); combining a derived axis with its
    object-valued override (``memory=`` with ``l2_kib=``) is a
    :class:`~repro.errors.ConfigError`.
    """

    def __init__(self, **axes) -> None:
        if "workload" not in axes:
            raise ConfigError("a Grid needs at least a workload axis")
        for override, derived in (
            ("memory", _MEMORY_AXES),
            ("nvr", _NVR_AXES),
            ("executor", _EXECUTOR_AXES),
        ):
            clashes = sorted(set(axes) & set(derived))
            if override in axes and clashes:
                raise ConfigError(
                    f"pass the {override} axis either as {override}= or as "
                    f"{', '.join(clashes)}, not both"
                )
        self._axes: dict[str, tuple] = {
            name: _tuple(value) for name, value in axes.items()
        }
        for name, values in self._axes.items():
            if not values:
                raise ConfigError(f"grid axis '{name}' has no values")

    @property
    def axes(self) -> dict[str, tuple]:
        """The declared axes (name -> value tuple), in declaration order."""
        return dict(self._axes)

    def __len__(self) -> int:
        size = 1
        for values in self._axes.values():
            size *= len(values)
        return size

    def __iter__(self) -> Iterator[RunSpec]:
        return iter(self.specs())

    def __repr__(self) -> str:
        shape = " x ".join(f"{name}[{len(v)}]" for name, v in self._axes.items())
        return f"Grid({shape} = {len(self)} points)"

    def _spec_for(self, point: dict) -> RunSpec:
        kwargs = {name: point.pop(name) for name in _SPEC_AXES if name in point}
        memory = {
            field: point.pop(name)
            for name, field in _MEMORY_AXES.items()
            if name in point
        }
        if memory:
            kwargs["memory"] = MemorySpec(**memory)
        nvr = {
            field: point.pop(name) for name, field in _NVR_AXES.items() if name in point
        }
        if nvr:
            kwargs["nvr"] = NVRSpec(**nvr)
        executor = {
            field: point.pop(name)
            for name, field in _EXECUTOR_AXES.items()
            if name in point
        }
        if executor:
            kwargs["executor"] = ExecutorConfig(**executor)
        return RunSpec(workload_args=tuple(point.items()), **kwargs)

    def specs(self) -> list[RunSpec]:
        """Expand to :class:`~repro.runner.RunSpec` points, deterministically."""
        names = list(self._axes)
        return [
            self._spec_for(dict(zip(names, combo)))
            for combo in itertools.product(*self._axes.values())
        ]

    def plan(self, **meta) -> Plan:
        """The expansion as a wire-format :class:`~repro.runner.Plan`."""
        return Plan(specs=self.specs(), meta={"source": "grid", **meta})


# ---------------------------------------------------------------------------
# Session — cache + backend + jobs, owned once
# ---------------------------------------------------------------------------


class Session:
    """Owns execution policy (cache, backend, jobs, progress) once.

    Args:
        jobs: worker processes (1 = inline serial execution).
        cache: ``None``/``True`` for the default on-disk cache (under
            :func:`resolve_cache_dir`), ``False`` to disable caching, or
            a ready :class:`~repro.runner.ResultCache`.
        cache_dir: directory for the default cache (ignored when
            ``cache`` is an object or ``False``).
        backend: a backend name (``"local"``/``"shards"``/``"queue"``),
            a ready :class:`~repro.runner.Backend`, or ``None`` for the
            local pool.
        work_dir: shard/result file directory for the shards backend;
            the shared unit directory (required) for the queue backend —
            see also the :meth:`remote` shorthand.
        queue_batch: points per claimable unit for the queue backend
            (default 1; ignored by the other backends).
        progress: ``True`` for live progress lines, ``False``/``None``
            for silence, or a progress object.
        engine: default simulation kernel for every sim point this
            session executes (``"vectorized"``/``"batched"``). A pure
            speed knob — engines are bit-identical — applied only to
            points that do not already pin a non-reference kernel, so
            equivalence sweeps keep their explicit engine axis.
        runner: wrap an existing :class:`~repro.runner.SweepRunner`
            instead of building one — the session then shares (and does
            not own or close) its cache/pool. Mutually exclusive with
            the other knobs (``engine`` excepted — it rewrites specs
            before they reach the runner).

    The underlying :class:`~repro.runner.SweepRunner` is built lazily on
    first use, so constructing a Session is free. Use the session as a
    context manager (or call :meth:`close`) to release worker processes.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: ResultCache | bool | None = None,
        cache_dir: str | os.PathLike | None = None,
        backend: Backend | str | None = None,
        work_dir: str | os.PathLike | None = None,
        queue_batch: int = 1,
        progress=None,
        engine: str | None = None,
        runner: SweepRunner | None = None,
    ) -> None:
        if runner is not None:
            if (
                jobs != 1
                or cache is not None
                or cache_dir is not None
                or backend is not None
                or work_dir is not None
                or queue_batch != 1
                or progress is not None
            ):
                raise ConfigError(
                    "pass either runner= or the cache/backend/jobs knobs, "
                    "not both — a wrapped runner already owns its policy"
                )
            self._runner: SweepRunner | None = runner
            self._owns_runner = False
        else:
            self._runner = None
            self._owns_runner = True
        self._jobs = max(1, int(jobs))
        self._cache = cache
        self._cache_dir = cache_dir
        self._backend = backend
        self._work_dir = work_dir
        self._queue_batch = max(1, int(queue_batch))
        self._progress = progress
        # Validate eagerly (ConfigError on unknown/mode names) and fold
        # "reference" to None so the default engine means "leave alone".
        self._engine = (
            SystemSpec(engine=engine).engine if engine is not None else None
        )

    # -- plumbing ------------------------------------------------------------

    def _build_cache(self) -> ResultCache | None:
        if isinstance(self._cache, ResultCache):
            return self._cache
        if self._cache is False:
            return None
        return ResultCache(resolve_cache_dir(self._cache_dir))

    def _build_backend(self) -> Backend | None:
        if self._backend is None or isinstance(self._backend, str):
            name = self._backend or "local"
            return make_backend(
                name,
                jobs=self._jobs,
                work_dir=self._work_dir,
                queue_batch=self._queue_batch,
            )
        return self._backend

    @property
    def runner(self) -> SweepRunner:
        """The lazily-built :class:`~repro.runner.SweepRunner`."""
        if self._runner is None:
            progress = self._progress
            if progress is None or progress is False:
                progress = NullProgress()
            elif progress is True:
                progress = Progress()
            self._runner = SweepRunner(
                jobs=self._jobs,
                cache=self._build_cache(),
                progress=progress,
                backend=self._build_backend(),
            )
        return self._runner

    @property
    def cache(self) -> ResultCache | None:
        return self.runner.cache

    @property
    def jobs(self) -> int:
        return self.runner.jobs if self._runner is not None else self._jobs

    @property
    def submitted(self) -> int:
        """Points simulated over the session's lifetime."""
        return self.runner.submitted

    @property
    def cache_hits(self) -> int:
        """Points served from the cache over the session's lifetime."""
        return self.runner.cache_hits

    @property
    def last_report(self) -> PlanReport | None:
        return self.runner.last_report

    def close(self) -> None:
        """Release owned worker resources (idempotent; session stays usable).

        Safe from any teardown context — ``__del__``, ``atexit``, a
        daemon's shutdown path: every failure mode of releasing an
        already-gone resource (a pool whose processes died with the
        interpreter, a module torn down mid-exit) is swallowed rather
        than raised, because close-on-teardown has no caller that can
        act on the error.
        """
        # getattr: a Session whose __init__ raised (mutually-exclusive
        # knobs) is still finalised by __del__, before these exist.
        runner = getattr(self, "_runner", None)
        if runner is None or not getattr(self, "_owns_runner", False):
            return
        try:
            runner.close()
        except Exception:  # repro: ignore[RPR005] teardown has no caller to act
            pass

    def __del__(self) -> None:
        # Interpreter shutdown may have already dismantled the modules
        # close() touches; a Session left to the garbage collector must
        # never surface that as an "Exception ignored in __del__" noise.
        try:
            self.close()
        except BaseException:  # repro: ignore[RPR005] GC finalizer must not raise
            pass

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- remote execution ----------------------------------------------------

    @classmethod
    def remote(
        cls,
        work_dir: str | os.PathLike,
        *,
        lease_timeout: float | None = None,
        poll: float | None = None,
        timeout: float | None = None,
        batch: int | None = None,
        cache: ResultCache | bool | None = None,
        cache_dir: str | os.PathLike | None = None,
        progress=None,
        engine: str | None = None,
    ) -> "Session":
        """A session whose sweeps are executed by pull workers.

        Cache-missed points are enqueued as claimable units under
        ``work_dir`` and executed by whatever ``repro queue worker``
        processes watch that directory — on this machine or any other
        sharing the filesystem. Results stream back into the session
        cache as they land, and units whose worker crashes are
        re-enqueued after ``lease_timeout`` seconds without a heartbeat
        (default ``$REPRO_QUEUE_LEASE_TIMEOUT`` or 30)::

            with Session.remote("sweep-work") as session:
                rs = session.sweep(grid)   # workers pull the points

        ``timeout`` bounds how long one plan waits overall (``None``
        waits forever — a queue with no workers blocks by design);
        ``poll`` is the result-scan interval; ``batch`` groups that
        many points per claimable unit, amortising the queue's
        per-unit filesystem protocol when points are cheap. Grid
        sweeps and every figure runner accept the returned session
        unchanged — the queue is just another backend behind the same
        front door.
        """
        backend_kwargs = {}
        if lease_timeout is not None:
            backend_kwargs["lease_timeout"] = lease_timeout
        if poll is not None:
            backend_kwargs["poll"] = poll
        if timeout is not None:
            backend_kwargs["timeout"] = timeout
        if batch is not None:
            backend_kwargs["batch"] = batch
        return cls(
            cache=cache,
            cache_dir=cache_dir,
            backend=QueueBackend(work_dir, **backend_kwargs),
            progress=progress,
            engine=engine,
        )

    @classmethod
    def fleet(
        cls,
        work_dir: str | os.PathLike,
        *,
        driver: str = "local",
        size: int = 2,
        min_workers: int | None = None,
        max_workers: int | None = None,
        driver_options: dict | None = None,
        herd_interval: float = 0.5,
        lease_timeout: float | None = None,
        poll: float | None = None,
        timeout: float | None = None,
        batch: int | None = None,
        cache: ResultCache | bool | None = None,
        cache_dir: str | os.PathLike | None = None,
        progress=None,
        engine: str | None = None,
    ) -> "Session":
        """A :meth:`remote` session that raises its *own* worker fleet.

        Where :meth:`remote` assumes someone else starts the
        ``repro queue worker`` processes, this builds a
        :class:`~repro.runner.Fleet` over the named
        :data:`~repro.runner.FLEET_DRIVERS` entry (``"local"`` spawns
        ``size`` subprocess workers on this machine), herds it on a
        background thread — dead workers restart with backoff, and with
        ``min_workers``/``max_workers`` set the fleet autoscales against
        queue depth — and tears the whole fleet down when the session
        closes::

            with Session.fleet("sweep-work", size=4) as session:
                rs = session.sweep(grid)   # the session's own workers pull

        ``driver_options`` passes driver-specific knobs through
        :func:`~repro.runner.make_driver` (``hosts_file=`` for ``ssh``,
        ``sbatch_template=`` for ``slurm``, ``worker_args=`` for all).
        The queue knobs (``lease_timeout``/``poll``/``timeout``/
        ``batch``) mean exactly what they mean on :meth:`remote`.
        """
        from .runner.fleet import Fleet, make_driver

        fleet = Fleet(
            work_dir,
            make_driver(driver, work_dir, **dict(driver_options or {})),
            min_workers=min_workers,
            max_workers=max_workers,
        )
        session = _FleetSession.remote(
            work_dir,
            lease_timeout=lease_timeout,
            poll=poll,
            timeout=timeout,
            batch=batch,
            cache=cache,
            cache_dir=cache_dir,
            progress=progress,
            engine=engine,
        )
        assert isinstance(session, _FleetSession)
        session._fleet = fleet
        try:
            fleet.up(size)
            fleet.start_herding(herd_interval)
        except BaseException:
            # A failed raise (driver submit error) must not leak the
            # workers that *did* start: close() tears the fleet down.
            session.close()
            raise
        return session

    # -- execution -----------------------------------------------------------

    def point_spec(
        self,
        workload: str,
        mechanism: str = "nvr",
        dtype: str = "fp16",
        nsb: bool = False,
        scale: float = 1.0,
        seed: int = 0,
        with_base: bool = False,
        memory=None,
        nvr=None,
        nvr_config=None,
        executor=None,
        engine: str | None = None,
        kind: str = "sim",
        **workload_args,
    ) -> RunSpec:
        """Build the :class:`~repro.runner.RunSpec` for one point.

        ``nvr_config`` is accepted as an alias of ``nvr`` (the
        :func:`repro.api.run_workload` spelling). ``engine`` selects the
        simulation kernel (a speed knob — results are bit-identical).
        """
        if nvr is not None and nvr_config is not None:
            raise ConfigError("pass nvr= or nvr_config=, not both")
        return RunSpec(
            workload,
            mechanism=mechanism,
            dtype=dtype,
            nsb=nsb,
            scale=scale,
            seed=seed,
            with_base=with_base,
            memory=memory,
            nvr=nvr if nvr is not None else nvr_config,
            executor=executor,
            engine=engine,
            workload_args=tuple(workload_args.items()),
            kind=kind,
        )

    def run(self, point, /, **kwargs):
        """Execute a single point through the cache/dedupe path.

        ``point`` is either a ready :class:`~repro.runner.RunSpec` or a
        workload name plus :meth:`point_spec` keyword axes. Returns the
        :class:`~repro.sim.soc.RunResult` (or
        :class:`~repro.workloads.base.TraceStats` for ``kind="trace"``).
        """
        if isinstance(point, RunSpec):
            if kwargs:
                raise ConfigError(
                    "pass either a ready RunSpec or keyword axes, not both"
                )
            spec = point
        elif isinstance(point, str):
            spec = self.point_spec(point, **kwargs)
        else:
            raise ConfigError(
                f"run() takes a RunSpec or a workload name, got "
                f"{type(point).__name__}"
            )
        return self.runner.run(self._apply_engine(spec))

    def sweep(self, plan) -> ResultSet:
        """Execute a :class:`Grid`, :class:`~repro.runner.Plan` or spec list.

        Points deduplicate, hit the session cache and fan out over the
        session backend; the :class:`~repro.resultset.ResultSet` pairs
        every submitted spec with its result, in submission order.
        """
        if isinstance(plan, Grid):
            specs = plan.specs()
        elif isinstance(plan, Plan):
            specs = list(plan.specs)
        elif isinstance(plan, RunSpec):
            specs = [plan]
        else:
            specs = list(plan)
        specs = [self._apply_engine(spec) for spec in specs]
        results = self.runner.run_plan(specs)
        return ResultSet(list(zip(specs, results)))

    def _apply_engine(self, spec: RunSpec) -> RunSpec:
        """Move a point onto the session's default kernel.

        Points that already pin a non-reference engine keep it — the
        session engine is a default, not an override, so an explicit
        engine axis (the equivalence sweeps) survives intact.
        """
        if self._engine is None or spec.engine is not None:
            return spec
        return spec.with_engine(self._engine)


class _FleetSession(Session):
    """A queue session that owns (and tears down) its worker fleet."""

    _fleet = None

    def close(self) -> None:
        super().close()
        if self._fleet is not None:
            fleet, self._fleet = self._fleet, None
            fleet.stop_herding()
            fleet.down()


# ---------------------------------------------------------------------------
# Default session + coercion
# ---------------------------------------------------------------------------

_DEFAULT_SESSION: Session | None = None


def default_session() -> Session:
    """The process-wide session behind the convenience API.

    Serial, cached under :func:`resolve_cache_dir`, silent. Built on
    first use; swap it with :func:`set_default_session` (tests,
    notebooks with a scratch cache).
    """
    global _DEFAULT_SESSION
    if _DEFAULT_SESSION is None:
        _DEFAULT_SESSION = Session()
    return _DEFAULT_SESSION


def set_default_session(session: Session | None) -> Session | None:
    """Replace the process-wide default session; returns the previous one."""
    global _DEFAULT_SESSION
    previous = _DEFAULT_SESSION
    _DEFAULT_SESSION = session
    return previous


def coerce_session(session=None, runner: SweepRunner | None = None) -> Session:
    """Normalise the figure runners' ``session``/``runner`` arguments.

    Accepts a :class:`Session`, a bare :class:`~repro.runner.SweepRunner`
    (the pre-Session calling convention, wrapped without taking
    ownership), or nothing — which yields :func:`default_session`.
    """
    chosen = session if session is not None else runner
    if chosen is None:
        return default_session()
    if isinstance(chosen, Session):
        return chosen
    if isinstance(chosen, SweepRunner):
        return Session(runner=chosen)
    raise ConfigError(
        f"expected a Session or SweepRunner, got {type(chosen).__name__}"
    )


# ---------------------------------------------------------------------------
# CLI integration — one shared parent parser for every subcommand
# ---------------------------------------------------------------------------


def add_session_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the shared session flags on a parser (or parent parser).

    Every default is ``argparse.SUPPRESS``: unset flags simply do not
    appear in the namespace and :func:`session_from_args` fills the real
    defaults. That lets nested parsers (``repro cache`` and
    ``repro cache gc``) share the same flags without a set-at-one-level
    value being clobbered by the other level's default.
    """
    parser.add_argument(
        "--jobs",
        type=int,
        default=argparse.SUPPRESS,
        help="worker processes for sweep execution (default 1 = serial)",
    )
    parser.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default=argparse.SUPPRESS,
        help="how cache-missed points execute: 'local' in-process "
        "workers, 'shards' via share-nothing 'repro worker run' "
        "subprocesses over serialized plan shards, 'queue' by "
        "enqueueing claimable units that 'repro queue worker' "
        "processes pull from --work-dir (default local)",
    )
    parser.add_argument(
        "--work-dir",
        default=argparse.SUPPRESS,
        metavar="DIR",
        help="keep the shards backend's shard/result files in DIR "
        "(default: a temporary directory); for --backend queue, the "
        "shared work directory the workers watch (required)",
    )
    parser.add_argument(
        "--queue-batch",
        type=int,
        default=argparse.SUPPRESS,
        metavar="N",
        help="points per claimable unit for --backend queue (default 1; "
        "batching amortises the per-unit claim/lease/result protocol "
        "when points are cheap)",
    )
    parser.add_argument(
        "--engine",
        default=argparse.SUPPRESS,
        metavar="KERNEL",
        help="default simulation kernel for every sim point "
        "('vectorized'/'batched'); a speed knob — results are "
        "bit-identical — that points pinning their own engine ignore",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        default=argparse.SUPPRESS,
        help="disable the on-disk result cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=argparse.SUPPRESS,
        help=f"result cache directory (default $"
        f"{CACHE_DIR_ENV} or {DEFAULT_CACHE_DIR})",
    )


def session_from_args(args: argparse.Namespace, quiet: bool = False) -> Session:
    """Build the CLI's :class:`Session` from the shared flags."""
    return Session(
        jobs=getattr(args, "jobs", 1),
        cache=False if getattr(args, "no_cache", False) else None,
        cache_dir=getattr(args, "cache_dir", None),
        backend=getattr(args, "backend", None),
        work_dir=getattr(args, "work_dir", None),
        queue_batch=getattr(args, "queue_batch", 1),
        progress=not quiet,
        engine=getattr(args, "engine", None),
    )


# Session.from_args reads naturally at call sites that already hold the
# class; it is the same factory.
Session.from_args = staticmethod(session_from_args)  # type: ignore[attr-defined]
