"""SCD — the Sparse Chain Detector (Fig. 3 d).

Maintains the Indirect Pattern Table (IPT): per indirect stream it records
the sparse structure's start address (``ss_start``), the address stride
(shift), and the Last Prefetched Indirect index (LPI), implementing the
paper's address formula::

    IA_address = IA_ss_start + (W_LPI << stride)

Two services:

* :meth:`formula_address` — the affine reconstruction above, learned from
  (index, address) resolutions the runahead performs. For hashed streams
  no stable (ss_start, shift) exists and the entry never validates.
* :meth:`predict_indices` — *approximate* chain prediction: when observed
  index deltas are stable (block/banded patterns), extrapolate the next
  indices from the LPI before their W data has even arrived. This is the
  speculative "approximate dependency chain calculation" of Q&A3; the
  confidence gate keeps it silent on random patterns.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError

_SHIFT_CANDIDATES = tuple(range(0, 14))


@dataclass
class IPTEntry:
    """Indirect Pattern Table row (fields mirror Table I's SCD budget)."""

    ss_start: int = 0
    shift: int = 0
    valid: bool = False
    fit_conf: int = 0
    lpi: int = 0  # last prefetched indirect index value
    delta_ewma: float = 0.0
    delta_conf: int = 0
    last_use: int = 0


class SparseChainDetector:
    """IPT learning over runahead-resolved (index, address) pairs."""

    def __init__(
        self,
        n_entries: int = 32,
        lock_confidence: int = 2,
        delta_confidence: int = 4,
        ewma_alpha: float = 0.3,
    ) -> None:
        if n_entries < 1:
            raise ConfigError("SCD needs >= 1 IPT entry")
        self.n_entries = n_entries
        self.lock_confidence = lock_confidence
        self.delta_confidence = delta_confidence
        self.ewma_alpha = ewma_alpha
        self._ipt: dict[int, IPTEntry] = {}
        self._clock = 0
        self._last_pair: dict[int, tuple[int, int]] = {}

    def _entry(self, stream_id: int) -> IPTEntry:
        entry = self._ipt.get(stream_id)
        if entry is None:
            if len(self._ipt) >= self.n_entries:
                victim = min(self._ipt, key=lambda s: self._ipt[s].last_use)
                del self._ipt[victim]
                self._last_pair.pop(victim, None)
            entry = IPTEntry()
            self._ipt[stream_id] = entry
        return entry

    # -- learning ---------------------------------------------------------------
    def record_resolution(self, stream_id: int, idx: int, addr: int) -> None:
        """Record one runahead-resolved (index, address) pair.

        Learns both the affine (ss_start, shift) fit and the index-delta
        statistics that drive approximate prediction.
        """
        self._clock += 1
        entry = self._entry(stream_id)
        entry.last_use = self._clock

        # Index-delta statistics (for approximate chain extrapolation).
        delta = idx - entry.lpi
        if entry.delta_conf > 0 or entry.delta_ewma != 0.0:
            predicted = int(round(entry.delta_ewma))
            if delta == predicted and delta != 0:
                entry.delta_conf = min(entry.delta_conf + 1, 15)
            else:
                entry.delta_conf = max(0, entry.delta_conf - 2)
            entry.delta_ewma += self.ewma_alpha * (delta - entry.delta_ewma)
        else:
            entry.delta_ewma = float(delta)
        entry.lpi = idx

        # Affine fit from consecutive pairs.
        prev = self._last_pair.get(stream_id)
        self._last_pair[stream_id] = (idx, addr)
        if prev is None:
            return
        idx0, addr0 = prev
        if idx == idx0:
            return
        # Fast path: a pair determines the shift uniquely (2^shift =
        # delta_addr / delta_idx), so when the current hypothesis fits
        # both points the candidate scan below could only rediscover it.
        s = entry.shift
        if (
            s
            and entry.ss_start >= 0
            and addr - (idx << s) == entry.ss_start
            and addr0 - (idx0 << s) == entry.ss_start
        ):
            entry.fit_conf = min(entry.fit_conf + 1, 15)
            entry.valid = entry.fit_conf >= self.lock_confidence
            return
        for shift in _SHIFT_CANDIDATES:
            base0 = addr0 - (idx0 << shift)
            base1 = addr - (idx << shift)
            if base0 == base1 and base0 >= 0:
                if entry.ss_start == base0 and entry.shift == shift:
                    entry.fit_conf = min(entry.fit_conf + 1, 15)
                else:
                    entry.ss_start, entry.shift = base0, shift
                    entry.fit_conf = 1
                entry.valid = entry.fit_conf >= self.lock_confidence
                return
        entry.fit_conf = max(0, entry.fit_conf - 1)
        entry.valid = entry.fit_conf >= self.lock_confidence

    # -- prediction ---------------------------------------------------------------
    def formula_address(self, stream_id: int, idx: int) -> int | None:
        """``ss_start + (idx << shift)`` when the affine fit is locked."""
        entry = self._ipt.get(stream_id)
        if entry is None or not entry.valid:
            return None
        return entry.ss_start + (idx << entry.shift)

    def predict_indices(self, stream_id: int, count: int) -> list[int] | None:
        """Extrapolate the next ``count`` indices past the LPI.

        Only fires with a stable delta history *and* a locked affine fit
        (without the fit there is no address to prefetch anyway).
        """
        entry = self._ipt.get(stream_id)
        if (
            entry is None
            or not entry.valid
            or entry.delta_conf < self.delta_confidence
            or count <= 0
        ):
            return None
        step = int(round(entry.delta_ewma))
        if step == 0:
            return None
        return [entry.lpi + step * (k + 1) for k in range(count)]

    def entry_state(self, stream_id: int) -> IPTEntry | None:
        """Read-only view for tests and reports."""
        return self._ipt.get(stream_id)

    @property
    def occupancy(self) -> int:
        return len(self._ipt)
