"""Table I — NVR hardware overhead accounting.

Reproduces the paper's field-by-field storage budget. Field widths are as
printed; where the scanned table's arithmetic is internally inconsistent we
compute from the fields and record the paper's quoted total alongside
(``paper_quoted_bits``), flagging the delta instead of silently adopting
either number. N is the number of parallel entries, matching the vector
width (default 16); structures marked "2x" in the table hold two banks.

Area: the paper reports 3% (no NSB) and 4.6% (with NSB) versus baseline
Gemmini on TSMC 28 nm. Without an RTL flow we provide a storage-ratio area
model against the baseline's on-chip SRAM (scratchpad + accumulator),
which is the dominant area term of Gemmini-class NPUs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..utils import KIB

PC_BITS = 48
ADDR_BITS = 48
CPU_REG_BITS = 64


def _log2_ceil(n: int) -> int:
    if n <= 1:
        return 1
    return (n - 1).bit_length()


@dataclass(frozen=True)
class StructureBits:
    """Bit budget of one NVR structure."""

    name: str
    n_entries: int
    per_entry_fields: dict[str, int]
    constant_fields: dict[str, int]
    paper_quoted_bits: int

    @property
    def per_entry_bits(self) -> int:
        return sum(self.per_entry_fields.values())

    @property
    def total_bits(self) -> int:
        return self.n_entries * self.per_entry_bits + sum(self.constant_fields.values())

    @property
    def matches_paper(self) -> bool:
        return self.total_bits == self.paper_quoted_bits


def sd_bits(n: int = 16) -> StructureBits:
    """Stride Detector: 48 + N x 110 = 1808 bits at N=16 (Table I)."""
    entry_id = _log2_ceil(n)
    return StructureBits(
        name="SD",
        n_entries=n,
        per_entry_fields={
            "prev_addr": ADDR_BITS,
            "stride": 8,
            "entry_id": entry_id,
            "last_prefetch_addr": ADDR_BITS,
            "stride_conf": 2,
        },
        constant_fields={"pc": PC_BITS},
        paper_quoted_bits=1808,
    )


def scd_bits(n: int = 32) -> StructureBits:
    """Sparse Chain Detector: 2x16 entries of 77 bits plus the PC.

    The printed total (2464) equals ``32 x 77`` exactly — the 48-bit PC
    the table lists is missing from the quoted sum. We report the
    field-complete 2512 bits and keep the paper's figure for comparison.
    """
    return StructureBits(
        name="SCD",
        n_entries=n,
        per_entry_fields={
            "ss_start": ADDR_BITS,
            "valid": 1,
            "entry_id": 4,  # IDs span the 16 parallel ports per bank
            "ss_offset": 10,
            "lpi": 10,
            "vector_size": 4,
        },
        constant_fields={"pc": PC_BITS},
        paper_quoted_bits=2464,
    )


def lbd_bits(n: int = 32) -> StructureBits:
    """Loop Bound Detector: 32 x 107 = 3424 bits (Table I).

    The scan's "32x1027" is a typo for 32 entries x 107 bits — the field
    widths printed (48 PC + 16 counter + 1 sparse mode + 4 entry id +
    16 increment + 2 level conf + 16 boundary + 4 boundary conf) sum to
    exactly 107, and 32 x 107 = 3424 matches the quoted total.
    """
    return StructureBits(
        name="LBD",
        n_entries=n,
        per_entry_fields={
            "pc": PC_BITS,
            "iteration_counter": 16,
            "sparse_mode": 1,
            "entry_id": 4,
            "increment": 16,
            "level_conf": 2,
            "loop_boundary": 16,
            "boundary_conf": 4,
        },
        constant_fields={},
        paper_quoted_bits=3424,
    )


def vmig_bits(n: int = 16) -> StructureBits:
    """VMIG: 260 + 16 x 184 = 3204 bits (Table I).

    Per entry: 48 PC + 64 VRF tag + 64 PIE state + 4 entry id + 4 IRU;
    constants: 256-bit VIGU assembly buffer + 4-bit IRU state.
    """
    return StructureBits(
        name="VMIG",
        n_entries=n,
        per_entry_fields={
            "pc": PC_BITS,
            "vrf": 64,
            "pie": 64,
            "entry_id": _log2_ceil(n),
            "iru": 4,
        },
        constant_fields={"vigu": 256, "iru_state": 4},
        paper_quoted_bits=3204,
    )


def snooper_bits(n: int = 16) -> StructureBits:
    """Snooper: 160 + 16 x 68 = 1248 bits (Table I).

    Constants: CPU PC (48) + CPU register (64) + NPU PC (48) = 160;
    per entry: sparse-structure descriptor 48 + 10 + 10 = 68 bits.
    """
    return StructureBits(
        name="Snooper",
        n_entries=n,
        per_entry_fields={"ss_base": ADDR_BITS, "ss_bound": 10, "ss_mode": 10},
        constant_fields={
            "cpu_pc": PC_BITS,
            "cpu_reg": CPU_REG_BITS,
            "npu_pc": PC_BITS,
        },
        paper_quoted_bits=1248,
    )


@dataclass
class OverheadReport:
    """Full Table I reproduction."""

    structures: list[StructureBits]
    nsb_bytes: int
    baseline_sram_bytes: int

    @property
    def total_bits(self) -> int:
        return sum(s.total_bits for s in self.structures)

    @property
    def total_kib(self) -> float:
        return self.total_bits / 8 / KIB

    @property
    def paper_total_kib(self) -> float:
        """The paper's headline: 9.72 KiB (+16 KiB optional NSB)."""
        return 9.72

    def area_fraction(self, with_nsb: bool) -> float:
        """Storage-ratio area model vs baseline on-chip SRAM."""
        extra = self.total_bits / 8 + (self.nsb_bytes if with_nsb else 0)
        return extra / self.baseline_sram_bytes

    def rows(self) -> list[tuple[str, int, int, int, bool]]:
        """(name, entries, computed bits, paper bits, match) per structure."""
        return [
            (s.name, s.n_entries, s.total_bits, s.paper_quoted_bits, s.matches_paper)
            for s in self.structures
        ]


def nvr_overhead(
    vector_width: int = 16,
    nsb_kib: int = 16,
    baseline_sram_kib: int = 320,
) -> OverheadReport:
    """Build the Table I report for a given parallel width.

    Args:
        vector_width: N (entries scale with it; "2x" tables get 2N).
        nsb_kib: optional NSB capacity.
        baseline_sram_kib: Gemmini's scratchpad (256 KiB) + accumulator
            (64 KiB) — the storage base for the area ratio.
    """
    if vector_width < 1:
        raise ConfigError("vector_width must be >= 1")
    n = vector_width
    return OverheadReport(
        structures=[
            sd_bits(n),
            scd_bits(2 * n),
            lbd_bits(2 * n),
            vmig_bits(n),
            snooper_bits(n),
        ],
        nsb_bytes=nsb_kib * KIB,
        baseline_sram_bytes=baseline_sram_kib * KIB,
    )
