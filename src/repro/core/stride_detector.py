"""SD — the Stride Detector (Fig. 3 b).

A reference-prediction-table unit that tracks the streaming W accesses:
per stream it keeps the previous address, the stride, a 2-bit confidence
counter and the last-prefetched address (the frontier), exactly the fields
Table I budgets. Its job inside NVR is to predict *future W addresses* so
the runahead thread can fetch index data ahead of the NPU — predictions are
extrapolations from observed addresses, never reads of future program
state.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError


@dataclass
class SDEntry:
    """One reference-prediction-table row (fields mirror Table I)."""

    prev_addr: int
    prev_len_bytes: int = 0
    stride: int = 0  # per-element stride (bytes)
    confidence: int = 0
    last_prefetch_addr: int | None = None
    last_use: int = 0


class StrideDetector:
    """Per-stream stride learning with a bounded entry table.

    Coarse-grained NPU loads encode base *and* vector length in their
    operands, so the detector normalises address deltas by the previous
    load's extent: for a contiguous stream the per-element stride is the
    element size regardless of how row boundaries chop the tiles — which
    is what keeps confidence up across the short last-tile of every
    sparse row (the failure mode of plain base-delta stride tables).
    """

    CONFIDENCE_MAX = 3  # 2-bit saturating counter

    def __init__(self, n_entries: int = 16, confirm: int = 2) -> None:
        if n_entries < 1:
            raise ConfigError("StrideDetector needs >= 1 entry")
        if not 1 <= confirm <= self.CONFIDENCE_MAX:
            raise ConfigError("confirm must fit the 2-bit confidence counter")
        self.n_entries = n_entries
        self.confirm = confirm
        self._table: dict[int, SDEntry] = {}
        self._clock = 0

    def _entry(self, stream_id: int, addr: int) -> SDEntry:
        entry = self._table.get(stream_id)
        if entry is None:
            if len(self._table) >= self.n_entries:
                victim = min(self._table, key=lambda s: self._table[s].last_use)
                del self._table[victim]
            entry = SDEntry(prev_addr=addr)
            self._table[stream_id] = entry
        return entry

    def observe(
        self, stream_id: int, addr: int, n_elems: int = 1, elem_bytes: int = 1
    ) -> None:
        """Train on one dispatched load: base address plus vector extent."""
        self._clock += 1
        entry = self._entry(stream_id, addr)
        entry.last_use = self._clock
        delta = addr - entry.prev_addr
        if delta != 0:
            if entry.prev_len_bytes > 0 and delta == entry.prev_len_bytes:
                # Contiguous continuation: per-element stride confirmed.
                stride = elem_bytes
            else:
                stride = delta
            if stride == entry.stride:
                entry.confidence = min(entry.confidence + 1, self.CONFIDENCE_MAX)
            else:
                entry.stride = stride
                entry.confidence = 0
        entry.prev_addr = addr
        entry.prev_len_bytes = n_elems * elem_bytes

    def confident(self, stream_id: int) -> bool:
        entry = self._table.get(stream_id)
        return (
            entry is not None
            and entry.stride != 0
            and entry.confidence >= self.confirm
        )

    def predict_window(self, stream_id: int, n_bytes: int) -> tuple[int, int] | None:
        """Advance the prefetch frontier by ``n_bytes``.

        Returns the predicted ``[start, end)`` byte window for the next
        stream data, or None without a confident stride. The frontier
        (``last_prefetch_addr``) guarantees successive calls never
        re-request the same window.
        """
        entry = self._table.get(stream_id)
        if not self.confident(stream_id) or n_bytes <= 0:
            return None
        start = (
            entry.last_prefetch_addr
            if entry.last_prefetch_addr is not None
            else entry.prev_addr + abs(entry.stride)
        )
        end = start + n_bytes
        entry.last_prefetch_addr = end
        return start, end

    def reset_frontier(self, stream_id: int) -> None:
        """Drop the frontier (used when the LBD detects a loop restart)."""
        entry = self._table.get(stream_id)
        if entry is not None:
            entry.last_prefetch_addr = None

    @property
    def occupancy(self) -> int:
        return len(self._table)
