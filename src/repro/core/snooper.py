"""Snoopers — read-only probes over CPU and NPU state (Fig. 3 a).

The snooper is NVR's only window into the system; everything downstream
(SD/LBD/SCD training, runahead triggering) consumes its three event
classes, mirroring Sec. IV-C:

1. CPU branch instructions → loop context for the LBD;
2. NPU load-instruction dispatch (ROB) → runahead trigger timing;
3. sparse-unit registers → row windows and ``sparse_func`` metadata.

Non-invasiveness is structural: the snooper holds a reference to the
sparse unit but only ever calls its read-only accessors.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SimulationError
from ..sim.npu.sparse_unit import SparseUnit


@dataclass(frozen=True)
class BranchSample:
    """Normalised CPU branch observation."""

    pc: int
    counter: int
    bound: int
    level: int


@dataclass(frozen=True)
class SparseWindow:
    """Snooped sparse-unit row state: the row in flight and its extent."""

    row: int
    row_start: int
    row_end: int


class Snooper:
    """Aggregates the three snoop event classes with simple counters."""

    def __init__(self) -> None:
        self._sparse_unit: SparseUnit | None = None
        self.branch_events = 0
        self.dispatch_events = 0
        self.register_reads = 0

    def attach_sparse_unit(self, sparse_unit: SparseUnit) -> None:
        self._sparse_unit = sparse_unit

    @property
    def attached(self) -> bool:
        return self._sparse_unit is not None

    def observe_branch(
        self, pc: int, counter: int, bound: int, level: int
    ) -> BranchSample:
        self.branch_events += 1
        return BranchSample(pc=pc, counter=counter, bound=bound, level=level)

    def observe_dispatch(self) -> None:
        self.dispatch_events += 1

    def read_sparse_window(self, row: int) -> SparseWindow:
        """Read the sparse unit's rowptr window for the row in flight."""
        if self._sparse_unit is None:
            raise SimulationError("snooper not attached to a sparse unit")
        self.register_reads += 1
        start, end = self._sparse_unit.rowptr_window(row)
        return SparseWindow(row=row, row_start=start, row_end=end)

    def current_row(self) -> int:
        if self._sparse_unit is None:
            raise SimulationError("snooper not attached to a sparse unit")
        self.register_reads += 1
        return self._sparse_unit.registers.current_row
