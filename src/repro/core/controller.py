"""The NVR runahead controller (Sec. IV-C, red circles of Fig. 3).

Entry (Q&A1): runahead starts when a load instruction in the NPU's ROB
executes — our per-tile dispatch event. The controller then:

1. trains SD on the dispatched load's stream addresses and the LBD on the
   snooped sparse window;
2. computes the runahead window in W-stream positions: the desired depth
   (``depth_tiles`` vectors ahead) clamped by the LBD's fuzzy boundary
   prediction;
3. prefetches the W (value + index) lines for that window — SD-gated, so
   nothing issues until the stride stream is confirmed;
4. once a window's index data is on-chip (its fill completed), resolves
   each index through the *sparse unit* (Q&A3 — PIE work scheduled into
   the unit's idle time via ``grant_runahead``), feeds the SCD, and lets
   VMIG bundle the gather prefetches into vector ops;
5. optionally issues *approximate* prefetches for windows whose data has
   not arrived, using the SCD's extrapolated indices and affine formula.

The controller never reads future program state directly: W addresses are
stride extrapolations, index values are read only from fetched windows,
and gather addresses come from the sparse unit or the SCD formula.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigError
from ..prefetch.base import PrefetchPort
from ..sim.npu.isa import STREAM_W_INDICES, STREAM_W_VALUES
from ..sim.npu.program import SparseProgram, Tile
from ..sim.npu.sparse_unit import SparseUnit
from .loop_bound_detector import LoopBoundDetector
from .snooper import Snooper
from .sparse_chain_detector import SparseChainDetector
from .stride_detector import StrideDetector
from .vmig import VMIG


@dataclass
class NVRConfig:
    """NVR tuning knobs (defaults follow the paper's description).

    Attributes:
        vector_width: parallel entries N (Table I default 16).
        depth_tiles: runahead distance in vector tiles.
        fuzz_vectors: extra vectors of boundary overshoot (fuzzy prefetch).
        approximate: enable SCD-extrapolated prefetch before data arrival.
        resolve_cycles_per_elem: sparse-unit occupancy per PIE resolution.
        confirm_stride: SD confirmations before W prefetch starts.
    """

    vector_width: int = 16
    depth_tiles: int = 8
    fuzz_vectors: int = 1
    approximate: bool = True
    approximate_confidence: int = 8
    resolve_cycles_per_elem: float = 0.25
    confirm_stride: int = 2

    def __post_init__(self) -> None:
        if self.vector_width < 1 or self.depth_tiles < 1:
            raise ConfigError("vector_width and depth_tiles must be >= 1")
        if self.fuzz_vectors < 0:
            raise ConfigError("fuzz_vectors must be >= 0")
        if self.resolve_cycles_per_elem < 0:
            raise ConfigError("resolve_cycles_per_elem must be >= 0")

    def to_dict(self) -> dict:
        """Canonical plain-scalar dict (see :mod:`repro.spec.serde`)."""
        from ..spec import serde

        return serde.nvr_config_to_dict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "NVRConfig":
        from ..spec import serde

        return serde.nvr_config_from_dict(d)


@dataclass
class _PendingWindow:
    """A W-stream span whose index data is being fetched by runahead."""

    p0: int
    p1: int
    ready: int
    approx_issued: bool = False


class RunaheadController:
    """Stateful runahead engine behind :class:`~repro.core.nvr.NVRPrefetcher`."""

    def __init__(
        self,
        config: NVRConfig,
        program: SparseProgram,
        port: PrefetchPort,
        sparse_unit: SparseUnit,
    ) -> None:
        self.config = config
        self.program = program
        self.port = port
        self.sparse_unit = sparse_unit
        self.snooper = Snooper()
        self.snooper.attach_sparse_unit(sparse_unit)
        self.sd = StrideDetector(
            n_entries=config.vector_width, confirm=config.confirm_stride
        )
        self.lbd = LoopBoundDetector(
            n_entries=2 * config.vector_width,
            vector_width=config.vector_width,
            fuzz_vectors=config.fuzz_vectors,
        )
        self.scd = SparseChainDetector(
            n_entries=2 * config.vector_width,
            delta_confidence=config.approximate_confidence,
        )
        self.vmig = VMIG(vector_width=config.vector_width, line_bytes=port.line_bytes)
        self._w_frontier = 0  # W-stream position prefetched so far
        self._pending: list[_PendingWindow] = []
        self.windows_opened = 0
        self.approx_prefetches = 0
        self.exact_prefetches = 0
        self.runahead_delayed = 0  # grants queued behind real sparse work

    # -- event entry points -------------------------------------------------
    def on_branch(
        self, now: int, pc: int, counter: int, bound: int, level: int
    ) -> None:
        sample = self.snooper.observe_branch(pc, counter, bound, level)
        self.lbd.observe_branch(sample.pc, sample.counter, sample.bound, sample.level)

    def on_dispatch(self, now: int, tile: Tile) -> None:
        """Q&A1: a load executes in the ROB — enter runahead."""
        self.snooper.observe_dispatch()
        cfg = self.program.config
        self.sd.observe(
            STREAM_W_VALUES,
            int(tile.w_val_load.byte_addrs[0]),
            n_elems=tile.n_elems,
            elem_bytes=cfg.elem_bytes,
        )
        self.sd.observe(
            STREAM_W_INDICES,
            int(tile.w_idx_load.byte_addrs[0]),
            n_elems=tile.n_elems,
            elem_bytes=cfg.idx_bytes,
        )
        window = self.snooper.read_sparse_window(tile.row)
        self.lbd.observe_sparse_window(window.row, window.row_start, window.row_end)

        self._w_frontier = max(self._w_frontier, tile.j_end)
        desired_end = tile.j_end + self.config.depth_tiles * cfg.vector_width
        allowed_end = self.lbd.predict_stream_limit(
            tile.j_end, rows_ahead=self.config.depth_tiles
        )
        target_end = min(desired_end, allowed_end)
        if target_end > self._w_frontier and self.sd.confident(STREAM_W_VALUES):
            self._open_window(now, self._w_frontier, target_end)
        self._resolve_ready(now)

    def on_data_return(self, now: int) -> None:
        """More index data landed on-chip — continue the chain."""
        self._resolve_ready(now)

    # -- stage 1: W stream prefetch ---------------------------------------------
    def _open_window(self, now: int, p0: int, p1: int) -> None:
        cfg = self.program.config
        self.windows_opened += 1
        ready = now
        for base, esize in (
            (cfg.w_val_base, cfg.elem_bytes),
            (cfg.w_idx_base, cfg.idx_bytes),
        ):
            start = base + p0 * esize
            end = base + p1 * esize
            ats: list[int] = []
            lines: list[int] = []
            for batch_i, batch in enumerate(
                self.vmig.bundle([start], max(1, end - start))
            ):
                ats.extend([now + batch_i] * len(batch))
                lines.extend(batch)
            issued = self.port.prefetch_many(ats, lines, irregular=False)
            if issued:
                ready = max(ready, max(issued))
        self._pending.append(_PendingWindow(p0=p0, p1=p1, ready=ready))
        self._w_frontier = p1

    # -- stage 2: resolution through the sparse unit ------------------------------
    def _resolve_ready(self, now: int) -> None:
        nnz = self.program.nnz
        still_pending: list[_PendingWindow] = []
        for win in self._pending:
            if win.ready > now:
                # Approximate extrapolation is only sound within the row
                # in flight: across a boundary the index sequence restarts
                # (the LBD knows exactly where that is).
                if (
                    self.config.approximate
                    and not win.approx_issued
                    and win.p1 <= self.lbd.current_row_end
                ):
                    self._issue_approximate(now, win)
                still_pending.append(win)
                continue
            p0, p1 = win.p0, min(win.p1, nnz)
            if p0 >= p1:
                continue
            indices = self.program.col_stream[p0:p1].tolist()
            grant = self.sparse_unit.grant_runahead(
                now,
                max(1, math.ceil(len(indices) * self.config.resolve_cycles_per_elem)),
            )
            if grant > now:
                self.runahead_delayed += 1
            for stream_id in self.sparse_unit.gather_stream_ids():
                stream = self.program.gather_streams[stream_id]
                resolve = self.sparse_unit.resolve
                record = self.scd.record_resolution
                segment_bytes = stream.segment_bytes
                addrs = []
                segs = []
                for idx in indices:
                    addr = resolve(stream_id, idx)
                    record(stream_id, idx, addr)
                    addrs.append(addr)
                    segs.append(segment_bytes(idx))
                ats: list[int] = []
                lines: list[int] = []
                for batch_i, batch in enumerate(self.vmig.bundle(addrs, segs)):
                    ats.extend([grant + batch_i] * len(batch))
                    lines.extend(batch)
                self.exact_prefetches += len(
                    self.port.prefetch_many(ats, lines, irregular=True)
                )
        self._pending = still_pending

    # -- stage 3: approximate (pre-data) prediction --------------------------------
    def _issue_approximate(self, now: int, win: _PendingWindow) -> None:
        """SCD extrapolation: ``IA = ss_start + (predicted_idx << stride)``."""
        win.approx_issued = True
        count = min(win.p1 - win.p0, self.config.vector_width)
        for stream_id in self.sparse_unit.gather_stream_ids():
            predicted = self.scd.predict_indices(stream_id, count)
            if predicted is None:
                continue
            stream = self.program.gather_streams[stream_id]
            addrs = []
            for idx in predicted:
                addr = self.scd.formula_address(stream_id, idx)
                if addr is not None:
                    addrs.append(addr)
            ats: list[int] = []
            lines: list[int] = []
            for batch_i, batch in enumerate(
                self.vmig.bundle(addrs, stream.row_bytes)
            ):
                ats.extend([now + batch_i] * len(batch))
                lines.extend(batch)
            self.approx_prefetches += len(
                self.port.prefetch_many(ats, lines, irregular=True)
            )
