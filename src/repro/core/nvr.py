"""NVRPrefetcher — the composed NVR mechanism (Fig. 3 as a whole, Sec. IV).

Wires the purple blocks — snooper, SD, LBD, SCD, VMIG, controller, and
optionally the NSB — into the one prefetcher the paper evaluates.
Implements the same :class:`~repro.prefetch.base.Prefetcher` interface as
every baseline (Q&A2: NVR sits between CPU and NPU, decoupled from both),
but is the only mechanism granted the NPU-side capabilities: ROB dispatch
events, CPU branch events, sparse-unit registers and ``sparse_func``
evaluation. The :class:`~repro.sim.soc.System` hands those over through
:meth:`attach_npu`.
"""

from __future__ import annotations

from ..errors import SimulationError
from ..prefetch.base import Prefetcher, PrefetchPort
from ..sim.npu.program import SparseProgram
from ..sim.npu.sparse_unit import SparseUnit
from .controller import NVRConfig, RunaheadController


class NVRPrefetcher(Prefetcher):
    """NPU Vector Runahead (the paper's contribution)."""

    name = "nvr"

    def __init__(self, config: NVRConfig | None = None) -> None:
        cfg = config or NVRConfig()
        super().__init__(cfg.vector_width)
        self.config = cfg
        self._sparse_unit: SparseUnit | None = None
        self.controller: RunaheadController | None = None

    # -- wiring -----------------------------------------------------------------
    def attach(self, program: SparseProgram, port: PrefetchPort) -> None:
        super().attach(program, port)
        self._maybe_build()

    def attach_npu(self, sparse_unit: SparseUnit) -> None:
        """Receive the NPU-side snooping capabilities (System calls this)."""
        self._sparse_unit = sparse_unit
        self._maybe_build()

    def _maybe_build(self) -> None:
        ready = (
            self.program is not None
            and self.port is not None
            and self._sparse_unit is not None
        )
        if ready:
            self.controller = RunaheadController(
                self.config, self.program, self.port, self._sparse_unit
            )

    def _require_controller(self) -> RunaheadController:
        if self.controller is None:
            raise SimulationError(
                "NVRPrefetcher used before attach()/attach_npu() completed"
            )
        return self.controller

    # -- event handlers ------------------------------------------------------------
    def on_tile_dispatch(self, now: int, tile_id: int) -> None:
        controller = self._require_controller()
        controller.on_dispatch(now, self.program.tiles[tile_id])

    def on_data_return(self, now: int, tile_id: int) -> None:
        self._require_controller().on_data_return(now)

    def on_branch(self, now: int, event) -> None:
        self._require_controller().on_branch(
            now, event.pc, event.counter, event.bound, event.level
        )

    # -- introspection ----------------------------------------------------------------
    def describe(self) -> str:
        """One-line state summary for reports."""
        c = self.controller
        if c is None:
            return "nvr: unattached"
        return (
            f"nvr: windows={c.windows_opened} exact={c.exact_prefetches} "
            f"approx={c.approx_prefetches} vmig_ratio={c.vmig.compression_ratio:.2f}"
        )
