"""VMIG — the Vectorisation Micro-Instruction Generator (Fig. 3 e, Fig. 4).

Three conceptual stages, executed here as one bundling pass:

* **IRU** (Instruction Reconstruction Unit): collects the element
  prefetch targets produced during runahead — scattered micro-instruction
  fragments — using the SST/IPT context.
* **PIE** (Parallel Inference Engine): the per-element address
  resolutions themselves (performed by the controller through the sparse
  unit or the SCD formula) — VMIG receives resolved byte addresses.
* **VIGU** (Vector Instruction Generation Unit): deduplicates the touched
  cache lines and packs them into native vector-width load operations,
  one issue slot per vector op — the restructured loads of Fig. 4 that
  raise memory-level parallelism without new hardware.

The compression counters (element fragments in, vector ops out) are the
observable the paper's bandwidth-utilisation argument rests on.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError


class VMIG:
    """Line dedup + vector packing with issue scheduling."""

    def __init__(self, vector_width: int = 16, line_bytes: int = 64) -> None:
        if vector_width < 1:
            raise ConfigError("vector_width must be >= 1")
        if line_bytes < 1 or line_bytes & (line_bytes - 1):
            raise ConfigError("line_bytes must be a power of two")
        self.vector_width = vector_width
        self.line_bytes = line_bytes
        self.elements_in = 0
        self.lines_deduped = 0
        self.vector_ops_out = 0

    def bundle(
        self,
        byte_addrs: list[int] | np.ndarray,
        seg_bytes: int | list[int] | np.ndarray,
    ) -> list[list[int]]:
        """Pack element segments into vector-width line batches.

        Args:
            byte_addrs: segment start addresses (one per element).
            seg_bytes: bytes per segment — a scalar for fixed-size
                gathers, or one value per element for two-side sparsity's
                data-dependent segment lengths.

        Returns:
            Batches of unique line addresses (plain ints, ready for the
            prefetch port's batch interface), each at most
            ``vector_width`` long, in first-touch order. Batch ``i`` is
            intended to issue at cycle offset ``i`` (fully pipelined,
            Fig. 4).
        """
        n = len(byte_addrs)
        if n == 0:
            return []
        if np.isscalar(seg_bytes) or isinstance(seg_bytes, int):
            seg = int(seg_bytes)
            if seg < 1:
                raise ConfigError("seg_bytes must be >= 1")
            segs = None
        else:
            if len(seg_bytes) != n:
                raise ConfigError("per-element seg_bytes length mismatch")
            segs = [int(s) for s in seg_bytes]
            if min(segs) < 1:
                raise ConfigError("seg_bytes must be >= 1")
        self.elements_in += n
        lb = self.line_bytes
        # Flattened line stream (element order, then offset within
        # segment), deduplicated preserving first touch. Plain loops: a
        # bundle covers one runahead window (tens of elements), far
        # below numpy's array-dispatch break-even.
        lines: list[int] = []
        seen: set[int] = set()
        add = seen.add
        append = lines.append
        for i in range(n):
            a = int(byte_addrs[i])
            if segs is not None:
                seg = segs[i]
            la = a // lb * lb
            last = (a + seg - 1) // lb * lb
            while la <= last:
                if la not in seen:
                    add(la)
                    append(la)
                la += lb
        self.lines_deduped += len(lines)
        batches = [
            lines[i : i + self.vector_width]
            for i in range(0, len(lines), self.vector_width)
        ]
        self.vector_ops_out += len(batches)
        return batches

    @property
    def compression_ratio(self) -> float:
        """Element fragments per emitted vector op (>1 means real packing)."""
        if self.vector_ops_out == 0:
            return 0.0
        return self.elements_in / self.vector_ops_out
