"""VMIG — the Vectorisation Micro-Instruction Generator (Fig. 3 e, Fig. 4).

Three conceptual stages, executed here as one bundling pass:

* **IRU** (Instruction Reconstruction Unit): collects the element
  prefetch targets produced during runahead — scattered micro-instruction
  fragments — using the SST/IPT context.
* **PIE** (Parallel Inference Engine): the per-element address
  resolutions themselves (performed by the controller through the sparse
  unit or the SCD formula) — VMIG receives resolved byte addresses.
* **VIGU** (Vector Instruction Generation Unit): deduplicates the touched
  cache lines and packs them into native vector-width load operations,
  one issue slot per vector op — the restructured loads of Fig. 4 that
  raise memory-level parallelism without new hardware.

The compression counters (element fragments in, vector ops out) are the
observable the paper's bandwidth-utilisation argument rests on.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError


class VMIG:
    """Line dedup + vector packing with issue scheduling."""

    def __init__(self, vector_width: int = 16, line_bytes: int = 64) -> None:
        if vector_width < 1:
            raise ConfigError("vector_width must be >= 1")
        if line_bytes < 1 or line_bytes & (line_bytes - 1):
            raise ConfigError("line_bytes must be a power of two")
        self.vector_width = vector_width
        self.line_bytes = line_bytes
        self.elements_in = 0
        self.lines_deduped = 0
        self.vector_ops_out = 0

    def bundle(
        self,
        byte_addrs: list[int] | np.ndarray,
        seg_bytes: int | list[int] | np.ndarray,
    ) -> list[np.ndarray]:
        """Pack element segments into vector-width line batches.

        Args:
            byte_addrs: segment start addresses (one per element).
            seg_bytes: bytes per segment — a scalar for fixed-size
                gathers, or one value per element for two-side sparsity's
                data-dependent segment lengths.

        Returns:
            Batches of unique line addresses, each at most
            ``vector_width`` long, in first-touch order. Batch ``i`` is
            intended to issue at cycle offset ``i`` (fully pipelined,
            Fig. 4).
        """
        addrs = np.asarray(byte_addrs, dtype=np.int64)
        if len(addrs) == 0:
            return []
        if np.isscalar(seg_bytes) or isinstance(seg_bytes, int):
            segs = np.full(len(addrs), int(seg_bytes), dtype=np.int64)
        else:
            segs = np.asarray(seg_bytes, dtype=np.int64)
            if len(segs) != len(addrs):
                raise ConfigError("per-element seg_bytes length mismatch")
        if np.any(segs < 1):
            raise ConfigError("seg_bytes must be >= 1")
        self.elements_in += len(addrs)
        lb = self.line_bytes
        firsts = (addrs // lb) * lb
        lasts = ((addrs + segs - 1) // lb) * lb
        counts = (lasts - firsts) // lb + 1
        total = int(counts.sum())
        # Flattened line stream (element order, then offset within segment),
        # deduplicated preserving first touch — dict.fromkeys keeps
        # insertion order, matching np.unique + first-index sort.
        ramp = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(counts) - counts, counts
        )
        flat = np.repeat(firsts, counts) + ramp * lb
        lines = np.fromiter(
            dict.fromkeys(flat.tolist()), dtype=np.int64
        )
        self.lines_deduped += len(lines)
        batches = [
            lines[i : i + self.vector_width]
            for i in range(0, len(lines), self.vector_width)
        ]
        self.vector_ops_out += len(batches)
        return batches

    @property
    def compression_ratio(self) -> float:
        """Element fragments per emitted vector op (>1 means real packing)."""
        if self.vector_ops_out == 0:
            return 0.0
        return self.elements_in / self.vector_ops_out
