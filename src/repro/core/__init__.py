"""NVR — NPU Vector Runahead: the paper's contribution.

The purple blocks of Fig. 3, one module each:

* :mod:`repro.core.snooper` — read-only probes over CPU branch retirement,
  NPU ROB load dispatch, and sparse-unit registers.
* :mod:`repro.core.stride_detector` — SD: reference-prediction-table
  stream detector for the W value/index streams.
* :mod:`repro.core.loop_bound_detector` — LBD: Sparse Structure Table,
  dual-mode (static/sparse) boundary prediction with fuzzy rounding.
* :mod:`repro.core.sparse_chain_detector` — SCD: Indirect Pattern Table,
  ``IA = ss_start + (W_LPI << stride)`` with delta-confidence
  extrapolation for approximate (pre-data) prediction.
* :mod:`repro.core.vmig` — VMIG: IRU/PIE/VIGU pipeline rebundling element
  prefetches into native vector-width load micro-ops.
* :mod:`repro.core.nsb` — Non-blocking Speculative Buffer configuration.
* :mod:`repro.core.controller` — runahead entry/exit and sparse-unit idle
  arbitration.
* :mod:`repro.core.nvr` — :class:`NVRPrefetcher`, the composed mechanism
  (implements the same interface as every baseline).
* :mod:`repro.core.overhead` — Table I storage-bit accounting.
"""

from .controller import NVRConfig, RunaheadController
from .loop_bound_detector import LoopBoundDetector
from .nsb import nsb_config
from .nvr import NVRPrefetcher
from .overhead import OverheadReport, nvr_overhead
from .sparse_chain_detector import SparseChainDetector
from .stride_detector import StrideDetector
from .vmig import VMIG

__all__ = [
    "LoopBoundDetector",
    "NVRConfig",
    "NVRPrefetcher",
    "OverheadReport",
    "RunaheadController",
    "SparseChainDetector",
    "StrideDetector",
    "VMIG",
    "nsb_config",
    "nvr_overhead",
]
