"""LBD — the Loop Boundary Detector (Fig. 3 c).

Maintains the Sparse Structure Table (SST): one entry per tracked loop
level, learning bounds in two modes (Sec. IV-E):

* **static bounds** from CPU B-type branch register values (outer loops,
  fixed trip counts);
* **sparse bounds** snooped from sparse-unit registers — the current row's
  ``rowptr`` window is architecturally exact, while *future* rows are
  predicted from an exponentially-weighted average of observed row
  lengths.

Its product is :meth:`predict_stream_limit`: how far ahead (in W-stream
element positions) runahead may prefetch without crossing an unknown
boundary, rounded *up* to the vector width — the paper's fuzzy prefetch
("accepting some prefetch redundancy as a reasonable trade-off").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError


@dataclass
class SSTEntry:
    """Sparse Structure Table row (fields mirror Table I's LBD budget)."""

    pc: int
    level: int
    last_counter: int = 0
    increment: int = 0
    increment_conf: int = 0
    bound: int = 0
    bound_conf: int = 0
    sparse_mode: bool = False
    last_use: int = 0


class LoopBoundDetector:
    """Dual-mode loop boundary learning and fuzzy lookahead limits."""

    def __init__(
        self,
        n_entries: int = 32,
        vector_width: int = 16,
        ewma_alpha: float = 0.25,
        fuzz_vectors: int = 1,
    ) -> None:
        if n_entries < 1:
            raise ConfigError("LBD needs >= 1 SST entry")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ConfigError("ewma_alpha must be in (0, 1]")
        if fuzz_vectors < 0:
            raise ConfigError("fuzz_vectors must be >= 0")
        self.n_entries = n_entries
        self.vector_width = vector_width
        self.ewma_alpha = ewma_alpha
        self.fuzz_vectors = fuzz_vectors
        self._sst: dict[int, SSTEntry] = {}
        self._clock = 0
        # Sparse-mode state: exact current-row window + row-length average.
        self._row: int | None = None
        self._row_start = 0
        self._row_end = 0
        self._row_len_ewma: float | None = None

    # -- static bounds from CPU branches --------------------------------------
    def observe_branch(self, pc: int, counter: int, bound: int, level: int) -> None:
        """Train an SST entry from one retired compare-and-branch."""
        self._clock += 1
        entry = self._sst.get(pc)
        if entry is None:
            if len(self._sst) >= self.n_entries:
                victim = min(self._sst, key=lambda p: self._sst[p].last_use)
                del self._sst[victim]
            entry = SSTEntry(pc=pc, level=level, last_counter=counter)
            self._sst[pc] = entry
        entry.last_use = self._clock
        delta = counter - entry.last_counter
        if delta != 0:
            if delta == entry.increment:
                entry.increment_conf = min(entry.increment_conf + 1, 15)
            else:
                entry.increment = delta
                entry.increment_conf = 0
        entry.last_counter = counter
        if bound == entry.bound:
            entry.bound_conf = min(entry.bound_conf + 1, 15)
        else:
            entry.bound = bound
            entry.bound_conf = 0

    def known_bound(self, pc: int) -> int | None:
        """The learned bound for a loop PC, if confidently stable."""
        entry = self._sst.get(pc)
        if entry is not None and entry.bound_conf >= 1:
            return entry.bound
        return None

    # -- sparse bounds from sparse-unit registers -------------------------------
    def observe_sparse_window(self, row: int, start: int, end: int) -> None:
        """Snoop the sparse unit's IdxPtr window for the row in flight."""
        if row != self._row:
            self._row = row
            row_len = max(0, end - start)
            if self._row_len_ewma is None:
                self._row_len_ewma = float(row_len)
            else:
                self._row_len_ewma += self.ewma_alpha * (row_len - self._row_len_ewma)
        self._row_start = start
        self._row_end = end

    @property
    def mean_row_length(self) -> float:
        """Learned average sparse-row length (elements)."""
        return self._row_len_ewma if self._row_len_ewma is not None else 0.0

    @property
    def current_row_end(self) -> int:
        """Snooped exact end (stream position) of the row in flight."""
        return self._row_end

    def predict_stream_limit(self, j_now: int, rows_ahead: int) -> int:
        """Furthest W-stream position runahead may prefetch to.

        Exact up to the current row's snooped end; beyond that, extended
        by the EWMA row length per additional row, then rounded up to the
        vector width plus ``fuzz_vectors`` extra vectors (fuzzy prefetch).
        """
        limit = max(self._row_end, j_now)
        if rows_ahead > 0 and self._row_len_ewma is not None:
            limit += int(round(self._row_len_ewma * rows_ahead))
        vw = self.vector_width
        fuzzed = ((limit + vw - 1) // vw + self.fuzz_vectors) * vw
        return max(fuzzed, j_now)

    @property
    def occupancy(self) -> int:
        return len(self._sst)
