"""NSB — the Non-blocking Speculative Buffer (Fig. 3 f, Sec. IV-G).

A compact, high-associativity, MSHR-backed cache inside the NPU that holds
*sparse discrete* data, while continuous data stays in the scratchpad. The
actual cache machinery is :class:`repro.sim.memory.cache.Cache` (shared
with the L2 — the NSB is "a compact non-blocking cache architecture");
this module owns its configuration and the area accounting used by the
Fig. 9 sensitivity study.

The paper's default: 16 KiB, high-way set-associative (irregular index
spaces make low associativity thrash on conflicts), 2-cycle NPU-local hit
latency, and a deep MSHR file so outstanding speculative fills never block
subsequent prefetch operations.
"""

from __future__ import annotations

from ..errors import ConfigError
from ..sim.memory.cache import CacheConfig
from ..utils import KIB


def nsb_config(
    size_kib: int = 16,
    assoc: int | None = None,
    line_bytes: int = 64,
    hit_latency: int = 2,
    mshr_entries: int = 32,
) -> CacheConfig:
    """Build an NSB cache configuration.

    Args:
        size_kib: capacity in KiB (Fig. 9 sweeps 4..32).
        assoc: ways; defaults to 16 or the full line count for very small
            sizes (the paper's "high-way set-associative mapping strategy").
    """
    if size_kib < 1:
        raise ConfigError("NSB must be at least 1 KiB")
    size_bytes = size_kib * KIB
    n_lines = size_bytes // line_bytes
    if assoc is None:
        assoc = min(16, n_lines)
    # Geometry guard: sets must be a power of two; widen ways if needed.
    while n_lines % assoc or (n_lines // assoc) & (n_lines // assoc - 1):
        assoc += 1
        if assoc > n_lines:
            raise ConfigError(f"cannot shape a {size_kib} KiB NSB")
    return CacheConfig(
        size_bytes=size_bytes,
        assoc=assoc,
        line_bytes=line_bytes,
        hit_latency=hit_latency,
        mshr_entries=mshr_entries,
        name="nsb",
    )


def nsb_storage_bits(config: CacheConfig, tag_bits: int = 36) -> int:
    """Total NSB storage (data + tag + state) for area accounting."""
    n_lines = config.size_bytes // config.line_bytes
    data = config.size_bytes * 8
    # tag + valid + LRU state per line (LRU: log2(assoc) bits).
    state = n_lines * (tag_bits + 1 + max(1, config.assoc.bit_length() - 1))
    return data + state
