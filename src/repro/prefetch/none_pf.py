"""The no-prefetch mechanism: the InO and ideal-OoO baseline bars."""

from __future__ import annotations

from .base import Prefetcher


class NullPrefetcher(Prefetcher):
    """Issues nothing; every handler inherits the base no-op."""

    name = "none"
