"""Prefetcher interface and the port through which prefetches are issued.

Capability model
----------------

The executor raises the same events for every mechanism; what separates
them is which events they are *architecturally allowed* to use:

==================  ======  =====  =====  =====
capability          stream  IMP    DVR    NVR
==================  ======  =====  =====  =====
demand miss addrs     x       x      x      x
returned index data           x      x      x
tile dispatch (ROB)                  (1)    x
CPU branch events                           x
sparse-unit regs                            x
sparse_func eval                            x
==================  ======  =====  =====  =====

(1) DVR triggers on stalls (misses), not dispatch — it lives CPU-side and
cannot see the NPU's ROB; our DVR implementation therefore only reacts in
``on_demand_access``.

Every mechanism issues requests through :class:`PrefetchPort`, which
enforces the shared issue budget (vector width per event burst) and routes
fills into L2 (and the NSB for irregular data when configured).
"""

from __future__ import annotations

from ..errors import ConfigError
from ..sim.npu.program import SparseProgram
from ..sim.request import AccessResult


class PrefetchPort:
    """Issue interface handed to every prefetcher.

    Wraps the memory system; also enforces a per-burst issue budget so all
    mechanisms share the same request parallelism (the paper equalises
    this across baselines).
    """

    def __init__(self, mem, burst_budget: int = 64) -> None:
        if burst_budget < 1:
            raise ConfigError("burst_budget must be >= 1")
        self._mem = mem
        self.burst_budget = burst_budget
        self._burst_now = -1
        self._burst_used = 0
        self.dropped_over_budget = 0

    @property
    def line_bytes(self) -> int:
        return self._mem.line_bytes

    def line_addr(self, byte_addr: int) -> int:
        return self._mem.line_addr(byte_addr)

    def is_resident(self, line_addr: int) -> bool:
        """Read-only residency probe (tag check before enqueue)."""
        return self._mem.is_resident(line_addr)

    def prefetch(self, now: int, line_addr: int, irregular: bool) -> int | None:
        """Issue one line prefetch.

        Returns the fill-ready cycle, or None when the request was squashed
        (already resident) or dropped (burst budget exhausted).
        """
        if now != self._burst_now:
            self._burst_now = now
            self._burst_used = 0
        if self._burst_used >= self.burst_budget:
            self.dropped_over_budget += 1
            return None
        ready = self._mem.prefetch_line(now, line_addr, irregular)
        if ready is None or ready is False:
            return None
        self._burst_used += 1
        return ready

    def prefetch_many(self, ats, lines, irregular: bool) -> list[int]:
        """Issue a burst of line prefetches; returns the issued fill times.

        Bit-exact with calling :meth:`prefetch` once per line in order —
        same budget accounting, same squash/drop decisions — but routed
        through the memory system's batched
        :meth:`~repro.sim.memory.hierarchy.MemorySystem.prefetch_lines`
        kernel when it has one, so a whole VMIG bundle or runahead burst
        costs one call instead of one per line. ``ats`` is the issue
        cycle: a single int for a same-cycle burst, or one per line
        (non-decreasing, as the issue loops generate them).

        Squashed and dropped requests produce no entry, so callers use
        ``len()`` for the issued count and ``max()`` for the last fill.
        """
        if not lines:
            return []
        if isinstance(ats, int):
            runs = ((ats, lines),)
        else:
            # Split into same-cycle segments; budget state is per cycle.
            runs = []
            start = 0
            n = len(ats)
            for i in range(1, n):
                if ats[i] != ats[start]:
                    runs.append((ats[start], lines[start:i]))
                    start = i
            runs.append((ats[start], lines[start:]))
        batch = getattr(self._mem, "prefetch_lines", None)
        out: list[int] = []
        for at, seg in runs:
            if at != self._burst_now:
                self._burst_now = at
                self._burst_used = 0
            remaining = self.burst_budget - self._burst_used
            if remaining <= 0:
                self.dropped_over_budget += len(seg)
                continue
            if batch is not None:
                readys, consumed = batch(at, seg, irregular, remaining)
                self._burst_used += len(readys)
                self.dropped_over_budget += len(seg) - consumed
                out.extend(readys)
            else:
                for la in seg:
                    r = self.prefetch(at, la, irregular)
                    if r is not None:
                        out.append(r)
        return out


class Prefetcher:
    """Base class: every handler is a no-op; subclasses override what their
    capability set allows (see module docstring)."""

    name = "none"

    def __init__(self, vector_width: int = 16) -> None:
        if vector_width < 1:
            raise ConfigError("vector_width must be >= 1")
        self.vector_width = vector_width
        self.port: PrefetchPort | None = None
        self.program: SparseProgram | None = None

    # -- lifecycle -----------------------------------------------------------
    def attach(self, program: SparseProgram, port: PrefetchPort) -> None:
        """Bind to a program run. Called once by the System before execution."""
        self.program = program
        self.port = port

    # -- event handlers (all optional) ----------------------------------------
    def on_tile_dispatch(self, now: int, tile_id: int) -> None:
        """A load instruction entered execution in the NPU's ROB."""

    def on_data_return(self, now: int, tile_id: int) -> None:
        """A tile's W (index) data arrived on-chip."""

    def on_demand_access(
        self,
        now: int,
        stream_id: int,
        line_addr: int,
        idx_value: int | None,
        result: AccessResult,
    ) -> None:
        """One demand line access completed lookup (hit or miss)."""

    def on_branch(self, now: int, event) -> None:
        """A CPU branch executed (loop iteration); NVR/LBD only."""
