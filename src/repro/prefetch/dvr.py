"""DVR — Decoupled Vector Runahead (Naithani et al., MICRO 2023).

DVR is the strongest general-purpose baseline: a CPU-side runahead thread
that, once the core stalls on a long-latency miss, speculatively executes
the loop ahead, vectorising the indirect dependency chain across inner-loop
invocations. Modelled faithfully to its capability set:

* **Trigger**: a demand miss (the stall) — not instruction dispatch; DVR
  cannot see the NPU's ROB, so it starts *after* latency is already being
  paid (NVR's Q&A1 contrast).
* **Chain chasing**: it executes the real load slice, so it fetches the
  upcoming W (index) lines, waits for their data, then computes gather
  addresses *with the loop's own address arithmetic*. That arithmetic is
  exact for affine gathers; for hashed gathers the mapping lives in the
  NPU's sparse operators unit, which a CPU thread cannot execute — DVR
  covers only the index side of those chains.
* **Depth**: a fixed runahead window of tiles per invocation, after which
  it idles until the next stall.

Capabilities used: demand addresses + returned index data. No sparse-unit
registers, no ``sparse_func``, no ROB dispatch events.
"""

from __future__ import annotations

from ..sim.npu.isa import (
    STREAM_IA_GATHER,
    STREAM_IA_GATHER_2,
    STREAM_IA_METADATA,
)
from .base import Prefetcher

IRREGULAR_STREAMS = frozenset(
    {STREAM_IA_GATHER, STREAM_IA_GATHER_2, STREAM_IA_METADATA}
)


class DecoupledVectorRunahead(Prefetcher):
    """Stall-triggered vectorised runahead over the loop's dependency chain."""

    name = "dvr"

    def __init__(self, vector_width: int = 16, depth_tiles: int = 8) -> None:
        super().__init__(vector_width)
        self.depth_tiles = depth_tiles
        self._position = 0  # latest tile whose data the core has seen
        self._chased: set[int] = set()
        # tile_id -> W-data ready time for chains awaiting index data.
        self._awaiting: dict[int, int] = {}
        self.invocations = 0

    def attach(self, program, port) -> None:
        super().attach(program, port)
        # Hot-path bindings: on_demand_access fires once per demand line.
        self._line_bytes = port.line_bytes
        self._prefetch_many = port.prefetch_many

    # -- position tracking (CPU-visible data returns) ---------------------------
    def on_data_return(self, now: int, tile_id: int) -> None:
        self._position = max(self._position, tile_id)
        self._resolve_ready(now)

    # -- trigger: the core stalls on a miss --------------------------------------
    def on_demand_access(self, now, stream_id, line_addr, idx_value, result):
        # Any long-latency demand miss fills the instruction window and
        # triggers runahead - streaming or gather alike.
        if result.off_chip:
            self._enter_runahead(now)
        self._resolve_ready(now)

    def _enter_runahead(self, now: int) -> None:
        """Chase the dependency chain for the next ``depth_tiles`` tiles."""
        program = self.program
        targets = [
            t
            for t in range(
                self._position + 1,
                min(self._position + 1 + self.depth_tiles, program.n_tiles),
            )
            if t not in self._chased
        ]
        if not targets:
            return
        self.invocations += 1
        for burst, t in enumerate(targets):
            self._chased.add(t)
            tile = program.tiles[t]
            ready = now
            lines = tile.w_idx_load.line_addr_list(
                self._line_bytes
            ) + tile.w_val_load.line_addr_list(self._line_bytes)
            issued = self._prefetch_many(now + burst, lines, irregular=False)
            if issued:
                ready = max(ready, max(issued))
            self._awaiting[t] = ready

    # -- second chain hop: index data arrived, compute gather addresses ----------
    def _resolve_ready(self, now: int) -> None:
        if not self._awaiting:
            return  # hot path: fires per demand line, usually nothing queued
        line_bytes = self._line_bytes
        for tile_id, ready in list(self._awaiting.items()):
            if ready > now:
                continue
            del self._awaiting[tile_id]
            tile = self.program.tiles[tile_id]
            ats = []
            lines = []
            burst = 0
            width = self.vector_width
            for gather in tile.gathers:
                if not gather.affine:
                    # The hash/rulebook sparse_func is NPU hardware; a
                    # CPU runahead thread cannot evaluate it.
                    continue
                # Affine address arithmetic is part of the loop body the
                # runahead thread executes - exact reconstruction.
                for addr in gather.byte_addrs:
                    first = (int(addr) // line_bytes) * line_bytes
                    last = (
                        (int(addr) + gather.seg_bytes - 1) // line_bytes
                    ) * line_bytes
                    for la in range(first, last + line_bytes, line_bytes):
                        ats.append(now + burst // width)
                        lines.append(la)
                        burst += 1
            if lines:
                self._prefetch_many(ats, lines, irregular=True)
