"""Prefetchers: the paper's comparison baselines plus the shared interface.

All mechanisms implement :class:`~repro.prefetch.base.Prefetcher` and are
"expanded to the same number of parallels" (vector width) as NVR, matching
the paper's fairness adjustment:

* :mod:`repro.prefetch.none_pf` — no prefetching (InO / ideal-OoO bars).
* :mod:`repro.prefetch.stream` — stride/stream prefetcher (Hur & Lin).
* :mod:`repro.prefetch.imp` — Indirect Memory Prefetcher (Yu et al.).
* :mod:`repro.prefetch.dvr` — Decoupled Vector Runahead (Naithani et al.).

NVR itself lives in :mod:`repro.core` — it is the paper's contribution,
not a baseline — but implements the same interface.
"""

from .base import Prefetcher, PrefetchPort
from .none_pf import NullPrefetcher
from .stream import StreamPrefetcher
from .imp import IndirectMemoryPrefetcher
from .dvr import DecoupledVectorRunahead

__all__ = [
    "DecoupledVectorRunahead",
    "IndirectMemoryPrefetcher",
    "NullPrefetcher",
    "Prefetcher",
    "PrefetchPort",
    "StreamPrefetcher",
]
