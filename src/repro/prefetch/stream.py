"""Stream (stride) prefetcher — Hur & Lin style adaptive stream detection.

The simplest baseline in the paper's comparison: it watches demand line
addresses per architectural stream, confirms a constant line stride, and
runs ``degree`` lines ahead. It is excellent on the sequential W
values/indices streams and helpless on indirect gathers — random deltas
rarely confirm, and when they spuriously do, the issued lines are wrong
(the paper notes stream prefetchers "occasionally introduce performance
penalties due to their lower accuracy").

Capabilities used: demand access addresses only.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.npu.isa import (
    STREAM_IA_GATHER,
    STREAM_IA_GATHER_2,
    STREAM_IA_METADATA,
)
from .base import Prefetcher

IRREGULAR_STREAMS = frozenset(
    {STREAM_IA_GATHER, STREAM_IA_GATHER_2, STREAM_IA_METADATA}
)


@dataclass
class _StreamEntry:
    """Reference-prediction-table row for one stream."""

    last_line: int | None = None
    stride: int = 0
    confidence: int = 0
    frontier: int = 0  # furthest line already requested


class StreamPrefetcher(Prefetcher):
    """Per-stream stride detection with confidence-gated degree prefetch.

    Two components, as in adaptive stream detectors:

    * an aggressive *next-line* ramp that fires on every off-chip miss
      (``ramp_degree`` sequential lines) — cheap coverage on streaming
      code, pure waste on random gathers (the realistic accuracy cost);
    * confirmed *strided streams* that run ``degree`` lines ahead once a
      stride repeats ``confirm`` times.
    """

    name = "stream"

    def __init__(
        self,
        vector_width: int = 16,
        degree: int = 16,
        confirm: int = 2,
        ramp_degree: int = 2,
    ) -> None:
        super().__init__(vector_width)
        self.degree = degree
        self.confirm = confirm
        self.ramp_degree = ramp_degree
        self._table: dict[int, _StreamEntry] = {}

    def attach(self, program, port) -> None:
        super().attach(program, port)
        # Hot-path bindings: on_demand_access fires once per demand line.
        self._line_bytes = port.line_bytes
        self._prefetch_many = port.prefetch_many

    def on_demand_access(self, now, stream_id, line_addr, idx_value, result):
        entry = self._table.setdefault(stream_id, _StreamEntry())
        line_bytes = self._line_bytes
        irregular = stream_id in IRREGULAR_STREAMS
        if entry.last_line is not None:
            delta = (line_addr - entry.last_line) // line_bytes
            if delta == 0:
                return  # same line; no training signal
            if delta == entry.stride:
                entry.confidence = min(entry.confidence + 1, 7)
            else:
                entry.stride = delta
                entry.confidence = 0
        entry.last_line = line_addr
        if result.off_chip and entry.confidence < self.confirm:
            # Next-line ramp: assume a new ascending stream at every miss.
            self._prefetch_many(
                now,
                [line_addr + k * line_bytes for k in range(1, self.ramp_degree + 1)],
                irregular,
            )
        if entry.confidence >= self.confirm and entry.stride != 0:
            step = entry.stride * line_bytes
            ats = []
            targets = []
            for k in range(1, self.degree + 1):
                target = line_addr + k * step
                if target <= entry.frontier and entry.stride > 0:
                    continue  # already requested on this stream
                if target < 0:
                    break
                ats.append(now + k // 4)
                targets.append(target)
            if targets:
                self._prefetch_many(ats, targets, irregular)
            entry.frontier = max(entry.frontier, line_addr + self.degree * step)
