"""IMP — the Indirect Memory Prefetcher (Yu et al., MICRO 2015).

IMP couples a stride engine on the *index* stream with a learned affine
map ``target_addr = base + (idx << shift)`` for the *indirect* stream:

1. it streams the index array ahead of the core (here: the W index lines
   of upcoming tiles),
2. when prefetched index data arrives it computes the indirect addresses
   through the learned (base, shift) pair and prefetches them.

The (base, shift) pair is *learned* from observed (index value, demand
address) pairs — IMP has no access to the NPU's sparse unit, so:

* on non-affine (hashed) gathers no consistent pair exists and IMP stays
  silent (near-zero coverage on MK/SCN — the paper's point);
* learning needs warm-up misses per stream;
* lookahead is shallow (a couple of tiles), so on long-latency misses a
  good fraction of its prefetches arrive late.

Capabilities used: demand addresses + returned index data. No ROB, no
branch events, no sparse-unit registers.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.npu.isa import STREAM_IA_GATHER, STREAM_IA_GATHER_2
from .base import Prefetcher

_SHIFT_CANDIDATES = tuple(range(1, 13))  # 2-byte .. 4-KiB rows


@dataclass
class _PatternEntry:
    """Indirect Pattern Table row: one (base, shift) hypothesis per stream."""

    base: int = 0
    shift: int = 0
    confidence: int = 0
    locked: bool = False
    last_pair: tuple[int, int] | None = None  # (idx, addr) awaiting a partner
    failures: int = 0


class IndirectMemoryPrefetcher(Prefetcher):
    """Affine indirect prefetcher with an index-stream runahead of depth
    ``lookahead_tiles``."""

    name = "imp"

    def __init__(
        self,
        vector_width: int = 16,
        lookahead_tiles: int = 2,
        lock_confidence: int = 3,
        max_failures: int = 64,
    ) -> None:
        super().__init__(vector_width)
        self.lookahead_tiles = lookahead_tiles
        self.lock_confidence = lock_confidence
        self.max_failures = max_failures
        self._ipt: dict[int, _PatternEntry] = {}
        # Tiles whose W-index lines we prefetched: tile_id -> data-ready time.
        self._pending_w: dict[int, int] = {}
        self._indirect_done: set[int] = set()

    def attach(self, program, port) -> None:
        super().attach(program, port)
        # Hot-path bindings: handlers fire once per demand line / tile.
        self._line_bytes = port.line_bytes
        self._prefetch_many = port.prefetch_many

    # -- pattern learning ------------------------------------------------------
    def _learn(self, stream_id: int, idx: int, addr: int) -> None:
        entry = self._ipt.setdefault(stream_id, _PatternEntry())
        if entry.locked or entry.failures > self.max_failures:
            return
        if entry.last_pair is None:
            entry.last_pair = (idx, addr)
            return
        idx0, addr0 = entry.last_pair
        entry.last_pair = (idx, addr)
        if idx == idx0:
            return
        for shift in _SHIFT_CANDIDATES:
            base0 = addr0 - (idx0 << shift)
            base1 = addr - (idx << shift)
            if base0 == base1 and base0 >= 0:
                if entry.base == base0 and entry.shift == shift:
                    entry.confidence += 1
                else:
                    entry.base, entry.shift = base0, shift
                    entry.confidence = 1
                if entry.confidence >= self.lock_confidence:
                    entry.locked = True
                return
        entry.confidence = 0
        entry.failures += 1

    def _predict(self, stream_id: int, idx: int) -> int | None:
        entry = self._ipt.get(stream_id)
        if entry is None or not entry.locked:
            return None
        return entry.base + (idx << entry.shift)

    # -- event handlers ---------------------------------------------------------
    def on_demand_access(self, now, stream_id, line_addr, idx_value, result):
        if stream_id in (STREAM_IA_GATHER, STREAM_IA_GATHER_2):
            if idx_value is not None:
                self._learn(stream_id, idx_value, line_addr)
        self._drain_ready(now)

    def on_data_return(self, now: int, tile_id: int) -> None:
        # Index-stream runahead: fetch the W lines of the next tiles.
        program = self.program
        for ahead in range(1, self.lookahead_tiles + 1):
            target = tile_id + ahead
            if target >= program.n_tiles or target in self._pending_w:
                continue
            tile = program.tiles[target]
            ready = now
            lines = tile.w_idx_load.line_addr_list(
                self._line_bytes
            ) + tile.w_val_load.line_addr_list(self._line_bytes)
            issued = self._prefetch_many(now, lines, irregular=False)
            if issued:
                ready = max(ready, max(issued))
            self._pending_w[target] = ready
        self._drain_ready(now)

    # -- indirect issue ----------------------------------------------------------
    def _drain_ready(self, now: int) -> None:
        """Issue indirect prefetches for tiles whose index data arrived."""
        if not self._pending_w:
            return  # hot path: fires per demand line, usually nothing queued
        for tile_id, ready in list(self._pending_w.items()):
            if ready > now:
                continue
            del self._pending_w[tile_id]
            if tile_id in self._indirect_done:
                continue
            self._indirect_done.add(tile_id)
            tile = self.program.tiles[tile_id]
            line_bytes = self._line_bytes
            for gather in tile.gathers:
                entry = self._ipt.get(gather.stream_id)
                if entry is None or not entry.locked:
                    continue
                ats = []
                lines = []
                burst = 0
                width = self.vector_width
                for idx in tile.indices:
                    addr = self._predict(gather.stream_id, int(idx))
                    if addr is None:
                        continue
                    first = (addr // line_bytes) * line_bytes
                    last = ((addr + gather.seg_bytes - 1) // line_bytes) * line_bytes
                    for la in range(first, last + line_bytes, line_bytes):
                        ats.append(now + burst // width)
                        lines.append(la)
                        burst += 1
                if lines:
                    self._prefetch_many(ats, lines, irregular=True)
