"""MK — MinkowskiNet: sparse 3-D convolution via hash-table rulebooks.

Point-cloud convolutions gather neighbour features through a *hash table*:
voxel coordinates map to feature slots via hashing, so neighbours that are
adjacent in space are scattered across the table. Decisive traits:

* **non-affine index map** — the gather address is ``table[hash(coord)]``,
  evaluated by a dedicated NPU unit. Affine prefetchers (IMP) cannot fit
  it and CPU-side runahead (DVR) cannot execute it — only NVR's sparse
  unit access survives (the paper's central capability argument);
* coordinate-space locality — consecutive voxels share neighbours, so
  there *is* reuse, just invisible in address space;
* kernel-volume row lengths (27-neighbourhood).
"""

from __future__ import annotations

import numpy as np

from ..sim.npu.program import ProgramConfig, SparseProgram, build_one_side_program
from ..sparse.csr import CSRMatrix
from ..utils import make_rng
from .base import scaled


def clustered_coordinate_csr(
    n_rows: int,
    n_coords: int,
    avg_degree: float,
    cluster_size: int,
    seed: int,
) -> CSRMatrix:
    """Coordinate-space adjacency: neighbours in a window around each voxel.

    Indices here are *coordinates* (clustered, local); the hash scatter is
    applied by the program's ``index_map``, not baked into the matrix.
    """
    rng = make_rng(seed)
    rows: list[np.ndarray] = []
    for r in range(n_rows):
        centre = (r % (n_coords // cluster_size)) * cluster_size
        k = max(1, int(rng.poisson(avg_degree)))
        window = np.arange(
            max(0, centre - cluster_size),
            min(n_coords, centre + 2 * cluster_size),
            dtype=np.int64,
        )
        k = min(k, len(window))
        rows.append(np.sort(rng.choice(window, size=k, replace=False)))
    rowptr = np.zeros(n_rows + 1, dtype=np.int64)
    for i, row in enumerate(rows):
        rowptr[i + 1] = rowptr[i] + len(row)
    cols = np.concatenate(rows) if rows else np.zeros(0, dtype=np.int64)
    return CSRMatrix(
        n_rows, n_coords, rowptr, cols, np.ones(len(cols), dtype=np.float32)
    )


def build(
    scale: float = 1.0,
    elem_bytes: int = 2,
    seed: int = 0,
    n_coords: int = 8192,
    avg_degree: float = 24.0,
    cluster_size: int = 32,
    feature_dim: int = 64,
) -> SparseProgram:
    """Lower the MinkowskiNet rulebook-gather access pattern."""
    n_rows = scaled(700, scale)
    coords = clustered_coordinate_csr(
        n_rows, n_coords, avg_degree, cluster_size, seed + 3
    )
    # The hash table: a pseudo-random permutation of the coordinate space.
    hash_map = make_rng(seed + 4).permutation(n_coords).astype(np.int64)
    return build_one_side_program(
        "mk",
        coords,
        ProgramConfig(
            elem_bytes=elem_bytes,
            ia_seg_elems=feature_dim,
            index_map=hash_map,
        ),
    )
