"""Table II — the eight sparse DNN workloads.

Each module reproduces one workload's *linear-layer memory access pattern*
(the paper extracts patterns, not full models) as a seeded
:class:`~repro.sim.npu.program.SparseProgram` builder. The decisive
statistics each generator controls are documented per module; the registry
maps the paper's short names to builders.

========  =============================  =====================================
short     domain (Table II)              decisive access-pattern traits
========  =============================  =====================================
DS        large language model           TopK KV gather, slow set drift
GAT       graph neural networks          power-law SpMM + dual gather
GCN       graph neural networks          power-law SpMM, hub reuse
GSABT     sparse attention               block locality + global tokens
H2O       large language model           heavy-hitter reuse (Zipf persistent)
MK        point cloud                    hash-scattered rulebook gathers
SCN       point cloud                    hash-scattered, submanifold windows
ST        mixture of experts             expert blocks, streaming-friendly
========  =============================  =====================================
"""

from .base import WorkloadInfo, trace_stats
from .registry import WORKLOAD_INFO, WORKLOAD_ORDER, build_workload

__all__ = [
    "WORKLOAD_INFO",
    "WORKLOAD_ORDER",
    "WorkloadInfo",
    "build_workload",
    "trace_stats",
]
