"""ST — Switch Transformer (Fedus et al.): mixture-of-experts routing.

Tokens route to experts; the expert's weight matrix is read in large
contiguous blocks. Decisive traits:

* **block-structured access** — long sequential runs inside an expert's
  weight region ("relatively fixed network architecture and block-like
  data distribution patterns", Sec. V-B) with large jumps between
  experts (the MoE dynamic-boundary challenge);
* **expert reuse** — tokens in the same batch share experts, so block
  columns recur heavily.

ST is the suite's stream-friendliest workload: the paper singles it out
as the exception with low cache-miss ratios.
"""

from __future__ import annotations

import numpy as np

from ..errors import WorkloadError
from ..sim.npu.program import ProgramConfig, SparseProgram, build_one_side_program
from ..sparse.csr import CSRMatrix
from ..utils import make_rng
from .base import scaled


def build(
    scale: float = 1.0,
    elem_bytes: int = 2,
    seed: int = 0,
    weight_space: int = 8192,
    expert_block: int = 64,
    feature_dim: int = 64,
    density: float = 0.008,
) -> SparseProgram:
    """Lower the Switch-Transformer expert-routing access pattern.

    Args:
        weight_space: columns = rows of expert weight matrices (the
            gather index space).
        expert_block: contiguous block size of one expert read.
        density: fraction of the weight space each token batch touches.
    """
    if expert_block <= 0 or expert_block > weight_space:
        raise WorkloadError(f"expert_block {expert_block} out of range")
    n_rows = scaled(288, scale)
    rng = make_rng(seed + 23)
    intra = 0.95
    block_rows = -(-n_rows // expert_block)
    block_cols = weight_space // expert_block
    p_block = min(1.0, density / intra)
    # Every token group routes to >= 1 expert by construction (top-1
    # routing always picks someone), plus extra experts by density.
    active = rng.random((block_rows, block_cols)) < p_block
    for br in range(block_rows):
        if not active[br].any():
            active[br, int(rng.integers(0, block_cols))] = True
    rows_cols: list[np.ndarray] = []
    for r in range(n_rows):
        parts = []
        for bc in np.nonzero(active[r // expert_block])[0]:
            lo = bc * expert_block
            mask = rng.random(expert_block) < intra
            parts.append(lo + np.nonzero(mask)[0])
        cols = (
            np.sort(np.concatenate(parts)).astype(np.int64)
            if parts
            else np.zeros(0, dtype=np.int64)
        )
        rows_cols.append(cols)
    rowptr = np.zeros(n_rows + 1, dtype=np.int64)
    for i, cols in enumerate(rows_cols):
        rowptr[i + 1] = rowptr[i] + len(cols)
    col_indices = np.concatenate(rows_cols)
    routing = CSRMatrix(
        n_rows,
        weight_space,
        rowptr,
        col_indices,
        np.ones(len(col_indices), dtype=np.float32),
    )
    return build_one_side_program(
        "st",
        routing,
        ProgramConfig(elem_bytes=elem_bytes, ia_seg_elems=feature_dim),
    )
