"""GAT — Graph Attention Network (Velickovic et al.): dual-gather SpMM.

GAT's aggregation reads *two* tables per edge: the neighbour's feature
vector and its attention coefficient — two indirect chains driven by one
index stream (the paper's "unrolled loops ... multiple indirect chains
executed in parallel"). Same power-law graph structure as GCN with the
second gather doubling irregular traffic per non-zero.
"""

from __future__ import annotations

from ..sim.npu.program import ProgramConfig, SparseProgram, build_one_side_program
from ..sparse.generate import powerlaw_csr
from .base import scaled


def build(
    scale: float = 1.0,
    elem_bytes: int = 2,
    seed: int = 0,
    n_nodes: int = 8192,
    avg_degree: float = 14.0,
    feature_dim: int = 64,
) -> SparseProgram:
    """Lower the GAT aggregation access pattern (feature + coefficient)."""
    n_rows = scaled(700, scale)
    adjacency = powerlaw_csr(
        n_rows, n_nodes, avg_degree=avg_degree, gamma=2.2, seed=seed + 17
    )
    return build_one_side_program(
        "gat",
        adjacency,
        ProgramConfig(
            elem_bytes=elem_bytes,
            ia_seg_elems=feature_dim,
            dual_gather=True,
        ),
    )
