"""GCN — Graph Convolutional Network (Kipf & Welling): SpMM aggregation.

The aggregation step ``H' = A_hat @ H`` is a one-side SpMM whose sparse
operand is the graph adjacency. Decisive traits:

* **power-law degrees** — hub rows are long (the paper's dynamic loop
  bounds: "the memory span between rowptr[i] and rowptr[i+1] can be
  substantial");
* **skewed target popularity** — hub columns recur (natural reuse);
* feature table far larger than L2.

Besides the default synthetic power-law generator, real graph topologies
can be requested through networkx (``graph_model="ba"`` for
Barabási–Albert preferential attachment, ``"ws"`` for Watts–Strogatz
small-world rings).
"""

from __future__ import annotations

import numpy as np

from ..errors import WorkloadError
from ..sim.npu.program import ProgramConfig, SparseProgram, build_one_side_program
from ..sparse.csr import CSRMatrix
from ..sparse.generate import powerlaw_csr
from .base import scaled


def networkx_adjacency(
    model: str, n_nodes: int, avg_degree: float, seed: int, n_rows: int
) -> CSRMatrix:
    """Build an adjacency slice from a networkx graph generator.

    Args:
        model: "ba" (Barabási–Albert) or "ws" (Watts–Strogatz).
        n_nodes: graph size (also the gather index space).
        avg_degree: target mean degree.
        n_rows: number of destination rows to keep (the aggregated slice).
    """
    try:
        import networkx as nx
    except ImportError as exc:  # pragma: no cover - nx ships in dev extras
        raise WorkloadError("networkx is required for graph_model") from exc
    m = max(1, int(round(avg_degree / 2)))
    if model == "ba":
        graph = nx.barabasi_albert_graph(n_nodes, m, seed=seed)
    elif model == "ws":
        graph = nx.watts_strogatz_graph(n_nodes, max(2, 2 * m), p=0.1, seed=seed)
    else:
        raise WorkloadError(f"unknown graph_model '{model}' (ba, ws)")
    rows, cols = [], []
    for u, v in graph.edges():
        if u < n_rows:
            rows.append(u)
            cols.append(v)
        if v < n_rows:
            rows.append(v)
            cols.append(u)
    if not rows:
        raise WorkloadError("graph slice produced no edges; raise n_rows")
    return CSRMatrix.from_coo(
        n_rows,
        n_nodes,
        rows=np.asarray(rows, dtype=np.int64),
        cols=np.asarray(cols, dtype=np.int64),
    )


def build(
    scale: float = 1.0,
    elem_bytes: int = 2,
    seed: int = 0,
    n_nodes: int = 8192,
    avg_degree: float = 14.0,
    feature_dim: int = 64,
    graph_model: str | None = None,
) -> SparseProgram:
    """Lower the GCN aggregation access pattern.

    Args:
        scale: sizes the number of aggregated rows (destination nodes).
        n_nodes: graph size = gather index space.
        avg_degree: mean in-neighbourhood size.
        feature_dim: feature elements gathered per neighbour.
        graph_model: None for the synthetic power-law generator, or a
            networkx topology ("ba", "ws").
    """
    n_rows = scaled(1200, scale)
    if graph_model is None:
        adjacency = powerlaw_csr(
            n_rows, n_nodes, avg_degree=avg_degree, gamma=2.3, seed=seed
        )
    else:
        adjacency = networkx_adjacency(graph_model, n_nodes, avg_degree, seed, n_rows)
    return build_one_side_program(
        "gcn",
        adjacency,
        ProgramConfig(elem_bytes=elem_bytes, ia_seg_elems=feature_dim),
    )
