"""GSABT — Graph Sparse Attention (+ bidirectional temporal conv).

Block-sparse attention with global tokens (Zhang et al.): each query
attends to (a) a handful of dense *local blocks* and (b) a fixed set of
*global tokens* every query shares. Decisive traits:

* block-local runs — within a block, gathers are sequential (spatial
  locality a stream prefetcher can partially ride);
* global-token columns — extremely hot lines (reuse every row);
* block selection varies per block-row (irregular across the sequence).
"""

from __future__ import annotations

import numpy as np

from ..sim.npu.program import ProgramConfig, SparseProgram, build_one_side_program
from ..sparse.csr import CSRMatrix
from ..sparse.generate import block_csr
from ..utils import make_rng
from .base import scaled


def build(
    scale: float = 1.0,
    elem_bytes: int = 2,
    seed: int = 0,
    seq_len: int = 4096,
    block: int = 32,
    n_global: int = 8,
    head_dim: int = 64,
    density: float = 0.012,
) -> SparseProgram:
    """Lower the GSABT access pattern: block attention + global tokens."""
    n_rows = scaled(360, scale)
    blocks = block_csr(
        n_rows, seq_len, density, block=block, intra_density=0.9, seed=seed
    )
    # Global tokens: the same few columns added to every row.
    rng = make_rng(seed + 1)
    global_cols = np.sort(rng.choice(seq_len, size=n_global, replace=False))
    rows = np.repeat(np.arange(n_rows, dtype=np.int64), n_global)
    cols = np.tile(global_cols.astype(np.int64), n_rows)
    base_rows = np.repeat(np.arange(n_rows, dtype=np.int64), np.diff(blocks.rowptr))
    weights = CSRMatrix.from_coo(
        n_rows,
        seq_len,
        rows=np.concatenate([base_rows, rows]),
        cols=np.concatenate([blocks.col_indices, cols]),
    )
    return build_one_side_program(
        "gsabt",
        weights,
        ProgramConfig(elem_bytes=elem_bytes, ia_seg_elems=head_dim),
    )
