"""Shared workload machinery: info records, scaling, trace statistics."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import WorkloadError
from ..sim.npu.program import SparseProgram


@dataclass(frozen=True)
class WorkloadInfo:
    """Table II row: identity and domain of one workload."""

    short: str
    full_name: str
    domain: str
    reference: str


def scaled(value: int, scale: float, minimum: int = 1) -> int:
    """Scale an extent, keeping it a positive integer."""
    if scale <= 0:
        raise WorkloadError(f"scale must be positive, got {scale}")
    return max(minimum, int(round(value * scale)))


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics of a program's gather trace.

    These are the quantities that determine cache behaviour — used by
    tests to assert each workload has the access-pattern character its
    domain implies.
    """

    gather_elements: int
    unique_slots: int
    footprint_bytes: int
    reuse_factor: float  # accesses per unique slot
    mean_row_length: float
    row_length_cv: float  # coefficient of variation (loop-bound dynamism)
    locality_score: float  # fraction of index deltas within +-8 slots


def trace_stats(program: SparseProgram) -> TraceStats:
    """Compute gather-trace statistics for one lowered program."""
    all_slots: list[np.ndarray] = []
    for tile in program.tiles:
        g = tile.gathers[0]
        stream = program.gather_streams[g.stream_id]
        slots = (
            np.asarray(g.byte_addrs, dtype=np.int64) - stream.base
        ) // stream.row_bytes
        all_slots.append(slots)
    slots = np.concatenate(all_slots)
    unique = int(len(np.unique(slots)))
    row_lengths = np.diff(program.rowptr)
    row_lengths = row_lengths[row_lengths > 0]
    mean_len = float(row_lengths.mean()) if len(row_lengths) else 0.0
    cv = (
        float(row_lengths.std() / row_lengths.mean())
        if len(row_lengths) and row_lengths.mean() > 0
        else 0.0
    )
    deltas = np.abs(np.diff(slots))
    locality = float((deltas <= 8).mean()) if len(deltas) else 0.0
    stream0 = program.gather_streams[program.tiles[0].gathers[0].stream_id]
    return TraceStats(
        gather_elements=int(len(slots)),
        unique_slots=unique,
        footprint_bytes=stream0.footprint_bytes(),
        reuse_factor=len(slots) / unique if unique else 0.0,
        mean_row_length=mean_len,
        row_length_cv=cv,
        locality_score=locality,
    )
