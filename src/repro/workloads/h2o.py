"""H2O — Heavy-Hitter Oracle (Zhang et al.): KV eviction by hitter score.

Like DS this gathers selected KV vectors per decode step, but the
selection is dominated by *heavy hitters*: a small, stable set of tokens
that accumulate most attention mass. Decisive traits:

* roughly half the budget goes to persistent heavy hitters (identical
  across steps — strong temporal reuse a small cache can capture);
* the rest is sampled by a Zipf popularity (mild reuse tail);
* plus the recent window.

Relative to DS, H2O shows higher locality — which is why its bars sit
slightly lower in Fig. 5.
"""

from __future__ import annotations

import numpy as np

from ..errors import WorkloadError
from ..sim.npu.program import ProgramConfig, SparseProgram, build_one_side_program
from ..utils import make_rng
from .base import scaled
from .double_sparsity import rows_to_csr


def build(
    scale: float = 1.0,
    elem_bytes: int = 2,
    seed: int = 0,
    kv_len: int = 8192,
    k: int = 256,
    head_dim: int = 64,
    hitter_fraction: float = 0.5,
    zipf_alpha: float = 1.2,
) -> SparseProgram:
    """Lower the H2O access pattern."""
    if not 0.0 <= hitter_fraction <= 1.0:
        raise WorkloadError("hitter_fraction must be in [0, 1]")
    if k > kv_len:
        raise WorkloadError(f"cannot keep {k} of {kv_len} tokens")
    rng = make_rng(seed)
    steps = scaled(60, scale)

    # Persistent heavy hitters: fixed for the whole decode.
    n_hitters = int(round(hitter_fraction * k))
    hitters = rng.choice(kv_len, size=n_hitters, replace=False).astype(np.int64)

    # Zipf popularity over the remaining tokens for the sampled tail.
    ranks = np.arange(1, kv_len + 1, dtype=np.float64)
    probs = ranks**-zipf_alpha
    probs /= probs.sum()
    probs = probs[rng.permutation(kv_len)]

    rows: list[np.ndarray] = []
    for _ in range(steps):
        tail = rng.choice(kv_len, size=k - n_hitters, replace=False, p=probs)
        selection = set(hitters.tolist())
        selection.update(tail.tolist())
        selection.update(range(kv_len - 32, kv_len))  # recent window
        rows.append(np.sort(np.fromiter(selection, dtype=np.int64)))
    weights = rows_to_csr(rows, kv_len)
    return build_one_side_program(
        "h2o",
        weights,
        ProgramConfig(elem_bytes=elem_bytes, ia_seg_elems=head_dim),
    )
