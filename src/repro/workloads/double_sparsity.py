"""DS — Double Sparsity (Yang et al.): sparse-attention KV-cache gathers.

The paper's running example (Fig. 1b): each decode step selects the TopK
highest-scoring KV vectors out of a long context and gathers them. The
decisive traits reproduced here:

* **large index space** — the KV cache spans megabytes, far beyond L2;
* **TopK selection** — per step, ``kv_len / topk_ratio`` token ids,
  unordered in address space;
* **slow set drift** — attention scores evolve slowly, so consecutive
  steps re-select most of the previous step's tokens (label locality),
  plus a hot *recent window* (fresh tokens always attended).

The W operand's "rows" are decode steps; its col_indices are selected
token ids; the gather target is the KV table.
"""

from __future__ import annotations

import numpy as np

from ..errors import WorkloadError
from ..sim.npu.program import ProgramConfig, SparseProgram, build_one_side_program
from ..sparse.csr import CSRMatrix
from ..utils import make_rng
from .base import scaled


def build_selection_rows(
    rng: np.random.Generator,
    steps: int,
    kv_len: int,
    k: int,
    drift: float,
    recent_window: int,
) -> list[np.ndarray]:
    """Per-step selected token ids with persistent-set drift."""
    if k > kv_len:
        raise WorkloadError(f"cannot select {k} of {kv_len} tokens")
    active = set(rng.choice(kv_len, size=k, replace=False).tolist())
    rows: list[np.ndarray] = []
    for step in range(steps):
        # Drift: a fraction of the selection is re-scored and replaced.
        n_replace = int(round(drift * k))
        if n_replace:
            active_list = list(active)
            drop = rng.choice(len(active_list), size=n_replace, replace=False)
            for d in drop:
                active.discard(active_list[int(d)])
            while len(active) < k:
                active.add(int(rng.integers(0, kv_len)))
        selection = set(active)
        # Recent window: the newest tokens are always attended.
        hot_end = min(kv_len, recent_window)
        selection.update(range(kv_len - hot_end, kv_len))
        rows.append(np.sort(np.fromiter(selection, dtype=np.int64)))
    return rows


def rows_to_csr(rows: list[np.ndarray], n_cols: int) -> CSRMatrix:
    """Stack per-step selections into the W operand."""
    rowptr = np.zeros(len(rows) + 1, dtype=np.int64)
    for i, r in enumerate(rows):
        rowptr[i + 1] = rowptr[i] + len(r)
    cols = np.concatenate(rows) if rows else np.zeros(0, dtype=np.int64)
    return CSRMatrix(
        len(rows), n_cols, rowptr, cols, np.ones(len(cols), dtype=np.float32)
    )


def build(
    scale: float = 1.0,
    elem_bytes: int = 2,
    seed: int = 0,
    topk_ratio: int = 16,
    kv_len: int = 8192,
    head_dim: int = 64,
    drift: float = 0.15,
) -> SparseProgram:
    """Lower the DS access pattern.

    Args:
        scale: sizes the number of decode steps.
        elem_bytes: data width (INT8/FP16/INT32).
        topk_ratio: parameter-reduction factor (Fig. 1b sweeps this);
            ``k = kv_len / topk_ratio`` tokens are selected per step.
        kv_len: context length (index space).
        head_dim: KV vector elements gathered per selected token.
        drift: fraction of the selection replaced each step.
    """
    if topk_ratio < 1:
        raise WorkloadError("topk_ratio must be >= 1")
    rng = make_rng(seed)
    k = max(1, kv_len // topk_ratio)
    steps = scaled(56, scale)
    # Budget guard: very dense selections (low ratios) use fewer steps so
    # runs stay comparable in work.
    max_elems = int(20_000 * max(scale, 0.05))
    steps = max(2, min(steps, max_elems // max(1, k)))
    rows = build_selection_rows(rng, steps, kv_len, k, drift, recent_window=32)
    weights = rows_to_csr(rows, kv_len)
    return build_one_side_program(
        "ds",
        weights,
        ProgramConfig(elem_bytes=elem_bytes, ia_seg_elems=head_dim),
    )
