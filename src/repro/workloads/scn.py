"""SCN — SparseConvNet: submanifold sparse convolution.

Like MinkowskiNet, SCN gathers through hashed rulebooks, but submanifold
convolutions only produce outputs at *already-active* sites: windows are
tighter, degrees smaller, and the active-site set is sparser relative to
the table. Decisive traits: hashed (non-affine) index map, small kernel
windows, larger table relative to degree — the least forgiving pattern in
the suite for affine prefetchers.
"""

from __future__ import annotations

import numpy as np

from ..sim.npu.program import ProgramConfig, SparseProgram, build_one_side_program
from ..utils import make_rng
from .base import scaled
from .minkowski import clustered_coordinate_csr


def build(
    scale: float = 1.0,
    elem_bytes: int = 2,
    seed: int = 0,
    n_coords: int = 16384,
    avg_degree: float = 12.0,
    cluster_size: int = 16,
    feature_dim: int = 64,
) -> SparseProgram:
    """Lower the SparseConvNet submanifold access pattern."""
    n_rows = scaled(1300, scale)
    coords = clustered_coordinate_csr(
        n_rows, n_coords, avg_degree, cluster_size, seed + 11
    )
    hash_map = make_rng(seed + 12).permutation(n_coords).astype(np.int64)
    return build_one_side_program(
        "scn",
        coords,
        ProgramConfig(
            elem_bytes=elem_bytes,
            ia_seg_elems=feature_dim,
            index_map=hash_map,
        ),
    )
