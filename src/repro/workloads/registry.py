"""Workload registry: Table II short names → builders."""

from __future__ import annotations

from typing import Callable

from ..errors import WorkloadError
from ..sim.npu.program import SparseProgram
from . import (
    double_sparsity,
    gat,
    gcn,
    gsabt,
    h2o,
    minkowski,
    scn,
    switch_transformer,
)
from .base import WorkloadInfo

# Table II, in the paper's row order.
WORKLOAD_INFO: dict[str, WorkloadInfo] = {
    "ds": WorkloadInfo(
        "DS", "Double Sparsity", "large language model", "Yang et al. [5]"
    ),
    "gat": WorkloadInfo(
        "GAT", "Graph Attention Networks", "graph neural networks",
        "Velickovic et al. [26]",
    ),
    "gcn": WorkloadInfo(
        "GCN", "Graph Convolutional Networks", "graph neural networks",
        "Kipf & Welling [27]",
    ),
    "gsabt": WorkloadInfo(
        "GSABT", "Graph Sparse Attention", "sparse attention",
        "Zhang et al. [28]",
    ),
    "h2o": WorkloadInfo(
        "H2O", "Heavy-Hitter Oracle", "large language model",
        "Zhang et al. [29]",
    ),
    "mk": WorkloadInfo(
        "MK", "MinkowskiNet", "point cloud", "Brahmbhatt et al. [30]"
    ),
    "scn": WorkloadInfo(
        "SCN", "SparseConvNet", "point cloud", "Wang et al. [31]"
    ),
    "st": WorkloadInfo(
        "ST", "Switch Transformer", "mixture of experts", "Fedus et al. [32]"
    ),
}

# Bar order used by the paper's figures.
WORKLOAD_ORDER: tuple[str, ...] = (
    "ds", "gat", "gcn", "gsabt", "h2o", "mk", "scn", "st",
)

_BUILDERS: dict[str, Callable[..., SparseProgram]] = {
    "ds": double_sparsity.build,
    "gat": gat.build,
    "gcn": gcn.build,
    "gsabt": gsabt.build,
    "h2o": h2o.build,
    "mk": minkowski.build,
    "scn": scn.build,
    "st": switch_transformer.build,
}


def build_workload(
    short: str,
    scale: float = 1.0,
    elem_bytes: int = 2,
    seed: int = 0,
    **kwargs,
) -> SparseProgram:
    """Build one Table II workload by short name (case-insensitive).

    Args:
        short: one of DS, GAT, GCN, GSABT, H2O, MK, SCN, ST.
        scale: sizes the trace (1.0 = evaluation default, smaller for
            quick runs).
        elem_bytes: data width — 1 (INT8), 2 (FP16) or 4 (INT32).
        seed: RNG seed; identical seeds replay identical traces.
        **kwargs: workload-specific knobs (see each module's ``build``).
    """
    key = short.lower()
    if key not in _BUILDERS:
        known = ", ".join(sorted(_BUILDERS))
        raise WorkloadError(f"unknown workload '{short}' (known: {known})")
    return _BUILDERS[key](
        scale=scale, elem_bytes=elem_bytes, seed=seed, **kwargs
    )
