"""Workload registry: Table II short names → builders.

Built on the shared :class:`repro.registry.Registry`, so new workloads
plug in next to their implementation::

    from repro.workloads.registry import register_workload

    @register_workload("mine", info=WorkloadInfo("MINE", ...))
    def build(scale=1.0, elem_bytes=2, seed=0, **kwargs):
        return ...  # a SparseProgram

and are immediately runnable by name through ``run_workload``, the sweep
runner and the CLI. :data:`WORKLOAD_ORDER` stays the paper's fixed
Table II row order — extensions are runnable but do not silently join
the paper figures. For parallel sweeps, register at import time of a
module the worker processes also import (see :mod:`repro.registry` on
the spawn start method).
"""

from __future__ import annotations

from typing import Callable

from ..errors import ConfigError, WorkloadError
from ..registry import Registry
from ..sim.npu.program import SparseProgram
from . import (
    double_sparsity,
    gat,
    gcn,
    gsabt,
    h2o,
    minkowski,
    scn,
    switch_transformer,
)
from .base import WorkloadInfo

#: Data-width axis of the Fig. 5 panels: dtype name -> element bytes.
DTYPE_BYTES: dict[str, int] = {"int8": 1, "fp16": 2, "int32": 4}


def elem_bytes(dtype: str) -> int:
    """Element width of a dtype name; :class:`ConfigError` on unknowns."""
    if dtype not in DTYPE_BYTES:
        raise ConfigError(f"unknown dtype '{dtype}' (known: {', '.join(DTYPE_BYTES)})")
    return DTYPE_BYTES[dtype]


# Table II, in the paper's row order.
WORKLOAD_INFO: dict[str, WorkloadInfo] = {
    "ds": WorkloadInfo(
        "DS", "Double Sparsity", "large language model", "Yang et al. [5]"
    ),
    "gat": WorkloadInfo(
        "GAT",
        "Graph Attention Networks",
        "graph neural networks",
        "Velickovic et al. [26]",
    ),
    "gcn": WorkloadInfo(
        "GCN",
        "Graph Convolutional Networks",
        "graph neural networks",
        "Kipf & Welling [27]",
    ),
    "gsabt": WorkloadInfo(
        "GSABT",
        "Graph Sparse Attention",
        "sparse attention",
        "Zhang et al. [28]",
    ),
    "h2o": WorkloadInfo(
        "H2O",
        "Heavy-Hitter Oracle",
        "large language model",
        "Zhang et al. [29]",
    ),
    "mk": WorkloadInfo("MK", "MinkowskiNet", "point cloud", "Brahmbhatt et al. [30]"),
    "scn": WorkloadInfo("SCN", "SparseConvNet", "point cloud", "Wang et al. [31]"),
    "st": WorkloadInfo(
        "ST", "Switch Transformer", "mixture of experts", "Fedus et al. [32]"
    ),
}

# Bar order used by the paper's figures.
WORKLOAD_ORDER: tuple[str, ...] = (
    "ds",
    "gat",
    "gcn",
    "gsabt",
    "h2o",
    "mk",
    "scn",
    "st",
)

#: Short name -> trace builder; extend with :func:`register_workload`.
WORKLOAD_BUILDERS = Registry("workload", error=WorkloadError)


def register_workload(
    short: str,
    builder: Callable[..., SparseProgram] | None = None,
    *,
    info: WorkloadInfo | None = None,
    replace: bool = False,
):
    """Register a workload builder (plain call or decorator form)."""
    def _register(fn: Callable[..., SparseProgram]):
        WORKLOAD_BUILDERS.register(short.lower(), fn, replace=replace)
        if info is not None:
            WORKLOAD_INFO[short.lower()] = info
        return fn

    return _register if builder is None else _register(builder)


register_workload("ds", double_sparsity.build)
register_workload("gat", gat.build)
register_workload("gcn", gcn.build)
register_workload("gsabt", gsabt.build)
register_workload("h2o", h2o.build)
register_workload("mk", minkowski.build)
register_workload("scn", scn.build)
register_workload("st", switch_transformer.build)


def build_workload(
    short: str,
    scale: float = 1.0,
    elem_bytes: int = 2,
    seed: int = 0,
    **kwargs,
) -> SparseProgram:
    """Build one registered workload by short name (case-insensitive).

    Args:
        short: one of DS, GAT, GCN, GSABT, H2O, MK, SCN, ST — or any
            name added via :func:`register_workload`.
        scale: sizes the trace (1.0 = evaluation default, smaller for
            quick runs).
        elem_bytes: data width — 1 (INT8), 2 (FP16) or 4 (INT32).
        seed: RNG seed; identical seeds replay identical traces.
        **kwargs: workload-specific knobs (see each module's ``build``).
    """
    builder = WORKLOAD_BUILDERS.get(short.lower())
    return builder(scale=scale, elem_bytes=elem_bytes, seed=seed, **kwargs)
