"""Transformer cost model: FLOPs and bytes per stage.

Standard decoder-layer accounting (the same formulas LLMCompass uses for
its analytical mode): projections, attention score/value products and the
FFN, with a sparse-attention option that reads only ``1/topk_ratio`` of
the KV cache (Double Sparsity's selection).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True)
class TransformerSpec:
    """Decoder-only transformer shape.

    Defaults approximate a 7B-class model (the scale the paper's KV-cache
    motivation targets).
    """

    n_layers: int = 32
    d_model: int = 4096
    n_heads: int = 32
    ffn_mult: int = 4
    elem_bytes: int = 2
    topk_ratio: int = 16  # sparse attention keeps 1/ratio of the KV cache
    batch_size: int = 8  # concurrent sequences amortising weight reads
    prefill_kv_passes: int = 4  # tiled-attention re-reads of the KV cache

    def __post_init__(self) -> None:
        if self.n_layers < 1 or self.d_model < 1 or self.n_heads < 1:
            raise ConfigError("transformer dimensions must be positive")
        if self.d_model % self.n_heads:
            raise ConfigError("d_model must divide into heads")
        if self.topk_ratio < 1:
            raise ConfigError("topk_ratio must be >= 1")
        if self.batch_size < 1 or self.prefill_kv_passes < 1:
            raise ConfigError("batch_size and prefill_kv_passes must be >= 1")

    @property
    def head_dim(self) -> int:
        return self.d_model // self.n_heads

    @property
    def weight_bytes_per_layer(self) -> int:
        """QKV + output projections plus the FFN weights."""
        d = self.d_model
        proj = 4 * d * d  # Wq, Wk, Wv, Wo
        ffn = 2 * d * (self.ffn_mult * d)
        return (proj + ffn) * self.elem_bytes

    # -- per-token FLOPs --------------------------------------------------------
    def decode_flops_per_token(self, context_len: int) -> float:
        """Forward FLOPs for one generated token at a given context length."""
        d = self.d_model
        proj = 2 * 4 * d * d
        ffn = 2 * 2 * d * (self.ffn_mult * d)
        attended = max(1, context_len // self.topk_ratio)
        attn = 2 * 2 * attended * d  # QK^T and AV over selected tokens
        return self.n_layers * (proj + ffn + attn)

    def prefill_flops(self, seq_len: int) -> float:
        """Forward FLOPs for processing a prompt of ``seq_len`` tokens."""
        d = self.d_model
        proj = 2 * 4 * d * d * seq_len
        ffn = 2 * 2 * d * (self.ffn_mult * d) * seq_len
        # Dense causal attention over the prompt: ~l^2/2 interactions.
        attn = 2 * 2 * d * (seq_len * seq_len / 2)
        return self.n_layers * (proj + ffn + attn)

    # -- per-token bytes, split by access class -------------------------------
    #
    # *Streaming* bytes move as large DMA bursts (weights, activations, KV
    # writes) and reach full bus bandwidth on any NPU. *Gather* bytes are
    # the sparse-attention KV reads — short, data-dependent segments whose
    # effective bandwidth is set by how well the mechanism hides latency
    # (the micro-simulator's calibration).

    def decode_stream_bytes_per_token(self) -> float:
        """Weight bytes per generated token, batch-amortised."""
        return self.n_layers * self.weight_bytes_per_layer / self.batch_size

    def decode_gather_bytes_per_token(self, context_len: int) -> float:
        """Selected-KV gather bytes for one decode step."""
        attended = max(1, context_len // self.topk_ratio)
        return self.n_layers * 2 * attended * self.d_model * self.elem_bytes

    def prefill_stream_bytes(self, seq_len: int) -> float:
        """Streaming bytes for a prefill pass (weights, KV write, acts)."""
        weights = self.n_layers * self.weight_bytes_per_layer
        kv_write = self.n_layers * 2 * seq_len * self.d_model * self.elem_bytes
        activations = self.n_layers * seq_len * self.d_model * self.elem_bytes
        return weights + kv_write + activations

    def prefill_gather_bytes(self, seq_len: int) -> float:
        """Sparse-attention KV reads during prefill (tiled re-reads)."""
        selected = self.kv_cache_bytes(seq_len) / self.topk_ratio
        return self.prefill_kv_passes * selected

    def kv_cache_bytes(self, context_len: int) -> int:
        """Resident KV cache size at a context length."""
        return self.n_layers * 2 * context_len * self.d_model * self.elem_bytes
