"""Roofline throughput model calibrated by the micro-simulator (Fig. 8).

The bridge between the cycle-level simulator and system-level LLM curves
is :class:`MemoryCalibration`, measured per mechanism on the
Double-Sparsity trace:

* ``gather_efficiency`` — effective fraction of bus bandwidth the
  mechanism sustains on sparse KV *gathers* (ideal memory cycles over
  ideal plus exposed stall cycles). In-order Gemmini's per-vector
  round-trips leave this in the few-percent range; NVR's runahead brings
  it near 1.
* ``traffic_ratio`` — off-chip bytes relative to the no-prefetch run
  (redundant prefetches raise it; the NSB's reuse capture lowers it).

Streaming traffic (weights, activations, KV writes) moves as DMA bursts
at full bandwidth for every mechanism; only gather traffic is divided by
``gather_efficiency``::

    t = max(t_compute, traffic_ratio * (t_stream + t_gather / eff))

This reproduces both Fig. 8 observations: prefill (compute-bound, small
gather share) reaches peak throughput at lower bandwidth under NVR, and
decode (IO-bound, gather share grows with context) gains throughput on
the order of the paper's ~50%.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..api import make_system
from ..errors import ConfigError
from ..runner import RunSpec, SweepRunner
from ..session import Grid, Session, coerce_session
from ..sim.memory.hierarchy import MemoryConfig
from ..sim.npu.program import ProgramConfig, SparseProgram, build_one_side_program
from ..sparse.csr import CSRMatrix
from ..workloads import build_workload
from .hardware import NPUHardware
from .model import TransformerSpec


@dataclass(frozen=True)
class MemoryCalibration:
    """Simulator-derived memory behaviour of one mechanism."""

    mechanism: str
    gather_efficiency: float
    traffic_ratio: float

    def __post_init__(self) -> None:
        if not 0.0 < self.gather_efficiency <= 1.0:
            raise ConfigError("gather_efficiency must be in (0, 1]")
        if self.traffic_ratio <= 0:
            raise ConfigError("traffic_ratio must be positive")


def calibration_plan(
    mechanism: str = "nvr",
    nsb: bool = False,
    scale: float = 0.3,
    seed: int = 0,
) -> list[RunSpec]:
    """The Fig. 8 calibration pair (in-order reference + mechanism)."""
    reference = Grid(
        workload="ds", mechanism="inorder", scale=scale, seed=seed, with_base=True
    )
    measured = Grid(
        workload="ds",
        mechanism=mechanism,
        nsb=nsb,
        scale=scale,
        seed=seed,
        with_base=True,
    )
    return reference.specs() + measured.specs()


def calibrate_memory_efficiency(
    mechanism: str = "nvr",
    nsb: bool = False,
    scale: float = 0.3,
    seed: int = 0,
    runner: "SweepRunner | None" = None,
    session: "Session | None" = None,
) -> MemoryCalibration:
    """Measure gather efficiency and traffic ratio on the DS trace.

    Runs the Double-Sparsity micro-benchmark under ``mechanism`` (plus an
    in-order reference for the traffic baseline) and derives the two
    roofline inputs: ``gather_efficiency = ideal / (ideal + stall)``
    memory cycles, ``traffic_ratio`` = off-chip bytes vs no-prefetch.
    The in-order reference is a plain plan spec, so the two Fig. 8
    calibrations share one reference simulation whenever ``session``
    carries a cache (the specs are identical across both calls).
    """
    session = coerce_session(session, runner)
    ref, res = session.sweep(
        calibration_plan(mechanism, nsb=nsb, scale=scale, seed=seed)
    ).results
    bytes_per_cycle = MemoryConfig().dram.bytes_per_cycle
    mem_ideal = max(1.0, res.stats.traffic.off_chip_total_bytes / bytes_per_cycle)
    efficiency = mem_ideal / (mem_ideal + res.stall_cycles)
    ref_bytes = max(1, ref.stats.traffic.off_chip_total_bytes)
    traffic_ratio = res.stats.traffic.off_chip_total_bytes / ref_bytes
    return MemoryCalibration(
        mechanism=mechanism,
        gather_efficiency=float(min(1.0, efficiency)),
        traffic_ratio=float(traffic_ratio),
    )


def _stage_time(
    flops: float,
    stream_bytes: float,
    gather_bytes: float,
    hw: NPUHardware,
    bandwidth_gbs: float,
    calib: MemoryCalibration,
) -> float:
    t_compute = hw.compute_time(flops)
    t_stream = hw.memory_time(stream_bytes, bandwidth_gbs)
    t_gather = hw.memory_time(gather_bytes, bandwidth_gbs) / calib.gather_efficiency
    return max(t_compute, calib.traffic_ratio * (t_stream + t_gather))


def prefill_throughput(
    spec: TransformerSpec,
    hw: NPUHardware,
    seq_len: int,
    bandwidth_gbs: float,
    calib: MemoryCalibration,
) -> float:
    """Prefill tokens/second for a prompt of ``seq_len``."""
    t = _stage_time(
        spec.prefill_flops(seq_len),
        spec.prefill_stream_bytes(seq_len),
        spec.prefill_gather_bytes(seq_len),
        hw,
        bandwidth_gbs,
        calib,
    )
    return seq_len / t


def decode_throughput(
    spec: TransformerSpec,
    hw: NPUHardware,
    context_len: int,
    bandwidth_gbs: float,
    calib: MemoryCalibration,
) -> float:
    """Decode tokens/second (per sequence) at a given context length."""
    t = _stage_time(
        spec.decode_flops_per_token(context_len),
        spec.decode_stream_bytes_per_token(),
        spec.decode_gather_bytes_per_token(context_len),
        hw,
        bandwidth_gbs,
        calib,
    )
    return 1.0 / t


# -- Fig. 8a: per-layer miss rates ------------------------------------------------


def _qkv_program(scale: float, elem_bytes: int) -> SparseProgram:
    """The QKV projection layer: dense, streaming weight reads.

    Modelled as a fully dense 'sparse' operand whose gather indices are
    sequential — the regular end of the spectrum.
    """
    n_rows = max(8, int(48 * scale))
    d = 256
    rowptr = np.arange(0, (n_rows + 1) * d, d, dtype=np.int64)
    cols = np.tile(np.arange(d, dtype=np.int64), n_rows)
    weights = CSRMatrix(n_rows, d, rowptr, cols, np.ones(len(cols), dtype=np.float32))
    return build_one_side_program(
        "qkv", weights, ProgramConfig(elem_bytes=elem_bytes, ia_seg_elems=64)
    )


_ELEM_DTYPE = {1: "int8", 2: "fp16", 4: "int32"}


def layer_miss_plan(
    mechanisms: tuple[str, ...] = ("inorder", "nvr"),
    scale: float = 0.3,
    seed: int = 0,
    elem_bytes: int = 2,
) -> list[RunSpec]:
    """The runner-spec part of the Fig. 8a pass (QK^T and AV gathers).

    Empty for exotic element widths: those, like the dense QKV program,
    execute in-process and never reach the plan/cache layer.
    """
    dtype = _ELEM_DTYPE.get(elem_bytes)
    if dtype is None:
        return []
    return Grid(
        workload="ds",
        mechanism=mechanisms,
        dtype=dtype,
        scale=scale,
        seed=[seed, seed + 101],
    ).specs()


def layer_miss_rates(
    mechanisms: tuple[str, ...] = ("inorder", "nvr"),
    scale: float = 0.3,
    seed: int = 0,
    elem_bytes: int = 2,
    runner: "SweepRunner | None" = None,
    session: "Session | None" = None,
) -> dict[str, dict[str, tuple[float, float]]]:
    """Batch and element miss rates per attention layer (Fig. 8a).

    Returns ``{layer: {mechanism: (batch_miss_rate, element_miss_rate)}}``
    for the QKV projection (streaming), QK^T (K-cache gather) and AV
    (V-cache gather) layers. For the named element widths (1/2/4 bytes)
    the gather layers are plain plan specs; exotic widths — and the
    custom dense QKV program always — execute in-process.
    """
    session = coerce_session(session, runner)
    dtype = _ELEM_DTYPE.get(elem_bytes)
    qkv_program = _qkv_program(scale, elem_bytes)
    gather_seeds = {"qkt": seed, "av": seed + 101}
    out: dict[str, dict[str, tuple[float, float]]] = {}
    for mech in mechanisms:
        qkv = make_system(qkv_program, mechanism=mech).run()
        if dtype is not None:
            rs = session.sweep(
                layer_miss_plan((mech,), scale=scale, seed=seed, elem_bytes=elem_bytes)
            )
            gathers = [rs.one(seed=s) for s in gather_seeds.values()]
        else:
            gathers = [
                make_system(
                    build_workload("ds", scale=scale, seed=s, elem_bytes=elem_bytes),
                    mechanism=mech,
                ).run()
                for s in gather_seeds.values()
            ]
        for layer, result in zip(("qkv", *gather_seeds), (qkv, *gathers)):
            out.setdefault(layer, {})[mech] = (
                result.stats.batch.batch_miss_rate,
                result.stats.batch.element_miss_rate,
            )
    # Figure order: qkv, qkt, av (insertion above is per-mechanism).
    return {layer: out[layer] for layer in ("qkv", *gather_seeds)}
