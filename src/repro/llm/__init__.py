"""LLMCompass-lite: system-level LLM inference model (Fig. 8).

The paper evaluates NVR's end-to-end impact with LLMCompass; this package
rebuilds the relevant slice: a transformer cost model
(:mod:`repro.llm.model`), NPU hardware spec (:mod:`repro.llm.hardware`)
and a roofline throughput model (:mod:`repro.llm.inference`) whose
memory-efficiency inputs are *measured* from the micro-simulator on the
Double-Sparsity trace — so the Fig. 8 curves inherit the simulated cache
behaviour rather than assumed constants.
"""

from .hardware import NPUHardware
from .inference import (
    MemoryCalibration,
    calibrate_memory_efficiency,
    calibration_plan,
    decode_throughput,
    layer_miss_plan,
    layer_miss_rates,
    prefill_throughput,
)
from .model import TransformerSpec

__all__ = [
    "MemoryCalibration",
    "NPUHardware",
    "TransformerSpec",
    "calibrate_memory_efficiency",
    "calibration_plan",
    "decode_throughput",
    "layer_miss_plan",
    "layer_miss_rates",
    "prefill_throughput",
]
