"""NPU hardware specification for the roofline model."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True)
class NPUHardware:
    """Compute and frequency envelope of the modelled NPU.

    Defaults give ~1 PFLOP/s FP16 peak — a datacentre inference
    accelerator, consistent with the 0–4000 GB/s bandwidth range Fig. 8
    sweeps (the prefill knee lands inside the sweep).
    """

    macs_per_cycle: int = 512 * 512
    freq_ghz: float = 2.0

    def __post_init__(self) -> None:
        if self.macs_per_cycle < 1:
            raise ConfigError("macs_per_cycle must be positive")
        if self.freq_ghz <= 0:
            raise ConfigError("frequency must be positive")

    @property
    def peak_flops(self) -> float:
        """Peak FLOP/s (2 FLOPs per MAC)."""
        return 2.0 * self.macs_per_cycle * self.freq_ghz * 1e9

    def compute_time(self, flops: float) -> float:
        """Seconds to execute ``flops`` at peak."""
        return flops / self.peak_flops

    def memory_time(self, n_bytes: float, bandwidth_gbs: float) -> float:
        """Seconds to move ``n_bytes`` at ``bandwidth_gbs`` GB/s."""
        if bandwidth_gbs <= 0:
            raise ConfigError("bandwidth must be positive")
        return n_bytes / (bandwidth_gbs * 1e9)
