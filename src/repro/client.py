"""SweepClient: the programmatic caller of a ``repro serve`` daemon.

A thin, stdlib-only (``urllib``) wrapper over the server's JSON API
that speaks the library's own nouns — you hand it a
:class:`~repro.session.Grid`, a :class:`~repro.runner.Plan` or a spec
list and get status dicts and rendered ResultSet text back::

    from repro import Grid, SweepClient

    client = SweepClient("http://localhost:8080", tenant="alice")
    sweep = client.submit(Grid(workload="gcn", mechanism=["inorder", "nvr"]))
    client.wait(sweep["id"])
    text = client.results(sweep["id"])            # ResultSet JSON
    for event in client.events(sweep["id"]):      # SSE progress
        print(event)

Every HTTP failure — a 4xx/5xx answer or an unreachable daemon — is a
:class:`~repro.errors.ServerError` carrying the server's own error
message (and ``.status`` when there is one), so callers never see raw
``urllib`` exceptions. The ``tenant`` set at construction rides along
as ``X-Repro-Tenant`` on submissions, selecting the cache namespace.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

from .errors import ConfigError, ServerError
from .runner.plan import Plan, RunSpec
from .session import Grid
from .utils import sanitize_nonfinite

__all__ = ["SweepClient"]

#: Sweep states that mean "the results endpoint will answer".
_FINISHED = ("done", "cached")


def _wire_body(sweep) -> dict:
    """Any sweep shape -> the POST /v1/sweeps wire document."""
    if isinstance(sweep, dict):
        return sweep
    if isinstance(sweep, Grid):
        return {"specs": [spec.to_dict() for spec in sweep.specs()]}
    if isinstance(sweep, Plan):
        return {"plan": sweep.to_dict()}
    if isinstance(sweep, RunSpec):
        return {"specs": [sweep.to_dict()]}
    try:
        specs = list(sweep)
    except TypeError:
        raise ConfigError(
            f"cannot submit {type(sweep).__name__} — pass a Grid, Plan, "
            "RunSpec (or list of them), or a raw wire document"
        ) from None
    if not all(isinstance(spec, RunSpec) for spec in specs):
        raise ConfigError("a sweep list must contain only RunSpec points")
    return {"specs": [spec.to_dict() for spec in specs]}


class SweepClient:
    """One daemon endpoint (+ optional tenant), wrapped for Python callers."""

    def __init__(
        self,
        base_url: str,
        tenant: str | None = None,
        timeout: float = 30.0,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.tenant = tenant
        self.timeout = float(timeout)

    def __repr__(self) -> str:
        who = f", tenant={self.tenant!r}" if self.tenant else ""
        return f"SweepClient({self.base_url!r}{who})"

    # -- transport -----------------------------------------------------------

    def _open(self, path: str, body: dict | None = None, timeout=None):
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            # Canonical request bodies: sorted keys keep the wire form
            # (and anything the server hashes from it) byte-stable, and
            # refusing bare NaN literals keeps the payload strict JSON —
            # non-finite floats become null before encoding.
            data = json.dumps(
                sanitize_nonfinite(body), sort_keys=True, allow_nan=False
            ).encode("utf-8")
            headers["Content-Type"] = "application/json"
        if self.tenant:
            headers["X-Repro-Tenant"] = self.tenant
        request = urllib.request.Request(
            self.base_url + path,
            data=data,
            headers=headers,
            method="POST" if body is not None else "GET",
        )
        try:
            return urllib.request.urlopen(
                request, timeout=self.timeout if timeout is None else timeout
            )
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read().decode("utf-8"))["error"]
            except (OSError, ValueError, KeyError, TypeError):
                # The error body is best-effort decoration: servers may
                # answer with HTML or nothing at all. Fall back to the
                # status line rather than masking the HTTPError itself.
                message = f"HTTP {exc.code}"
            raise ServerError(message, status=exc.code) from None
        except urllib.error.URLError as exc:
            raise ServerError(
                f"cannot reach {self.base_url}: {exc.reason}"
            ) from None

    def _json(self, path: str, body: dict | None = None) -> dict:
        with self._open(path, body) as response:
            return json.loads(response.read().decode("utf-8"))

    # -- API -----------------------------------------------------------------

    def health(self) -> dict:
        """``GET /healthz`` — raises :class:`ServerError` when down."""
        return self._json("/healthz")

    def stats(self) -> dict:
        """``GET /v1/stats`` — cache hit-rate, queue depth, fleet size."""
        return self._json("/v1/stats")

    def submit(self, sweep, meta: dict | None = None) -> dict:
        """``POST /v1/sweeps`` — returns the acceptance status document.

        ``sweep`` may be a :class:`Grid`, :class:`Plan`,
        :class:`RunSpec` (or list of them), or a raw wire document
        (``{"grid": ...}`` / ``{"plan": ...}`` / ``{"specs": ...}``).
        The returned dict carries ``id`` (content-addressed, stable
        across resubmissions), ``state`` and per-point ``points``
        counts — a fully-cached submission comes back ``"cached"``
        with nothing enqueued.
        """
        document = dict(_wire_body(sweep))
        if meta:
            document["meta"] = dict(meta)
        return self._json("/v1/sweeps", body=document)

    def list_sweeps(self) -> list[dict]:
        """``GET /v1/sweeps`` — every sweep the daemon knows."""
        return self._json("/v1/sweeps")["sweeps"]

    def status(self, sweep: str) -> dict:
        """``GET /v1/sweeps/{id}`` — state plus per-point counts."""
        return self._json(f"/v1/sweeps/{sweep}")

    def wait(self, sweep: str, timeout: float = 300.0, poll: float = 0.25) -> dict:
        """Poll until the sweep is finished; returns the final status.

        Raises :class:`ServerError` if the sweep fails (the worker's
        error message included) or the deadline passes first.
        """
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(sweep)
            if status["state"] in _FINISHED:
                return status
            if status["state"] == "failed":
                raise ServerError(
                    f"sweep {sweep} failed: {status.get('error')}"
                )
            if time.monotonic() >= deadline:
                raise ServerError(
                    f"sweep {sweep} still {status['state']} after {timeout}s"
                )
            time.sleep(poll)

    def results(self, sweep: str, fmt: str = "json", path=None) -> str:
        """``GET /v1/sweeps/{id}/results`` — rendered ResultSet text.

        The JSON flavour is byte-identical to what a warm local
        ``Session.sweep(...).to_json(path)`` writes for the same
        points. ``path`` additionally writes the text to a file.
        """
        with self._open(f"/v1/sweeps/{sweep}/results?format={fmt}") as response:
            text = response.read().decode("utf-8")
        if path is not None:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text)
        return text

    def events(self, sweep: str, timeout: float = 300.0):
        """``GET /v1/sweeps/{id}/events`` — yield SSE events as dicts.

        A generator over the live stream: one dict per ``point`` /
        ``done`` / ``failed`` event (keepalive comments are filtered
        out). Ends after the terminal event.
        """
        with self._open(f"/v1/sweeps/{sweep}/events", timeout=timeout) as response:
            data_lines: list[str] = []
            for raw in response:
                line = raw.decode("utf-8").rstrip("\n")
                if line.startswith("data:"):
                    data_lines.append(line[5:].strip())
                elif not line and data_lines:
                    event = json.loads("\n".join(data_lines))
                    data_lines = []
                    yield event
                    if event.get("event") in ("done", "failed"):
                        return

    def sweep(self, sweep, meta: dict | None = None, timeout: float = 300.0) -> str:
        """Submit, wait, and return the ResultSet JSON text in one call."""
        accepted = self.submit(sweep, meta=meta)
        self.wait(accepted["id"], timeout=timeout)
        return self.results(accepted["id"])
