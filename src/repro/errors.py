"""Exception hierarchy for the NVR reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still distinguishing configuration mistakes from simulation-state bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent.

    Raised during construction of configs (cache geometry that is not a
    power of two, zero vector width, negative latencies, ...) so problems
    surface before a simulation starts.
    """


class SimulationError(ReproError):
    """The simulator reached an inconsistent internal state.

    This indicates a bug in the library (or direct misuse of internal
    APIs), not bad user input.
    """


class ProgramError(ReproError):
    """A :class:`~repro.sim.npu.program.SparseProgram` is malformed.

    Raised when an instruction stream violates the invariants the
    executors rely on (e.g. a gather without chain metadata, or a
    compute op referencing an unknown tile).
    """


class ServerError(ReproError):
    """A ``repro serve`` request failed.

    Raised by :class:`repro.client.SweepClient` when the daemon answers
    with an HTTP error (the server's JSON ``error`` message becomes the
    exception text) or cannot be reached at all. The HTTP status code,
    when there is one, is on :attr:`status`.
    """

    def __init__(self, message: str, status: int | None = None) -> None:
        super().__init__(message)
        self.status = status


class WorkloadError(ReproError):
    """A workload specification cannot be realised.

    Raised by the Table II workload generators for parameter combinations
    that make no sense (more selected tokens than cache entries, graphs
    with zero nodes, ...).
    """
