"""Compressed Sparse Row matrices.

CSR is the format of the paper's SpMM listing (Fig. 2): ``rowptr`` delimits
each row's slice of ``col_indices``/``values``, so traversing a row is a
sequential *stream* while chasing ``col_indices`` into another operand is an
*indirect gather* — exactly the two access classes NVR's detectors split
between the Stride Detector and the Sparse Chain Detector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..errors import WorkloadError


@dataclass(frozen=True)
class CSRMatrix:
    """An immutable CSR matrix.

    Attributes:
        n_rows / n_cols: dense shape.
        rowptr: int64 array of length ``n_rows + 1``.
        col_indices: int64 array of length ``nnz``, per-row ascending.
        values: float32 array of length ``nnz``.
    """

    n_rows: int
    n_cols: int
    rowptr: np.ndarray
    col_indices: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        if self.n_rows < 0 or self.n_cols < 0:
            raise WorkloadError("CSR shape must be non-negative")
        if len(self.rowptr) != self.n_rows + 1:
            raise WorkloadError(
                f"rowptr length {len(self.rowptr)} != n_rows+1 ({self.n_rows + 1})"
            )
        if self.rowptr[0] != 0 or self.rowptr[-1] != len(self.col_indices):
            raise WorkloadError("rowptr must start at 0 and end at nnz")
        if np.any(np.diff(self.rowptr) < 0):
            raise WorkloadError("rowptr must be non-decreasing")
        if len(self.col_indices) != len(self.values):
            raise WorkloadError("col_indices and values length mismatch")
        if len(self.col_indices) and (
            self.col_indices.min() < 0 or self.col_indices.max() >= self.n_cols
        ):
            raise WorkloadError("col index out of range")

    # -- constructors --------------------------------------------------------
    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSRMatrix":
        """Compress a dense 2-D array, dropping exact zeros."""
        if dense.ndim != 2:
            raise WorkloadError(f"expected 2-D array, got {dense.ndim}-D")
        n_rows, n_cols = dense.shape
        rowptr = np.zeros(n_rows + 1, dtype=np.int64)
        cols: list[np.ndarray] = []
        vals: list[np.ndarray] = []
        for r in range(n_rows):
            nz = np.nonzero(dense[r])[0]
            rowptr[r + 1] = rowptr[r] + len(nz)
            cols.append(nz.astype(np.int64))
            vals.append(dense[r, nz].astype(np.float32))
        col_indices = np.concatenate(cols) if cols else np.zeros(0, dtype=np.int64)
        values = np.concatenate(vals) if vals else np.zeros(0, dtype=np.float32)
        return cls(n_rows, n_cols, rowptr, col_indices, values)

    @classmethod
    def from_coo(
        cls,
        n_rows: int,
        n_cols: int,
        rows: np.ndarray,
        cols: np.ndarray,
        values: np.ndarray | None = None,
    ) -> "CSRMatrix":
        """Build from coordinate lists, sorting and de-duplicating entries."""
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        if values is None:
            values = np.ones(len(rows), dtype=np.float32)
        values = np.asarray(values, dtype=np.float32)
        if not (len(rows) == len(cols) == len(values)):
            raise WorkloadError("COO arrays must have equal length")
        order = np.lexsort((cols, rows))
        rows, cols, values = rows[order], cols[order], values[order]
        if len(rows):
            keep = np.ones(len(rows), dtype=bool)
            keep[1:] = (np.diff(rows) != 0) | (np.diff(cols) != 0)
            rows, cols, values = rows[keep], cols[keep], values[keep]
        rowptr = np.zeros(n_rows + 1, dtype=np.int64)
        np.add.at(rowptr, rows + 1, 1)
        rowptr = np.cumsum(rowptr)
        return cls(n_rows, n_cols, rowptr.astype(np.int64), cols, values)

    # -- views ----------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored non-zeros."""
        return int(len(self.col_indices))

    @property
    def density(self) -> float:
        """nnz over dense element count."""
        total = self.n_rows * self.n_cols
        return self.nnz / total if total else 0.0

    @property
    def sparsity(self) -> float:
        """Fraction of zero elements."""
        return 1.0 - self.density

    def row_nnz(self) -> np.ndarray:
        """Per-row non-zero counts (the LBD's dynamic loop bounds)."""
        return np.diff(self.rowptr)

    def row_slice(self, row: int) -> tuple[np.ndarray, np.ndarray]:
        """(col_indices, values) of one row."""
        lo, hi = int(self.rowptr[row]), int(self.rowptr[row + 1])
        return self.col_indices[lo:hi], self.values[lo:hi]

    def iter_rows(self) -> Iterator[tuple[int, np.ndarray, np.ndarray]]:
        """Yield ``(row, col_indices, values)`` for each non-empty row."""
        for r in range(self.n_rows):
            cols, vals = self.row_slice(r)
            if len(cols):
                yield r, cols, vals

    def to_dense(self) -> np.ndarray:
        """Expand to a dense float32 array."""
        dense = np.zeros((self.n_rows, self.n_cols), dtype=np.float32)
        for r in range(self.n_rows):
            cols, vals = self.row_slice(r)
            dense[r, cols] = vals
        return dense

    def transpose(self) -> "CSRMatrix":
        """CSC of this matrix expressed as the CSR of its transpose."""
        rows = np.repeat(np.arange(self.n_rows, dtype=np.int64), self.row_nnz())
        return CSRMatrix.from_coo(
            self.n_cols, self.n_rows, self.col_indices, rows, self.values
        )

    def __repr__(self) -> str:
        return (
            f"CSRMatrix({self.n_rows}x{self.n_cols}, nnz={self.nnz}, "
            f"sparsity={self.sparsity:.3f})"
        )
