"""Reference SpMM kernels — the paper's Fig. 2 listing, executed functionally.

These kernels are the ground truth for what the simulator's access streams
*mean*: the one-side kernel is ``OA[i,:] += W.values[j] * IA[W.col_indices[j],:]``
(dense activations gathered by sparse weights) and the two-side kernel
intersects two compressed operands. The simulator never computes values —
it replays the addresses these kernels touch — so tests use these to verify
that programs enumerate exactly the right elements.
"""

from __future__ import annotations

import numpy as np

from ..errors import WorkloadError
from .csr import CSRMatrix


def spmm_one_side(weights: CSRMatrix, activations: np.ndarray) -> np.ndarray:
    """One-side-sparse SpMM: sparse W times dense IA.

    Mirrors the paper's one-side listing: the inner spatial loop over
    activation columns is dense; ``col_indices`` drives the row gather.

    Args:
        weights: sparse W, shape (M, K).
        activations: dense IA, shape (K, N).

    Returns:
        Dense OA, shape (M, N), float32.
    """
    if activations.ndim != 2:
        raise WorkloadError("activations must be 2-D")
    if weights.n_cols != activations.shape[0]:
        raise WorkloadError(
            f"shape mismatch: W is {weights.n_rows}x{weights.n_cols}, "
            f"IA is {activations.shape[0]}x{activations.shape[1]}"
        )
    out = np.zeros((weights.n_rows, activations.shape[1]), dtype=np.float32)
    for row, cols, vals in weights.iter_rows():
        # spatial_for k: all activation columns in parallel on the NPU.
        out[row] = vals.astype(np.float32) @ activations[cols]
    return out


def spmm_two_side(weights: CSRMatrix, activations: CSRMatrix) -> np.ndarray:
    """Two-sides-sparse SpMM: sparse W times sparse IA.

    The paper's two-side listing intersects W's row slices with IA's
    compressed columns; implemented row-by-row with a sparse accumulator.

    Args:
        weights: sparse W, shape (M, K).
        activations: sparse IA, shape (K, N).

    Returns:
        Dense OA, shape (M, N), float32.
    """
    if weights.n_cols != activations.n_rows:
        raise WorkloadError(
            f"shape mismatch: W is {weights.n_rows}x{weights.n_cols}, "
            f"IA is {activations.n_rows}x{activations.n_cols}"
        )
    out = np.zeros((weights.n_rows, activations.n_cols), dtype=np.float32)
    for row, w_cols, w_vals in weights.iter_rows():
        acc = out[row]
        for k, w in zip(w_cols, w_vals):
            ia_cols, ia_vals = activations.row_slice(int(k))
            if len(ia_cols):
                acc[ia_cols] += np.float32(w) * ia_vals
    return out
