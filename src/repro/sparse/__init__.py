"""Sparse data-structure substrate.

The paper's workloads all reduce to traversals of compressed sparse
structures (Sec. II-A); this package provides the structures themselves:

* :mod:`repro.sparse.csr` — the CSR format the paper's SpMM listing uses.
* :mod:`repro.sparse.formats` — bitmap (NVDLA-style) and run-length
  (Eyeriss-style) encodings from the related-work comparison.
* :mod:`repro.sparse.generate` — seeded sparsity-pattern generators with
  the statistical knobs that drive cache behaviour.
* :mod:`repro.sparse.spmm` — reference one-side / two-side SpMM kernels
  (functional ground truth for the simulator's access streams).
"""

from .csr import CSRMatrix
from .formats import BitmapMatrix, RunLengthMatrix
from .generate import (
    banded_csr,
    block_csr,
    hash_clustered_csr,
    powerlaw_csr,
    uniform_csr,
    zipf_csr,
)
from .spmm import spmm_one_side, spmm_two_side

__all__ = [
    "BitmapMatrix",
    "CSRMatrix",
    "RunLengthMatrix",
    "banded_csr",
    "block_csr",
    "hash_clustered_csr",
    "powerlaw_csr",
    "spmm_one_side",
    "spmm_two_side",
    "uniform_csr",
    "zipf_csr",
]
