"""Alternative sparse encodings from the paper's related-work section.

The paper positions NVR against format-level mitigations: NVDLA's bitmask
format (Farshchi et al.) and Eyeriss' run-length encoding. Both are
implemented here as substrates — the Switch-Transformer-style block
workloads use the bitmap layout, and the encodings let tests demonstrate
the overhead trade-off the paper describes (regular metadata, but extra
decode work and no fewer gathers).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import WorkloadError
from .csr import CSRMatrix


@dataclass(frozen=True)
class BitmapMatrix:
    """NVDLA-style bitmask encoding.

    A dense bit per element marks non-zeros; values are packed densely in
    row-major order. Metadata is fully regular (streamable) but locating
    the k-th non-zero requires popcount scans — the "additional mapping
    algorithms" overhead the paper contrasts with prefetching.
    """

    n_rows: int
    n_cols: int
    bitmap: np.ndarray  # bool, shape (n_rows, n_cols)
    packed_values: np.ndarray  # float32, length nnz

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "BitmapMatrix":
        if dense.ndim != 2:
            raise WorkloadError("BitmapMatrix requires a 2-D array")
        bitmap = dense != 0
        return cls(
            n_rows=dense.shape[0],
            n_cols=dense.shape[1],
            bitmap=bitmap,
            packed_values=dense[bitmap].astype(np.float32),
        )

    @classmethod
    def from_csr(cls, csr: CSRMatrix) -> "BitmapMatrix":
        return cls.from_dense(csr.to_dense())

    @property
    def nnz(self) -> int:
        return int(self.bitmap.sum())

    @property
    def metadata_bits(self) -> int:
        """Bitmask storage cost in bits (one per dense element)."""
        return self.n_rows * self.n_cols

    def value_index(self, row: int, col: int) -> int:
        """Packed-array position of element (row, col); popcount scan."""
        if not self.bitmap[row, col]:
            raise WorkloadError(f"element ({row},{col}) is zero")
        flat_before = self.bitmap.ravel()[: row * self.n_cols + col]
        return int(flat_before.sum())

    def to_dense(self) -> np.ndarray:
        dense = np.zeros((self.n_rows, self.n_cols), dtype=np.float32)
        dense[self.bitmap] = self.packed_values
        return dense


@dataclass(frozen=True)
class RunLengthMatrix:
    """Eyeriss-style run-length encoding of zero runs.

    Each non-zero is stored as ``(zero_run_before_it, value)``, row by row.
    Decode is strictly sequential — good for streaming through a PE array,
    hopeless for random access, which is why gather-heavy workloads cannot
    escape irregular memory traffic by re-encoding.
    """

    n_rows: int
    n_cols: int
    row_starts: np.ndarray  # int64, index into runs per row, length n_rows+1
    runs: np.ndarray  # int32 zero-run lengths, length nnz
    packed_values: np.ndarray  # float32, length nnz

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "RunLengthMatrix":
        if dense.ndim != 2:
            raise WorkloadError("RunLengthMatrix requires a 2-D array")
        n_rows, n_cols = dense.shape
        row_starts = np.zeros(n_rows + 1, dtype=np.int64)
        runs: list[int] = []
        vals: list[float] = []
        for r in range(n_rows):
            zero_run = 0
            for c in range(n_cols):
                v = dense[r, c]
                if v == 0:
                    zero_run += 1
                else:
                    runs.append(zero_run)
                    vals.append(float(v))
                    zero_run = 0
            row_starts[r + 1] = len(runs)
        return cls(
            n_rows=n_rows,
            n_cols=n_cols,
            row_starts=row_starts,
            runs=np.asarray(runs, dtype=np.int32),
            packed_values=np.asarray(vals, dtype=np.float32),
        )

    @classmethod
    def from_csr(cls, csr: CSRMatrix) -> "RunLengthMatrix":
        return cls.from_dense(csr.to_dense())

    @property
    def nnz(self) -> int:
        return int(len(self.packed_values))

    @property
    def metadata_bits(self) -> int:
        """Run-length storage cost: one run counter per non-zero (int32)."""
        return 32 * self.nnz

    def to_dense(self) -> np.ndarray:
        dense = np.zeros((self.n_rows, self.n_cols), dtype=np.float32)
        for r in range(self.n_rows):
            col = 0
            lo, hi = int(self.row_starts[r]), int(self.row_starts[r + 1])
            for k in range(lo, hi):
                col += int(self.runs[k])
                dense[r, col] = self.packed_values[k]
                col += 1
        return dense
