"""Seeded sparsity-pattern generators.

Cache behaviour under sparse workloads is governed by a handful of
statistics of the index stream — column-popularity skew, per-row length
variance, block structure, band locality, and whether the index→address map
is affine or hashed. Each generator here controls exactly one of those
knobs, and the Table II workload builders compose them.

All generators are deterministic functions of their ``seed``.
"""

from __future__ import annotations

import numpy as np

from ..errors import WorkloadError
from ..utils import make_rng
from .csr import CSRMatrix


def _sample_row(
    rng: np.random.Generator,
    n_cols: int,
    k: int,
    probs: np.ndarray | None = None,
) -> np.ndarray:
    """Sample ``k`` distinct, sorted column indices."""
    k = int(min(k, n_cols))
    if k <= 0:
        return np.zeros(0, dtype=np.int64)
    cols = rng.choice(n_cols, size=k, replace=False, p=probs)
    return np.sort(cols.astype(np.int64))


def _build(n_rows: int, n_cols: int, rows_cols: list[np.ndarray]) -> CSRMatrix:
    rowptr = np.zeros(n_rows + 1, dtype=np.int64)
    for r, cols in enumerate(rows_cols):
        rowptr[r + 1] = rowptr[r] + len(cols)
    col_indices = (
        np.concatenate(rows_cols)
        if rows_cols
        else np.zeros(0, dtype=np.int64)
    )
    values = np.ones(len(col_indices), dtype=np.float32)
    return CSRMatrix(n_rows, n_cols, rowptr, col_indices.astype(np.int64), values)


def _check_shape(n_rows: int, n_cols: int, density: float) -> None:
    if n_rows <= 0 or n_cols <= 0:
        raise WorkloadError("matrix shape must be positive")
    if not 0.0 < density <= 1.0:
        raise WorkloadError(f"density must be in (0, 1], got {density}")


def uniform_csr(n_rows: int, n_cols: int, density: float, seed: int = 0) -> CSRMatrix:
    """I.i.d. Bernoulli sparsity — the unstructured-pruning pattern.

    Index streams are uniformly random: worst case for every
    history/pattern prefetcher, the paper's "fine-grained sparsity".
    """
    _check_shape(n_rows, n_cols, density)
    rng = make_rng(seed)
    per_row = rng.binomial(n_cols, density, size=n_rows)
    rows = [_sample_row(rng, n_cols, int(k)) for k in per_row]
    return _build(n_rows, n_cols, rows)


def zipf_csr(
    n_rows: int,
    n_cols: int,
    density: float,
    alpha: float = 1.1,
    seed: int = 0,
) -> CSRMatrix:
    """Zipf-skewed column popularity — heavy-hitter reuse (H2O-like).

    A few hot columns appear in most rows, giving high temporal locality
    on a small subset while the tail stays irregular.
    """
    _check_shape(n_rows, n_cols, density)
    if alpha <= 0:
        raise WorkloadError("zipf alpha must be positive")
    rng = make_rng(seed)
    ranks = np.arange(1, n_cols + 1, dtype=np.float64)
    probs = ranks**-alpha
    probs /= probs.sum()
    # Scatter hot columns through the index space (hotness is not spatial).
    perm = rng.permutation(n_cols)
    probs = probs[perm]
    per_row = rng.binomial(n_cols, density, size=n_rows)
    rows = [_sample_row(rng, n_cols, int(k), probs) for k in per_row]
    return _build(n_rows, n_cols, rows)


def block_csr(
    n_rows: int,
    n_cols: int,
    density: float,
    block: int = 16,
    intra_density: float = 0.9,
    seed: int = 0,
) -> CSRMatrix:
    """Block-structured sparsity — MoE expert tiles / block attention.

    Whole ``block``x``block`` tiles are active or empty; active tiles are
    nearly dense. Index streams are long sequential runs with large jumps
    between blocks — easy for stream prefetchers, hard for capacity.
    """
    _check_shape(n_rows, n_cols, density)
    if block <= 0 or block > max(n_rows, n_cols):
        raise WorkloadError(f"block size {block} out of range")
    rng = make_rng(seed)
    block_rows = -(-n_rows // block)
    block_cols = -(-n_cols // block)
    p_block = min(1.0, density / intra_density)
    active = rng.random((block_rows, block_cols)) < p_block
    rows: list[np.ndarray] = []
    for r in range(n_rows):
        br = r // block
        cols_parts: list[np.ndarray] = []
        for bc in np.nonzero(active[br])[0]:
            lo = bc * block
            width = min(block, n_cols - lo)
            mask = rng.random(width) < intra_density
            cols_parts.append(lo + np.nonzero(mask)[0])
        if cols_parts:
            rows.append(np.sort(np.concatenate(cols_parts)).astype(np.int64))
        else:
            rows.append(np.zeros(0, dtype=np.int64))
    return _build(n_rows, n_cols, rows)


def banded_csr(
    n_rows: int,
    n_cols: int,
    density: float,
    bandwidth: int = 64,
    seed: int = 0,
) -> CSRMatrix:
    """Banded sparsity — sliding-window / local attention.

    Non-zeros live within ``bandwidth`` of the (scaled) diagonal: short
    reuse distances, moderate regularity.
    """
    _check_shape(n_rows, n_cols, density)
    if bandwidth <= 0:
        raise WorkloadError("bandwidth must be positive")
    rng = make_rng(seed)
    scale = n_cols / n_rows
    rows: list[np.ndarray] = []
    half = bandwidth // 2
    for r in range(n_rows):
        centre = int(r * scale)
        lo = max(0, centre - half)
        hi = min(n_cols, centre + half + 1)
        width = hi - lo
        # Per-row in-band density chosen so overall density matches target.
        in_band = min(1.0, density * n_cols / max(1, width))
        mask = rng.random(width) < in_band
        rows.append((lo + np.nonzero(mask)[0]).astype(np.int64))
    return _build(n_rows, n_cols, rows)


def powerlaw_csr(
    n_rows: int,
    n_cols: int,
    avg_degree: float,
    gamma: float = 2.3,
    seed: int = 0,
) -> CSRMatrix:
    """Power-law bipartite adjacency — GNN graph structure (GCN/GAT).

    Out-degrees follow a truncated power law (hub rows are long — the
    paper's "dynamic loop boundaries") and target popularity is also
    skewed, giving hub-column reuse.
    """
    if n_rows <= 0 or n_cols <= 0:
        raise WorkloadError("matrix shape must be positive")
    if avg_degree <= 0:
        raise WorkloadError("avg_degree must be positive")
    rng = make_rng(seed)
    # Degree sequence: power law, rescaled to the requested mean.
    raw = rng.pareto(gamma - 1.0, size=n_rows) + 1.0
    degrees = np.maximum(1, np.round(raw * (avg_degree / raw.mean()))).astype(np.int64)
    degrees = np.minimum(degrees, n_cols)
    # Target popularity: mildly skewed (hubs attract edges).
    ranks = np.arange(1, n_cols + 1, dtype=np.float64)
    probs = ranks**-0.8
    probs /= probs.sum()
    probs = probs[rng.permutation(n_cols)]
    rows = [_sample_row(rng, n_cols, int(k), probs) for k in degrees]
    return _build(n_rows, n_cols, rows)


def hash_clustered_csr(
    n_rows: int,
    n_cols: int,
    avg_degree: float,
    cluster_size: int = 32,
    seed: int = 0,
) -> CSRMatrix:
    """Hash-scattered neighbourhoods — point-cloud rulebooks (MK/SCN).

    Rows are spatial voxels whose neighbours are *coordinate-adjacent* but
    stored at *hash-scattered* table slots: consecutive rows share many
    neighbours (reuse exists) while the index→address map looks random and
    non-affine — precisely what defeats affine indirect prefetchers.
    """
    if n_rows <= 0 or n_cols <= 0:
        raise WorkloadError("matrix shape must be positive")
    if avg_degree <= 0 or cluster_size <= 0:
        raise WorkloadError("avg_degree and cluster_size must be positive")
    rng = make_rng(seed)
    # A pseudo-random hash permutation of the column space.
    hash_perm = rng.permutation(n_cols)
    rows: list[np.ndarray] = []
    for r in range(n_rows):
        # Coordinate-space neighbours: a window around the row's cluster.
        centre = (r // cluster_size) * cluster_size
        k = max(1, int(rng.poisson(avg_degree)))
        window = np.arange(centre, min(centre + 2 * cluster_size, n_cols))
        if len(window) == 0:
            rows.append(np.zeros(0, dtype=np.int64))
            continue
        k = min(k, len(window))
        coord_neighbours = rng.choice(window, size=k, replace=False)
        # Hash scatters them across the full table.
        slots = hash_perm[coord_neighbours % n_cols]
        rows.append(np.sort(slots).astype(np.int64))
    return _build(n_rows, n_cols, rows)
