"""Memory access descriptors shared across the simulator.

An :class:`Access` is one cache-line-granular request travelling through the
hierarchy. Demand accesses come from NPU vector-load micro-ops; prefetch
accesses come from a prefetcher. The distinction matters everywhere:
accuracy/coverage metrics, bandwidth accounting, and MSHR bookkeeping all
separate the two streams.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class AccessType(enum.Enum):
    """Origin of a memory request."""

    DEMAND = "demand"
    PREFETCH = "prefetch"


class HitLevel(enum.Enum):
    """Where in the hierarchy a request was satisfied.

    ``NSB`` is the optional in-NPU speculative buffer; ``INFLIGHT`` means the
    request coalesced onto an already-outstanding fill (an MSHR hit: faster
    than a full miss but slower than a hit — a "late prefetch" when the fill
    was started by a prefetcher).
    """

    NSB = "nsb"
    L2 = "l2"
    INFLIGHT = "inflight"
    DRAM = "dram"


@dataclass(frozen=True, slots=True)
class Access:
    """A single line-granular memory request.

    Attributes:
        line_addr: byte address aligned down to the line size.
        access_type: demand or prefetch.
        stream_id: small integer naming the architectural stream the access
            belongs to (W values, W indices, IA gather, ...). Used by
            pattern-matching prefetchers, mirroring how real prefetchers
            separate streams by PC.
    """

    line_addr: int
    access_type: AccessType
    stream_id: int = 0


@dataclass(slots=True)
class AccessResult:
    """Outcome of sending one :class:`Access` through the hierarchy.

    Treat instances as immutable: one is created per demand line access
    (millions per sweep), and the plain ``__init__`` of a non-frozen
    dataclass is measurably cheaper than frozen's per-field
    ``object.__setattr__``. Nothing may mutate or hash a result.

    Attributes:
        complete_at: cycle at which the requested line is usable.
        hit_level: where the request was satisfied.
        was_prefetched: True when a *demand* access was served (fully or as
            an in-flight coalesce) by a line a prefetcher brought in — the
            raw event behind coverage.
        off_chip: True when this request itself caused a DRAM transfer.
    """

    complete_at: int
    hit_level: HitLevel
    was_prefetched: bool = False
    off_chip: bool = False
