"""Cycle-approximate NPU platform simulator (the paper's substrate).

Sub-packages:

* :mod:`repro.sim.memory` — MSHR-based non-blocking caches, DRAM channel,
  scratchpad and the composed memory hierarchy.
* :mod:`repro.sim.npu` — coarse-grained NPU ISA, sparse operators unit,
  systolic compute-time model and the in-order / ideal-OoO executors.
* :mod:`repro.sim.cpu` — scalar loop-nest driver (branch event source).
* :mod:`repro.sim.soc` — the composed system and its ``run`` entry point.
"""

from .request import Access, AccessResult, AccessType, HitLevel
from .stats import RunStats

__all__ = [
    "Access",
    "AccessResult",
    "AccessType",
    "HitLevel",
    "RunStats",
]
