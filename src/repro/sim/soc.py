"""The composed system: CPU + NPU + prefetcher + memory hierarchy.

:class:`System` owns one simulation run: it wires a lowered
:class:`~repro.sim.npu.program.SparseProgram` to a memory hierarchy, a
prefetch mechanism and an execution engine, and returns a
:class:`RunResult` with the raw statistics every figure in the paper is
derived from.

``System.run(perfect=True)`` replays the same program against an all-hit
memory — the "NPU base execution time" lower bar of Fig. 5; the
difference to the real run is the cache-miss stall time (upper bar).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..errors import ConfigError
from ..prefetch.base import Prefetcher, PrefetchPort
from ..prefetch.none_pf import NullPrefetcher
from .memory.hierarchy import MemoryConfig, MemorySystem
from .npu.executor import ExecutorConfig, build_engine
from .npu.program import SparseProgram
from .npu.sparse_unit import SparseUnit
from .request import Access, AccessResult, HitLevel
from .stats import RunStats


class PerfectMemory:
    """All-hit memory with the real hierarchy's hit latencies.

    Used for the base-time run: identical interface to
    :class:`~repro.sim.memory.hierarchy.MemorySystem`, but every demand
    access hits at its level's hit latency and prefetches are no-ops.
    """

    #: Engine fast paths key on this (see ``MemorySystem.perfect``).
    perfect = True

    def __init__(self, config: MemoryConfig, stats: RunStats) -> None:
        self.config = config
        self.stats = stats
        self._line_bytes = config.line_bytes
        self._l2_lat = config.l2.hit_latency
        self._nsb_lat = config.nsb.hit_latency if config.nsb is not None else None

    @property
    def line_bytes(self) -> int:
        return self._line_bytes

    def line_addr(self, byte_addr: int) -> int:
        return byte_addr & ~(self._line_bytes - 1)

    def hit_latency(self, irregular: bool) -> int:
        if self._nsb_lat is not None and irregular:
            return self._nsb_lat
        return self._l2_lat

    def is_resident(self, line_addr: int) -> bool:
        return True

    def demand_access(self, now: int, access: Access, irregular: bool) -> AccessResult:
        return self.demand_line(now, access.line_addr, irregular)

    def demand_line(self, now: int, line: int, irregular: bool) -> AccessResult:
        if self._nsb_lat is not None and irregular:
            return AccessResult(
                complete_at=now + self._nsb_lat, hit_level=HitLevel.NSB
            )
        return AccessResult(complete_at=now + self._l2_lat, hit_level=HitLevel.L2)

    def prefetch_line(self, now: int, line_addr: int, irregular: bool) -> None:
        return None

    def bulk_transfer(self, now: int, n_bytes: int) -> int:
        # Perfect memory: the burst is instantaneous beyond one hit time.
        return now + self.config.l2.hit_latency

    def finalize(self, total_cycles: int) -> None:
        self.stats.total_cycles = max(self.stats.total_cycles, total_cycles)


@dataclass
class RunResult:
    """Outcome of one simulation run."""

    program_name: str
    mechanism: str
    mode: str
    total_cycles: int
    stats: RunStats
    base_cycles: int | None = None
    n_rows: int | None = None

    @property
    def stall_cycles(self) -> int | None:
        """Cache-miss stall time (needs a paired perfect run)."""
        if self.base_cycles is None:
            return None
        return max(0, self.total_cycles - self.base_cycles)

    def speedup_over(self, other: "RunResult") -> float:
        """How much faster this run is than ``other``."""
        if self.total_cycles == 0:
            raise ConfigError("zero-cycle run cannot be compared")
        return other.total_cycles / self.total_cycles


@dataclass
class System:
    """One simulated platform configuration.

    Attributes:
        program: the lowered workload.
        memory: hierarchy configuration (L2/DRAM/NSB).
        prefetcher_factory: builds a *fresh* prefetcher per run (prefetcher
            state must never leak across runs).
        mode: 'inorder' or 'ooo'.
        executor: issue widths and OoO window.
        engine: simulation-kernel implementation (``"reference"`` /
            ``"vectorized"``); None picks the engine registered under
            ``mode`` directly. Purely a speed knob — every engine must
            produce bit-identical statistics for a given mode.
    """

    program: SparseProgram
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    prefetcher_factory: Callable[[], Prefetcher] = NullPrefetcher
    mode: str = "inorder"
    executor: ExecutorConfig = field(default_factory=ExecutorConfig)
    engine: str | None = None

    @classmethod
    def from_spec(cls, program: SparseProgram, spec) -> "System":
        """Build from a declarative :class:`~repro.spec.SystemSpec`.

        The inverse direction of the config-as-data layer: a serialised
        system description (``SystemSpec.from_dict``) becomes a live,
        runnable platform.
        """
        return spec.build(program)

    def run(self, perfect: bool = False) -> RunResult:
        """Execute the program once; returns raw statistics.

        Args:
            perfect: run against an all-hit memory (base time measurement).
        """
        stats = RunStats()
        if perfect:
            mem = PerfectMemory(self.memory, stats)
            prefetcher: Prefetcher = NullPrefetcher()
        else:
            mem = MemorySystem(self.memory, stats)
            prefetcher = self.prefetcher_factory()
        sparse_unit = SparseUnit(self.program)
        port = PrefetchPort(mem)
        prefetcher.attach(self.program, port)
        if hasattr(prefetcher, "attach_npu"):
            # NVR's extra, architecturally-snooped capabilities.
            prefetcher.attach_npu(sparse_unit)
        engine = build_engine(
            self.mode,
            self.program,
            mem,
            prefetcher,
            sparse_unit,
            stats,
            self.executor,
            engine=self.engine,
        )
        total = engine.run()
        stats.runahead_invocations = sparse_unit.runahead_grants
        controller = getattr(prefetcher, "controller", None)
        if controller is not None:
            stats.runahead_denied_busy = controller.runahead_delayed
        return RunResult(
            program_name=self.program.name,
            mechanism=getattr(prefetcher, "name", "none"),
            mode=self.mode,
            total_cycles=total,
            stats=stats,
            n_rows=self.program.n_rows,
        )

    def run_with_base(self) -> RunResult:
        """Real run plus perfect-memory run; fills ``base_cycles``."""
        result = self.run(perfect=False)
        base = self.run(perfect=True)
        result.base_cycles = base.total_cycles
        result.stats.stall_cycles = max(0, result.total_cycles - base.total_cycles)
        return result
