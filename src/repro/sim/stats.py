"""Statistics collected during a simulation run.

One :class:`RunStats` instance is owned by the :class:`~repro.sim.soc.System`
and threaded through the memory hierarchy and executor. It is intentionally
a plain mutable record — the analysis layer (:mod:`repro.analysis.metrics`)
derives all published metrics (accuracy, coverage, miss rates, speedups)
from these raw counters so the definitions live in exactly one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class LevelStats:
    """Per-cache-level raw demand counters.

    Prefetch-side effectiveness lives in :class:`PrefetchStats`; per-level
    we only need the demand outcome split.
    """

    demand_accesses: int = 0
    demand_hits: int = 0
    demand_inflight_hits: int = 0
    demand_misses: int = 0

    @property
    def demand_miss_rate(self) -> float:
        """Demand misses (in-flight coalesces count as misses avoided)."""
        if self.demand_accesses == 0:
            return 0.0
        return self.demand_misses / self.demand_accesses


@dataclass
class PrefetchStats:
    """Raw prefetcher effectiveness counters.

    ``useful`` counts prefetched lines that a demand access later touched
    while still resident (or in flight); ``late`` counts demand accesses
    that coalesced onto an in-flight prefetch — partially useful because
    they shorten but do not hide the miss.
    """

    issued: int = 0
    issued_lines_off_chip: int = 0
    useful: int = 0
    late: int = 0
    evicted_unused: int = 0

    @property
    def accuracy(self) -> float:
        """Useful prefetches / issued prefetches (late counts as useful)."""
        if self.issued == 0:
            return 0.0
        return min(1.0, (self.useful + self.late) / self.issued)


@dataclass
class TrafficStats:
    """Byte-level traffic accounting for the bandwidth figures (Fig. 6c/7)."""

    off_chip_demand_bytes: int = 0
    off_chip_prefetch_bytes: int = 0
    l2_to_npu_bytes: int = 0
    nsb_to_npu_bytes: int = 0
    scratchpad_bytes: int = 0
    store_bytes: int = 0

    @property
    def off_chip_total_bytes(self) -> int:
        return self.off_chip_demand_bytes + self.off_chip_prefetch_bytes


@dataclass
class BatchStats:
    """Vector-batch-granularity miss statistics (Fig. 8a).

    A *batch* is one vector load micro-op: it "misses" when any element
    line misses, reflecting the NPU's all-or-nothing stall semantics.
    """

    batches: int = 0
    batch_misses: int = 0
    elements: int = 0
    element_misses: int = 0

    @property
    def batch_miss_rate(self) -> float:
        return self.batch_misses / self.batches if self.batches else 0.0

    @property
    def element_miss_rate(self) -> float:
        return self.element_misses / self.elements if self.elements else 0.0


@dataclass
class RunStats:
    """All raw counters for one simulation run."""

    nsb: LevelStats = field(default_factory=LevelStats)
    l2: LevelStats = field(default_factory=LevelStats)
    prefetch: PrefetchStats = field(default_factory=PrefetchStats)
    traffic: TrafficStats = field(default_factory=TrafficStats)
    batch: BatchStats = field(default_factory=BatchStats)

    total_cycles: int = 0
    compute_cycles: int = 0
    stall_cycles: int = 0

    dram_busy_cycles: int = 0
    runahead_invocations: int = 0
    runahead_denied_busy: int = 0

    @property
    def base_cycles(self) -> int:
        """Cycles the run would take with a perfect (all-hit) cache."""
        return self.total_cycles - self.stall_cycles

    def coverage(self) -> float:
        """Fraction of would-be demand misses eliminated by prefetching.

        Standard definition: prefetch-served demand accesses over
        prefetch-served plus remaining demand misses. A *late* prefetch —
        the demand access coalesces onto the still-in-flight fill — does
        not count as covered: the batch still stalled, which is what the
        paper's coverage-oriented philosophy cares about ("computation can
        proceed only when all data in the batch are ready").
        """
        served = self.prefetch.useful
        remaining = self.prefetch.late + self.l2.demand_misses
        denom = served + remaining
        return served / denom if denom else 0.0
