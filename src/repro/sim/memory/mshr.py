"""Miss Status Holding Register (MSHR) file.

MSHRs are what make a cache *non-blocking*: each entry tracks one
outstanding line fill so later requests to the same line coalesce onto it
instead of issuing duplicate memory transactions, and independent misses can
proceed in parallel up to the entry count. The paper leans on this twice —
the NSB "incorporates an MSHR file to manage concurrent memory operations"
and VMIG's pipelining "depends on the MSHR, which prevents cache miss events
from blocking subsequent prefetch operations".

The simulator advances time monotonically, so entries whose fill has
completed are retired lazily on each call.
"""

from __future__ import annotations

import heapq

from ...errors import ConfigError


class MSHRFile:
    """Bounded set of outstanding line fills with coalescing.

    Args:
        capacity: maximum simultaneously outstanding fills. When the file is
            full, a new miss must wait for the earliest outstanding fill to
            retire — the structural hazard that caps memory-level
            parallelism.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigError(f"MSHR capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._ready_heap: list[tuple[int, int]] = []
        self._inflight: dict[int, int] = {}
        self.peak_occupancy = 0
        self.coalesced = 0
        self.structural_stalls = 0

    def _retire_completed(self, now: int) -> None:
        heap = self._ready_heap
        if not heap or heap[0][0] > now:
            return  # hot path: nothing retirable, skip the pop/lookup loop
        inflight = self._inflight
        while heap and heap[0][0] <= now:
            ready, line = heapq.heappop(heap)
            if inflight.get(line) == ready:
                del inflight[line]

    def occupancy(self, now: int) -> int:
        """Number of fills still outstanding at ``now``."""
        self._retire_completed(now)
        return len(self._inflight)

    def lookup(self, now: int, line_addr: int) -> int | None:
        """Return the ready-time of an in-flight fill for ``line_addr``.

        Returns None when no fill for that line is outstanding. A non-None
        result is a coalesce: the caller's request piggybacks on the
        existing fill.
        """
        self._retire_completed(now)
        ready = self._inflight.get(line_addr)
        if ready is not None:
            self.coalesced += 1
        return ready

    def earliest_free_slot(self, now: int) -> int:
        """Earliest cycle at which a new entry can be allocated.

        ``now`` when a slot is free; otherwise the ready-time of the
        oldest outstanding fill (we must wait for it to retire).
        """
        self._retire_completed(now)
        if len(self._inflight) < self.capacity:
            return now
        self.structural_stalls += 1
        return self._ready_heap[0][0]

    def hot_state(self) -> tuple[list[tuple[int, int]], dict[int, int], int]:
        """``(ready_heap, inflight, capacity)`` for inlined batch kernels.

        The heap and dict are mutated in place and never reassigned, so
        the tuple stays valid for the file's lifetime. Writers must
        replicate the lazy-retire discipline of :meth:`earliest_free_slot`
        / :meth:`allocate` exactly (retire at the probe time, then again
        at the allocation start time) and keep ``structural_stalls`` and
        ``peak_occupancy`` maintained through the attributes.
        """
        return self._ready_heap, self._inflight, self.capacity

    def allocate(self, now: int, line_addr: int, ready_at: int) -> None:
        """Record a new outstanding fill for ``line_addr``.

        The caller must have consulted :meth:`earliest_free_slot` and used
        a start time at which a slot is available.
        """
        self._retire_completed(now)
        if len(self._inflight) >= self.capacity:
            raise ConfigError(
                "MSHR allocate with full file - call earliest_free_slot first"
            )
        if line_addr in self._inflight:
            raise ConfigError(f"MSHR double-allocate for line {line_addr:#x}")
        self._inflight[line_addr] = ready_at
        heapq.heappush(self._ready_heap, (ready_at, line_addr))
        self.peak_occupancy = max(self.peak_occupancy, len(self._inflight))
