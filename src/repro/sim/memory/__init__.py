"""Memory hierarchy substrate: non-blocking caches, DRAM channel, scratchpad.

The composition lives in :class:`~repro.sim.memory.hierarchy.MemorySystem`:
an optional NSB (the paper's in-NPU Non-blocking Speculative Buffer) in
front of a shared L2, backed by a bandwidth-modelled DRAM channel.
"""

from .cache import Cache, CacheConfig
from .dram import DRAM, DRAMConfig
from .mshr import MSHRFile
from .scratchpad import Scratchpad, ScratchpadConfig
from .hierarchy import MemoryConfig, MemorySystem

__all__ = [
    "Cache",
    "CacheConfig",
    "DRAM",
    "DRAMConfig",
    "MSHRFile",
    "MemoryConfig",
    "MemorySystem",
    "Scratchpad",
    "ScratchpadConfig",
]
