"""Set-associative, non-blocking cache with fill timing.

This single model backs both the shared L2 and the paper's NSB (the NSB is
"a compact non-blocking cache architecture ... we implement a high-way
set-associative mapping strategy", Sec. IV-G) — they differ only in
geometry and hit latency, configured via :class:`CacheConfig`.

Timing model: the simulator's clock is monotonic, so a line inserted with a
future ``ready_at`` models an in-progress fill. A later access to that line
before ``ready_at`` is an *in-flight hit* (MSHR coalesce); after it, a
normal hit. Victims are chosen LRU at allocate time (fill-on-allocate).

Prefetch bookkeeping lives on the line: ``filled_by_prefetch`` plus
``demand_touched`` give exact per-line accuracy accounting (first demand
touch of a prefetched line = one useful prefetch; eviction of an untouched
prefetched line = one wasted prefetch).
"""

from __future__ import annotations

from dataclasses import dataclass

from ...errors import ConfigError
from ...utils import require_pow2
from .mshr import MSHRFile


@dataclass
class CacheConfig:
    """Geometry and timing of one cache level."""

    size_bytes: int
    assoc: int
    line_bytes: int = 64
    hit_latency: int = 18
    mshr_entries: int = 16
    name: str = "cache"

    def __post_init__(self) -> None:
        require_pow2(self.line_bytes, f"{self.name}.line_bytes")
        if self.size_bytes <= 0 or self.size_bytes % self.line_bytes:
            raise ConfigError(
                f"{self.name}.size_bytes must be a positive multiple of the "
                f"line size, got {self.size_bytes}"
            )
        n_lines = self.size_bytes // self.line_bytes
        if self.assoc < 1 or n_lines % self.assoc:
            raise ConfigError(
                f"{self.name}.assoc must divide the line count "
                f"({n_lines}), got {self.assoc}"
            )
        require_pow2(n_lines // self.assoc, f"{self.name}.n_sets")
        if self.hit_latency < 1:
            raise ConfigError(f"{self.name}.hit_latency must be >= 1")

    @property
    def n_sets(self) -> int:
        return self.size_bytes // self.line_bytes // self.assoc


@dataclass(slots=True)
class CacheLine:
    """Resident (or in-flight) line state."""

    tag: int
    ready_at: int
    filled_by_prefetch: bool
    demand_touched: bool
    last_use: int


class LookupKind:
    """String constants for :meth:`Cache.lookup` outcomes."""

    HIT = "hit"
    INFLIGHT = "inflight"
    MISS = "miss"


class Cache:
    """One non-blocking cache level.

    The cache does not know about the next level; the hierarchy composes
    levels and decides what a miss costs. ``lookup``/``allocate`` are the
    whole interface, plus ``probe`` for read-only inspection (used by
    prefetchers that drop requests already resident).

    LRU is kept in dict insertion order: a recency touch re-inserts the
    line at the back of its set dict, so the front entry is always the
    least-recently-used victim. ``last_use`` stays authoritative (every
    reorder assigns a fresh, strictly increasing counter), the dict order
    is just its O(1) index — allocate-over-existing deliberately touches
    neither, matching the original min-by-``last_use`` policy.
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        n_sets = config.n_sets
        self._sets: list[dict[int, CacheLine]] = [{} for _ in range(n_sets)]
        self.mshr = MSHRFile(config.mshr_entries)
        self._use_counter = 0
        self.evictions = 0
        self.prefetch_evicted_unused = 0
        # Address math precomputed: line_bytes and n_sets are powers of
        # two (validated by CacheConfig), so set/tag extraction is two
        # shifts and a mask instead of div/mod through two properties.
        self._assoc = config.assoc
        self._line_mask = ~(config.line_bytes - 1)
        self._line_shift = config.line_bytes.bit_length() - 1
        self._set_mask = n_sets - 1
        self._tag_shift = self._line_shift + n_sets.bit_length() - 1

    # -- address helpers ---------------------------------------------------
    def line_addr(self, byte_addr: int) -> int:
        """Align a byte address down to its line address."""
        return byte_addr & self._line_mask

    def _set_index(self, line_addr: int) -> int:
        return (line_addr >> self._line_shift) & self._set_mask

    def _tag(self, line_addr: int) -> int:
        return line_addr >> self._tag_shift

    # -- core operations ---------------------------------------------------
    def probe(self, line_addr: int) -> CacheLine | None:
        """Read-only residency check (no LRU update, no stats)."""
        return self._sets[(line_addr >> self._line_shift) & self._set_mask].get(
            line_addr >> self._tag_shift
        )

    def touch(self, line_addr: int) -> CacheLine | None:
        """Look up a line, updating recency; returns it or None on a miss.

        The hierarchy's demand path uses this directly (one call per
        demand line): the hit/in-flight distinction is just
        ``line.ready_at <= now``, so returning the bare line avoids a
        tuple and a kind-string comparison per access. :meth:`lookup`
        wraps it with the classified three-way answer.
        """
        cache_set = self._sets[(line_addr >> self._line_shift) & self._set_mask]
        tag = line_addr >> self._tag_shift
        line = cache_set.get(tag)
        if line is None:
            return None
        self._use_counter += 1
        line.last_use = self._use_counter
        # Move-to-back keeps dict order == recency order.
        del cache_set[tag]
        cache_set[tag] = line
        return line

    def lookup(self, now: int, line_addr: int) -> tuple[str, CacheLine | None]:
        """Look up a line, updating recency.

        Returns ``(LookupKind.HIT, line)`` for a ready line,
        ``(LookupKind.INFLIGHT, line)`` for a line still being filled, or
        ``(LookupKind.MISS, None)``.
        """
        line = self.touch(line_addr)
        if line is None:
            return LookupKind.MISS, None
        if line.ready_at > now:
            return LookupKind.INFLIGHT, line
        return LookupKind.HIT, line

    def allocate(
        self,
        now: int,
        line_addr: int,
        ready_at: int,
        by_prefetch: bool,
    ) -> CacheLine:
        """Insert a line (fill-on-allocate), evicting the LRU victim.

        The MSHR entry for the fill must be allocated by the caller — the
        cache only tracks residency and recency.
        """
        cache_set = self._sets[(line_addr >> self._line_shift) & self._set_mask]
        tag = line_addr >> self._tag_shift
        existing = cache_set.get(tag)
        if existing is not None:
            # Refill over a resident line (e.g. prefetch into a stale copy):
            # keep the earlier ready time if the line was already usable.
            # No recency touch — a refill is not a use.
            if ready_at < existing.ready_at:
                existing.ready_at = ready_at
            return existing
        if len(cache_set) >= self._assoc:
            # Front of the dict = least recently used (see class docstring).
            victim_tag = next(iter(cache_set))
            victim = cache_set.pop(victim_tag)
            self.evictions += 1
            if victim.filled_by_prefetch and not victim.demand_touched:
                self.prefetch_evicted_unused += 1
        self._use_counter += 1
        line = CacheLine(
            tag, ready_at, by_prefetch, not by_prefetch, self._use_counter
        )
        cache_set[tag] = line
        return line

    # -- batch-kernel access -----------------------------------------------
    def hot_state(
        self,
    ) -> tuple[list[dict[int, CacheLine]], int, int, int, int]:
        """The lookup state the batched hierarchy kernels inline against.

        Returns ``(sets, line_shift, set_mask, tag_shift, assoc)``: the
        per-set tag dicts plus the precomputed address math, so a batch
        loop can run ``sets[(line >> line_shift) & set_mask].get(line >>
        tag_shift)`` without a method call per line. The contract for
        writers is the one :meth:`touch` and :meth:`allocate` implement —
        recency touches and fills must bump ``_use_counter`` (through the
        attribute, never a cached local, so interleaved :meth:`allocate`
        calls stay ordered), touched lines are reinserted at the back of
        their set dict, and a fill into a full set evicts the dict's
        front entry, counting ``evictions`` / ``prefetch_evicted_unused``.
        The sets list itself is never reassigned, so the tuple stays
        valid for the cache's lifetime.
        """
        return (
            self._sets,
            self._line_shift,
            self._set_mask,
            self._tag_shift,
            self._assoc,
        )

    # -- introspection -----------------------------------------------------
    def resident_lines(self) -> int:
        """Number of lines currently allocated (ready or in flight)."""
        return sum(len(s) for s in self._sets)

    def occupancy_fraction(self) -> float:
        """Fraction of capacity holding lines."""
        total = self.config.n_sets * self.config.assoc
        return self.resident_lines() / total if total else 0.0
