"""Composed memory hierarchy: optional NSB, shared L2, DRAM channel.

All accuracy/coverage/traffic accounting funnels through this module so the
metric definitions are enforced in one place:

* a prefetch is **useful** when a demand access first touches the
  prefetched line while it is resident and ready;
* it is **late** when the demand access coalesces onto the still-in-flight
  prefetch (the miss is shortened, not hidden);
* every DRAM transfer is charged to demand or prefetch byte traffic.

Demand routing follows the paper's split: *irregular* (sparse, discrete)
accesses probe the NSB first when one is configured; continuous streams
bypass it (they live in the scratchpad pipeline and the L2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heappop, heappush

from ...errors import ConfigError
from ..request import Access, AccessResult, AccessType, HitLevel
from ..stats import RunStats
from .cache import Cache, CacheConfig, CacheLine, LookupKind
from .dram import DRAM, DRAMConfig


def default_l2_config() -> CacheConfig:
    """The paper's baseline shared L2: 256 KiB, 8-way.

    The MSHR file must sustain ``bandwidth x latency`` worth of
    outstanding lines (64 entries here), otherwise the MSHR count — not
    the DRAM bus — caps memory-level parallelism; the paper leans on
    exactly this ("the efficiency also depends on the MSHR", Sec. IV-F).
    """
    return CacheConfig(
        size_bytes=256 * 1024,
        assoc=8,
        line_bytes=64,
        hit_latency=18,
        mshr_entries=64,
        name="l2",
    )


def default_nsb_config() -> CacheConfig:
    """The paper's NSB: 16 KiB, high associativity, in-NPU latency."""
    return CacheConfig(
        size_bytes=16 * 1024,
        assoc=16,
        line_bytes=64,
        hit_latency=2,
        mshr_entries=64,
        name="nsb",
    )


@dataclass
class CPUTrafficConfig:
    """Background CPU traffic on the shared L2.

    The paper's platform is "an in-order core and DNN accelerator sharing
    a unified L2 cache": the core's own misses pollute the L2 and consume
    DRAM bandwidth. Modelled as a deterministic pseudo-random access
    stream over a private working set, injected at a fixed rate.
    """

    lines_per_kcycle: int = 20
    footprint_bytes: int = 2 * 1024 * 1024
    base_addr: int = 0x9000_0000

    def __post_init__(self) -> None:
        if self.lines_per_kcycle < 1:
            raise ConfigError("cpu traffic rate must be >= 1 line/kcycle")
        if self.footprint_bytes < 64:
            raise ConfigError("cpu footprint must be at least one line")


@dataclass
class MemoryConfig:
    """Full hierarchy configuration."""

    l2: CacheConfig = field(default_factory=default_l2_config)
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    nsb: CacheConfig | None = None
    cpu_traffic: CPUTrafficConfig | None = None

    def __post_init__(self) -> None:
        if self.nsb is not None and self.nsb.line_bytes != self.l2.line_bytes:
            raise ConfigError(
                "NSB and L2 must share a line size, got "
                f"{self.nsb.line_bytes} vs {self.l2.line_bytes}"
            )

    @property
    def line_bytes(self) -> int:
        return self.l2.line_bytes

    def with_nsb(self, enabled: bool = True) -> "MemoryConfig":
        """Copy of this config with the NSB toggled."""
        return MemoryConfig(
            l2=self.l2,
            dram=self.dram,
            nsb=default_nsb_config() if enabled else None,
            cpu_traffic=self.cpu_traffic,
        )

    def with_cpu_traffic(
        self, config: CPUTrafficConfig | None = None
    ) -> "MemoryConfig":
        """Copy of this config with shared-L2 CPU traffic enabled."""
        return MemoryConfig(
            l2=self.l2,
            dram=self.dram,
            nsb=self.nsb,
            cpu_traffic=config or CPUTrafficConfig(),
        )

    def to_dict(self) -> dict:
        """Canonical plain-scalar dict (see :mod:`repro.spec.serde`)."""
        from ...spec import serde

        return serde.memory_config_to_dict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "MemoryConfig":
        from ...spec import serde

        return serde.memory_config_from_dict(d)


class MemorySystem:
    """The NPU-visible memory system.

    Args:
        config: hierarchy geometry and timing.
        stats: shared run-statistics record, mutated in place.
    """

    #: Distinguishes the real hierarchy from :class:`~repro.sim.soc.
    #: PerfectMemory` without an import cycle (engine fast paths key on it).
    perfect = False

    def __init__(self, config: MemoryConfig, stats: RunStats) -> None:
        self.config = config
        self.stats = stats
        self.l2 = Cache(config.l2)
        self.nsb = Cache(config.nsb) if config.nsb is not None else None
        self.dram = DRAM(config.dram)
        self._pf_pending: set[int] = set()
        # Shared-L2 CPU traffic state (deterministic LCG address stream).
        self._cpu_last_inject = 0
        self._cpu_lcg = 0x2545F491
        self.cpu_accesses = 0
        self.cpu_misses = 0
        # Hot-path bindings: the demand path runs once per line touched
        # (millions of calls per sweep), so the per-access attribute
        # chains (config/stat sub-objects, latencies) are resolved once.
        self._line_bytes = config.line_bytes
        self._l2_lat = config.l2.hit_latency
        self._nsb_lat = config.nsb.hit_latency if config.nsb is not None else None
        self._cpu_cfg = config.cpu_traffic
        self._stats_nsb = stats.nsb
        self._stats_l2 = stats.l2
        self._stats_pf = stats.prefetch
        self._traffic = stats.traffic
        self._l2_touch = self.l2.touch
        self._l2_probe = self.l2.probe
        self._l2_alloc = self.l2.allocate
        self._l2_mshr_free = self.l2.mshr.earliest_free_slot
        self._l2_mshr_alloc = self.l2.mshr.allocate
        self._dram_access = self.dram.access
        if self.nsb is not None:
            self._nsb_touch = self.nsb.touch
            self._nsb_probe = self.nsb.probe
            self._nsb_alloc = self.nsb.allocate
        else:
            self._nsb_touch = self._nsb_probe = self._nsb_alloc = None
        # Batch-kernel context: everything per-call-stable the batched
        # demand/prefetch kernels unpack, resolved once. The hot-state
        # tuples hold containers that are mutated in place and never
        # reassigned (see Cache.hot_state / MSHRFile.hot_state), and all
        # line fills transfer exactly one line, so the DRAM bus service
        # time is a constant.
        self._l2_hot = self.l2.hot_state()
        self._nsb_hot = self.nsb.hot_state() if self.nsb is not None else None
        self._l2_mshr_hot = self.l2.mshr.hot_state()
        self._dram_lat = config.dram.latency
        self._pf_penalty = config.dram.prefetch_penalty
        self._line_service = self.dram.service_cycles(config.line_bytes)

    # -- background CPU traffic ----------------------------------------------
    _MAX_INJECT_PER_CALL = 64

    def _inject_cpu_traffic(self, now: int) -> None:
        """Advance the CPU's background access stream up to ``now``.

        The core touches its own working set through the shared L2,
        evicting NPU lines and occupying DRAM bandwidth — invisible to
        the NPU except through the contention it causes.
        """
        cfg = self.config.cpu_traffic
        if cfg is None or now <= self._cpu_last_inject:
            return
        due = (now - self._cpu_last_inject) * cfg.lines_per_kcycle // 1000
        due = min(due, self._MAX_INJECT_PER_CALL)
        if due <= 0:
            return
        self._cpu_last_inject = now
        n_lines = cfg.footprint_bytes // self.line_bytes
        for _ in range(due):
            self._cpu_lcg = (
                self._cpu_lcg * 6364136223846793005 + 1442695040888963407
            ) % (1 << 64)
            line = cfg.base_addr + (self._cpu_lcg % n_lines) * self.line_bytes
            self.cpu_accesses += 1
            kind, _ = self.l2.lookup(now, line)
            if kind == LookupKind.MISS:
                self.cpu_misses += 1
                start = max(now, self.l2.mshr.earliest_free_slot(now))
                done = self.dram.access(start, self.line_bytes)
                ready = done + self.l2.config.hit_latency
                self.l2.mshr.allocate(start, line, ready)
                self.l2.allocate(now, line, ready, by_prefetch=False)

    # -- helpers -----------------------------------------------------------
    @property
    def line_bytes(self) -> int:
        return self._line_bytes

    def line_addr(self, byte_addr: int) -> int:
        """Align a byte address to a line address."""
        return self.l2.line_addr(byte_addr)

    def hit_latency(self, irregular: bool) -> int:
        """Best-case (all-hit) latency for one demand access.

        Used by the executor to split total time into base + stall
        (the two bar segments of Fig. 5).
        """
        if self.nsb is not None and irregular:
            return self.nsb.config.hit_latency
        return self.l2.config.hit_latency

    def is_resident(self, line_addr: int) -> bool:
        """True when the line is in any cache level (ready or in flight).

        Read-only; used by prefetchers to squash redundant requests.
        """
        if self.l2.probe(line_addr) is not None:
            return True
        return self.nsb is not None and self.nsb.probe(line_addr) is not None

    def _credit_prefetch(self, line_addr: int, in_flight: bool) -> bool:
        """Consume a pending-prefetch marker on first demand touch."""
        if line_addr not in self._pf_pending:
            return False
        self._pf_pending.discard(line_addr)
        if in_flight:
            self.stats.prefetch.late += 1
        else:
            self.stats.prefetch.useful += 1
        return True

    # -- demand path ---------------------------------------------------------
    def demand_access(self, now: int, access: Access, irregular: bool) -> AccessResult:
        """Send one demand line request through NSB (optional) then L2/DRAM."""
        assert access.access_type is AccessType.DEMAND
        return self.demand_line(now, access.line_addr, irregular)

    def demand_line(self, now: int, line: int, irregular: bool) -> AccessResult:
        """The demand path proper, addressed by line (executor fast path).

        Identical semantics to :meth:`demand_access` without the
        :class:`~repro.sim.request.Access` wrapper — the executors issue
        millions of line-granular demands per sweep, so they skip the
        per-line request object.
        """
        if self._cpu_cfg is not None:
            self._inject_cpu_traffic(now)
        line_bytes = self._line_bytes
        pending = self._pf_pending
        use_nsb = irregular and self._nsb_touch is not None

        if use_nsb:
            nsb_stats = self._stats_nsb
            nsb_stats.demand_accesses += 1
            nsb_line = self._nsb_touch(line)
            if nsb_line is not None:
                if nsb_line.ready_at <= now:
                    nsb_stats.demand_hits += 1
                    self._traffic.nsb_to_npu_bytes += line_bytes
                    if line in pending:
                        pending.discard(line)
                        self._stats_pf.useful += 1
                        was_pf = True
                    else:
                        was_pf = False
                    nsb_line.demand_touched = True
                    return AccessResult(now + self._nsb_lat, HitLevel.NSB, was_pf)
                nsb_stats.demand_inflight_hits += 1
                if line in pending:
                    pending.discard(line)
                    self._stats_pf.late += 1
                    was_pf = True
                else:
                    was_pf = False
                nsb_line.demand_touched = True
                complete = max(nsb_line.ready_at, now + self._nsb_lat)
                return AccessResult(complete, HitLevel.INFLIGHT, was_pf)
            nsb_stats.demand_misses += 1

        l2_stats = self._stats_l2
        l2_stats.demand_accesses += 1
        l2_line = self._l2_touch(line)
        if l2_line is not None:
            if l2_line.ready_at <= now:
                l2_stats.demand_hits += 1
                self._traffic.l2_to_npu_bytes += line_bytes
                complete = now + self._l2_lat
                if line in pending:
                    pending.discard(line)
                    self._stats_pf.useful += 1
                    was_pf = True
                else:
                    was_pf = False
                l2_line.demand_touched = True
                if use_nsb:
                    self._nsb_alloc(now, line, complete, by_prefetch=False)
                return AccessResult(complete, HitLevel.L2, was_pf)
            l2_stats.demand_inflight_hits += 1
            if line in pending:
                pending.discard(line)
                self._stats_pf.late += 1
                was_pf = True
            else:
                was_pf = False
            l2_line.demand_touched = True
            complete = max(l2_line.ready_at, now + self._l2_lat)
            self._traffic.l2_to_npu_bytes += line_bytes
            if use_nsb:
                self._nsb_alloc(now, line, complete, by_prefetch=False)
            return AccessResult(complete, HitLevel.INFLIGHT, was_pf)

        # True L2 miss: fetch from DRAM through an MSHR slot.
        l2_stats.demand_misses += 1
        pending.discard(line)
        start = self._l2_mshr_free(now)
        if now > start:
            start = now
        dram_done = self._dram_access(start, line_bytes, is_prefetch=False)
        ready = dram_done + self._l2_lat
        self._l2_mshr_alloc(start, line, ready)
        self._l2_alloc(now, line, ready, by_prefetch=False)
        traffic = self._traffic
        traffic.off_chip_demand_bytes += line_bytes
        traffic.l2_to_npu_bytes += line_bytes
        if use_nsb:
            self._nsb_alloc(now, line, ready, by_prefetch=False)
        return AccessResult(ready, HitLevel.DRAM, False, True)

    # -- batched demand path -------------------------------------------------
    def demand_lines(
        self,
        now: int,
        issue_width: int,
        lines: list[int],
        irregular: bool,
        sid: int = 0,
        hook=None,
        idxs: list | None = None,
    ) -> tuple[int, bytearray]:
        """Issue a whole request vector through the demand path at once.

        Bit-exact with calling ``demand_line(now + k // issue_width,
        lines[k], irregular)`` for each line in order (plus the per-line
        prefetcher ``hook`` when one is attached): the same live-state
        walk over the same caches, so every same-batch interaction —
        same-set evictions, MSHR coalesces, mid-batch prefetches issued
        by a hook — is resolved by construction rather than by a
        conflict analysis. What the batch form removes is the per-line
        interpreter overhead: one call per *instruction* instead of per
        line, set/tag math inlined against :meth:`Cache.hot_state`,
        statistics accumulated in locals and folded once, and
        :class:`AccessResult` objects built only when a prefetcher
        actually observes them.

        Returns ``(last_complete_cycle, dram_flags)``; ``dram_flags[k]``
        is 1 when line ``k`` went off-chip (the executors fold these
        into the vector-batch miss statistics).
        """
        n = len(lines)
        flags = bytearray(n)
        if n == 0:
            return now, flags
        inject = self._inject_cpu_traffic if self._cpu_cfg is not None else None
        line_bytes = self._line_bytes
        pending = self._pf_pending
        use_nsb = irregular and self._nsb_hot is not None
        l2 = self.l2
        l2_sets, l2_shift, l2_smask, l2_tshift, l2_assoc = self._l2_hot
        l2_lat = self._l2_lat
        mshr = l2.mshr
        mshr_heap, mshr_infl, mshr_cap = self._l2_mshr_hot
        dram = self.dram
        dram_lat = self._dram_lat
        service = self._line_service
        new_line = CacheLine
        if use_nsb:
            nsb = self.nsb
            nsb_sets, nsb_shift, nsb_smask, nsb_tshift, nsb_assoc = self._nsb_hot
            nsb_lat = self._nsb_lat
        lvl_nsb = HitLevel.NSB
        lvl_l2 = HitLevel.L2
        lvl_inflight = HitLevel.INFLIGHT
        lvl_dram = HitLevel.DRAM
        result = AccessResult
        # Local counter accumulators, folded into the stats records once.
        nsb_acc = nsb_hit = nsb_infl = nsb_miss = 0
        l2_acc = l2_hit = l2_infl = l2_miss = 0
        pf_useful = pf_late = 0
        nsb_npu_bytes = l2_npu_bytes = 0
        l2_evt = l2_pfevt = nsb_evt = nsb_pfevt = 0
        done = now
        at = now
        slot = 0
        for k in range(n):
            line = lines[k]
            if inject is not None:
                inject(at)
            if use_nsb:
                nsb_acc += 1
                nset = nsb_sets[(line >> nsb_shift) & nsb_smask]
                ntag = line >> nsb_tshift
                cline = nset.get(ntag)
                if cline is not None:
                    nsb._use_counter += 1
                    cline.last_use = nsb._use_counter
                    del nset[ntag]
                    nset[ntag] = cline
                    cline.demand_touched = True
                    if line in pending:
                        pending.discard(line)
                        was_pf = True
                    else:
                        was_pf = False
                    if cline.ready_at <= at:
                        nsb_hit += 1
                        nsb_npu_bytes += line_bytes
                        if was_pf:
                            pf_useful += 1
                        complete = at + nsb_lat
                        level = lvl_nsb
                    else:
                        nsb_infl += 1
                        if was_pf:
                            pf_late += 1
                        complete = cline.ready_at
                        t = at + nsb_lat
                        if t > complete:
                            complete = t
                        level = lvl_inflight
                    if complete > done:
                        done = complete
                    if hook is not None:
                        hook(
                            at,
                            sid,
                            line,
                            idxs[k] if idxs is not None else None,
                            result(complete, level, was_pf),
                        )
                    slot += 1
                    if slot == issue_width:
                        slot = 0
                        at += 1
                    continue
                nsb_miss += 1
            l2_acc += 1
            lset = l2_sets[(line >> l2_shift) & l2_smask]
            ltag = line >> l2_tshift
            cline = lset.get(ltag)
            if cline is not None:
                l2._use_counter += 1
                cline.last_use = l2._use_counter
                del lset[ltag]
                lset[ltag] = cline
                cline.demand_touched = True
                l2_npu_bytes += line_bytes
                if line in pending:
                    pending.discard(line)
                    was_pf = True
                else:
                    was_pf = False
                if cline.ready_at <= at:
                    l2_hit += 1
                    if was_pf:
                        pf_useful += 1
                    complete = at + l2_lat
                    level = lvl_l2
                else:
                    l2_infl += 1
                    if was_pf:
                        pf_late += 1
                    complete = cline.ready_at
                    t = at + l2_lat
                    if t > complete:
                        complete = t
                    level = lvl_inflight
                off_chip = False
            else:
                # True L2 miss: fetch from DRAM through an MSHR slot.
                # Inlined MSHRFile.earliest_free_slot / allocate (lazy
                # retire at the probe time, again at the start time) and
                # DRAM.access (serialising bus, constant line service).
                l2_miss += 1
                flags[k] = 1
                pending.discard(line)
                was_pf = False
                while mshr_heap and mshr_heap[0][0] <= at:
                    rt, ln = heappop(mshr_heap)
                    if mshr_infl.get(ln) == rt:
                        del mshr_infl[ln]
                if len(mshr_infl) < mshr_cap:
                    start = at
                else:
                    mshr.structural_stalls += 1
                    start = mshr_heap[0][0]
                    while mshr_heap and mshr_heap[0][0] <= start:
                        rt, ln = heappop(mshr_heap)
                        if mshr_infl.get(ln) == rt:
                            del mshr_infl[ln]
                busy = dram._bus_free_at
                st = start if start > busy else busy
                dram._bus_free_at = st + service
                complete = st + dram_lat + service + l2_lat
                mshr_infl[line] = complete
                heappush(mshr_heap, (complete, line))
                if len(mshr_infl) > mshr.peak_occupancy:
                    mshr.peak_occupancy = len(mshr_infl)
                # Fill into L2 (the touch above proved the line absent).
                if len(lset) >= l2_assoc:
                    victim = lset.pop(next(iter(lset)))
                    l2_evt += 1
                    if victim.filled_by_prefetch and not victim.demand_touched:
                        l2_pfevt += 1
                l2._use_counter += 1
                lset[ltag] = new_line(ltag, complete, False, True, l2._use_counter)
                l2_npu_bytes += line_bytes
                level = lvl_dram
                off_chip = True
            if use_nsb:
                # Promote into the NSB (it missed there, so a plain fill).
                if len(nset) >= nsb_assoc:
                    victim = nset.pop(next(iter(nset)))
                    nsb_evt += 1
                    if victim.filled_by_prefetch and not victim.demand_touched:
                        nsb_pfevt += 1
                nsb._use_counter += 1
                nset[ntag] = new_line(ntag, complete, False, True, nsb._use_counter)
            if complete > done:
                done = complete
            if hook is not None:
                hook(
                    at,
                    sid,
                    line,
                    idxs[k] if idxs is not None else None,
                    result(complete, level, was_pf, off_chip),
                )
            slot += 1
            if slot == issue_width:
                slot = 0
                at += 1
        if use_nsb:
            ns = self._stats_nsb
            ns.demand_accesses += nsb_acc
            ns.demand_hits += nsb_hit
            ns.demand_inflight_hits += nsb_infl
            ns.demand_misses += nsb_miss
            if nsb_evt:
                nsb.evictions += nsb_evt
                nsb.prefetch_evicted_unused += nsb_pfevt
        ls = self._stats_l2
        ls.demand_accesses += l2_acc
        ls.demand_hits += l2_hit
        ls.demand_inflight_hits += l2_infl
        ls.demand_misses += l2_miss
        if pf_useful or pf_late:
            pf = self._stats_pf
            pf.useful += pf_useful
            pf.late += pf_late
        if l2_miss:
            dram.busy_cycles += l2_miss * service
            dram.transfers += l2_miss
            dram.bytes_transferred += l2_miss * line_bytes
            if l2_evt:
                l2.evictions += l2_evt
                l2.prefetch_evicted_unused += l2_pfevt
        traffic = self._traffic
        traffic.nsb_to_npu_bytes += nsb_npu_bytes
        traffic.l2_to_npu_bytes += l2_npu_bytes
        traffic.off_chip_demand_bytes += l2_miss * line_bytes
        return done, flags

    # -- prefetch path -------------------------------------------------------
    def prefetch_line(self, now: int, line_addr: int, irregular: bool) -> int | None:
        """Bring one line toward the NPU speculatively.

        With an NSB configured, *irregular* speculative fills land in the
        NSB only — it is the Non-blocking **Speculative** Buffer, and
        keeping speculation out of the shared L2 is what protects the L2
        from prefetch pollution (the Fig. 9 trade: the NSB must be large
        enough to hold the speculative window). Regular-stream prefetches
        and NSB-less configurations fill the L2 as usual. Requests already
        satisfied at their target level are squashed for free, mirroring
        the tag-probe filter in hardware prefetch queues.

        Returns the fill-ready cycle when any fill was started (the request
        counts toward issued-prefetch statistics), else None.
        """
        nsb_probe = self._nsb_probe
        target_nsb = irregular and nsb_probe is not None
        if target_nsb and nsb_probe(line_addr) is not None:
            return None

        l2_line = self._l2_probe(line_addr)
        if l2_line is not None:
            if not target_nsb:
                return None
            # Pull from L2 into the NSB: on-chip transfer, no DRAM.
            ready = l2_line.ready_at
            t = now + self._l2_lat
            if t > ready:
                ready = t
            self._nsb_alloc(now, line_addr, ready, by_prefetch=True)
            self._stats_pf.issued += 1
            self._pf_pending.add(line_addr)
            return ready

        line_bytes = self._line_bytes
        start = self._l2_mshr_free(now)
        if now > start:
            start = now
        dram_done = self._dram_access(start, line_bytes, is_prefetch=True)
        ready = dram_done + self._l2_lat
        self._l2_mshr_alloc(start, line_addr, ready)
        self._l2_alloc(now, line_addr, ready, by_prefetch=True)
        if target_nsb:
            self._nsb_alloc(now, line_addr, ready, by_prefetch=True)
        pf_stats = self._stats_pf
        pf_stats.issued += 1
        pf_stats.issued_lines_off_chip += 1
        self._traffic.off_chip_prefetch_bytes += line_bytes
        self._pf_pending.add(line_addr)
        return ready

    # -- batched prefetch path -----------------------------------------------
    def prefetch_lines(
        self, now: int, lines, irregular: bool, max_issue: int
    ) -> tuple[list[int], int]:
        """Issue up to ``max_issue`` prefetches from ``lines``, in order.

        Bit-exact with sequential :meth:`prefetch_line` calls under the
        port's burst budget: already-resident lines are squashed without
        consuming budget, and once ``max_issue`` fills have started the
        remaining lines are not probed at all (the port counts them as
        dropped — exactly what per-line budget checks would have done).

        Returns ``(ready cycles of the issued lines, lines processed)``.
        """
        readys: list[int] = []
        n = len(lines)
        if n == 0:
            return readys, 0
        line_bytes = self._line_bytes
        pending = self._pf_pending
        target_nsb = irregular and self._nsb_hot is not None
        l2 = self.l2
        l2_sets, l2_shift, l2_smask, l2_tshift, l2_assoc = self._l2_hot
        if target_nsb:
            nsb = self.nsb
            nsb_sets, nsb_shift, nsb_smask, nsb_tshift, nsb_assoc = self._nsb_hot
        l2_lat = self._l2_lat
        mshr = l2.mshr
        mshr_heap, mshr_infl, mshr_cap = self._l2_mshr_hot
        dram = self.dram
        issue = now + self._pf_penalty
        dram_lat = self._dram_lat
        service = self._line_service
        new_line = CacheLine
        issued = off_chip = 0
        l2_evt = l2_pfevt = nsb_evt = nsb_pfevt = 0
        consumed = n
        for k in range(n):
            if issued >= max_issue:
                consumed = k
                break
            line = lines[k]
            if target_nsb:
                nset = nsb_sets[(line >> nsb_shift) & nsb_smask]
                ntag = line >> nsb_tshift
                if nset.get(ntag) is not None:
                    continue
            lset = l2_sets[(line >> l2_shift) & l2_smask]
            ltag = line >> l2_tshift
            l2_line = lset.get(ltag)
            if l2_line is not None:
                if not target_nsb:
                    continue
                # Pull from L2 into the NSB: on-chip transfer, no DRAM.
                ready = l2_line.ready_at
                t = now + l2_lat
                if t > ready:
                    ready = t
            else:
                # Off-chip fill: inlined MSHR slot search, DRAM bus
                # (prefetches issue after the arbitration penalty) and
                # L2 fill — see demand_lines for the inlining contract.
                while mshr_heap and mshr_heap[0][0] <= now:
                    rt, ln = heappop(mshr_heap)
                    if mshr_infl.get(ln) == rt:
                        del mshr_infl[ln]
                if len(mshr_infl) < mshr_cap:
                    start = issue
                else:
                    mshr.structural_stalls += 1
                    start = mshr_heap[0][0]
                    while mshr_heap and mshr_heap[0][0] <= start:
                        rt, ln = heappop(mshr_heap)
                        if mshr_infl.get(ln) == rt:
                            del mshr_infl[ln]
                    start += self._pf_penalty
                busy = dram._bus_free_at
                st = start if start > busy else busy
                dram._bus_free_at = st + service
                ready = st + dram_lat + service + l2_lat
                mshr_infl[line] = ready
                heappush(mshr_heap, (ready, line))
                if len(mshr_infl) > mshr.peak_occupancy:
                    mshr.peak_occupancy = len(mshr_infl)
                if len(lset) >= l2_assoc:
                    victim = lset.pop(next(iter(lset)))
                    l2_evt += 1
                    if victim.filled_by_prefetch and not victim.demand_touched:
                        l2_pfevt += 1
                l2._use_counter += 1
                lset[ltag] = new_line(ltag, ready, True, False, l2._use_counter)
                off_chip += 1
            if target_nsb:
                # The NSB probe above proved the line absent: plain fill.
                if len(nset) >= nsb_assoc:
                    victim = nset.pop(next(iter(nset)))
                    nsb_evt += 1
                    if victim.filled_by_prefetch and not victim.demand_touched:
                        nsb_pfevt += 1
                nsb._use_counter += 1
                nset[ntag] = new_line(ntag, ready, True, False, nsb._use_counter)
            issued += 1
            pending.add(line)
            readys.append(ready)
        if issued:
            pf_stats = self._stats_pf
            pf_stats.issued += issued
            pf_stats.issued_lines_off_chip += off_chip
            self._traffic.off_chip_prefetch_bytes += off_chip * line_bytes
            if off_chip:
                dram.busy_cycles += off_chip * service
                dram.transfers += off_chip
                dram.bytes_transferred += off_chip * line_bytes
            if l2_evt:
                l2.evictions += l2_evt
                l2.prefetch_evicted_unused += l2_pfevt
            if nsb_evt:
                nsb.evictions += nsb_evt
                nsb.prefetch_evicted_unused += nsb_pfevt
        return readys, consumed

    # -- bulk DMA path (explicit preload) ----------------------------------------
    def bulk_transfer(self, now: int, n_bytes: int) -> int:
        """One coarse DMA burst DRAM -> scratchpad; returns completion.

        Explicit preload (Gemmini ``mvin``) moves whole regions: a single
        request latency, then the bus streams the burst. Bypasses the
        caches (scratchpad is the destination); charged to demand traffic.
        """
        self._inject_cpu_traffic(now)
        done = self.dram.access(now, n_bytes, is_prefetch=False)
        self.stats.traffic.off_chip_demand_bytes += n_bytes
        self.stats.traffic.scratchpad_bytes += n_bytes
        return done

    # -- reporting helpers -----------------------------------------------------
    def finalize(self, total_cycles: int) -> None:
        """Fold component-local counters into the shared stats record."""
        self.stats.dram_busy_cycles = self.dram.busy_cycles
        self.stats.prefetch.evicted_unused = self.l2.prefetch_evicted_unused + (
            self.nsb.prefetch_evicted_unused if self.nsb else 0
        )
        self.stats.total_cycles = max(self.stats.total_cycles, total_cycles)
