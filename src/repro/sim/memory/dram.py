"""Main-memory (DRAM) channel model: fixed latency plus a serialising
data bus with finite bandwidth.

Two requests issued together overlap their access latencies but their data
transfers queue on the bus — the standard first-order model that makes
memory-level parallelism (many outstanding misses) pay off while still
charging every transferred byte. Off-chip traffic volume, the quantity
behind Figs. 6c and 7, falls out of the same accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...errors import ConfigError


@dataclass
class DRAMConfig:
    """DRAM channel timing.

    Attributes:
        latency: cycles from request to first beat of data (row activation,
            CAS, controller overheads folded together).
        bytes_per_cycle: sustained bus bandwidth.
        prefetch_penalty: extra issue delay for prefetch requests, modelling
            their lower arbitration priority against demand traffic.
    """

    latency: int = 160
    bytes_per_cycle: int = 32
    prefetch_penalty: int = 4

    def __post_init__(self) -> None:
        if self.latency < 1:
            raise ConfigError(f"DRAM latency must be >= 1, got {self.latency}")
        if self.bytes_per_cycle < 1:
            raise ConfigError(
                f"DRAM bytes_per_cycle must be >= 1, got {self.bytes_per_cycle}"
            )
        if self.prefetch_penalty < 0:
            raise ConfigError("DRAM prefetch_penalty must be >= 0")


class DRAM:
    """Single queued channel with busy-cycle accounting."""

    def __init__(self, config: DRAMConfig) -> None:
        self.config = config
        self._bus_free_at = 0
        self.busy_cycles = 0
        self.transfers = 0
        self.bytes_transferred = 0
        # Hot-path bindings: one access per DRAM transfer, hundreds of
        # thousands per sweep.
        self._latency = config.latency
        self._bpc = config.bytes_per_cycle
        self._pf_penalty = config.prefetch_penalty

    def service_cycles(self, n_bytes: int) -> int:
        """Bus occupancy for one transfer of ``n_bytes``."""
        return max(1, -(-n_bytes // self._bpc))

    def access(self, now: int, n_bytes: int, is_prefetch: bool = False) -> int:
        """Issue one transfer; returns the completion cycle.

        The bus serialises transfers: a request finding the bus busy waits
        for it. Latency overlaps across requests (the channel pipeline),
        which is what rewards MSHR-driven parallelism.
        """
        issue = now + self._pf_penalty if is_prefetch else now
        service = -(-n_bytes // self._bpc)
        if service < 1:
            service = 1
        busy = self._bus_free_at
        start = issue if issue > busy else busy
        self._bus_free_at = start + service
        self.busy_cycles += service
        self.transfers += 1
        self.bytes_transferred += n_bytes
        return start + self._latency + service

    def utilisation(self, elapsed_cycles: int) -> float:
        """Bus busy fraction over ``elapsed_cycles``."""
        if elapsed_cycles <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / elapsed_cycles)
