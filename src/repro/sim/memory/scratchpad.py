"""Banked scratchpad memory — the NPU's explicitly-managed buffer.

Gemmini-class NPUs keep *continuous* data (weight value streams, output
accumulators) in a software-managed scratchpad filled by DMA, while the
paper routes *discrete* sparse data through the cache path (Sec. IV-G:
"strategically storing sparse discrete data in the cache while maintaining
continuous data in scratchpad memory"). The scratchpad model here tracks
capacity, bank conflicts and moved bytes; its data still arrives over the
same memory hierarchy (DMA mvin), which is where the InO load serialisation
cost comes from.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...errors import ConfigError, SimulationError


@dataclass
class ScratchpadConfig:
    """Scratchpad geometry.

    Attributes:
        size_bytes: total capacity (Gemmini default-ish 256 KiB).
        banks: number of independently addressable banks.
        ports_per_bank: simultaneous accesses a bank serves per cycle.
    """

    size_bytes: int = 256 * 1024
    banks: int = 4
    ports_per_bank: int = 1

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ConfigError("scratchpad size must be positive")
        if self.banks < 1:
            raise ConfigError("scratchpad must have >= 1 bank")
        if self.size_bytes % self.banks:
            raise ConfigError("scratchpad size must divide evenly into banks")
        if self.ports_per_bank < 1:
            raise ConfigError("scratchpad banks need >= 1 port")


class Scratchpad:
    """Allocation and access-conflict model for the scratchpad."""

    def __init__(self, config: ScratchpadConfig) -> None:
        self.config = config
        self._allocated = 0
        self.bytes_written = 0
        self.bytes_read = 0

    @property
    def bank_bytes(self) -> int:
        return self.config.size_bytes // self.config.banks

    @property
    def free_bytes(self) -> int:
        return self.config.size_bytes - self._allocated

    def allocate(self, n_bytes: int) -> None:
        """Reserve ``n_bytes``; raises when the scratchpad overflows.

        Overflow is the paper's "out-of-bounds accesses for explicit
        buffers" failure mode — callers tile their working set to fit.
        """
        if n_bytes < 0:
            raise SimulationError("cannot allocate negative bytes")
        if n_bytes > self.free_bytes:
            raise SimulationError(
                f"scratchpad overflow: requested {n_bytes} bytes with only "
                f"{self.free_bytes} free"
            )
        self._allocated += n_bytes

    def release(self, n_bytes: int) -> None:
        """Return a previous allocation."""
        if n_bytes < 0 or n_bytes > self._allocated:
            raise SimulationError(
                f"scratchpad release of {n_bytes} exceeds allocation "
                f"{self._allocated}"
            )
        self._allocated -= n_bytes

    def write(self, n_bytes: int) -> int:
        """DMA write of ``n_bytes``; returns occupied write cycles.

        All banks stream in parallel, so throughput scales with bank count.
        """
        self.bytes_written += n_bytes
        per_bank = -(-n_bytes // self.config.banks)
        return max(1, per_bank // (self.config.ports_per_bank * 16))

    def read(self, n_bytes: int) -> int:
        """Compute-side read; returns occupied read cycles."""
        self.bytes_read += n_bytes
        per_bank = -(-n_bytes // self.config.banks)
        return max(1, per_bank // (self.config.ports_per_bank * 16))
