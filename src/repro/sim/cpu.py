"""Scalar control core: the loop-nest driver whose branches NVR snoops.

In the Gemmini system the in-order CPU runs the loop nest of Fig. 2 and
issues coarse-grained instructions to the NPU. The only CPU state NVR needs
is the *branch stream*: B-type compare-and-branch events whose register
values expose loop counters and bounds — exactly what the Loop Boundary
Detector learns from (Sec. IV-E, "LBD captures historical boundary
information by monitoring register values of jump instructions").

This module derives that branch stream from a lowered program: one inner
branch per tile (``j < rowptr[i+1]``) and one outer branch per row
(``i < n_rows``), with stable synthetic PCs per loop level.
"""

from __future__ import annotations

from dataclasses import dataclass

from .npu.program import SparseProgram, Tile

# Synthetic PCs: stable identifiers for loop-branch instructions.
PC_OUTER_LOOP = 0x8000_1024
PC_INNER_LOOP = 0x8000_106C


@dataclass(frozen=True)
class BranchEvent:
    """One executed compare-and-branch.

    Attributes:
        pc: branch instruction address (loop identity).
        counter: current induction value (e.g. ``j``).
        bound: the compared bound register (e.g. ``rowptr[i+1]``) — what
            the LBD reads to learn loop extents.
        level: 0 = innermost; higher = outer loops.
        taken: True while the loop continues.
    """

    pc: int
    counter: int
    bound: int
    level: int
    taken: bool


class ControlCPU:
    """Generates the branch events the executor interleaves with tiles."""

    def __init__(self, program: SparseProgram) -> None:
        self._program = program
        self._last_row: int | None = None

    def events_for_tile(self, tile: Tile) -> list[BranchEvent]:
        """Branches retired while dispatching one tile."""
        events: list[BranchEvent] = []
        rowptr = self._program.rowptr
        if tile.row != self._last_row:
            # Entering a new row: the outer loop branch retires.
            events.append(
                BranchEvent(
                    pc=PC_OUTER_LOOP,
                    counter=tile.row,
                    bound=len(rowptr) - 1,
                    level=1,
                    taken=tile.row < len(rowptr) - 2,
                )
            )
            self._last_row = tile.row
        events.append(
            BranchEvent(
                pc=PC_INNER_LOOP,
                counter=tile.j_start,
                bound=int(rowptr[tile.row + 1]),
                level=0,
                taken=not tile.last_in_row,
            )
        )
        return events
