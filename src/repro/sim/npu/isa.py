"""Coarse-grained NPU vector instructions and micro-op decomposition.

The paper's NPU (Gemmini-like) executes *coarse-grained* instructions — one
instruction moves or computes a whole vector/tile — which the front-end
decomposes into micro-instructions spanning several cycles (Sec. III,
"Micro-Instruction-Level Vectorisation"). Here each instruction exposes its
micro-op stream as batches of cache-line addresses at most ``vector_width``
wide: the granularity at which VMIG rebundles prefetches and at which a
single missing element stalls the whole batch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...errors import ProgramError

# Architectural stream identifiers (the "PC" a hardware prefetcher would
# key its tables on).
STREAM_W_VALUES = 1
STREAM_W_INDICES = 2
STREAM_IA_GATHER = 3
STREAM_IA_GATHER_2 = 4
STREAM_OA_STORE = 5
STREAM_IA_METADATA = 6  # two-side sparsity: IA rowptr/row_indices lookups


def _as_line_array(addrs: np.ndarray, line_bytes: int) -> np.ndarray:
    """Byte addresses -> unique line addresses, preserving first-touch order."""
    lines = (np.asarray(addrs, dtype=np.int64) // line_bytes) * line_bytes
    _, first = np.unique(lines, return_index=True)
    return lines[np.sort(first)]


@dataclass(frozen=True)
class VectorLoad:
    """Streaming vector load (W values + W indices): sequential addresses."""

    stream_id: int
    byte_addrs: np.ndarray  # element start addresses
    elem_bytes: int

    def line_addrs(self, line_bytes: int) -> np.ndarray:
        """Unique cache lines this load touches, in first-touch order.

        Cached per line size: instructions are immutable and walked
        several times per program (real + base run, prefetch snoops,
        both simulation kernels), so the address math runs once.
        """
        cache = self.__dict__.get("_la_cache")
        if cache is None:
            cache = {}
            object.__setattr__(self, "_la_cache", cache)
        lines = cache.get(line_bytes)
        if lines is None:
            lines = self._compute_line_addrs(line_bytes)
            cache[line_bytes] = lines
        return lines

    def _compute_line_addrs(self, line_bytes: int) -> np.ndarray:
        if len(self.byte_addrs) == 0:
            return np.zeros(0, dtype=np.int64)
        # Each element spans [addr, addr+elem_bytes); widen to line coverage.
        starts = np.asarray(self.byte_addrs, dtype=np.int64)
        eb = self.elem_bytes
        if bool((starts[1:] == starts[:-1] + eb).all()):
            # Contiguous ascending stream (the common W layout): the
            # touched lines are exactly the closed range of lines covering
            # [starts[0], starts[-1]+eb), already in first-touch order.
            first = (int(starts[0]) // line_bytes) * line_bytes
            last = ((int(starts[-1]) + eb - 1) // line_bytes) * line_bytes
            return np.arange(first, last + 1, line_bytes, dtype=np.int64)
        ends = starts + eb - 1
        return _as_line_array(np.concatenate([starts, ends]), line_bytes)

    def line_addr_list(self, line_bytes: int) -> list[int]:
        """Cached Python-int form of :meth:`line_addrs` (engine hot path)."""
        cache = self.__dict__.get("_la_cache")
        key = ("list", line_bytes)
        if cache is None or key not in cache:
            lines = self.line_addrs(line_bytes).tolist()
            self.__dict__["_la_cache"][key] = lines
            return lines
        return cache[key]


@dataclass(frozen=True)
class VectorGather:
    """Indirect vector gather: one segment per index.

    One-side sparsity gathers fixed-size segments (``seg_bytes``);
    two-side sparsity gathers *data-dependent* lengths (the compressed
    IA row's extent), carried per element in ``seg_bytes_per_elem``.
    """

    stream_id: int
    index_values: np.ndarray  # the idx driving each segment
    byte_addrs: np.ndarray  # segment start address per index
    seg_bytes: int
    affine: bool  # True when addr = base + idx * row_bytes (no sparse_func)
    seg_bytes_per_elem: np.ndarray | None = None

    def __post_init__(self) -> None:
        if len(self.index_values) != len(self.byte_addrs):
            raise ProgramError("gather index/address length mismatch")
        if self.seg_bytes_per_elem is not None and len(
            self.seg_bytes_per_elem
        ) != len(self.byte_addrs):
            raise ProgramError("per-element segment length mismatch")

    def segment_bytes(self, position: int) -> int:
        """Segment size for the element at ``position``."""
        if self.seg_bytes_per_elem is not None:
            return int(self.seg_bytes_per_elem[position])
        return self.seg_bytes

    def line_spans(self, line_bytes: int) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised line coverage: per-element (first line, line count).

        Element ``i`` touches the contiguous lines ``firsts[i] + k *
        line_bytes`` for ``k in range(counts[i])`` — the same addresses
        :meth:`element_lines` materialises, without building one array
        per element (the executors walk millions of segments per sweep).
        Cached per line size (instructions are immutable).
        """
        cache = self.__dict__.get("_ls_cache")
        if cache is None:
            cache = {}
            object.__setattr__(self, "_ls_cache", cache)
        spans = cache.get(line_bytes)
        if spans is None:
            spans = self._compute_line_spans(line_bytes)
            cache[line_bytes] = spans
        return spans

    def _compute_line_spans(
        self, line_bytes: int
    ) -> tuple[np.ndarray, np.ndarray]:
        addrs = np.asarray(self.byte_addrs, dtype=np.int64)
        if self.seg_bytes_per_elem is not None:
            segs = np.maximum(
                np.asarray(self.seg_bytes_per_elem, dtype=np.int64), 1
            )
        else:
            segs = np.full(len(addrs), max(1, self.seg_bytes), dtype=np.int64)
        firsts = (addrs // line_bytes) * line_bytes
        lasts = ((addrs + segs - 1) // line_bytes) * line_bytes
        counts = (lasts - firsts) // line_bytes + 1
        return firsts, counts

    def line_span_lists(
        self, line_bytes: int
    ) -> tuple[list[int], list[int], list[int], int]:
        """Cached Python form of :meth:`line_spans` for the engine hot path.

        Returns ``(firsts, counts, index_values, total_lines)`` as plain
        lists/int so the issue loop touches no numpy scalars.
        """
        cache = self.__dict__.get("_ls_cache")
        key = ("list", line_bytes)
        if cache is not None and key in cache:
            return cache[key]
        firsts, counts = self.line_spans(line_bytes)
        lists = (
            firsts.tolist(),
            counts.tolist(),
            np.asarray(self.index_values).tolist(),
            int(counts.sum()),
        )
        self.__dict__["_ls_cache"][key] = lists
        return lists

    def flat_line_list(self, line_bytes: int) -> list[int]:
        """Cached flattened per-line address stream, in issue order.

        Element order, then line offset within each element's segment —
        exactly the sequence the reference issue loop demands. The
        batched engine hands this whole vector to
        ``MemorySystem.demand_lines`` in one call.
        """
        cache = self.__dict__.get("_ls_cache")
        if cache is None:
            cache = {}
            object.__setattr__(self, "_ls_cache", cache)
        key = ("flat", line_bytes)
        lines = cache.get(key)
        if lines is None:
            firsts_l, counts_l, _idx, _total = self.line_span_lists(line_bytes)
            lines = []
            append = lines.append
            # Plain loops beat numpy here: a gather covers one vector
            # tile (tens of lines), far below array-dispatch break-even.
            for first, count in zip(firsts_l, counts_l):
                la = first
                for _ in range(count):
                    append(la)
                    la += line_bytes
            cache[key] = lines
        return lines

    def flat_first_idx_list(self, line_bytes: int) -> list:
        """Cached per-line index values aligned with :meth:`flat_line_list`.

        The element's index on the first line of its segment, ``None`` on
        continuation lines — the architecturally-visible (idx, addr)
        pairing the demand hooks receive.
        """
        cache = self.__dict__.get("_ls_cache")
        if cache is None:
            cache = {}
            object.__setattr__(self, "_ls_cache", cache)
        key = ("flatidx", line_bytes)
        idxs = cache.get(key)
        if idxs is None:
            _firsts, counts_l, idx_l, _total = self.line_span_lists(line_bytes)
            idxs = []
            for e, count in enumerate(counts_l):
                idxs.append(idx_l[e])
                if count > 1:
                    idxs.extend([None] * (count - 1))
            cache[key] = idxs
        return idxs

    def granule_blocks(self, granule: int) -> set[int]:
        """Distinct ``granule``-sized block indices the segments touch.

        The explicit-preload engine DMAs every touched block whole — the
        over-fetch the paper charges that mechanism with. Cached per
        granule (instructions are immutable). Note: unlike line coverage,
        segment bytes are *not* clamped to 1 here, matching the DMA
        planner's arithmetic exactly.
        """
        cache = self.__dict__.get("_gb_cache")
        if cache is None:
            cache = {}
            object.__setattr__(self, "_gb_cache", cache)
        blocks = cache.get(granule)
        if blocks is None:
            addrs = np.asarray(self.byte_addrs, dtype=np.int64)
            if self.seg_bytes_per_elem is not None:
                segs = np.asarray(self.seg_bytes_per_elem, dtype=np.int64)
            else:
                segs = np.full(len(addrs), self.seg_bytes, dtype=np.int64)
            firsts = addrs // granule
            lasts = (addrs + segs - 1) // granule
            spanning = lasts > firsts
            blocks = set(firsts[lasts == firsts].tolist())
            for f, l in zip(firsts[spanning].tolist(), lasts[spanning].tolist()):
                blocks.update(range(f, l + 1))
            cache[granule] = blocks
        return blocks

    def element_lines(self, line_bytes: int) -> list[np.ndarray]:
        """Per-element line address arrays (segments may span lines)."""
        firsts, counts = self.line_spans(line_bytes)
        return [
            np.arange(first, first + count * line_bytes, line_bytes, dtype=np.int64)
            for first, count in zip(firsts.tolist(), counts.tolist())
        ]

    def line_addrs(self, line_bytes: int) -> np.ndarray:
        """Unique lines across all segments, first-touch order."""
        if len(self.byte_addrs) == 0:
            return np.zeros(0, dtype=np.int64)
        per_elem = self.element_lines(line_bytes)
        return _as_line_array(np.concatenate(per_elem), line_bytes)


@dataclass(frozen=True)
class VectorStore:
    """Output store; modelled as write traffic absorbed by a write buffer."""

    stream_id: int
    byte_addrs: np.ndarray
    elem_bytes: int

    def n_bytes(self) -> int:
        return len(self.byte_addrs) * self.elem_bytes


@dataclass(frozen=True)
class TileCompute:
    """Occupies the systolic array (and sparse unit) for a fixed time."""

    cycles: int
    sparse_unit_cycles: int = 0

    def __post_init__(self) -> None:
        if self.cycles < 0 or self.sparse_unit_cycles < 0:
            raise ProgramError("compute cycles must be non-negative")


@dataclass
class MicroOpBatch:
    """One micro-instruction: at most ``vector_width`` lines issued together."""

    line_addrs: np.ndarray
    stream_id: int
    irregular: bool
    index_values: np.ndarray | None = None


def decompose(
    lines: np.ndarray,
    stream_id: int,
    irregular: bool,
    vector_width: int,
    index_values: np.ndarray | None = None,
) -> list[MicroOpBatch]:
    """Split a line list into micro-op batches of at most ``vector_width``."""
    if vector_width < 1:
        raise ProgramError("vector_width must be >= 1")
    batches: list[MicroOpBatch] = []
    for lo in range(0, len(lines), vector_width):
        chunk_idx = (
            index_values[lo : lo + vector_width]
            if index_values is not None
            else None
        )
        batches.append(
            MicroOpBatch(
                line_addrs=lines[lo : lo + vector_width],
                stream_id=stream_id,
                irregular=irregular,
                index_values=chunk_idx,
            )
        )
    return batches
