"""Coarse-grained NPU vector instructions and micro-op decomposition.

The paper's NPU (Gemmini-like) executes *coarse-grained* instructions — one
instruction moves or computes a whole vector/tile — which the front-end
decomposes into micro-instructions spanning several cycles (Sec. III,
"Micro-Instruction-Level Vectorisation"). Here each instruction exposes its
micro-op stream as batches of cache-line addresses at most ``vector_width``
wide: the granularity at which VMIG rebundles prefetches and at which a
single missing element stalls the whole batch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...errors import ProgramError

# Architectural stream identifiers (the "PC" a hardware prefetcher would
# key its tables on).
STREAM_W_VALUES = 1
STREAM_W_INDICES = 2
STREAM_IA_GATHER = 3
STREAM_IA_GATHER_2 = 4
STREAM_OA_STORE = 5
STREAM_IA_METADATA = 6  # two-side sparsity: IA rowptr/row_indices lookups


def _as_line_array(addrs: np.ndarray, line_bytes: int) -> np.ndarray:
    """Byte addresses -> unique line addresses, preserving first-touch order."""
    lines = (np.asarray(addrs, dtype=np.int64) // line_bytes) * line_bytes
    _, first = np.unique(lines, return_index=True)
    return lines[np.sort(first)]


@dataclass(frozen=True)
class VectorLoad:
    """Streaming vector load (W values + W indices): sequential addresses."""

    stream_id: int
    byte_addrs: np.ndarray  # element start addresses
    elem_bytes: int

    def line_addrs(self, line_bytes: int) -> np.ndarray:
        """Unique cache lines this load touches, in first-touch order."""
        if len(self.byte_addrs) == 0:
            return np.zeros(0, dtype=np.int64)
        # Each element spans [addr, addr+elem_bytes); widen to line coverage.
        starts = np.asarray(self.byte_addrs, dtype=np.int64)
        ends = starts + self.elem_bytes - 1
        return _as_line_array(np.concatenate([starts, ends]), line_bytes)


@dataclass(frozen=True)
class VectorGather:
    """Indirect vector gather: one segment per index.

    One-side sparsity gathers fixed-size segments (``seg_bytes``);
    two-side sparsity gathers *data-dependent* lengths (the compressed
    IA row's extent), carried per element in ``seg_bytes_per_elem``.
    """

    stream_id: int
    index_values: np.ndarray  # the idx driving each segment
    byte_addrs: np.ndarray  # segment start address per index
    seg_bytes: int
    affine: bool  # True when addr = base + idx * row_bytes (no sparse_func)
    seg_bytes_per_elem: np.ndarray | None = None

    def __post_init__(self) -> None:
        if len(self.index_values) != len(self.byte_addrs):
            raise ProgramError("gather index/address length mismatch")
        if self.seg_bytes_per_elem is not None and len(
            self.seg_bytes_per_elem
        ) != len(self.byte_addrs):
            raise ProgramError("per-element segment length mismatch")

    def segment_bytes(self, position: int) -> int:
        """Segment size for the element at ``position``."""
        if self.seg_bytes_per_elem is not None:
            return int(self.seg_bytes_per_elem[position])
        return self.seg_bytes

    def element_lines(self, line_bytes: int) -> list[np.ndarray]:
        """Per-element line address arrays (segments may span lines)."""
        out: list[np.ndarray] = []
        for pos, addr in enumerate(np.asarray(self.byte_addrs, dtype=np.int64)):
            seg = max(1, self.segment_bytes(pos))
            first = (addr // line_bytes) * line_bytes
            last = ((addr + seg - 1) // line_bytes) * line_bytes
            out.append(np.arange(first, last + 1, line_bytes, dtype=np.int64))
        return out

    def line_addrs(self, line_bytes: int) -> np.ndarray:
        """Unique lines across all segments, first-touch order."""
        if len(self.byte_addrs) == 0:
            return np.zeros(0, dtype=np.int64)
        per_elem = self.element_lines(line_bytes)
        return _as_line_array(np.concatenate(per_elem), line_bytes)


@dataclass(frozen=True)
class VectorStore:
    """Output store; modelled as write traffic absorbed by a write buffer."""

    stream_id: int
    byte_addrs: np.ndarray
    elem_bytes: int

    def n_bytes(self) -> int:
        return len(self.byte_addrs) * self.elem_bytes


@dataclass(frozen=True)
class TileCompute:
    """Occupies the systolic array (and sparse unit) for a fixed time."""

    cycles: int
    sparse_unit_cycles: int = 0

    def __post_init__(self) -> None:
        if self.cycles < 0 or self.sparse_unit_cycles < 0:
            raise ProgramError("compute cycles must be non-negative")


@dataclass
class MicroOpBatch:
    """One micro-instruction: at most ``vector_width`` lines issued together."""

    line_addrs: np.ndarray
    stream_id: int
    irregular: bool
    index_values: np.ndarray | None = None


def decompose(
    lines: np.ndarray,
    stream_id: int,
    irregular: bool,
    vector_width: int,
    index_values: np.ndarray | None = None,
) -> list[MicroOpBatch]:
    """Split a line list into micro-op batches of at most ``vector_width``."""
    if vector_width < 1:
        raise ProgramError("vector_width must be >= 1")
    batches: list[MicroOpBatch] = []
    for lo in range(0, len(lines), vector_width):
        chunk_idx = (
            index_values[lo : lo + vector_width]
            if index_values is not None
            else None
        )
        batches.append(
            MicroOpBatch(
                line_addrs=lines[lo : lo + vector_width],
                stream_id=stream_id,
                irregular=irregular,
                index_values=chunk_idx,
            )
        )
    return batches
