"""Vectorised simulation kernels ("engine" axis of the ENGINES registry).

The per-mode classes in :mod:`~repro.sim.npu.executor` are the *reference*
kernels: straight-line Python that mirrors the micro-architecture one line
request at a time. The classes here simulate the **same modes with the
same observable behaviour** — bit-identical :class:`~repro.sim.stats.
RunStats` and cycle counts — but precompute every per-line quantity
(addresses, issue cycles, segment membership) as flat numpy arrays, so the
Python interpreter only runs the inherently sequential part: the stateful
walk through the cache hierarchy.

Two registry entries are added here, both *kernel dispatchers* rather than
modes (marked with ``needs_mode = True`` so
:func:`~repro.sim.npu.executor.build_engine` passes the real mode through):

* ``"reference"`` — resolves to the per-mode class itself. Selecting it is
  exactly the same as selecting no engine; it exists so a sweep can name
  both sides of an equivalence comparison.
* ``"vectorized"`` — resolves to the numpy-batched subclass for the mode.

Equivalence is enforced, not assumed: the engine-equivalence test grid
runs every mechanism on both kernels and asserts identical result
payloads, and the spec-key goldens pin that selecting ``"reference"``
(or no engine) leaves cache keys untouched.
"""

from __future__ import annotations

import numpy as np

from ...errors import ConfigError
from ..request import HitLevel
from .executor import (
    ENGINES,
    ExplicitPreloadEngine,
    IdealOoOEngine,
    InOrderEngine,
)
from .isa import VectorGather, VectorLoad

#: Kernel-implementation names accepted by ``SystemSpec.engine`` /
#: ``RunSpec(engine=...)``. "reference" is canonicalised away (it is the
#: default), so only "vectorized"/"batched" ever reach a serialised spec.
ENGINE_NAMES: tuple[str, ...] = ("reference", "vectorized", "batched")


@ENGINES.register("reference")
def reference_kernel(mode, program, mem, prefetcher, sparse_unit, stats, config):
    """Dispatch to the per-mode reference class (the no-engine default)."""
    cls = ENGINES.get(mode)
    if getattr(cls, "needs_mode", False):
        raise ConfigError(f"{mode!r} is a kernel implementation, not a mode")
    return cls(program, mem, prefetcher, sparse_unit, stats, config)


reference_kernel.needs_mode = True


class _VectorizedIssueMixin:
    """numpy-batched issue helpers shared by the vectorized mode classes.

    The address streams and issue schedule of a vector instruction are
    pure functions of the instruction — only the memory system's response
    is stateful. So: compute addresses, issue cycles and first-line flags
    as arrays up front, then run one flat loop that does nothing but
    demand the lines in order.
    """

    def _issue_load(self, now: int, load: VectorLoad) -> int:
        lines = load.line_addrs(self._line_bytes)
        n = len(lines)
        if n == 0:
            return now
        width = self._issue_width
        if self._fast_perfect:
            return now + (n - 1) // width + self._reg_hit
        ats = (now + np.arange(n, dtype=np.int64) // width).tolist()
        demand_line = self._demand_line
        hook = self._pf_hook
        sid = load.stream_id
        done = now
        for la, at in zip(lines.tolist(), ats):
            res = demand_line(at, la, False)
            if hook is not None:
                hook(at, sid, la, None, res)
            if res.complete_at > done:
                done = res.complete_at
        return done

    def _issue_gather(self, now: int, gather: VectorGather) -> int:
        width = self._vec_width
        batch_stats = self.stats.batch
        firsts, counts = gather.line_spans(self._line_bytes)
        n_elems = len(firsts)
        if self._fast_perfect:
            batch_stats.elements += n_elems
            batch_stats.batches += (n_elems + width - 1) // width
            total = int(counts.sum())
            if total == 0:
                return now
            return now + (total - 1) // self._issue_width + self._irr_hit
        if n_elems == 0:
            return now
        total = int(counts.sum())
        # Flat per-line arrays: owning element, position within the
        # element's segment, line address, issue cycle.
        elem_of = np.repeat(np.arange(n_elems, dtype=np.int64), counts)
        ramp = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(counts) - counts, counts
        )
        lines = (np.repeat(firsts, counts) + ramp * self._line_bytes).tolist()
        ats = (now + np.arange(total, dtype=np.int64) // self._issue_width).tolist()
        first_line = (ramp == 0).tolist()
        elem_of_l = elem_of.tolist()
        idx_l = np.asarray(gather.index_values).tolist()
        demand_line = self._demand_line
        hook = self._pf_hook
        sid = gather.stream_id
        done = now
        missed = bytearray(n_elems)
        for k in range(total):
            at = ats[k]
            la = lines[k]
            res = demand_line(at, la, True)
            if hook is not None:
                # Index/address pairs are architecturally visible only for
                # the first line of a segment (the computed address).
                hook(
                    at,
                    sid,
                    la,
                    idx_l[elem_of_l[k]] if first_line[k] else None,
                    res,
                )
            if res.hit_level == HitLevel.DRAM:
                missed[elem_of_l[k]] = 1
            if res.complete_at > done:
                done = res.complete_at
        batch_stats.elements += n_elems
        batch_stats.batches += (n_elems + width - 1) // width
        n_missed = sum(missed)
        if n_missed:
            batch_stats.element_misses += n_missed
            for b0 in range(0, n_elems, width):
                if any(missed[b0 : b0 + width]):
                    batch_stats.batch_misses += 1
        return done


class VectorizedInOrderEngine(_VectorizedIssueMixin, InOrderEngine):
    """``inorder`` timing model on the vectorized issue kernels."""


class VectorizedOoOEngine(_VectorizedIssueMixin, IdealOoOEngine):
    """``ooo`` timing model on the vectorized issue kernels."""


class VectorizedPreloadEngine(_VectorizedIssueMixin, ExplicitPreloadEngine):
    """``preload`` timing model on the vectorized issue kernels."""


_VECTORIZED_KERNELS = {
    "inorder": VectorizedInOrderEngine,
    "ooo": VectorizedOoOEngine,
    "preload": VectorizedPreloadEngine,
}


@ENGINES.register("vectorized")
def vectorized_kernel(mode, program, mem, prefetcher, sparse_unit, stats, config):
    """Dispatch to the numpy-batched kernel for ``mode``."""
    try:
        cls = _VECTORIZED_KERNELS[mode]
    except KeyError:
        raise ConfigError(
            f"no vectorized kernel for executor mode {mode!r} "
            f"(have: {', '.join(_VECTORIZED_KERNELS)})"
        ) from None
    return cls(program, mem, prefetcher, sparse_unit, stats, config)


vectorized_kernel.needs_mode = True


class _BatchedIssueMixin:
    """Whole-instruction request vectors through ``demand_lines``.

    Where the vectorized kernels precompute per-line arrays and still
    make one ``demand_line`` call per line, the batched kernels hand the
    entire instruction's line vector to the memory system's
    :meth:`~repro.sim.memory.hierarchy.MemorySystem.demand_lines` batch
    kernel: one Python call per *instruction*, with the per-line state
    walk running inside the hierarchy against inlined cache state. The
    prefetcher demand hook (stream/IMP/DVR) is forwarded into the batch
    loop, so mid-batch prefetches mutate the caches exactly as the
    reference interleaving does.

    The perfect-memory base runs have no ``demand_lines`` (and a
    closed-form schedule anyway), so those fall back to the reference
    issue helpers unchanged.
    """

    def __init__(self, program, mem, prefetcher, sparse_unit, stats, config):
        super().__init__(program, mem, prefetcher, sparse_unit, stats, config)
        self._demand_batch = getattr(mem, "demand_lines", None)

    def _issue_load(self, now: int, load: VectorLoad) -> int:
        batch = self._demand_batch
        if batch is None:
            return super()._issue_load(now, load)
        lines = load.line_addr_list(self._line_bytes)
        if not lines:
            return now
        done, _ = batch(
            now,
            self._issue_width,
            lines,
            False,
            sid=load.stream_id,
            hook=self._pf_hook,
        )
        return done

    def _issue_gather(self, now: int, gather: VectorGather) -> int:
        batch = self._demand_batch
        if batch is None:
            return super()._issue_gather(now, gather)
        width = self._vec_width
        batch_stats = self.stats.batch
        _firsts, counts_l, _idx, total = gather.line_span_lists(self._line_bytes)
        n_elems = len(counts_l)
        batch_stats.elements += n_elems
        batch_stats.batches += (n_elems + width - 1) // width
        if total == 0:
            return now
        hook = self._pf_hook
        lines = gather.flat_line_list(self._line_bytes)
        idxs = (
            gather.flat_first_idx_list(self._line_bytes)
            if hook is not None
            else None
        )
        done, flags = batch(
            now,
            self._issue_width,
            lines,
            True,
            sid=gather.stream_id,
            hook=hook,
            idxs=idxs,
        )
        if 1 in flags:
            # Fold per-line DRAM flags into element/batch miss counts:
            # an element misses when any of its segment's lines went
            # off-chip, a vector batch when any of its elements did.
            find = flags.find
            elem_misses = 0
            batch_misses = 0
            pos = 0
            for b0 in range(0, n_elems, width):
                missed = False
                for e in range(b0, min(b0 + width, n_elems)):
                    count = counts_l[e]
                    if find(1, pos, pos + count) >= 0:
                        elem_misses += 1
                        missed = True
                    pos += count
                if missed:
                    batch_misses += 1
            batch_stats.element_misses += elem_misses
            batch_stats.batch_misses += batch_misses
        return done


class BatchedInOrderEngine(_BatchedIssueMixin, InOrderEngine):
    """``inorder`` timing model on the batched hierarchy kernels."""


class BatchedOoOEngine(_BatchedIssueMixin, IdealOoOEngine):
    """``ooo`` timing model on the batched hierarchy kernels."""


class BatchedPreloadEngine(_BatchedIssueMixin, ExplicitPreloadEngine):
    """``preload`` timing model on the batched hierarchy kernels."""


_BATCHED_KERNELS = {
    "inorder": BatchedInOrderEngine,
    "ooo": BatchedOoOEngine,
    "preload": BatchedPreloadEngine,
}


@ENGINES.register("batched")
def batched_kernel(mode, program, mem, prefetcher, sparse_unit, stats, config):
    """Dispatch to the batched-hierarchy kernel for ``mode``."""
    try:
        cls = _BATCHED_KERNELS[mode]
    except KeyError:
        raise ConfigError(
            f"no batched kernel for executor mode {mode!r} "
            f"(have: {', '.join(_BATCHED_KERNELS)})"
        ) from None
    return cls(program, mem, prefetcher, sparse_unit, stats, config)


batched_kernel.needs_mode = True
