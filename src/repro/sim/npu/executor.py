"""NPU execution engines: in-order and ideal out-of-order.

The two engines bound the paper's comparison space (Sec. V-A):

* **In-order** ("serial execution of load and compute instructions") —
  Gemmini's native behaviour: each tile's W load, IA gather and compute
  run back-to-back, so every cache-miss cycle lands on the critical path.
* **Ideal OoO** ("overlapping the load and computation time") — the
  memory pipeline streams tiles ahead of compute within a window, hiding
  memory time under compute. The true data dependency W→gather is kept
  (gather addresses need the loaded indices), which is why even ideal OoO
  cannot rescue IO-bound sparse workloads — Fig. 5's observation.

Both engines share the vector stall semantics: a micro-op batch completes
at the max of its element completions.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...errors import ConfigError
from ...registry import Registry
from ..cpu import ControlCPU
from ..request import HitLevel
from ..stats import RunStats
from ...prefetch.base import Prefetcher
from .isa import VectorGather, VectorLoad
from .program import SparseProgram, Tile
from .sparse_unit import SparseUnit

# Cycles the sparse unit needs to turn returned indices into gather
# addresses before the gather can issue (address-generation latency).
ADDRESS_GEN_CYCLES = 2


@dataclass
class ExecutorConfig:
    """Shared execution parameters.

    Attributes:
        issue_width: line requests issued per cycle by the load pipeline.
        ooo_window: tiles in flight for the ideal-OoO engine (its "ROB").
        preload_granule: DMA burst granularity of the explicit-preload
            engine (Gemmini ``mvin`` moves whole regions).
        scratchpad_read_latency: per-batch read cost once data is resident
            in the scratchpad.
    """

    issue_width: int = 2
    ooo_window: int = 8
    preload_granule: int = 512
    scratchpad_read_latency: int = 2

    def __post_init__(self) -> None:
        if self.issue_width < 1:
            raise ConfigError("issue_width must be >= 1")
        if self.ooo_window < 1:
            raise ConfigError("ooo_window must be >= 1")
        if self.preload_granule < 64 or self.preload_granule & (
            self.preload_granule - 1
        ):
            raise ConfigError("preload_granule must be a power of two >= 64")
        if self.scratchpad_read_latency < 1:
            raise ConfigError("scratchpad_read_latency must be >= 1")

    def to_dict(self) -> dict:
        """Canonical plain-scalar dict (see :mod:`repro.spec.serde`)."""
        from ...spec import serde

        return serde.executor_config_to_dict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "ExecutorConfig":
        from ...spec import serde

        return serde.executor_config_from_dict(d)


#: Execution-engine registry: mode name -> engine class. The built-in
#: modes are registered below next to their classes; plug a new engine in
#: with ``@ENGINES.register("mymode")`` and any mechanism declaring that
#: mode resolves to it through :func:`build_engine`.
ENGINES = Registry("executor mode")


class _EngineBase:
    """Shared issue logic for both engines."""

    def __init__(
        self,
        program: SparseProgram,
        mem,
        prefetcher: Prefetcher,
        sparse_unit: SparseUnit,
        stats: RunStats,
        config: ExecutorConfig,
    ) -> None:
        self.program = program
        self.mem = mem
        self.prefetcher = prefetcher
        self.sparse_unit = sparse_unit
        self.stats = stats
        self.config = config
        self.cpu = ControlCPU(program)
        self._line_bytes = mem.line_bytes
        # Hot-path bindings — the issue helpers run once per demand line
        # (millions of calls per sweep), so everything reachable through
        # an attribute chain is resolved once here.
        self._issue_width = config.issue_width
        self._vec_width = program.config.vector_width
        self._demand_line = mem.demand_line
        self._reg_hit = mem.hit_latency(irregular=False)
        self._irr_hit = mem.hit_latency(irregular=True)
        # Prefetchers that keep the base-class no-op demand hook need no
        # per-line callback at all; eliding the call is exact.
        self._pf_hook = (
            prefetcher.on_demand_access
            if type(prefetcher).on_demand_access
            is not Prefetcher.on_demand_access
            else None
        )
        # An all-hit memory with no demand snoop has a closed-form issue
        # schedule: every line completes at its issue cycle plus the hit
        # latency, so only the last line matters (see the issue helpers).
        self._fast_perfect = (
            getattr(mem, "perfect", False) and self._pf_hook is None
        )
        # Dispatch events and sparse-unit bookkeeping are only observable
        # through prefetchers that snoop them (NVR attaches to the NPU and
        # overrides the dispatch hooks); for every other prefetcher the
        # events land in base-class no-ops and the sparse unit's occupancy
        # is never read, so both are elided.
        p_cls = type(prefetcher)
        self._needs_dispatch = (
            p_cls.on_branch is not Prefetcher.on_branch
            or p_cls.on_tile_dispatch is not Prefetcher.on_tile_dispatch
            or hasattr(prefetcher, "attach_npu")
        )
        self._data_hook = (
            prefetcher.on_data_return
            if p_cls.on_data_return is not Prefetcher.on_data_return
            else None
        )

    # -- issue helpers -------------------------------------------------------
    def _issue_load(self, now: int, load: VectorLoad) -> int:
        """Issue a streaming vector load; returns its completion cycle."""
        lines = load.line_addr_list(self._line_bytes)
        n = len(lines)
        if n == 0:
            return now
        width = self._issue_width
        if self._fast_perfect:
            # Line i issues at now + i // width and hits; the last line
            # issued completes last.
            return now + (n - 1) // width + self._reg_hit
        demand_line = self._demand_line
        hook = self._pf_hook
        sid = load.stream_id
        done = now
        at = now
        slot = 0
        for la in lines:
            res = demand_line(at, la, False)
            if hook is not None:
                hook(at, sid, la, None, res)
            if res.complete_at > done:
                done = res.complete_at
            slot += 1
            if slot == width:
                slot = 0
                at += 1
        return done

    def _issue_gather(self, now: int, gather: VectorGather) -> int:
        """Issue an indirect gather; returns completion, records batch stats.

        A batch here is one vector micro-op: ``vector_width`` indices. The
        batch "misses" when any element line goes off-chip — the
        all-or-nothing stall the paper attributes to data parallelism.
        """
        width = self._vec_width
        batch_stats = self.stats.batch
        firsts_l, counts_l, idx_l, total_lines = gather.line_span_lists(
            self._line_bytes
        )
        n_elems = len(firsts_l)
        if self._fast_perfect:
            # All-hit memory never reaches DRAM, so no element or batch
            # ever misses; only the counters and last completion remain.
            batch_stats.elements += n_elems
            batch_stats.batches += (n_elems + width - 1) // width
            if total_lines == 0:
                return now
            return now + (total_lines - 1) // self._issue_width + self._irr_hit
        lb = self._line_bytes
        issue_width = self._issue_width
        demand_line = self._demand_line
        hook = self._pf_hook
        sid = gather.stream_id
        dram = HitLevel.DRAM
        done = now
        at = now
        slot = 0
        elem_misses = 0
        batch_misses = 0
        for b0 in range(0, n_elems, width):
            batch_missed = False
            for e in range(b0, min(b0 + width, n_elems)):
                elem_missed = False
                la = firsts_l[e]
                for line_i in range(counts_l[e]):
                    res = demand_line(at, la, True)
                    if hook is not None:
                        # Index/address pairs are only architecturally
                        # visible for the first line of a segment (the
                        # computed address).
                        hook(
                            at,
                            sid,
                            la,
                            idx_l[e] if line_i == 0 else None,
                            res,
                        )
                    if res.hit_level is dram:
                        elem_missed = True
                    if res.complete_at > done:
                        done = res.complete_at
                    la += lb
                    slot += 1
                    if slot == issue_width:
                        slot = 0
                        at += 1
                if elem_missed:
                    elem_misses += 1
                    batch_missed = True
            if batch_missed:
                batch_misses += 1
        # Counter totals are order-independent, so they fold in once.
        batch_stats.elements += n_elems
        batch_stats.batches += (n_elems + width - 1) // width
        batch_stats.element_misses += elem_misses
        batch_stats.batch_misses += batch_misses
        return done

    def _dispatch(self, now: int, tile: Tile) -> None:
        """Raise the snooper-visible dispatch events for one tile."""
        if not self._needs_dispatch:
            return
        self.sparse_unit.set_position(tile.row, tile.j_start, tile.j_end)
        for event in self.cpu.events_for_tile(tile):
            self.prefetcher.on_branch(now, event)
        self.prefetcher.on_tile_dispatch(now, tile.tile_id)

    def _tile_memory_phase(self, start: int, tile: Tile) -> int:
        """W load, data return, address generation, gathers. Returns end."""
        w_done = max(
            self._issue_load(start, tile.w_val_load),
            self._issue_load(start, tile.w_idx_load),
        )
        if self._data_hook is not None:
            self._data_hook(w_done, tile.tile_id)
        g_start = w_done + ADDRESS_GEN_CYCLES
        if self._needs_dispatch:
            self.sparse_unit.occupy(w_done, ADDRESS_GEN_CYCLES)
        g_done = g_start
        for gather in tile.gathers:
            g_done = self._issue_gather(g_start, gather)
            g_start = g_done
        if tile.store is not None:
            self.stats.traffic.store_bytes += tile.store.n_bytes()
        return g_done

    def _tile_compute_phase(self, start: int, tile: Tile) -> int:
        if self._needs_dispatch:
            self.sparse_unit.occupy(start, tile.compute.sparse_unit_cycles)
        self.stats.compute_cycles += tile.compute.cycles
        return start + tile.compute.cycles


@ENGINES.register("inorder")
class InOrderEngine(_EngineBase):
    """Serial load → gather → compute per tile (baseline Gemmini)."""

    def run(self) -> int:
        now = 0
        for tile in self.program.tiles:
            self._dispatch(now, tile)
            mem_done = self._tile_memory_phase(now, tile)
            now = self._tile_compute_phase(mem_done, tile)
        self.mem.finalize(now)
        self.stats.total_cycles = now
        return now


@ENGINES.register("ooo")
class IdealOoOEngine(_EngineBase):
    """Memory pipeline runs ahead of compute within a tile window."""

    def run(self) -> int:
        window = self.config.ooo_window
        load_engine = 0
        compute_engine = 0
        compute_done: list[int] = []
        for t, tile in enumerate(self.program.tiles):
            start = load_engine
            if t >= window:
                start = max(start, compute_done[t - window])
            self._dispatch(start, tile)
            mem_done = self._tile_memory_phase(start, tile)
            load_engine = mem_done
            c_start = max(compute_engine, mem_done)
            compute_engine = self._tile_compute_phase(c_start, tile)
            compute_done.append(compute_engine)
        total = max(load_engine, compute_engine)
        self.mem.finalize(total)
        self.stats.total_cycles = total
        return total


@ENGINES.register("preload")
class ExplicitPreloadEngine(_EngineBase):
    """Gemmini's native operating mode: coarse DMA into the scratchpad.

    Per sparse row: (1) stream the W values/indices; (2) the software
    pass scans the indices and ``mvin``s every ``preload_granule`` region
    any gather touches — the over-fetch the paper calls "out-of-bounds
    accesses for explicit buffers"; (3) gathers then read the scratchpad
    at SRAM latency; (4) compute. No cache misses occur, but all the
    latency moved into bandwidth: the mechanism trades the InO engine's
    stall time for transfer volume, which is the comparison behind
    Figs. 1b and 7.
    """

    def run(self) -> int:
        from ..memory.scratchpad import Scratchpad, ScratchpadConfig

        granule = self.config.preload_granule
        scratchpad = Scratchpad(ScratchpadConfig())
        now = 0
        rows: dict[int, list[Tile]] = {}
        for tile in self.program.tiles:
            rows.setdefault(tile.row, []).append(tile)
        for row_tiles in rows.values():
            # (1) W streams for the whole row.
            w_done = now
            for tile in row_tiles:
                self._dispatch(now, tile)
                w_done = max(
                    w_done,
                    self._issue_load(now, tile.w_val_load),
                    self._issue_load(now, tile.w_idx_load),
                )
            if self._data_hook is not None:
                self._data_hook(w_done, row_tiles[-1].tile_id)
            # (2) Coarse DMA covering every touched granule.
            blocks: set[int] = set()
            for tile in row_tiles:
                for gather in tile.gathers:
                    blocks.update(gather.granule_blocks(granule))
            dma_bytes = len(blocks) * granule
            dma_bytes = min(dma_bytes, scratchpad.config.size_bytes)
            dma_done = self.mem.bulk_transfer(w_done, dma_bytes)
            dma_done += scratchpad.write(dma_bytes)
            # (3) + (4) scratchpad-resident gathers, then compute.
            t = dma_done
            width = self.program.config.vector_width
            for tile in row_tiles:
                for gather in tile.gathers:
                    n_batches = -(-len(gather.byte_addrs) // width)
                    t += n_batches * self.config.scratchpad_read_latency
                    self.stats.batch.batches += n_batches
                    self.stats.batch.elements += len(gather.byte_addrs)
                t = self._tile_compute_phase(t, tile)
            now = t
        self.mem.finalize(now)
        self.stats.total_cycles = now
        return now


def build_engine(
    mode: str,
    program: SparseProgram,
    mem,
    prefetcher: Prefetcher,
    sparse_unit: SparseUnit,
    stats: RunStats,
    config: ExecutorConfig,
    engine: str | None = None,
):
    """Factory: resolve ``mode`` through the :data:`ENGINES` registry.

    ``engine`` optionally selects an alternative simulation-kernel
    implementation of the same ``mode`` (a registry entry carrying
    ``needs_mode = True``, e.g. ``"vectorized"``). None runs the entry
    registered under ``mode`` itself — the reference kernels.
    """
    if engine is not None:
        entry = ENGINES.get(engine)
        if not getattr(entry, "needs_mode", False):
            raise ConfigError(
                f"engine {engine!r} is an executor mode, not a kernel "
                "implementation - pass it as the mode instead"
            )
        return entry(mode, program, mem, prefetcher, sparse_unit, stats, config)
    entry = ENGINES.get(mode)
    if getattr(entry, "needs_mode", False):
        raise ConfigError(
            f"{mode!r} is a kernel implementation, not an executor mode - "
            "pass it as engine= instead"
        )
    return entry(program, mem, prefetcher, sparse_unit, stats, config)


# Self-registers the "reference"/"vectorized" kernel dispatchers; must run
# after the mode classes above exist.
from . import vectorized as _vectorized  # noqa: E402,F401
