"""NPU execution engines: in-order and ideal out-of-order.

The two engines bound the paper's comparison space (Sec. V-A):

* **In-order** ("serial execution of load and compute instructions") —
  Gemmini's native behaviour: each tile's W load, IA gather and compute
  run back-to-back, so every cache-miss cycle lands on the critical path.
* **Ideal OoO** ("overlapping the load and computation time") — the
  memory pipeline streams tiles ahead of compute within a window, hiding
  memory time under compute. The true data dependency W→gather is kept
  (gather addresses need the loaded indices), which is why even ideal OoO
  cannot rescue IO-bound sparse workloads — Fig. 5's observation.

Both engines share the vector stall semantics: a micro-op batch completes
at the max of its element completions.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...errors import ConfigError
from ...registry import Registry
from ..cpu import ControlCPU
from ..request import Access, AccessType, HitLevel
from ..stats import RunStats
from ...prefetch.base import Prefetcher
from .isa import VectorGather, VectorLoad
from .program import SparseProgram, Tile
from .sparse_unit import SparseUnit

# Cycles the sparse unit needs to turn returned indices into gather
# addresses before the gather can issue (address-generation latency).
ADDRESS_GEN_CYCLES = 2


@dataclass
class ExecutorConfig:
    """Shared execution parameters.

    Attributes:
        issue_width: line requests issued per cycle by the load pipeline.
        ooo_window: tiles in flight for the ideal-OoO engine (its "ROB").
        preload_granule: DMA burst granularity of the explicit-preload
            engine (Gemmini ``mvin`` moves whole regions).
        scratchpad_read_latency: per-batch read cost once data is resident
            in the scratchpad.
    """

    issue_width: int = 2
    ooo_window: int = 8
    preload_granule: int = 512
    scratchpad_read_latency: int = 2

    def __post_init__(self) -> None:
        if self.issue_width < 1:
            raise ConfigError("issue_width must be >= 1")
        if self.ooo_window < 1:
            raise ConfigError("ooo_window must be >= 1")
        if self.preload_granule < 64 or self.preload_granule & (
            self.preload_granule - 1
        ):
            raise ConfigError("preload_granule must be a power of two >= 64")
        if self.scratchpad_read_latency < 1:
            raise ConfigError("scratchpad_read_latency must be >= 1")

    def to_dict(self) -> dict:
        """Canonical plain-scalar dict (see :mod:`repro.spec.serde`)."""
        from ...spec import serde

        return serde.executor_config_to_dict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "ExecutorConfig":
        from ...spec import serde

        return serde.executor_config_from_dict(d)


#: Execution-engine registry: mode name -> engine class. The built-in
#: modes are registered below next to their classes; plug a new engine in
#: with ``@ENGINES.register("mymode")`` and any mechanism declaring that
#: mode resolves to it through :func:`build_engine`.
ENGINES = Registry("executor mode")


class _EngineBase:
    """Shared issue logic for both engines."""

    def __init__(
        self,
        program: SparseProgram,
        mem,
        prefetcher: Prefetcher,
        sparse_unit: SparseUnit,
        stats: RunStats,
        config: ExecutorConfig,
    ) -> None:
        self.program = program
        self.mem = mem
        self.prefetcher = prefetcher
        self.sparse_unit = sparse_unit
        self.stats = stats
        self.config = config
        self.cpu = ControlCPU(program)
        self._line_bytes = mem.line_bytes

    # -- issue helpers -------------------------------------------------------
    def _issue_load(self, now: int, load: VectorLoad) -> int:
        """Issue a streaming vector load; returns its completion cycle."""
        lines = load.line_addrs(self._line_bytes)
        done = now
        for i, la in enumerate(lines):
            at = now + i // self.config.issue_width
            res = self.mem.demand_access(
                at,
                Access(int(la), AccessType.DEMAND, load.stream_id),
                irregular=False,
            )
            self.prefetcher.on_demand_access(at, load.stream_id, int(la), None, res)
            done = max(done, res.complete_at)
        return done

    def _issue_gather(self, now: int, gather: VectorGather) -> int:
        """Issue an indirect gather; returns completion, records batch stats.

        A batch here is one vector micro-op: ``vector_width`` indices. The
        batch "misses" when any element line goes off-chip — the
        all-or-nothing stall the paper attributes to data parallelism.
        """
        per_elem_lines = gather.element_lines(self._line_bytes)
        width = self.program.config.vector_width
        done = now
        issued = 0
        for b0 in range(0, len(per_elem_lines), width):
            batch = per_elem_lines[b0 : b0 + width]
            batch_missed = False
            for e_off, elem_lines in enumerate(batch):
                idx_val = int(gather.index_values[b0 + e_off])
                elem_missed = False
                for line_i, la in enumerate(elem_lines):
                    at = now + issued // self.config.issue_width
                    issued += 1
                    res = self.mem.demand_access(
                        at,
                        Access(int(la), AccessType.DEMAND, gather.stream_id),
                        irregular=True,
                    )
                    # Index/address pairs are only architecturally visible
                    # for the first line of a segment (the computed address).
                    self.prefetcher.on_demand_access(
                        at,
                        gather.stream_id,
                        int(la),
                        idx_val if line_i == 0 else None,
                        res,
                    )
                    if res.hit_level == HitLevel.DRAM:
                        elem_missed = True
                    done = max(done, res.complete_at)
                self.stats.batch.elements += 1
                if elem_missed:
                    self.stats.batch.element_misses += 1
                    batch_missed = True
            self.stats.batch.batches += 1
            if batch_missed:
                self.stats.batch.batch_misses += 1
        return done

    def _dispatch(self, now: int, tile: Tile) -> None:
        """Raise the snooper-visible dispatch events for one tile."""
        self.sparse_unit.set_position(tile.row, tile.j_start, tile.j_end)
        for event in self.cpu.events_for_tile(tile):
            self.prefetcher.on_branch(now, event)
        self.prefetcher.on_tile_dispatch(now, tile.tile_id)

    def _tile_memory_phase(self, start: int, tile: Tile) -> int:
        """W load, data return, address generation, gathers. Returns end."""
        w_done = max(
            self._issue_load(start, tile.w_val_load),
            self._issue_load(start, tile.w_idx_load),
        )
        self.prefetcher.on_data_return(w_done, tile.tile_id)
        g_start = w_done + ADDRESS_GEN_CYCLES
        self.sparse_unit.occupy(w_done, ADDRESS_GEN_CYCLES)
        g_done = g_start
        for gather in tile.gathers:
            g_done = self._issue_gather(g_start, gather)
            g_start = g_done
        if tile.store is not None:
            self.stats.traffic.store_bytes += tile.store.n_bytes()
        return g_done

    def _tile_compute_phase(self, start: int, tile: Tile) -> int:
        self.sparse_unit.occupy(start, tile.compute.sparse_unit_cycles)
        self.stats.compute_cycles += tile.compute.cycles
        return start + tile.compute.cycles


@ENGINES.register("inorder")
class InOrderEngine(_EngineBase):
    """Serial load → gather → compute per tile (baseline Gemmini)."""

    def run(self) -> int:
        now = 0
        for tile in self.program.tiles:
            self._dispatch(now, tile)
            mem_done = self._tile_memory_phase(now, tile)
            now = self._tile_compute_phase(mem_done, tile)
        self.mem.finalize(now)
        self.stats.total_cycles = now
        return now


@ENGINES.register("ooo")
class IdealOoOEngine(_EngineBase):
    """Memory pipeline runs ahead of compute within a tile window."""

    def run(self) -> int:
        window = self.config.ooo_window
        load_engine = 0
        compute_engine = 0
        compute_done: list[int] = []
        for t, tile in enumerate(self.program.tiles):
            start = load_engine
            if t >= window:
                start = max(start, compute_done[t - window])
            self._dispatch(start, tile)
            mem_done = self._tile_memory_phase(start, tile)
            load_engine = mem_done
            c_start = max(compute_engine, mem_done)
            compute_engine = self._tile_compute_phase(c_start, tile)
            compute_done.append(compute_engine)
        total = max(load_engine, compute_engine)
        self.mem.finalize(total)
        self.stats.total_cycles = total
        return total


@ENGINES.register("preload")
class ExplicitPreloadEngine(_EngineBase):
    """Gemmini's native operating mode: coarse DMA into the scratchpad.

    Per sparse row: (1) stream the W values/indices; (2) the software
    pass scans the indices and ``mvin``s every ``preload_granule`` region
    any gather touches — the over-fetch the paper calls "out-of-bounds
    accesses for explicit buffers"; (3) gathers then read the scratchpad
    at SRAM latency; (4) compute. No cache misses occur, but all the
    latency moved into bandwidth: the mechanism trades the InO engine's
    stall time for transfer volume, which is the comparison behind
    Figs. 1b and 7.
    """

    def run(self) -> int:
        from ..memory.scratchpad import Scratchpad, ScratchpadConfig

        granule = self.config.preload_granule
        scratchpad = Scratchpad(ScratchpadConfig())
        now = 0
        rows: dict[int, list[Tile]] = {}
        for tile in self.program.tiles:
            rows.setdefault(tile.row, []).append(tile)
        for row_tiles in rows.values():
            # (1) W streams for the whole row.
            w_done = now
            for tile in row_tiles:
                self._dispatch(now, tile)
                w_done = max(
                    w_done,
                    self._issue_load(now, tile.w_val_load),
                    self._issue_load(now, tile.w_idx_load),
                )
            self.prefetcher.on_data_return(w_done, row_tiles[-1].tile_id)
            # (2) Coarse DMA covering every touched granule.
            blocks: set[int] = set()
            for tile in row_tiles:
                for gather in tile.gathers:
                    for pos, addr in enumerate(gather.byte_addrs):
                        first = int(addr) // granule
                        last = (int(addr) + gather.segment_bytes(pos) - 1) // granule
                        blocks.update(range(first, last + 1))
            dma_bytes = len(blocks) * granule
            dma_bytes = min(dma_bytes, scratchpad.config.size_bytes)
            dma_done = self.mem.bulk_transfer(w_done, dma_bytes)
            dma_done += scratchpad.write(dma_bytes)
            # (3) + (4) scratchpad-resident gathers, then compute.
            t = dma_done
            width = self.program.config.vector_width
            for tile in row_tiles:
                for gather in tile.gathers:
                    n_batches = -(-len(gather.byte_addrs) // width)
                    t += n_batches * self.config.scratchpad_read_latency
                    self.stats.batch.batches += n_batches
                    self.stats.batch.elements += len(gather.byte_addrs)
                t = self._tile_compute_phase(t, tile)
            now = t
        self.mem.finalize(now)
        self.stats.total_cycles = now
        return now


def build_engine(
    mode: str,
    program: SparseProgram,
    mem,
    prefetcher: Prefetcher,
    sparse_unit: SparseUnit,
    stats: RunStats,
    config: ExecutorConfig,
):
    """Factory: resolve ``mode`` through the :data:`ENGINES` registry."""
    engine_cls = ENGINES.get(mode)
    return engine_cls(program, mem, prefetcher, sparse_unit, stats, config)
