"""Compute-time model for the systolic array (ScaleSim-flavoured).

The paper builds its NPU model on ScaleSim; what matters for the memory
study is a credible compute time per tile so the compute/memory balance —
which workloads are IO-bound, where prefetching pays — is realistic. We use
the standard output-stationary estimate: pipeline fill + drain plus one
cycle per reduction step, with utilisation limited by how much of the array
a sparse tile actually occupies.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...errors import ConfigError


@dataclass
class SystolicConfig:
    """Systolic array geometry and per-tile overheads.

    Attributes:
        rows / cols: PE grid (Gemmini default 16x16).
        fill_drain: pipeline fill+drain cycles charged per tile.
        sparse_align_cycles_per_elem: sparse-unit work (align/skip/tile
            bookkeeping) per non-zero, charged to the sparse unit — the
            resource NVR borrows when idle.
    """

    rows: int = 16
    cols: int = 16
    fill_drain: int = 16
    sparse_align_cycles_per_elem: float = 0.5

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ConfigError("systolic array needs positive dimensions")
        if self.fill_drain < 0:
            raise ConfigError("fill_drain must be non-negative")
        if self.sparse_align_cycles_per_elem < 0:
            raise ConfigError("sparse align cost must be non-negative")


class SystolicModel:
    """Maps a tile's work (non-zeros x output columns) to cycles."""

    def __init__(self, config: SystolicConfig | None = None) -> None:
        self.config = config or SystolicConfig()

    def tile_cycles(self, n_nonzeros: int, out_cols: int) -> int:
        """Compute cycles for one tile.

        ``n_nonzeros`` rank-1 updates of width ``out_cols`` map onto the
        array: the reduction dimension streams through the rows while
        output columns tile across the array columns.
        """
        if n_nonzeros <= 0 or out_cols <= 0:
            return 0
        col_passes = -(-out_cols // self.config.cols)
        row_passes = -(-n_nonzeros // self.config.rows)
        steady = row_passes * self.config.rows * col_passes
        return self.config.fill_drain + steady

    def sparse_unit_cycles(self, n_nonzeros: int) -> int:
        """Sparse-unit occupancy (align/skip/tile) for one tile."""
        return int(n_nonzeros * self.config.sparse_align_cycles_per_elem)

    def peak_macs_per_cycle(self) -> int:
        """Array peak throughput, for roofline-style reporting."""
        return self.config.rows * self.config.cols
