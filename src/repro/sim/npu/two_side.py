"""Two-sides-sparsity lowering — the second listing of the paper's Fig. 2.

Both operands are compressed: W's indices select *rows of a CSR-encoded
IA*, so each gather's base address **and length** are data
(``IA.rowptr[idx]``, ``IA.rowptr[idx+1]``) rather than affine functions of
the index. The access chain per non-zero becomes:

    W.col_indices[j]  →  IA.rowptr[idx] (metadata lookup)
                      →  IA.values[rowptr[idx] .. rowptr[idx+1])  (segment)

This is the deepest dependency pattern in the paper's taxonomy: stream
prefetchers see noise, IMP's affine fit cannot represent it, and a
CPU-side runahead must make an extra memory hop per element. NVR walks it
on the sparse unit, which owns the compressed-format metadata.
"""

from __future__ import annotations

import numpy as np

from ...errors import ProgramError
from ...sparse.csr import CSRMatrix
from .isa import (
    STREAM_IA_GATHER,
    STREAM_IA_METADATA,
    STREAM_OA_STORE,
    STREAM_W_INDICES,
    STREAM_W_VALUES,
    TileCompute,
    VectorGather,
    VectorLoad,
    VectorStore,
)
from .program import GatherStream, ProgramConfig, SparseProgram, Tile
from .systolic import SystolicModel

# Metadata layout: IA.rowptr entries are int32 pairs; one lookup touches
# rowptr[idx] and rowptr[idx+1], which share a line except at boundaries.
_META_ENTRY_BYTES = 4


def build_two_side_program(
    name: str,
    weights: CSRMatrix,
    activations: CSRMatrix,
    config: ProgramConfig,
) -> SparseProgram:
    """Lower a two-sides-sparse SpMM (sparse W x sparse IA) to tiles.

    Args:
        name: program name.
        weights: sparse W, shape (M, K) — its col_indices select IA rows.
        activations: sparse IA, shape (K, N), CSR-compressed.
        config: lowering parameters (``ia_seg_elems`` is ignored — segment
            lengths come from IA's rowptr).
    """
    if weights.nnz == 0:
        raise ProgramError("cannot lower an all-zero weight matrix")
    if weights.n_cols != activations.n_rows:
        raise ProgramError(
            f"shape mismatch: W is {weights.n_rows}x{weights.n_cols}, "
            f"IA is {activations.n_rows}x{activations.n_cols}"
        )
    cfg = config
    ia_rowptr = activations.rowptr.astype(np.int64)

    values_stream = GatherStream(
        stream_id=STREAM_IA_GATHER,
        base=cfg.ia_base,
        row_bytes=cfg.elem_bytes,  # per-element granularity
        n_slots=activations.n_rows,
        index_map=cfg.index_map,
        table_rowptr=ia_rowptr,
        elem_bytes=cfg.elem_bytes,
    )
    meta_base = cfg.ia2_base
    meta_stream = GatherStream(
        stream_id=STREAM_IA_METADATA,
        base=meta_base,
        row_bytes=2 * _META_ENTRY_BYTES,
        n_slots=activations.n_rows + 1,
        index_map=cfg.index_map,
    )
    streams = {
        STREAM_IA_GATHER: values_stream,
        STREAM_IA_METADATA: meta_stream,
    }

    systolic = SystolicModel(cfg.systolic)
    row_nnz = np.diff(ia_rowptr)
    tiles: list[Tile] = []
    tile_id = 0
    for row in range(weights.n_rows):
        lo, hi = int(weights.rowptr[row]), int(weights.rowptr[row + 1])
        if lo == hi:
            continue
        for j0 in range(lo, hi, cfg.vector_width):
            j1 = min(j0 + cfg.vector_width, hi)
            idx = weights.col_indices[j0:j1].astype(np.int64)
            positions = np.arange(j0, j1, dtype=np.int64)
            w_val = VectorLoad(
                stream_id=STREAM_W_VALUES,
                byte_addrs=cfg.w_val_base + positions * cfg.elem_bytes,
                elem_bytes=cfg.elem_bytes,
            )
            w_idx = VectorLoad(
                stream_id=STREAM_W_INDICES,
                byte_addrs=cfg.w_idx_base + positions * cfg.idx_bytes,
                elem_bytes=cfg.idx_bytes,
            )
            slots = np.fromiter(
                (values_stream.slot(int(i)) for i in idx),
                dtype=np.int64,
                count=len(idx),
            )
            meta_addrs = meta_base + slots * _META_ENTRY_BYTES
            meta_gather = VectorGather(
                stream_id=STREAM_IA_METADATA,
                index_values=idx,
                byte_addrs=meta_addrs,
                seg_bytes=2 * _META_ENTRY_BYTES,
                affine=False,
            )
            seg_starts = cfg.ia_base + ia_rowptr[slots] * cfg.elem_bytes
            seg_lengths = np.maximum(1, row_nnz[slots] * cfg.elem_bytes)
            value_gather = VectorGather(
                stream_id=STREAM_IA_GATHER,
                index_values=idx,
                byte_addrs=seg_starts.astype(np.int64),
                seg_bytes=int(seg_lengths.max()),
                affine=False,
                seg_bytes_per_elem=seg_lengths.astype(np.int64),
            )
            products = int(row_nnz[slots].sum())
            compute = TileCompute(
                cycles=systolic.tile_cycles(max(1, products), 16),
                sparse_unit_cycles=systolic.sparse_unit_cycles(len(idx)),
            )
            last = j1 == hi
            store = None
            if cfg.with_stores and last:
                store = VectorStore(
                    stream_id=STREAM_OA_STORE,
                    byte_addrs=cfg.oa_base
                    + row * activations.n_cols * cfg.elem_bytes
                    + np.arange(min(activations.n_cols, 64), dtype=np.int64)
                    * cfg.elem_bytes,
                    elem_bytes=cfg.elem_bytes,
                )
            tiles.append(
                Tile(
                    tile_id=tile_id,
                    row=row,
                    j_start=j0,
                    j_end=j1,
                    w_val_load=w_val,
                    w_idx_load=w_idx,
                    indices=idx,
                    gathers=[meta_gather, value_gather],
                    compute=compute,
                    store=store,
                    last_in_row=last,
                )
            )
            tile_id += 1
    return SparseProgram(
        name=name,
        tiles=tiles,
        rowptr=weights.rowptr.copy(),
        col_stream=weights.col_indices.astype(np.int64).copy(),
        gather_streams=streams,
        config=cfg,
    )
