"""Lowered NPU programs: the tile stream a workload executes.

A :class:`SparseProgram` is the simulator's unit of work — the result of
"compiling" one sparse linear layer (Fig. 2's listing) onto the NPU:

* per row of the sparse weight operand, the non-zeros are chunked into
  vector-width *tiles*;
* each tile carries a streaming W load (values + indices), one or more
  indirect IA gathers whose addresses the sparse unit computes from the
  loaded indices, a compute op sized by the systolic model, and an
  optional output store;
* row/loop structure is kept (``rowptr``, per-tile row ids, last-in-row
  flags) because the LBD's whole job is predicting those boundaries.

The gather address map (``sparse_func``) is program state: affine
(``base + idx * row_bytes``) for matrix workloads, or an arbitrary
``index_map`` permutation for hash/rulebook workloads (MinkowskiNet,
SparseConvNet). Prefetchers cannot read it — only the sparse unit can
evaluate it, which is precisely the asymmetry NVR exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...errors import ProgramError
from ...sparse.csr import CSRMatrix
from .isa import (
    STREAM_IA_GATHER,
    STREAM_IA_GATHER_2,
    STREAM_OA_STORE,
    STREAM_W_INDICES,
    STREAM_W_VALUES,
    TileCompute,
    VectorGather,
    VectorLoad,
    VectorStore,
)
from .systolic import SystolicConfig, SystolicModel


@dataclass(frozen=True)
class GatherStream:
    """Static description of one indirect-gather address space.

    ``resolve`` (on the sparse unit) computes the segment start address:

    * affine streams — ``base + slot(idx) * row_bytes``, where ``slot``
      is identity or a hash ``index_map``;
    * compressed (two-side) streams — ``base + table_rowptr[slot] *
      elem_bytes``: the target operand is itself CSR-compressed, so both
      the segment base and its *length* are data (a depth-2 chain only
      the sparse unit can walk).
    """

    stream_id: int
    base: int
    row_bytes: int
    n_slots: int
    index_map: np.ndarray | None = None
    table_rowptr: np.ndarray | None = None
    elem_bytes: int = 0

    @property
    def affine(self) -> bool:
        return self.index_map is None and self.table_rowptr is None

    @property
    def compressed(self) -> bool:
        """True for two-side (CSR target) streams."""
        return self.table_rowptr is not None

    def slot(self, idx: int) -> int:
        if self.index_map is None:
            return int(idx)
        return int(self.index_map[int(idx)])

    def address(self, idx: int) -> int:
        slot = self.slot(idx)
        if self.table_rowptr is not None:
            return self.base + int(self.table_rowptr[slot]) * self.elem_bytes
        return self.base + slot * self.row_bytes

    def segment_bytes(self, idx: int) -> int:
        """Bytes gathered for one index (dynamic for compressed targets)."""
        if self.table_rowptr is not None:
            slot = self.slot(idx)
            length = int(self.table_rowptr[slot + 1] - self.table_rowptr[slot])
            return max(1, length * self.elem_bytes)
        return self.row_bytes

    def footprint_bytes(self) -> int:
        if self.table_rowptr is not None:
            return int(self.table_rowptr[-1]) * self.elem_bytes
        return self.n_slots * self.row_bytes


@dataclass
class Tile:
    """One vector-width chunk of a sparse row: the NPU's unit of issue."""

    tile_id: int
    row: int
    j_start: int
    j_end: int
    w_val_load: VectorLoad
    w_idx_load: VectorLoad
    indices: np.ndarray
    gathers: list[VectorGather]
    compute: TileCompute
    store: VectorStore | None
    last_in_row: bool

    @property
    def n_elems(self) -> int:
        return int(self.j_end - self.j_start)


@dataclass
class ProgramConfig:
    """Lowering parameters for :func:`build_one_side_program`.

    Attributes:
        vector_width: elements per tile (the paper's N=16).
        elem_bytes: data width — 1 (INT8), 2 (FP16) or 4 (INT32).
        idx_bytes: index element width (int32).
        ia_seg_elems: activation elements gathered per index.
        dual_gather: add a second gather stream per index (GAT's
            attention-coefficient fetch alongside the feature fetch).
        index_map: optional hash permutation (``sparse_func``) applied to
            indices before addressing — non-affine workloads.
        with_stores: emit output stores (traffic only).
        systolic: compute-time model parameters.
    """

    vector_width: int = 16
    elem_bytes: int = 2
    idx_bytes: int = 4
    ia_seg_elems: int = 64
    dual_gather: bool = False
    index_map: np.ndarray | None = None
    with_stores: bool = True
    systolic: SystolicConfig = field(default_factory=SystolicConfig)

    w_val_base: int = 0x1000_0000
    w_idx_base: int = 0x2000_0000
    ia_base: int = 0x4000_0000
    ia2_base: int = 0x5800_0000
    oa_base: int = 0x7000_0000

    def __post_init__(self) -> None:
        if self.vector_width < 1:
            raise ProgramError("vector_width must be >= 1")
        if self.elem_bytes not in (1, 2, 4, 8):
            raise ProgramError(f"unsupported elem_bytes {self.elem_bytes}")
        if self.ia_seg_elems < 1:
            raise ProgramError("ia_seg_elems must be >= 1")


@dataclass
class SparseProgram:
    """A fully lowered workload: tiles plus the loop/address metadata.

    ``col_stream`` is the full W index stream (the data that lives at the
    W-index addresses); runahead mechanisms may only read a slice of it
    after the corresponding lines have been fetched on-chip.
    """

    name: str
    tiles: list[Tile]
    rowptr: np.ndarray
    col_stream: np.ndarray
    gather_streams: dict[int, GatherStream]
    config: ProgramConfig

    def __post_init__(self) -> None:
        if not self.tiles:
            raise ProgramError(f"program '{self.name}' has no tiles")
        if len(self.col_stream) != int(self.rowptr[-1]):
            raise ProgramError("col_stream length must equal nnz")

    @property
    def n_tiles(self) -> int:
        return len(self.tiles)

    @property
    def n_rows(self) -> int:
        return len(self.rowptr) - 1

    @property
    def nnz(self) -> int:
        return int(self.rowptr[-1])

    def gather_footprint_bytes(self) -> int:
        """Total bytes of all indirect-gather address spaces."""
        return sum(g.footprint_bytes() for g in self.gather_streams.values())

    def total_demand_elements(self) -> int:
        """Gather elements across the program (sizing for tests/benches)."""
        return sum(len(t.indices) * len(t.gathers) for t in self.tiles)

    def describe(self) -> str:
        return (
            f"{self.name}: {self.n_tiles} tiles, {self.nnz} nnz, "
            f"{self.n_rows} rows, gather footprint "
            f"{self.gather_footprint_bytes() / 1024:.0f} KiB"
        )


def build_one_side_program(
    name: str,
    weights: CSRMatrix,
    config: ProgramConfig,
) -> SparseProgram:
    """Lower a one-side-sparse SpMM (sparse W x dense-stored IA) to tiles.

    Follows the paper's Fig. 2 one-side listing: the j-loop streams W's
    values/indices, and each index gathers one IA row segment. Tiles never
    cross row boundaries (rows are the dynamic loop bounds the LBD
    predicts); short rows simply under-fill their tile.
    """
    if weights.nnz == 0:
        raise ProgramError("cannot lower an all-zero weight matrix")
    cfg = config
    row_bytes = cfg.ia_seg_elems * cfg.elem_bytes
    n_slots = weights.n_cols
    if cfg.index_map is not None:
        if len(cfg.index_map) < weights.n_cols:
            raise ProgramError(
                "index_map must cover all column indices: "
                f"{len(cfg.index_map)} < {weights.n_cols}"
            )
        n_slots = int(cfg.index_map.max()) + 1

    ia_stream = GatherStream(
        stream_id=STREAM_IA_GATHER,
        base=cfg.ia_base,
        row_bytes=row_bytes,
        n_slots=n_slots,
        index_map=cfg.index_map,
    )
    streams = {STREAM_IA_GATHER: ia_stream}
    if cfg.dual_gather:
        # Second, narrower gather (e.g. GAT attention coefficients): one
        # element per index in a separate table.
        streams[STREAM_IA_GATHER_2] = GatherStream(
            stream_id=STREAM_IA_GATHER_2,
            base=cfg.ia2_base,
            row_bytes=cfg.elem_bytes * 4,
            n_slots=n_slots,
            index_map=cfg.index_map,
        )

    systolic = SystolicModel(cfg.systolic)
    tiles: list[Tile] = []
    tile_id = 0
    for row in range(weights.n_rows):
        lo, hi = int(weights.rowptr[row]), int(weights.rowptr[row + 1])
        if lo == hi:
            continue
        for j0 in range(lo, hi, cfg.vector_width):
            j1 = min(j0 + cfg.vector_width, hi)
            idx = weights.col_indices[j0:j1].astype(np.int64)
            positions = np.arange(j0, j1, dtype=np.int64)
            w_val = VectorLoad(
                stream_id=STREAM_W_VALUES,
                byte_addrs=cfg.w_val_base + positions * cfg.elem_bytes,
                elem_bytes=cfg.elem_bytes,
            )
            w_idx = VectorLoad(
                stream_id=STREAM_W_INDICES,
                byte_addrs=cfg.w_idx_base + positions * cfg.idx_bytes,
                elem_bytes=cfg.idx_bytes,
            )
            gathers = []
            for stream in streams.values():
                addrs = np.fromiter(
                    (stream.address(int(i)) for i in idx),
                    dtype=np.int64,
                    count=len(idx),
                )
                gathers.append(
                    VectorGather(
                        stream_id=stream.stream_id,
                        index_values=idx,
                        byte_addrs=addrs,
                        seg_bytes=stream.row_bytes,
                        affine=stream.affine,
                    )
                )
            last = j1 == hi
            store = None
            if cfg.with_stores and last:
                store = VectorStore(
                    stream_id=STREAM_OA_STORE,
                    byte_addrs=cfg.oa_base
                    + row * row_bytes
                    + np.arange(cfg.ia_seg_elems, dtype=np.int64)
                    * cfg.elem_bytes,
                    elem_bytes=cfg.elem_bytes,
                )
            compute = TileCompute(
                cycles=systolic.tile_cycles(len(idx), cfg.ia_seg_elems),
                sparse_unit_cycles=systolic.sparse_unit_cycles(len(idx)),
            )
            tiles.append(
                Tile(
                    tile_id=tile_id,
                    row=row,
                    j_start=j0,
                    j_end=j1,
                    w_val_load=w_val,
                    w_idx_load=w_idx,
                    indices=idx,
                    gathers=gathers,
                    compute=compute,
                    store=store,
                    last_in_row=last,
                )
            )
            tile_id += 1
    return SparseProgram(
        name=name,
        tiles=tiles,
        rowptr=weights.rowptr.copy(),
        col_stream=weights.col_indices.astype(np.int64).copy(),
        gather_streams=streams,
        config=cfg,
    )
