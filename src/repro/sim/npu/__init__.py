"""NPU-side simulator components.

* :mod:`repro.sim.npu.isa` — coarse-grained vector instructions and their
  micro-op (line-batch) decomposition.
* :mod:`repro.sim.npu.program` — :class:`SparseProgram`: the lowered tile
  stream a workload executes, plus loop/boundary metadata.
* :mod:`repro.sim.npu.sparse_unit` — the sparse operators unit whose
  registers NVR snoops and whose ``sparse_func`` it borrows when idle.
* :mod:`repro.sim.npu.systolic` — ScaleSim-flavoured compute-time model.
* :mod:`repro.sim.npu.executor` — in-order and ideal-OoO execution engines.
"""

from .isa import TileCompute, VectorGather, VectorLoad, VectorStore
from .program import (
    GatherStream,
    ProgramConfig,
    SparseProgram,
    Tile,
    build_one_side_program,
)
from .sparse_unit import SparseUnit
from .systolic import SystolicConfig, SystolicModel
from .two_side import build_two_side_program

__all__ = [
    "GatherStream",
    "ProgramConfig",
    "build_two_side_program",
    "SparseProgram",
    "SparseUnit",
    "SystolicConfig",
    "SystolicModel",
    "Tile",
    "TileCompute",
    "VectorGather",
    "VectorLoad",
    "VectorStore",
    "build_one_side_program",
]
