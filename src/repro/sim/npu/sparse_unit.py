"""The NPU's sparse operators unit.

This unit owns the three sparse processing steps of Sec. II-A — align,
skip, tile — and, crucially for NVR, the ``sparse_func`` index-to-address
mapping (identity/affine for CSR matrices, hash/rulebook lookups for point
clouds). Its architectural registers (current row, ``IdxPtr`` window,
sparse mode) are what the snoopers read, and its idle cycles are the
compute resource runahead borrows (Q&A3 in Sec. III).

The unit is deliberately the *only* object able to evaluate ``sparse_func``:
baseline prefetchers (stream/IMP/DVR) have no access to it, reproducing the
capability gap the paper identifies.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...errors import SimulationError
from .program import SparseProgram


@dataclass
class SparseUnitRegisters:
    """Snooper-visible architectural state (read-only probes)."""

    current_row: int = 0
    idxptr_start: int = 0
    idxptr_end: int = 0
    sparse_mode: str = "csr"


class SparseUnit:
    """Sparse processing unit with occupancy tracking.

    The executor calls :meth:`occupy` while a tile's align/skip work runs;
    NVR's controller calls :meth:`next_idle` to schedule speculative
    address computations only in the gaps ("during NPU sparse unit idle
    periods").
    """

    def __init__(self, program: SparseProgram) -> None:
        self._program = program
        self.registers = SparseUnitRegisters(
            sparse_mode="hash"
            if any(not g.affine for g in program.gather_streams.values())
            else "csr"
        )
        self._busy_until = 0
        self.busy_cycles = 0
        self.runahead_grants = 0

    # -- architectural state updated by the executor -----------------------
    def set_position(self, row: int, j_start: int, j_end: int) -> None:
        """Update the snooper-visible row window (IdxPtr start/end)."""
        self.registers.current_row = row
        self.registers.idxptr_start = j_start
        self.registers.idxptr_end = j_end

    def occupy(self, start: int, cycles: int) -> None:
        """Mark the unit busy for its own (non-speculative) work."""
        if cycles <= 0:
            return
        self._busy_until = max(self._busy_until, start) + cycles
        self.busy_cycles += cycles

    # -- services used by NVR ----------------------------------------------
    def next_idle(self, now: int) -> int:
        """Earliest cycle at or after ``now`` when the unit is free."""
        return max(now, self._busy_until)

    def grant_runahead(self, now: int, cycles: int) -> int:
        """Reserve the unit for a speculative burst; returns its start time.

        Runahead work queues behind real work — it never preempts, which
        is the non-invasive guarantee of the design philosophy.
        """
        start = self.next_idle(now)
        self._busy_until = start + cycles
        self.runahead_grants += 1
        return start

    def resolve(self, stream_id: int, idx: int) -> int:
        """Evaluate ``sparse_func`` for one index: the gather's byte address.

        Only the sparse unit can do this — it is the hardware that owns
        the hash tables / rulebooks. NVR calls it during runahead; no
        baseline prefetcher may.
        """
        stream = self._program.gather_streams.get(stream_id)
        if stream is None:
            raise SimulationError(f"unknown gather stream {stream_id}")
        return stream.address(idx)

    def rowptr_window(self, row: int) -> tuple[int, int]:
        """Snooped ``(rowptr[row], rowptr[row+1])`` — the LBD's sparse bound."""
        rowptr = self._program.rowptr
        if row < 0 or row >= len(rowptr) - 1:
            raise SimulationError(f"row {row} out of range")
        return int(rowptr[row]), int(rowptr[row + 1])

    def gather_stream_ids(self) -> list[int]:
        """Stream ids of the indirect gathers this program performs."""
        return sorted(self._program.gather_streams)

    def utilisation(self, elapsed: int) -> float:
        """Busy fraction, for reporting the idle slack runahead exploits."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / elapsed)
