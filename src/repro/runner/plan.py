"""Sweep plans: declarative simulation points and their expansion.

A :class:`RunSpec` is the unit of work of the whole reproduction: one
(workload, mechanism, dtype, nsb, scale, seed) simulation point, plus the
optional memory-hierarchy and NVR-tuning overrides the sensitivity studies
sweep. Every figure runner, the ``sweep`` CLI and the benchmarks express
their work as a flat list of specs — a *plan* — and hand it to
:class:`~repro.runner.pool.SweepRunner`, which deduplicates, caches and
parallelises the execution.

Specs are deliberately restricted to JSON-able scalars so that

* they pickle cheaply across worker processes,
* :meth:`RunSpec.key` yields a canonical string that content-addresses
  the on-disk result cache, and
* identical points submitted by different figures collapse to one run.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import asdict, dataclass, fields

from ..core.controller import NVRConfig
from ..core.nsb import nsb_config
from ..errors import ConfigError
from ..sim.memory.cache import CacheConfig
from ..sim.memory.hierarchy import MemoryConfig, default_l2_config
from ..utils import KIB

Scalar = bool | int | float | str


def shape_l2(size_kib: int) -> CacheConfig:
    """Shape an L2 of ``size_kib`` with power-of-two sets (Fig. 9 sweep)."""
    size_bytes = size_kib * KIB
    n_lines = size_bytes // 64
    assoc = 8
    while n_lines % assoc or (n_lines // assoc) & (n_lines // assoc - 1):
        assoc += 1
        if assoc > n_lines:
            raise ConfigError(f"cannot shape a {size_kib} KiB L2")
    return CacheConfig(
        size_bytes=size_bytes,
        assoc=assoc,
        line_bytes=64,
        hit_latency=18,
        mshr_entries=64,
        name="l2",
    )


@dataclass(frozen=True)
class MemorySpec:
    """JSON-able memory hierarchy override for a :class:`RunSpec`.

    ``None`` fields keep the paper's defaults (256 KiB L2, no NSB). The
    NSB configured here takes precedence over ``RunSpec.nsb``, which only
    toggles the default 16 KiB buffer.
    """

    l2_kib: int | None = None
    nsb_kib: int | None = None
    cpu_traffic: bool = False

    def build(self) -> MemoryConfig:
        l2 = (
            shape_l2(self.l2_kib)
            if self.l2_kib is not None
            else default_l2_config()
        )
        nsb = (
            nsb_config(size_kib=self.nsb_kib)
            if self.nsb_kib is not None
            else None
        )
        memory = MemoryConfig(l2=l2, nsb=nsb)
        if self.cpu_traffic:
            memory = memory.with_cpu_traffic()
        return memory


@dataclass(frozen=True)
class NVRSpec:
    """JSON-able NVR tuning override; ``None`` fields keep the defaults."""

    vector_width: int | None = None
    depth_tiles: int | None = None
    fuzz_vectors: int | None = None
    approximate: bool | None = None
    approximate_confidence: int | None = None
    confirm_stride: int | None = None

    def build(self) -> NVRConfig:
        overrides = {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if getattr(self, f.name) is not None
        }
        return NVRConfig(**overrides)


@dataclass(frozen=True)
class RunSpec:
    """One point of a sweep plan.

    ``kind`` selects the worker: ``"sim"`` runs the full simulator and
    yields a :class:`~repro.sim.soc.RunResult`; ``"trace"`` only lowers
    the workload and yields its :class:`~repro.workloads.base.TraceStats`
    (the Table II path).
    """

    workload: str
    mechanism: str = "nvr"
    dtype: str = "fp16"
    nsb: bool = False
    scale: float = 1.0
    seed: int = 0
    with_base: bool = False
    memory: MemorySpec | None = None
    nvr: NVRSpec | None = None
    workload_args: tuple[tuple[str, Scalar], ...] = ()
    kind: str = "sim"

    def __post_init__(self) -> None:
        if self.kind not in ("sim", "trace"):
            raise ConfigError(f"unknown spec kind '{self.kind}'")
        # Validate here, in the submitting process, so a bad dtype is a
        # ConfigError at plan build time rather than a KeyError re-raised
        # out of a worker future.
        from ..api import _elem_bytes

        _elem_bytes(self.dtype)
        for key, value in self.workload_args:
            if not isinstance(value, (bool, int, float, str)):
                raise ConfigError(
                    f"workload arg '{key}' must be a scalar, got "
                    f"{type(value).__name__}"
                )
        # Canonical types and argument order, so equal points (scale=1 vs
        # scale=1.0, nsb=1 vs nsb=True) hash to equal content keys.
        # workload_args values are deliberately NOT coerced: they are
        # forwarded verbatim to the builders, so their type is part of
        # the point's identity.
        object.__setattr__(self, "scale", float(self.scale))
        object.__setattr__(self, "seed", int(self.seed))
        object.__setattr__(self, "nsb", bool(self.nsb))
        object.__setattr__(self, "with_base", bool(self.with_base))
        object.__setattr__(
            self, "workload_args", tuple(sorted(self.workload_args))
        )

    # -- identity ------------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-scalar dict (JSON round-trippable via :meth:`from_dict`)."""
        d = asdict(self)
        d["workload_args"] = [list(pair) for pair in self.workload_args]
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "RunSpec":
        d = dict(d)
        if d.get("memory") is not None:
            d["memory"] = MemorySpec(**d["memory"])
        if d.get("nvr") is not None:
            d["nvr"] = NVRSpec(**d["nvr"])
        d["workload_args"] = tuple(
            (k, v) for k, v in d.get("workload_args", ())
        )
        return cls(**d)

    def key(self) -> str:
        """Canonical serialisation — the cache's content address."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def label(self) -> str:
        """Short human-readable form for progress lines."""
        parts = [self.workload, self.mechanism, self.dtype]
        if self.nsb or (self.memory is not None and self.memory.nsb_kib):
            parts.append("nsb")
        text = "/".join(parts) + f" x{self.scale:g} s{self.seed}"
        if self.memory is not None and self.memory.l2_kib:
            text += f" l2={self.memory.l2_kib}K"
        if self.workload_args:
            text += " " + ",".join(f"{k}={v}" for k, v in self.workload_args)
        if self.kind == "trace":
            text = f"trace:{self.workload} x{self.scale:g} s{self.seed}"
        return text


def _tuple(value) -> tuple:
    """Normalise an expansion axis: scalars become one-element tuples."""
    if isinstance(value, (list, tuple)):
        return tuple(value)
    return (value,)


def expand(
    workloads,
    mechanisms="nvr",
    dtypes="fp16",
    nsb=False,
    scales=1.0,
    seeds=0,
    with_base: bool = False,
    memory: MemorySpec | None = None,
    nvr: NVRSpec | None = None,
    workload_args: tuple[tuple[str, Scalar], ...] = (),
    kind: str = "sim",
) -> list[RunSpec]:
    """Cartesian-product plan expansion, in deterministic order.

    Every axis accepts a scalar or a sequence; the expansion order is
    workload-major (workload, mechanism, dtype, nsb, scale, seed), matching
    the paper figures' bar order.
    """
    return [
        RunSpec(
            workload=w,
            mechanism=m,
            dtype=d,
            nsb=n,
            scale=sc,
            seed=sd,
            with_base=with_base,
            memory=memory,
            nvr=nvr,
            workload_args=workload_args,
            kind=kind,
        )
        for w, m, d, n, sc, sd in itertools.product(
            _tuple(workloads),
            _tuple(mechanisms),
            _tuple(dtypes),
            _tuple(nsb),
            _tuple(scales),
            _tuple(seeds),
        )
    ]
