"""Sweep plans: declarative simulation points and their expansion.

A :class:`RunSpec` is the unit of work of the whole reproduction: one
(workload, dtype, scale, seed) trace paired with a full
:class:`~repro.spec.SystemSpec` platform description. Every figure
runner, the ``sweep``/``ablate`` CLIs and the benchmarks express their
work as a flat list of specs — a *plan* — and hand it to
:class:`~repro.runner.pool.SweepRunner`, which deduplicates, caches and
parallelises the execution.

Specs serialise to canonical JSON (:meth:`RunSpec.key`), including every
object-valued override — memory hierarchies, NVR tuning, executor
widths — so that

* they pickle cheaply across worker processes,
* the key content-addresses the on-disk result cache, and
* identical points submitted by different figures collapse to one run.

The ``mechanism``/``nsb``/``memory``/``nvr``/``executor`` constructor
arguments are conveniences: ``__post_init__`` folds them into one
canonical ``system`` field, so two specs describing the same platform
compare (and hash) equal however they were written.

:class:`Plan` wraps a spec list in a versioned wire format
(``to_json``/``from_json``) and shards it deterministically, so compiled
plans can leave the process and run on machines that share nothing but a
filesystem (see :mod:`repro.runner.worker`).
"""

from __future__ import annotations

import itertools
import json
import os
from dataclasses import dataclass, field, fields
from pathlib import Path

from ..core.controller import NVRConfig
from ..core.nsb import nsb_config
from ..errors import ConfigError
from ..sim.memory.cache import CacheConfig
from ..sim.memory.hierarchy import MemoryConfig, default_l2_config
from ..sim.npu.executor import ExecutorConfig
from ..spec import SystemSpec, canonical_json, parse_json
from ..utils import KIB
from ..workloads.registry import elem_bytes

Scalar = bool | int | float | str


def shape_l2(size_kib: int) -> CacheConfig:
    """Shape an L2 of ``size_kib`` with power-of-two sets (Fig. 9 sweep)."""
    size_bytes = size_kib * KIB
    n_lines = size_bytes // 64
    assoc = 8
    while n_lines % assoc or (n_lines // assoc) & (n_lines // assoc - 1):
        assoc += 1
        if assoc > n_lines:
            raise ConfigError(f"cannot shape a {size_kib} KiB L2")
    return CacheConfig(
        size_bytes=size_bytes,
        assoc=assoc,
        line_bytes=64,
        hit_latency=18,
        mshr_entries=64,
        name="l2",
    )


@dataclass(frozen=True)
class MemorySpec:
    """Shorthand memory override: sizes in KiB, defaults elsewhere.

    A convenience for the Fig. 9-style grids; ``build()`` expands it to
    the full :class:`~repro.sim.memory.hierarchy.MemoryConfig` that the
    canonical :class:`~repro.spec.SystemSpec` carries. An NSB belongs in
    exactly one place: size it here via ``nsb_kib``, *or* request the
    default 16 KiB buffer with ``RunSpec.nsb=True`` — combining the two
    is a :class:`~repro.errors.ConfigError`.
    """

    l2_kib: int | None = None
    nsb_kib: int | None = None
    cpu_traffic: bool = False

    def build(self) -> MemoryConfig:
        l2 = shape_l2(self.l2_kib) if self.l2_kib is not None else default_l2_config()
        nsb = nsb_config(size_kib=self.nsb_kib) if self.nsb_kib is not None else None
        memory = MemoryConfig(l2=l2, nsb=nsb)
        if self.cpu_traffic:
            memory = memory.with_cpu_traffic()
        return memory


@dataclass(frozen=True)
class NVRSpec:
    """Shorthand NVR tuning override; ``None`` fields keep the defaults."""

    vector_width: int | None = None
    depth_tiles: int | None = None
    fuzz_vectors: int | None = None
    approximate: bool | None = None
    approximate_confidence: int | None = None
    confirm_stride: int | None = None

    def build(self) -> NVRConfig:
        overrides = {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if getattr(self, f.name) is not None
        }
        return NVRConfig(**overrides)


@dataclass(frozen=True)
class RunSpec:
    """One point of a sweep plan.

    ``kind`` selects the worker: ``"sim"`` runs the full simulator and
    yields a :class:`~repro.sim.soc.RunResult`; ``"trace"`` only lowers
    the workload and yields its :class:`~repro.workloads.base.TraceStats`
    (the Table II path).

    The platform side lives in ``system``; pass either a ready
    :class:`~repro.spec.SystemSpec` or the convenience arguments
    (``mechanism``, ``nsb``, ``memory``, ``nvr``, ``executor``,
    ``engine``) — never both. ``memory``/``nvr`` accept the shorthand
    :class:`MemorySpec`/:class:`NVRSpec` or full config objects;
    ``engine`` picks the simulation kernel (``"vectorized"`` or the
    default reference kernels — a speed knob, never a results knob).
    """

    workload: str
    mechanism: str | None = None  # default "nvr"; None detects conflicts
    dtype: str = "fp16"
    nsb: bool | None = None  # default False; None detects conflicts
    scale: float = 1.0
    seed: int = 0
    with_base: bool = False
    memory: MemorySpec | MemoryConfig | None = None
    nvr: NVRSpec | NVRConfig | None = None
    executor: ExecutorConfig | None = None
    engine: str | None = None  # simulation kernel; None = reference
    workload_args: tuple[tuple[str, Scalar], ...] = ()
    kind: str = "sim"
    system: SystemSpec | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("sim", "trace"):
            raise ConfigError(f"unknown spec kind '{self.kind}'")
        # Validate here, in the submitting process, so a bad dtype is a
        # ConfigError at plan build time rather than a KeyError re-raised
        # out of a worker future.
        elem_bytes(self.dtype)
        for key, value in self.workload_args:
            if not isinstance(value, (bool, int, float, str)):
                raise ConfigError(
                    f"workload arg '{key}' must be a scalar, got "
                    f"{type(value).__name__}"
                )
        # Canonical types and argument order, so equal points (scale=1 vs
        # scale=1.0, nsb=1 vs nsb=True) hash to equal content keys.
        # workload_args values are deliberately NOT coerced: they are
        # forwarded verbatim to the builders, so their type is part of
        # the point's identity.
        object.__setattr__(self, "scale", float(self.scale))
        object.__setattr__(self, "seed", int(self.seed))
        object.__setattr__(self, "with_base", bool(self.with_base))
        object.__setattr__(self, "workload_args", tuple(sorted(self.workload_args)))
        # Fold the convenience platform arguments into one canonical
        # SystemSpec, then clear them: the spec's identity (equality,
        # key(), pickle payload) lives in `system` alone.
        if self.system is not None:
            if (
                self.memory is not None
                or self.nvr is not None
                or self.executor is not None
            ):
                raise ConfigError(
                    "pass the platform either as system= or as "
                    "memory=/nvr=/executor= overrides, not both"
                )
            # mechanism/nsb may be omitted or repeated consistently —
            # but an *explicit conflicting* value must not be silently
            # overwritten by the system's (hence the None sentinels).
            if self.mechanism is not None and self.mechanism != self.system.mechanism:
                raise ConfigError(
                    f"mechanism='{self.mechanism}' conflicts with "
                    f"system.mechanism='{self.system.mechanism}'"
                )
            if self.nsb is not None and bool(self.nsb) != self.system.nsb:
                raise ConfigError(
                    f"nsb={bool(self.nsb)} conflicts with "
                    f"system.nsb={self.system.nsb} (set nsb on the "
                    "SystemSpec instead)"
                )
            engine = None if self.engine == "reference" else self.engine
            if engine is not None and engine != self.system.engine:
                raise ConfigError(
                    f"engine='{self.engine}' conflicts with "
                    f"system.engine={self.system.engine!r} (set engine on "
                    "the SystemSpec instead)"
                )
        else:
            memory = (
                self.memory.build()
                if isinstance(self.memory, MemorySpec)
                else self.memory
            )
            nvr = self.nvr.build() if isinstance(self.nvr, NVRSpec) else self.nvr
            object.__setattr__(
                self,
                "system",
                SystemSpec(
                    mechanism=(self.mechanism if self.mechanism is not None else "nvr"),
                    nsb=bool(self.nsb) if self.nsb is not None else False,
                    memory=memory,
                    nvr=nvr,
                    executor=self.executor,
                    engine=self.engine,
                ),
            )
        object.__setattr__(self, "mechanism", self.system.mechanism)
        object.__setattr__(self, "nsb", self.system.nsb)
        object.__setattr__(self, "engine", self.system.engine)
        object.__setattr__(self, "memory", None)
        object.__setattr__(self, "nvr", None)
        object.__setattr__(self, "executor", None)
        # The spec is frozen, so its content key can never go stale —
        # compute it once here rather than re-serialising the nested
        # system dict at every dedupe/cache/hash call site.
        object.__setattr__(self, "_key", canonical_json(self.to_dict()))

    # -- identity ------------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-scalar dict (JSON round-trippable via :meth:`from_dict`)."""
        return {
            "workload": self.workload,
            "dtype": self.dtype,
            "scale": self.scale,
            "seed": self.seed,
            "with_base": self.with_base,
            "workload_args": [list(pair) for pair in self.workload_args],
            "kind": self.kind,
            "system": self.system.to_dict(),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "RunSpec":
        d = dict(d)
        d["workload_args"] = tuple((k, v) for k, v in d.get("workload_args", ()))
        if "system" in d:
            d["system"] = SystemSpec.from_dict(d["system"])
            return cls(**d)
        # Legacy (PR-1) layout: mechanism/nsb at top level, shorthand
        # memory/nvr override dicts.
        if d.get("memory") is not None:
            d["memory"] = MemorySpec(**d["memory"])
        if d.get("nvr") is not None:
            d["nvr"] = NVRSpec(**d["nvr"])
        return cls(**d)

    def with_engine(self, engine: str | None) -> "RunSpec":
        """A copy of this point on another simulation kernel.

        The engine axis is a pure speed knob, so the copy describes the
        same experiment — only the kernel dispatch (and therefore the
        cache key) changes. Trace points and no-op changes return
        ``self``.
        """
        if self.kind != "sim":
            return self
        if engine == "reference":
            engine = None
        if engine == self.engine:
            return self
        d = self.to_dict()
        system = dict(d["system"])
        if engine is None:
            system.pop("engine", None)
        else:
            system["engine"] = engine
        d["system"] = system
        return RunSpec.from_dict(d)

    def key(self) -> str:
        """Canonical serialisation — the cache's content address."""
        return self._key

    def __hash__(self) -> int:
        # The generated frozen-dataclass hash would raise on the
        # (non-frozen) config objects inside `system`; the canonical key
        # already is the spec's identity.
        return hash(self._key)

    def label(self) -> str:
        """Short human-readable form for progress lines."""
        if self.kind == "trace":
            return f"trace:{self.workload} x{self.scale:g} s{self.seed}"
        text = (
            f"{self.workload}/{self.system.label()}/{self.dtype}"
            f" x{self.scale:g} s{self.seed}"
        )
        if self.workload_args:
            text += " " + ",".join(f"{k}={v}" for k, v in self.workload_args)
        return text


def _tuple(value) -> tuple:
    """Normalise an expansion axis: scalars become one-element tuples."""
    if isinstance(value, (list, tuple)):
        return tuple(value)
    return (value,)


def expand(
    workloads,
    mechanisms="nvr",
    dtypes="fp16",
    nsb=False,
    scales=1.0,
    seeds=0,
    with_base: bool = False,
    memory: MemorySpec | MemoryConfig | None = None,
    nvr: NVRSpec | NVRConfig | None = None,
    executor: ExecutorConfig | None = None,
    engines=None,
    workload_args: tuple[tuple[str, Scalar], ...] = (),
    kind: str = "sim",
) -> list[RunSpec]:
    """Cartesian-product plan expansion, in deterministic order.

    Every axis accepts a scalar or a sequence; the expansion order is
    workload-major (workload, mechanism, dtype, nsb, scale, seed, engine),
    matching the paper figures' bar order. ``engines`` is the
    simulation-kernel axis (``None``/``"reference"``/``"vectorized"``) —
    sweeping it reruns identical platforms through different kernels,
    which is exactly what the engine-equivalence tests do.
    """
    return [
        RunSpec(
            workload=w,
            mechanism=m,
            dtype=d,
            nsb=n,
            scale=sc,
            seed=sd,
            with_base=with_base,
            memory=memory,
            nvr=nvr,
            executor=executor,
            engine=e,
            workload_args=workload_args,
            kind=kind,
        )
        for w, m, d, n, sc, sd, e in itertools.product(
            _tuple(workloads),
            _tuple(mechanisms),
            _tuple(dtypes),
            _tuple(nsb),
            _tuple(scales),
            _tuple(seeds),
            _tuple(engines),
        )
    ]


#: Wire-format version of plan/shard files. Bump on incompatible layout
#: changes; readers reject other versions instead of mis-parsing them.
PLAN_FORMAT = 1


@dataclass
class Plan:
    """A wire-format sweep plan: an ordered list of :class:`RunSpec` points.

    The unit that leaves the process: ``to_json``/``from_json`` round-trip
    every spec (via its canonical :class:`~repro.spec.SystemSpec` dict),
    so a plan compiled on one machine can be sharded, shipped to workers
    that share nothing but a filesystem, and executed bit-identically.
    ``meta`` carries free-form provenance (source command, scale, shard
    coordinates); it never contributes to any content address.
    """

    specs: list[RunSpec] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.specs)

    def unique_specs(self) -> list[RunSpec]:
        """The deduplicated points, sorted by content key.

        Sorting by key makes the order a function of plan *content* —
        two plans listing the same points in different orders dedupe,
        shard and merge identically.
        """
        unique = {spec.key(): spec for spec in self.specs}
        return [unique[key] for key in sorted(unique)]

    # -- wire format ---------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "format": PLAN_FORMAT,
            "meta": self.meta,
            "specs": [spec.to_dict() for spec in self.specs],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Plan":
        if not isinstance(d, dict):
            raise ConfigError(f"plan must be a dict, got {type(d).__name__}")
        version = d.get("format")
        if version != PLAN_FORMAT:
            raise ConfigError(
                f"unsupported plan format {version!r} "
                f"(this reader understands format {PLAN_FORMAT})"
            )
        unknown = sorted(set(d) - {"format", "meta", "specs"})
        if unknown:
            raise ConfigError(f"unknown plan field(s): {', '.join(unknown)}")
        specs_d = d.get("specs")
        if not isinstance(specs_d, list):
            raise ConfigError("plan 'specs' must be a list")
        meta = d.get("meta", {})
        if not isinstance(meta, dict):
            raise ConfigError("plan 'meta' must be an object")
        specs = []
        for i, spec_d in enumerate(specs_d):
            if not isinstance(spec_d, dict):
                raise ConfigError(f"plan spec #{i} must be an object")
            try:
                specs.append(RunSpec.from_dict(spec_d))
            except ConfigError as exc:
                raise ConfigError(f"plan spec #{i}: {exc}") from None
            except TypeError as exc:
                raise ConfigError(
                    f"plan spec #{i} has unknown or missing fields: {exc}"
                ) from None
        return cls(specs=specs, meta=meta)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=1, sort_keys=True, allow_nan=False)

    @classmethod
    def from_json(cls, text: str) -> "Plan":
        return cls.from_dict(parse_json(text, "plan"))

    def save(self, path: str | os.PathLike) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n", encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: str | os.PathLike) -> "Plan":
        try:
            text = Path(path).read_text(encoding="utf-8")
        except OSError as exc:
            raise ConfigError(f"cannot read plan file {path}: {exc}") from None
        try:
            return cls.from_json(text)
        except ConfigError as exc:
            raise ConfigError(f"{path}: {exc}") from None

    # -- sharding ------------------------------------------------------------

    def shard(self, shards: int) -> list["Plan"]:
        """Partition into ``shards`` deterministic sub-plans.

        The unique points, sorted by content key, are dealt round-robin —
        so the partition depends only on (plan content, shard count), the
        shards are balanced to within one spec, and every point appears in
        exactly one shard. Shards may be empty when ``shards`` exceeds the
        number of unique points.
        """
        if shards < 1:
            raise ConfigError(f"shard count must be >= 1, got {shards}")
        unique = self.unique_specs()
        return [
            Plan(
                specs=unique[index::shards],
                meta={
                    **self.meta,
                    "shard": {"index": index, "of": shards},
                },
            )
            for index in range(shards)
        ]
