"""Shard execution and result merging: the distributed worker side.

A worker is any process (usually ``python -m repro worker run`` on
another machine) that can import ``repro`` and see a shard file. It
owes the submitter nothing but a result file::

    shard.json      a wire-format Plan (usually one Plan.shard() output)
    results.json    {"format": 1, "results": [{"key", "spec", "payload"}]}

Every record is content-addressed: ``key`` is the executed
``RunSpec.key()`` and ``payload`` the pure-JSON result — exactly the
bytes :func:`~repro.runner.pool.execute_spec` would produce anywhere,
so merged results are bit-identical to local execution.

:func:`merge_results` folds result files back into a
:class:`~repro.runner.cache.ResultCache`, after which figure runners
and sweeps consume them as ordinary warm cache hits. The merge runs
under the cache's inter-process lock so a concurrent ``repro cache gc``
cannot collect entries out from under it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import ConfigError
from ..spec import parse_json
from .cache import ResultCache, atomic_write_json
from .plan import PLAN_FORMAT, Plan, RunSpec
from .progress import NullProgress


def run_shard(plan: Plan, jobs: int = 1, progress=None) -> list[dict]:
    """Execute a shard and return its content-addressed result records.

    Points are deduplicated and executed in key order (one record per
    unique spec), inline by default or across a local process pool with
    ``jobs > 1``. Workers are cache-less on purpose: their results are
    merged into the *submitter's* cache, so a worker machine needs no
    state beyond the shard file.
    """
    from .backend import LocalPoolBackend  # circular at import time only

    progress = progress if progress is not None else NullProgress()
    pending = [(spec.key(), spec) for spec in plan.unique_specs()]
    progress.plan_started(len(plan.specs), len(pending), 0)
    backend = LocalPoolBackend(jobs=jobs)
    payloads: dict[str, tuple[RunSpec, dict]] = {}
    try:
        done = 0
        for key, spec, payload in backend.run(pending):
            payloads[key] = (spec, payload)
            done += 1
            progress.point_done(spec.label(), "run", done, len(pending))
    finally:
        backend.close()
    progress.plan_finished(len(pending), 0, 0.0)
    return [
        {"key": key, "spec": spec.to_dict(), "payload": payload}
        for key, (spec, payload) in sorted(payloads.items())
    ]


def write_results(path: str | os.PathLike, records: list[dict]) -> Path:
    """Atomically write a worker result file (temp file + rename)."""
    return atomic_write_json(path, {"format": PLAN_FORMAT, "results": records})


def load_results(path: str | os.PathLike) -> list[dict]:
    """Read and validate one worker result file.

    Any malformation — unreadable file, bad JSON, wrong format version,
    a record whose ``key`` does not match its ``spec`` — raises
    :class:`~repro.errors.ConfigError`: merging a corrupt record would
    poison the cache under a wrong content address.
    """
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise ConfigError(f"cannot read result file {path}: {exc}") from None
    document = parse_json(text, f"result file {path}")
    version = document.get("format")
    if version != PLAN_FORMAT:
        raise ConfigError(
            f"{path}: unsupported result format {version!r} "
            f"(this reader understands format {PLAN_FORMAT})"
        )
    records = document.get("results")
    if not isinstance(records, list):
        raise ConfigError(f"{path}: 'results' must be a list")
    for i, record in enumerate(records):
        if not isinstance(record, dict) or not {
            "key", "spec", "payload"
        } <= set(record):
            raise ConfigError(
                f"{path}: result #{i} must be an object with "
                "'key', 'spec' and 'payload'"
            )
        try:
            spec = RunSpec.from_dict(record["spec"])
        except (ConfigError, TypeError) as exc:
            raise ConfigError(f"{path}: result #{i} spec: {exc}") from None
        if spec.key() != record["key"]:
            raise ConfigError(
                f"{path}: result #{i} key does not match its spec — "
                "corrupt or mismatched result file"
            )
        if not isinstance(record["payload"], dict):
            raise ConfigError(f"{path}: result #{i} payload must be an object")
    return records


@dataclass
class MergeReport:
    """What one :func:`merge_results` call folded into the cache."""

    files: int = 0
    records: int = 0
    merged: int = 0
    refreshed: int = 0  # records whose entry already existed
    paths: list[str] = field(default_factory=list)


def merge_results(paths: list[str | os.PathLike], cache: ResultCache) -> MergeReport:
    """Fold worker result files into ``cache`` as ordinary entries.

    Validates every file before writing anything (a corrupt shard result
    aborts the whole merge rather than half-applying), then holds the
    cache lock across the writes so a concurrent ``cache gc`` pass can
    never interleave its scan-and-delete with fresh entries landing.
    """
    loaded = [(Path(p), load_results(p)) for p in paths]
    report = MergeReport(files=len(loaded))
    with cache.lock():
        for path, records in loaded:
            report.paths.append(str(path))
            for record in records:
                # Cheap re-parse: load_results already validated the
                # dict (and its key) — records stay pure wire data.
                spec = RunSpec.from_dict(record["spec"])
                report.records += 1
                if cache.path_for(spec).exists():
                    report.refreshed += 1
                else:
                    report.merged += 1
                cache.put(spec, record["payload"])
    return report
