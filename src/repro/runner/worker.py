"""Shard and queue-unit execution, result files, and merging.

A worker is any process that can import ``repro`` and see the work: a
*shard* worker (``python -m repro worker run``) executes a pre-dealt
wire-format plan file, a *queue* worker (``python -m repro queue
worker``, :func:`run_queue_worker` here) pulls claimable unit files from
a shared :class:`~repro.runner.queue.WorkQueue` directory until told to
stop. Both owe the submitter nothing but result files::

    shard.json      a wire-format Plan (usually one Plan.shard() output)
    results.json    {"format": 1, "results": [{"key", "spec", "payload"}]}

Every record is content-addressed: ``key`` is the executed
``RunSpec.key()`` and ``payload`` the pure-JSON result — exactly the
bytes :func:`~repro.runner.pool.execute_spec` would produce anywhere,
so merged results are bit-identical to local execution.

:func:`merge_results` folds result files back into a
:class:`~repro.runner.cache.ResultCache`, after which figure runners
and sweeps consume them as ordinary warm cache hits. The merge runs
under the cache's inter-process lock so a concurrent ``repro cache gc``
cannot collect entries out from under it.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import ConfigError, ReproError
from ..spec import parse_json
from .cache import ResultCache, atomic_write_json, default_salt
from .plan import PLAN_FORMAT, Plan, RunSpec
from .progress import NullProgress
from .queue import (
    DEFAULT_HEARTBEAT,
    DEFAULT_POLL,
    ClaimedUnit,
    WorkQueue,
)


def run_shard(plan: Plan, jobs: int = 1, progress=None) -> list[dict]:
    """Execute a shard and return its content-addressed result records.

    Points are deduplicated and executed in key order (one record per
    unique spec), inline by default or across a local process pool with
    ``jobs > 1``. Workers are cache-less on purpose: their results are
    merged into the *submitter's* cache, so a worker machine needs no
    state beyond the shard file.
    """
    from .backend import LocalPoolBackend  # circular at import time only

    progress = progress if progress is not None else NullProgress()
    pending = [(spec.key(), spec) for spec in plan.unique_specs()]
    progress.plan_started(len(plan.specs), len(pending), 0)
    backend = LocalPoolBackend(jobs=jobs)
    payloads: dict[str, tuple[RunSpec, dict]] = {}
    try:
        done = 0
        for key, spec, payload in backend.run(pending):
            payloads[key] = (spec, payload)
            done += 1
            progress.point_done(spec.label(), "run", done, len(pending))
    finally:
        backend.close()
    progress.plan_finished(len(pending), 0, 0.0)
    return [
        {"key": key, "spec": spec.to_dict(), "payload": payload}
        for key, (spec, payload) in sorted(payloads.items())
    ]


def _default_worker_id() -> str:
    return f"{socket.gethostname()}:{os.getpid()}"


def _silent(text: str) -> None:
    pass


def _process_unit(
    queue: WorkQueue, unit: ClaimedUnit, worker_id: str, heartbeat: float
) -> str | None:
    """Execute one claimed unit: heartbeat, run, report, clean up.

    The lease is touched from a daemon thread for the whole execution,
    so a healthy-but-slow unit is never recovered out from under us.
    Returns ``None`` on success. Any :class:`Exception` out of the spec
    itself — a :class:`~repro.errors.ReproError`, or a plain bug like a
    ``TypeError`` in the simulator — is *reported* (``failed/`` file,
    returned as text) rather than raised: such errors are deterministic,
    so releasing the unit would just poison the next claimant, and the
    orchestrator surfaces them to the submitter like a local backend
    would. Only interrupts (``KeyboardInterrupt``/``SystemExit``)
    release the unit back into the queue and remove the lease, so an
    interrupted worker leaves nothing orphaned.
    """
    from .pool import execute_spec  # circular at import time only

    stop = threading.Event()

    def beat() -> None:
        while not stop.wait(heartbeat):
            queue.heartbeat(unit)

    thread = threading.Thread(target=beat, daemon=True)
    thread.start()
    try:
        records = []
        for spec in unit.specs:
            payload = execute_spec(spec)
            records.append(
                {
                    "key": spec.key(),
                    "spec": spec.to_dict(),
                    "payload": payload,
                    # Stamped so a reused work dir can never serve a
                    # result computed by a different simulator version
                    # (the orchestrator discards salt mismatches and
                    # re-runs).
                    "salt": default_salt(),
                }
            )
        write_results(queue.result_path(unit.id), records)
    except Exception as exc:
        stop.set()
        thread.join()
        error = (
            str(exc)
            if isinstance(exc, ReproError)
            else f"{type(exc).__name__}: {exc}"
        )
        if len(unit.specs) > 1:
            error = f"{spec.label()}: {error}"
        queue.report_failure(unit.id, worker_id, error)
        queue.complete(unit)
        return error
    except BaseException:
        stop.set()
        thread.join()
        queue.release(unit)
        raise
    stop.set()
    thread.join()
    queue.complete(unit)
    return None


def run_queue_worker(
    work_dir: str | os.PathLike,
    worker_id: str | None = None,
    idle_timeout: float | None = None,
    max_units: int | None = None,
    poll: float = DEFAULT_POLL,
    heartbeat: float = DEFAULT_HEARTBEAT,
    log=None,
) -> int:
    """Pull and execute queue units until stopped; returns units processed.

    The claim/run/report loop behind ``repro queue worker``: claim a
    unit by atomic rename, execute its spec(s) (heartbeating the lease),
    write its result file (one record per spec) — or its failure
    report, when a spec itself raises — and repeat. The loop ends when

    * a ``stop`` sentinel appears in the work directory,
    * ``max_units`` units have been executed, or
    * the queue has been empty for ``idle_timeout`` seconds
      (``None`` = wait for work forever).

    ``log`` is an optional ``callable(str)`` for per-unit progress lines
    (the CLI passes a stderr printer; library callers default silent).
    """
    queue = WorkQueue(work_dir).ensure()
    worker_id = worker_id if worker_id is not None else _default_worker_id()
    emit = log if log is not None else _silent
    done = 0
    idle_since = time.monotonic()
    while True:
        if queue.stop_requested():
            emit(f"worker {worker_id}: stop requested, exiting ({done} done)")
            break
        if max_units is not None and done >= max_units:
            break
        unit = queue.claim_next(worker_id)
        if unit is None:
            if (
                idle_timeout is not None
                and time.monotonic() - idle_since >= idle_timeout
            ):
                emit(f"worker {worker_id}: idle for {idle_timeout:g}s, exiting")
                break
            time.sleep(poll)
            continue
        label = unit.specs[0].label()
        if len(unit.specs) > 1:
            label += f" +{len(unit.specs) - 1} more"
        emit(f"worker {worker_id}: claimed {unit.id[:12]} ({label})")
        error = _process_unit(queue, unit, worker_id, heartbeat)
        done += 1
        queue.record_completion(
            worker_id, points=len(unit.specs), failed=error is not None
        )
        if error is not None:
            emit(f"worker {worker_id}: unit {unit.id[:12]} failed: {error}")
        else:
            emit(f"worker {worker_id}: done {unit.id[:12]} ({done} total)")
        idle_since = time.monotonic()
    return done


def write_results(path: str | os.PathLike, records: list[dict]) -> Path:
    """Atomically write a worker result file (temp file + rename)."""
    return atomic_write_json(path, {"format": PLAN_FORMAT, "results": records})


def load_results(path: str | os.PathLike) -> list[dict]:
    """Read and validate one worker result file.

    Any malformation — unreadable file, bad JSON, wrong format version,
    a record whose ``key`` does not match its ``spec`` — raises
    :class:`~repro.errors.ConfigError`: merging a corrupt record would
    poison the cache under a wrong content address.
    """
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise ConfigError(f"cannot read result file {path}: {exc}") from None
    document = parse_json(text, f"result file {path}")
    version = document.get("format")
    if version != PLAN_FORMAT:
        raise ConfigError(
            f"{path}: unsupported result format {version!r} "
            f"(this reader understands format {PLAN_FORMAT})"
        )
    records = document.get("results")
    if not isinstance(records, list):
        raise ConfigError(f"{path}: 'results' must be a list")
    for i, record in enumerate(records):
        if not isinstance(record, dict) or not {
            "key", "spec", "payload"
        } <= set(record):
            raise ConfigError(
                f"{path}: result #{i} must be an object with "
                "'key', 'spec' and 'payload'"
            )
        try:
            spec = RunSpec.from_dict(record["spec"])
        except (ConfigError, TypeError) as exc:
            raise ConfigError(f"{path}: result #{i} spec: {exc}") from None
        if spec.key() != record["key"]:
            raise ConfigError(
                f"{path}: result #{i} key does not match its spec — "
                "corrupt or mismatched result file"
            )
        if not isinstance(record["payload"], dict):
            raise ConfigError(f"{path}: result #{i} payload must be an object")
    return records


@dataclass
class MergeReport:
    """What one :func:`merge_results` call folded into the cache."""

    files: int = 0
    records: int = 0
    merged: int = 0
    refreshed: int = 0  # records whose entry already existed
    paths: list[str] = field(default_factory=list)


def merge_results(paths: list[str | os.PathLike], cache: ResultCache) -> MergeReport:
    """Fold worker result files into ``cache`` as ordinary entries.

    Validates every file before writing anything (a corrupt shard result
    aborts the whole merge rather than half-applying), then holds the
    cache lock across the writes so a concurrent ``cache gc`` pass can
    never interleave its scan-and-delete with fresh entries landing.
    """
    loaded = [(Path(p), load_results(p)) for p in paths]
    report = MergeReport(files=len(loaded))
    with cache.lock():
        for path, records in loaded:
            report.paths.append(str(path))
            for record in records:
                # Cheap re-parse: load_results already validated the
                # dict (and its key) — records stay pure wire data.
                spec = RunSpec.from_dict(record["spec"])
                report.records += 1
                if cache.path_for(spec).exists():
                    report.refreshed += 1
                else:
                    report.merged += 1
                cache.put(spec, record["payload"])
    return report
