"""Progress reporting for plan execution.

The runner drives a tiny observer protocol — ``plan_started`` /
``point_done`` / ``plan_finished`` (or ``plan_failed`` when the backend
raises mid-plan) — so the CLI can show live progress while library
callers (tests, benchmarks) default to silence. On a TTY the point trail
collapses to one self-overwriting line; when piped, only the per-plan
summary lines are printed so logs stay readable. ``plan_failed`` clears
the live ``\\r`` line before the exception propagates, so a traceback
never glues onto a half-drawn progress trail.
"""

from __future__ import annotations

import sys
import time


class NullProgress:
    """Silent observer: the library default."""

    def plan_started(self, total: int, unique: int, cached: int) -> None:
        pass

    def point_done(self, label: str, source: str, done: int, total: int) -> None:
        pass

    def plan_finished(self, submitted: int, hits: int, elapsed: float) -> None:
        pass

    def plan_failed(self, done: int, total: int, elapsed: float) -> None:
        pass


class Progress(NullProgress):
    """Prints plan progress to a stream (stderr by default)."""

    def __init__(self, stream=None, live: bool | None = None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        isatty = getattr(self.stream, "isatty", lambda: False)
        self.live = live if live is not None else isatty()
        self._start = 0.0
        self._width = 0

    def _emit(self, text: str, end: str = "\n") -> None:
        pad = max(0, self._width - len(text))
        self.stream.write(text + " " * pad + end)
        self.stream.flush()
        self._width = len(text) if end == "\r" else 0

    def plan_started(self, total: int, unique: int, cached: int) -> None:
        self._start = time.time()
        if total != unique:
            shape = f"{total} points ({unique} unique, {cached} cached)"
        else:
            shape = f"{total} points ({cached} cached)"
        self._emit(f"plan: {shape}")

    def point_done(self, label: str, source: str, done: int, total: int) -> None:
        if not self.live:
            return
        self._emit(f"  [{done}/{total}] {label} ({source})", end="\r")

    def plan_finished(self, submitted: int, hits: int, elapsed: float) -> None:
        if self.live:
            self._emit("", end="\r")
        self._emit(
            f"plan done: {submitted} simulated, {hits} cache hits, "
            f"{elapsed:.1f}s"
        )

    def plan_failed(self, done: int, total: int, elapsed: float) -> None:
        if self.live:
            self._emit("", end="\r")
        self._emit(f"plan failed: {done}/{total} points done, {elapsed:.1f}s")
