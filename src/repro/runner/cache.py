"""Content-addressed on-disk result cache.

Every executed :class:`~repro.runner.plan.RunSpec` is memoised as one JSON
file under ``.repro-cache/``::

    .repro-cache/
        ab/
            ab3f...e1.json     # sha256(salt + "\\n" + spec.key())

The key covers the *full* spec (workload, mechanism, dtype, nsb, scale,
seed, overrides) plus a salt that by default embeds a content hash of
the ``repro`` package source: editing any simulator code — or bumping
:data:`CACHE_SALT`, or passing a custom salt — invalidates every prior
entry without touching the files, because lookups simply hash to fresh
paths. Payloads are pure JSON so the cache survives interpreter and
platform changes; a corrupt or truncated file (e.g. a killed writer on a
filesystem without atomic rename) degrades to a miss.

Writes are atomic (temp file + ``os.replace``) so concurrent sweep
processes sharing one cache directory can never observe half-written
entries.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import tempfile
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field
from pathlib import Path

try:  # POSIX; the no-lock fallback keeps single-process use working
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

from ..errors import ConfigError
from ..sim.soc import RunResult
from ..sim.stats import (
    BatchStats,
    LevelStats,
    PrefetchStats,
    RunStats,
    TrafficStats,
)
from ..utils import sanitize_nonfinite
from ..workloads.base import TraceStats
from .plan import RunSpec

#: Schema/version prefix of the cache salt. The effective default salt
#: also folds in a fingerprint of the ``repro`` package source (see
#: :func:`code_fingerprint`), so *any* code edit invalidates the cache —
#: conservative, but it can never serve results from a different
#: simulator than the one on disk. Bump this to orphan old entries even
#: when the code is unchanged (e.g. a payload schema change).
CACHE_SALT = "nvr-sim-v1"

DEFAULT_CACHE_DIR = ".repro-cache"

_FINGERPRINT: str | None = None


def code_fingerprint() -> str:
    """Content hash of every ``repro`` source file (memoised per process).

    Results are a pure function of (spec, simulator code); hashing the
    package source makes the cache self-invalidating on code changes
    instead of trusting a manually-bumped version constant.
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        package_root = Path(__file__).resolve().parents[1]
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _FINGERPRINT = digest.hexdigest()[:16]
    return _FINGERPRINT


def default_salt() -> str:
    return f"{CACHE_SALT}:{code_fingerprint()}"


#: Directory (under the cache root) holding per-tenant namespaces.
TENANTS_DIR = "tenants"

#: Tenant names double as directory names and salt components, so they
#: are restricted to a filesystem- and header-safe alphabet (the server
#: reads them straight out of ``X-Repro-Tenant``).
_TENANT_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


def validate_tenant(name: str) -> str:
    """Check a tenant name against the allowed alphabet; returns it.

    Raises :class:`~repro.errors.ConfigError` on anything that could
    escape the per-tenant directory or smuggle separators into the salt
    (path components, whitespace, a leading dot).
    """
    if not isinstance(name, str) or not _TENANT_RE.match(name):
        raise ConfigError(
            f"invalid tenant name {name!r}: use 1-64 characters from "
            "[A-Za-z0-9._-], not starting with '.' or '-'"
        )
    return name


def tenant_salt(tenant: str, base: str | None = None) -> str:
    """The cache salt of one tenant's namespace.

    Suffixing the (code-fingerprinted) base salt keeps every tenant
    namespace self-invalidating on code changes *and* disjoint from
    every other tenant — two tenants caching the same spec produce
    different content addresses, so neither can read (or evict via
    content-address collision) the other's entries.
    """
    base = base if base is not None else default_salt()
    return f"{base}:tenant:{validate_tenant(tenant)}"


def atomic_write_json(path: str | os.PathLike, document: dict) -> Path:
    """Write ``document`` as canonical JSON via temp file + rename.

    Shared by cache entries and worker result files: concurrent readers
    can never observe a half-written file, a killed writer leaves only a
    ``.tmp`` orphan (swept by cache maintenance), and ``sort_keys`` makes
    the bytes independent of dict insertion order — so a payload rebuilt
    from JSON and a locally-computed one serialise identically. Non-finite
    floats become ``null`` (``allow_nan=False``): a locally-computed
    payload and one that round-tripped through a worker file must keep
    producing the same bytes, so NaN is normalised away before either is
    written.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.stem, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(
                sanitize_nonfinite(document),
                handle,
                separators=(",", ":"),
                sort_keys=True,
                allow_nan=False,
            )
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


_STATS_GROUPS = {
    "nsb": LevelStats,
    "l2": LevelStats,
    "prefetch": PrefetchStats,
    "traffic": TrafficStats,
    "batch": BatchStats,
}


def result_to_payload(result: RunResult) -> dict:
    """Serialise a :class:`RunResult` to a pure-JSON dict.

    Non-finite floats are normalised to ``None`` *here*, at payload
    construction, so the in-memory payload a cold run keeps and the one
    a warm run reads back from JSON (which cannot hold NaN) materialise
    identically.
    """
    d = asdict(result)
    d.pop("stats")
    return sanitize_nonfinite(
        {"kind": "sim", "result": d, "stats": asdict(result.stats)}
    )


def payload_to_result(payload: dict) -> RunResult:
    """Rebuild the :class:`RunResult` stored by :func:`result_to_payload`."""
    stats_d = dict(payload["stats"])
    groups = {name: cls(**stats_d.pop(name)) for name, cls in _STATS_GROUPS.items()}
    return RunResult(stats=RunStats(**groups, **stats_d), **payload["result"])


def trace_to_payload(stats: TraceStats) -> dict:
    """Serialise Table II trace statistics to a pure-JSON dict.

    Non-finite floats become ``None`` (see :func:`result_to_payload`).
    """
    return sanitize_nonfinite({"kind": "trace", "trace": asdict(stats)})


def payload_to_trace(payload: dict) -> TraceStats:
    return TraceStats(**payload["trace"])


def materialise(payload: dict) -> RunResult | TraceStats:
    """Turn a cached payload back into its runner return value."""
    if payload.get("kind") == "trace":
        return payload_to_trace(payload)
    return payload_to_result(payload)


@dataclass
class GCReport:
    """What one :meth:`ResultCache.gc` pass did (or would do)."""

    examined: int = 0
    total_bytes: int = 0
    removed: int = 0
    freed_bytes: int = 0
    kept: int = 0
    kept_bytes: int = 0
    dry_run: bool = field(default=False, compare=False)


class ResultCache:
    """On-disk memo of executed specs, keyed by content address.

    With ``tenant`` set, the cache becomes that tenant's *namespace*
    within the same cache directory: entries live under
    ``<root>/tenants/<tenant>/`` and are addressed with
    :func:`tenant_salt` (the base salt plus a tenant suffix). The
    directory split makes per-tenant accounting and eviction (``repro
    cache gc --tenant``) a plain directory scan; the salt split makes
    the namespaces cryptographically disjoint even if entries are
    copied between directories. A cache without a tenant is the default
    namespace — the one local ``Session`` runs read and write — so
    server results for the default tenant stay bit-identical warm hits
    for local sweeps of the same specs.
    """

    def __init__(
        self,
        root: str | os.PathLike = DEFAULT_CACHE_DIR,
        salt: str | None = None,
        tenant: str | None = None,
    ) -> None:
        self.base_root = Path(root)
        self.base_salt = salt if salt is not None else default_salt()
        self.tenant = validate_tenant(tenant) if tenant is not None else None
        if self.tenant is None:
            self.root = self.base_root
            self.salt = self.base_salt
        else:
            self.root = self.base_root / TENANTS_DIR / self.tenant
            self.salt = tenant_salt(self.tenant, self.base_salt)
        self.hits = 0
        self.misses = 0
        self.writes = 0

    # -- tenancy -------------------------------------------------------------

    def for_tenant(self, tenant: str | None) -> "ResultCache":
        """A sibling cache addressing ``tenant``'s namespace (or the default).

        The returned cache shares this cache's directory root and base
        salt but nothing else — hit/miss counters are per-instance.
        """
        if tenant == self.tenant:
            return self
        return ResultCache(self.base_root, salt=self.base_salt, tenant=tenant)

    def tenants(self) -> list[str]:
        """Tenant namespaces present under this cache's directory root."""
        tenants_root = self.base_root / TENANTS_DIR
        if not tenants_root.is_dir():
            return []
        return sorted(
            p.name
            for p in tenants_root.iterdir()
            if p.is_dir() and _TENANT_RE.match(p.name)
        )

    # -- addressing ----------------------------------------------------------

    def key_for(self, spec: RunSpec) -> str:
        digest = hashlib.sha256()
        digest.update(self.salt.encode())
        digest.update(b"\n")
        digest.update(spec.key().encode())
        return digest.hexdigest()

    def path_for(self, spec: RunSpec) -> Path:
        key = self.key_for(spec)
        return self.root / key[:2] / f"{key}.json"

    # -- concurrency ---------------------------------------------------------

    @contextmanager
    def lock(self):
        """Exclusive inter-process lock over structural cache mutations.

        ``put``/``get`` stay lock-free (atomic rename makes them safe),
        but operations that *scan then delete or bulk-insert* — ``gc``,
        ``clear``, and ``repro plan merge`` folding worker results in —
        must not interleave: a gc pass racing a merge could collect the
        freshly merged entries it never saw get touched. The lock is an
        advisory ``flock`` on ``<root>/.lock`` (waits, never fails);
        holders may call ``put`` freely but must not nest ``lock()``.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        with open(self.root / ".lock", "a", encoding="utf-8") as handle:
            if fcntl is not None:
                fcntl.flock(handle, fcntl.LOCK_EX)
            try:
                yield
            finally:
                if fcntl is not None:
                    fcntl.flock(handle, fcntl.LOCK_UN)

    # -- access --------------------------------------------------------------

    def get(self, spec: RunSpec) -> dict | None:
        """Cached payload for ``spec``, or ``None``; never raises.

        The stored ``salt`` and ``spec`` must match the requesting spec:
        the path already hashes both, but a cache directory copied
        between code versions — or a worker file hand-merged at the
        wrong path — would otherwise be served silently. A mismatched
        entry degrades to a miss, exactly like a corrupt one.
        """
        path = self.path_for(spec)
        try:
            with open(path, encoding="utf-8") as handle:
                entry = json.load(handle)
            payload = entry["payload"]
            if entry["salt"] != self.salt or entry["spec"] != spec.to_dict():
                raise ValueError("entry does not match the requesting spec")
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        try:
            # Touch the entry so LRU eviction (gc) sees hits even on
            # filesystems mounted noatime.
            os.utime(path)
        except OSError:
            pass
        self.hits += 1
        return payload

    def put(self, spec: RunSpec, payload: dict) -> Path:
        """Atomically store ``payload`` for ``spec``; returns the path."""
        entry = {"salt": self.salt, "spec": spec.to_dict(), "payload": payload}
        path = atomic_write_json(self.path_for(spec), entry)
        self.writes += 1
        return path

    # -- maintenance ---------------------------------------------------------

    def entries(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("??/*.json"))

    def __len__(self) -> int:
        return len(self.entries())

    def size_bytes(self) -> int:
        return sum(p.stat().st_size for p in self.entries())

    def clear(self) -> int:
        """Delete every entry; returns how many were removed.

        Also sweeps ``.tmp`` files orphaned by killed writers (mkstemp
        leaves them behind when a process dies between write and rename).
        """
        removed = 0
        with self.lock():
            for path in self.entries():
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
            self._sweep_tmp_files()
        return removed

    def _sweep_tmp_files(self) -> None:
        for path in self.root.glob("??/*.tmp"):
            try:
                path.unlink()
            except OSError:
                pass

    def gc(self, max_bytes: int, dry_run: bool = False) -> "GCReport":
        """Size-bounded LRU eviction: shrink the cache to ``max_bytes``.

        Entries are ranked by last access (``get`` touches entries on
        hit, so warm results survive) and the least-recently-used are
        deleted oldest-first until the remaining payload fits. With
        ``dry_run=True`` nothing is deleted — the report describes what
        *would* go. Orphaned ``.tmp`` files are swept as a side effect
        of a real (non-dry) collection.

        The scan-and-delete pass holds the cache :meth:`lock`, so a
        concurrent ``repro plan merge`` (which locks for its bulk
        insert) can never land fresh worker results between the scan
        and the unlink — one of the two fully precedes the other.
        """
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        with self.lock():
            entries = []
            for path in self.entries():
                try:
                    stat = path.stat()
                except OSError:
                    continue
                entries.append((max(stat.st_atime, stat.st_mtime), path, stat.st_size))
            entries.sort()  # least recently accessed first
            total = sum(size for _, _, size in entries)
            report = GCReport(examined=len(entries), total_bytes=total, dry_run=dry_run)
            for _, path, size in entries:
                if total <= max_bytes:
                    break
                if not dry_run:
                    try:
                        path.unlink()
                    except OSError:
                        continue
                total -= size
                report.removed += 1
                report.freed_bytes += size
            report.kept = report.examined - report.removed
            report.kept_bytes = report.total_bytes - report.freed_bytes
            if not dry_run:
                self._sweep_tmp_files()
        return report
