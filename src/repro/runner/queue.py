"""Pull-based filesystem work queue: units, leases, streamed results.

The third execution model, after the in-process pool and the statically
sharded workers: the submitter *enqueues* cache-missed points as
claimable unit files, and any number of ``repro queue worker`` processes
— started before, during or after the sweep, on any machine sharing the
work directory — *pull* units at their own pace. Static shards deal the
plan once and a dead worker strands its shard; the queue re-deals
automatically, because ownership is a lease that must be heartbeaten.

Layout of a work directory (every transition is an atomic write or
rename, so any number of workers and submitters can share it)::

    work_dir/
        queue/unit-<id>.json     claimable units (one wire-format spec,
                                 or a "specs" list for batched units)
        claimed/unit-<id>.json   claimed units (renamed out of queue/)
        leases/unit-<id>.json    worker identity; mtime is the heartbeat
        results/unit-<id>.json   worker result files (one record/spec)
        failed/unit-<id>.json    spec-failure reports (worker error text)
        stop                     sentinel: workers drain and exit

The unit id is a content address (sha256 of the spec key; a batched
unit hashes all of its keys), so enqueues are idempotent and two
submitters wanting the same point share one unit.

The protocol:

* **claim** — a worker renames ``queue/u`` to ``claimed/u``; the rename
  is atomic, so exactly one claimant wins. It then writes a lease file
  and touches it every ``heartbeat`` seconds while executing.
* **report** — the worker writes ``results/u`` (a standard one-record
  worker result file, validated by
  :func:`~repro.runner.worker.load_results` on the way back and stamped
  with the worker's code-fingerprint salt, so a stale result in a
  reused work directory is discarded and re-run instead of served),
  then removes its claim and lease. A spec that *fails* — a
  :class:`~repro.errors.ReproError` out of the simulator — is reported
  through ``failed/u`` instead: the worker stays alive for other units
  and the orchestrator raises the error, exactly like a local run
  would. Corrupt unit files are quarantined the same way rather than
  poisoning every worker that claims them.
* **recover** — the orchestrator (:class:`QueueBackend`) watches the
  units it is waiting on; a claimed unit whose lease has not been
  touched for ``lease_timeout`` seconds belonged to a crashed (or
  wedged) worker and is renamed back into ``queue/`` for the next
  claimant. Results are a pure function of the spec, so the rare
  double-execution after a *slow* worker is recovered produces
  bit-identical bytes.

:class:`QueueBackend` plugs the queue into the standard
:class:`~repro.runner.backend.Backend` seam: ``repro sweep --backend
queue --work-dir DIR`` (or :meth:`repro.session.Session.remote`) streams
results back as they land, folding each into the submitter's
:class:`~repro.runner.cache.ResultCache` incrementally — so a crashed
*orchestrator* also resumes warm.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import time
from dataclasses import asdict, dataclass
from pathlib import Path

from ..errors import ConfigError, SimulationError
from ..spec import parse_json
from .cache import atomic_write_json, default_salt
from .plan import PLAN_FORMAT, RunSpec

#: Seconds without a lease heartbeat before a claimed unit is considered
#: abandoned and re-enqueued. Overridable per-backend and through the
#: environment (the CI crash-recovery job shortens it).
LEASE_TIMEOUT_ENV = "REPRO_QUEUE_LEASE_TIMEOUT"
DEFAULT_LEASE_TIMEOUT = 30.0

#: How often pollers (orchestrator and idle workers) re-scan, seconds.
DEFAULT_POLL = 0.2

#: How often a busy worker touches its lease, seconds. Must be well
#: under the lease timeout or healthy-but-slow workers get recovered.
DEFAULT_HEARTBEAT = 1.0


def default_lease_timeout() -> float:
    raw = os.environ.get(LEASE_TIMEOUT_ENV)
    if raw is None:
        return DEFAULT_LEASE_TIMEOUT
    try:
        value = float(raw)
    except ValueError:
        raise ConfigError(
            f"${LEASE_TIMEOUT_ENV} must be a number of seconds, got {raw!r}"
        ) from None
    if value <= 0:
        raise ConfigError(f"${LEASE_TIMEOUT_ENV} must be > 0, got {value:g}")
    return value


def unit_id(spec: RunSpec) -> str:
    """Content address of one queue unit (stable across submitters)."""
    return hashlib.sha256(spec.key().encode()).hexdigest()[:32]


def batch_unit_id(specs) -> str:
    """Content address of a unit holding one *or more* specs.

    A single-spec batch addresses identically to :func:`unit_id`, so
    un-batched submitters and ``batch=1`` backends share units.
    """
    if len(specs) == 1:
        return unit_id(specs[0])
    joined = "\n".join(spec.key() for spec in specs)
    return hashlib.sha256(joined.encode()).hexdigest()[:32]


def units_per_minute(stats: dict) -> float:
    """Recent throughput of one worker-stats document, in units/min.

    Measured over the span of the retained completion timestamps (the
    last :attr:`WorkQueue.STATS_TIMESTAMPS` units), so the number keeps
    reflecting *current* pace on long sweeps. Fewer than two recorded
    completions — or a clock that went backwards — reads as 0.0 rather
    than a spurious rate.
    """
    timestamps = [
        t for t in stats.get("timestamps", []) if isinstance(t, (int, float))
    ]
    if len(timestamps) < 2:
        return 0.0
    span = timestamps[-1] - timestamps[0]
    if span <= 0:
        return 0.0
    return 60.0 * (len(timestamps) - 1) / span


@dataclass(frozen=True)
class ClaimedUnit:
    """A unit a worker has exclusive ownership of (claim + lease)."""

    id: str
    specs: tuple[RunSpec, ...]

    @property
    def spec(self) -> RunSpec:
        """The sole spec of a single-spec unit (the common case)."""
        if len(self.specs) != 1:
            raise ValueError(
                f"unit {self.id[:12]} holds {len(self.specs)} specs — "
                "iterate .specs for batched units"
            )
        return self.specs[0]


@dataclass
class QueueStatus:
    """One scan of a work directory (``repro queue status``).

    ``queued_points`` and ``corrupt`` are only populated by a *deep*
    scan (``status(deep=True)``), which reads every queued unit file:
    a batched unit counts one toward ``queued`` but each of its specs
    toward ``queued_points`` (the number the fleet autoscaler actually
    cares about), and an unreadable unit — e.g. a zero-byte file left
    by an interrupted enqueue — is quarantined into ``failed/`` and
    counted in ``corrupt`` instead of ``queued``.
    """

    queued: int = 0
    claimed: int = 0
    expired: int = 0  # claimed units whose lease heartbeat has lapsed
    results: int = 0
    failed: int = 0  # spec-failure reports awaiting their orchestrator
    stopping: bool = False
    queued_points: int = 0  # specs across queued units (deep scan only)
    corrupt: int = 0  # units quarantined by this scan (deep scan only)

    def to_dict(self) -> dict:
        """The scan as a JSON-ready dict.

        The machine-readable contract behind ``repro queue status
        --json`` and the server's ``/v1/stats`` — both consume this
        method, so scripts (fleet autoscalers, dashboards) never have
        to scrape the human-formatted status text.
        """
        return asdict(self)


class WorkQueue:
    """The on-disk queue protocol: enqueue, claim, lease, report, recover.

    Pure mechanism — no policy. Both sides of the protocol
    (:class:`QueueBackend` submitting, :func:`~repro.runner.worker.
    run_queue_worker` consuming) speak through this class, so the
    directory layout and atomicity rules live in exactly one place.
    """

    def __init__(self, work_dir: str | os.PathLike) -> None:
        self.root = Path(work_dir)
        self.queue_dir = self.root / "queue"
        self.claimed_dir = self.root / "claimed"
        self.lease_dir = self.root / "leases"
        self.results_dir = self.root / "results"
        self.failed_dir = self.root / "failed"
        self.workers_dir = self.root / "workers"
        self.stop_path = self.root / "stop"

    def ensure(self) -> "WorkQueue":
        for directory in (
            self.queue_dir,
            self.claimed_dir,
            self.lease_dir,
            self.results_dir,
            self.failed_dir,
        ):
            directory.mkdir(parents=True, exist_ok=True)
        return self

    # -- paths ---------------------------------------------------------------

    def queued_path(self, uid: str) -> Path:
        return self.queue_dir / f"unit-{uid}.json"

    def claimed_path(self, uid: str) -> Path:
        return self.claimed_dir / f"unit-{uid}.json"

    def lease_path(self, uid: str) -> Path:
        return self.lease_dir / f"unit-{uid}.json"

    def result_path(self, uid: str) -> Path:
        return self.results_dir / f"unit-{uid}.json"

    def failed_path(self, uid: str) -> Path:
        return self.failed_dir / f"unit-{uid}.json"

    @staticmethod
    def _uid_of(path: Path) -> str:
        return path.name[len("unit-") : -len(".json")]

    def unit_ids(self, directory: Path) -> set[str]:
        """One readdir's worth of unit ids (results/failed scans)."""
        return {self._uid_of(p) for p in directory.glob("unit-*.json")}

    # -- submitter side ------------------------------------------------------

    def enqueue(self, spec: RunSpec) -> str:
        """Make ``spec`` claimable (idempotent); returns its unit id.

        A unit that is already queued, claimed, or reported is left
        alone — the id is a content address, so a second submitter
        wanting the same point simply waits on the first one's unit.
        """
        return self.enqueue_batch((spec,))

    def enqueue_batch(self, specs) -> str:
        """Make a group of specs claimable as *one* unit; returns its id.

        Batching amortises the per-unit filesystem protocol (claim
        rename, lease writes, result file) over several points — the
        right trade when points are much cheaper than the protocol. A
        single-spec batch writes the classic ``"spec"`` document, so
        ``batch=1`` is byte-identical to the un-batched wire format;
        larger batches write a ``"specs"`` list. The id is a content
        address of the whole group, so identical batches from
        concurrent submitters share one unit (differently-grouped
        overlapping batches re-execute at worst — results are a pure
        function of the spec).
        """
        specs = tuple(specs)
        if not specs:
            raise ConfigError("cannot enqueue an empty batch")
        uid = batch_unit_id(specs)
        if not (
            self.queued_path(uid).exists()
            or self.claimed_path(uid).exists()
            or self.result_path(uid).exists()
        ):
            document: dict = {"format": PLAN_FORMAT, "unit": uid}
            if len(specs) == 1:
                document["spec"] = specs[0].to_dict()
            else:
                document["specs"] = [spec.to_dict() for spec in specs]
            atomic_write_json(self.queued_path(uid), document)
        return uid

    def withdraw(self, uid: str) -> None:
        """Remove a still-unclaimed unit (abandoned sweep cleanup)."""
        self.queued_path(uid).unlink(missing_ok=True)

    def forget(self, uid: str) -> None:
        """Drop every trace of a consumed unit (result already read)."""
        for path in (
            self.result_path(uid),
            self.failed_path(uid),
            self.queued_path(uid),
            self.claimed_path(uid),
            self.lease_path(uid),
        ):
            path.unlink(missing_ok=True)

    def recover_expired(self, lease_timeout: float, uids=None) -> list[str]:
        """Re-enqueue claimed units whose lease stopped heartbeating.

        ``uids`` restricts the scan to the units one orchestrator is
        waiting on (``None`` scans everything — the ``status`` CLI).
        A claim with no lease file at all (the worker died between the
        rename and the lease write) expires on the claim file's own
        mtime. Returns the recovered unit ids.
        """
        recovered = []
        now = time.time()
        if uids is None:
            uids = [self._uid_of(p) for p in self.claimed_dir.glob("unit-*.json")]
        for uid in uids:
            claimed = self.claimed_path(uid)
            lease = self.lease_path(uid)
            try:
                beat = lease.stat().st_mtime
            except OSError:
                try:
                    beat = claimed.stat().st_mtime
                except OSError:
                    continue  # not claimed (anymore)
            if now - beat < lease_timeout:
                continue
            try:
                os.replace(claimed, self.queued_path(uid))
            except OSError:
                continue  # completed or re-claimed under us
            lease.unlink(missing_ok=True)
            recovered.append(uid)
        return recovered

    # -- worker side ---------------------------------------------------------

    def claim_next(self, worker_id: str) -> ClaimedUnit | None:
        """Claim one queued unit via atomic rename, or ``None`` if idle.

        Exactly one claimant wins each unit; losers skip to the next
        file. The winner touches the claim and writes its lease before
        this returns, so the orchestrator's no-lease grace window only
        covers a crash inside this method. A corrupt unit file is
        quarantined as a failure report (and skipped) rather than
        raised: one bad file must not kill every worker that claims it.
        """
        for path in sorted(self.queue_dir.glob("unit-*.json")):
            uid = self._uid_of(path)
            target = self.claimed_path(uid)
            try:
                os.replace(path, target)
            except OSError:
                continue  # lost the race for this unit
            try:
                # os.replace preserves mtime; re-stamp it so the no-lease
                # grace window measures from the claim, not the enqueue.
                os.utime(target)
            except OSError:
                pass
            try:
                specs = self._load_unit(target, uid)
            except ConfigError as exc:
                if not target.exists():
                    # recover_expired() re-enqueued the claim before we
                    # could read it (the no-lease window): a lost race,
                    # not a corrupt unit.
                    continue
                self.report_failure(uid, worker_id, str(exc))
                target.unlink(missing_ok=True)
                continue
            atomic_write_json(
                self.lease_path(uid),
                {"worker": worker_id, "unit": uid, "claimed_at": time.time()},
            )
            return ClaimedUnit(id=uid, specs=specs)
        return None

    def heartbeat(self, unit: ClaimedUnit) -> None:
        """Refresh the lease mtime (ignores a lease recovered from us)."""
        try:
            os.utime(self.lease_path(unit.id))
        except OSError:
            pass

    def release(self, unit: ClaimedUnit) -> None:
        """Return a claimed unit to the queue (interrupted worker)."""
        try:
            os.replace(self.claimed_path(unit.id), self.queued_path(unit.id))
        except OSError:
            pass
        self.lease_path(unit.id).unlink(missing_ok=True)

    def complete(self, unit: ClaimedUnit) -> None:
        """Drop the claim and lease after the result file is in place."""
        self.claimed_path(unit.id).unlink(missing_ok=True)
        self.lease_path(unit.id).unlink(missing_ok=True)

    def report_failure(self, uid: str, worker_id: str, error: str) -> None:
        """Record that a unit's spec itself failed (executed, raised).

        The report is the unit's terminal state for this attempt: the
        orchestrator consumes it and raises the error to the submitter,
        exactly like a local run surfacing the exception — while the
        reporting worker stays alive for other units. Like results, the
        report is salt-stamped so a stale report in a reused work dir
        is discarded instead of aborting a new sweep with an obsolete
        error.
        """
        atomic_write_json(
            self.failed_path(uid),
            {
                "unit": uid,
                "worker": worker_id,
                "error": error,
                "salt": default_salt(),
            },
        )

    def _load_unit(self, path: Path, uid: str) -> tuple[RunSpec, ...]:
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise ConfigError(f"cannot read unit file {path}: {exc}") from None
        document = parse_json(text, f"unit file {path}")
        version = document.get("format")
        if version != PLAN_FORMAT:
            raise ConfigError(
                f"{path}: unsupported unit format {version!r} "
                f"(this reader understands format {PLAN_FORMAT})"
            )
        if "specs" in document:
            raw = document["specs"]
            if not isinstance(raw, list) or not raw:
                raise ConfigError(f"{path}: 'specs' must be a non-empty list")
        else:
            raw = [document.get("spec")]
        try:
            specs = tuple(RunSpec.from_dict(d) for d in raw)
        except (ConfigError, KeyError, TypeError) as exc:
            raise ConfigError(f"{path}: unit spec: {exc}") from None
        if batch_unit_id(specs) != uid:
            raise ConfigError(
                f"{path}: unit id does not match its spec — corrupt or "
                "misplaced unit file"
            )
        return specs

    # -- worker throughput ---------------------------------------------------

    #: Completion timestamps retained per worker stats file — enough to
    #: estimate a recent rate without the file growing with the sweep.
    STATS_TIMESTAMPS = 64

    def worker_stats_path(self, worker_id: str) -> Path:
        """Stats file for one worker id (sanitised to a safe filename)."""
        safe = re.sub(r"[^A-Za-z0-9._-]", "_", worker_id)[:120]
        return self.workers_dir / f"{safe}.json"

    def record_completion(
        self, worker_id: str, points: int = 1, failed: bool = False
    ) -> None:
        """Fold one finished unit into the worker's throughput stats.

        Called by :func:`~repro.runner.worker.run_queue_worker` after
        every unit (success or failure report). The file keeps running
        unit/point/failure counts plus the last
        :data:`STATS_TIMESTAMPS` completion times — the raw material
        for ``repro fleet status``'s units/min column and the server's
        ``/v1/stats``. Best-effort: a corrupt or unwritable stats file
        must never take a worker down, so errors degrade to a fresh
        document (or are swallowed entirely on write).
        """
        path = self.worker_stats_path(worker_id)
        now = time.time()
        try:
            stats = json.loads(path.read_text(encoding="utf-8"))
            if not isinstance(stats, dict):
                raise ValueError("stats file is not an object")
        except (OSError, ValueError):
            stats = {"worker": worker_id, "started_at": now}
        stats["worker"] = worker_id
        stats.setdefault("started_at", now)
        stats["units"] = int(stats.get("units", 0)) + 1
        stats["points"] = int(stats.get("points", 0)) + max(1, int(points))
        stats["failures"] = int(stats.get("failures", 0)) + (1 if failed else 0)
        timestamps = [
            t for t in stats.get("timestamps", []) if isinstance(t, (int, float))
        ]
        timestamps.append(now)
        stats["timestamps"] = timestamps[-self.STATS_TIMESTAMPS :]
        stats["last_done_at"] = now
        try:
            atomic_write_json(path, stats)
        except OSError:  # pragma: no cover - unwritable work dir
            pass

    def worker_stats(self) -> list[dict]:
        """Every worker's recorded stats, sorted by worker id.

        Unreadable files are skipped (a worker may be mid-rewrite on a
        filesystem without atomic rename); consumers get only documents
        that parsed.
        """
        if not self.workers_dir.is_dir():
            return []
        stats = []
        for path in sorted(self.workers_dir.glob("*.json")):
            try:
                doc = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue
            if isinstance(doc, dict) and doc.get("worker"):
                stats.append(doc)
        return sorted(stats, key=lambda d: str(d.get("worker")))

    # -- introspection -------------------------------------------------------

    def stop_requested(self) -> bool:
        return self.stop_path.exists()

    def status(
        self, lease_timeout: float | None = None, deep: bool = False
    ) -> QueueStatus:
        """One scan of the work directory.

        The default scan only counts files. A *deep* scan additionally
        reads every queued unit, counting its specs into
        ``queued_points`` — and quarantines any unit that will not
        parse (a zero-byte file from an interrupted enqueue, truncated
        JSON, a mismatched id) through the same :meth:`report_failure`
        path a worker uses for corrupt claims, so a broken unit is
        diagnosed here instead of crashing whichever worker claims it.
        """
        lease_timeout = (
            lease_timeout if lease_timeout is not None else default_lease_timeout()
        )
        now = time.time()
        expired = 0
        claimed = list(self.claimed_dir.glob("unit-*.json"))
        for path in claimed:
            uid = self._uid_of(path)
            try:
                beat = self.lease_path(uid).stat().st_mtime
            except OSError:
                try:
                    beat = path.stat().st_mtime
                except OSError:
                    continue
            if now - beat >= lease_timeout:
                expired += 1
        queued = 0
        queued_points = 0
        corrupt = 0
        for path in sorted(self.queue_dir.glob("unit-*.json")):
            if not deep:
                queued += 1
                continue
            uid = self._uid_of(path)
            try:
                specs = self._load_unit(path, uid)
            except ConfigError as exc:
                if not path.exists():
                    continue  # claimed under us mid-scan: not ours to judge
                self.report_failure(uid, "status-scan", str(exc))
                path.unlink(missing_ok=True)
                corrupt += 1
                continue
            queued += 1
            queued_points += len(specs)
        return QueueStatus(
            queued=queued,
            claimed=len(claimed),
            expired=expired,
            results=len(list(self.results_dir.glob("unit-*.json"))),
            failed=len(list(self.failed_dir.glob("unit-*.json"))),
            stopping=self.stop_requested(),
            queued_points=queued_points,
            corrupt=corrupt,
        )


def _group_label(group) -> str:
    """Human-readable name for one unit's (key, spec) group."""
    first = group[0][1].label()
    if len(group) == 1:
        return first
    return f"{first} (+{len(group) - 1} more)"


class QueueBackend:
    """Orchestrator side of the queue: enqueue, watch, recover, stream.

    A :class:`~repro.runner.backend.Backend` whose workers are *pulled*,
    not dealt: ``run`` enqueues every pending point, then streams each
    result back the moment its file lands — the runner folds it into the
    cache immediately, so a sweep interrupted at point N resumes with N
    warm hits. Crashed workers are detected by lease expiry and their
    units silently re-enqueued; an interrupted sweep withdraws its
    still-unclaimed units so nothing is orphaned in the queue.

    Attributes:
        work_dir: the shared work directory (required — this is the
            rendezvous point with the workers).
        lease_timeout: seconds without a heartbeat before recovery
            (default ``$REPRO_QUEUE_LEASE_TIMEOUT`` or 30).
        poll: seconds between result/recovery scans.
        timeout: overall seconds to wait per plan before raising
            :class:`~repro.errors.SimulationError` (``None`` waits
            forever — a queue with no workers blocks by design).
        batch: points per queue unit (default 1). Batching amortises
            the claim/lease/result filesystem protocol over ``batch``
            points — worthwhile when points are cheap relative to the
            protocol — at the cost of coarser work distribution and
            recovery (a crashed worker re-runs its whole batch).
    """

    def __init__(
        self,
        work_dir: str | os.PathLike,
        lease_timeout: float | None = None,
        poll: float = DEFAULT_POLL,
        timeout: float | None = None,
        batch: int = 1,
    ) -> None:
        if work_dir is None:
            raise ConfigError("the queue backend needs a work directory")
        self.queue = WorkQueue(work_dir)
        self.lease_timeout = (
            float(lease_timeout)
            if lease_timeout is not None
            else default_lease_timeout()
        )
        if self.lease_timeout <= 0:
            raise ConfigError(f"lease timeout must be > 0, got {self.lease_timeout:g}")
        self.poll = float(poll)
        self.timeout = timeout
        self.batch = int(batch)
        if self.batch < 1:
            raise ConfigError(f"queue batch must be >= 1, got {batch}")
        # Indirection so tests can interrupt the orchestrator's poll
        # loop without touching the module-global time.sleep that the
        # workers share.
        self._sleep = time.sleep

    # Progress sizing: parallelism is however many workers attach, which
    # this process cannot know; report the serial width.
    @property
    def jobs(self) -> int:
        return 1

    def run(self, pending):
        from .worker import load_results  # circular at import time only

        queue = self.queue.ensure()
        pending = list(pending)
        # Each unit holds up to `batch` points; waiting maps the unit
        # id to its (key, spec) group in unit order.
        waiting: dict[str, list[tuple[str, RunSpec]]] = {}
        for start in range(0, len(pending), self.batch):
            group = pending[start : start + self.batch]
            uid = queue.enqueue_batch(tuple(spec for _, spec in group))
            waiting[uid] = group
        deadline = None if self.timeout is None else time.monotonic() + self.timeout
        # Lease recovery and the vanished-unit scan stat every
        # outstanding unit, which is pure overhead at poll frequency —
        # lease expiry has lease_timeout granularity, so a quarter of it
        # is plenty (the first pass runs immediately: a stale claim from
        # a crashed previous run must not wait).
        maintenance_every = max(self.poll, self.lease_timeout / 4)
        next_maintenance = time.monotonic()
        discards: dict[str, int] = {}
        try:
            while waiting:
                progressed = False
                landed = queue.unit_ids(queue.results_dir)
                for uid in [u for u in waiting if u in landed]:
                    triples = self._consume(uid, waiting[uid], load_results, discards)
                    if triples is None:
                        continue
                    del waiting[uid]
                    progressed = True
                    yield from triples
                for uid in queue.unit_ids(queue.failed_dir) & waiting.keys():
                    self._raise_failure(uid, waiting[uid])
                if time.monotonic() >= next_maintenance:
                    queue.recover_expired(self.lease_timeout, uids=list(waiting))
                    self._requeue_vanished(waiting)
                    next_maintenance = time.monotonic() + maintenance_every
                if waiting and not progressed:
                    if deadline is not None and time.monotonic() > deadline:
                        status = queue.status(self.lease_timeout)
                        raise SimulationError(
                            f"queue backend timed out after {self.timeout:g}s "
                            f"with {len(waiting)} unit(s) outstanding "
                            f"({status.queued} queued, {status.claimed} "
                            f"claimed) — are any 'repro queue worker' "
                            f"processes attached to {queue.root}?"
                        )
                    self._sleep(self.poll)
        except BaseException:
            # An abandoned sweep must not leave claimable orphans: the
            # still-unclaimed units are withdrawn (claimed ones belong
            # to their workers, whose streamed results keep landing in
            # results/ for the retry to consume warm).
            for uid in waiting:
                queue.withdraw(uid)
            raise

    #: Consecutive same-unit salt discards before the sweep fails loudly
    #: instead of silently re-running forever against a version-skewed
    #: worker fleet.
    MAX_SALT_DISCARDS = 3

    def _consume(self, uid, group, load_results, discards):
        """Read, validate and clean up one unit's result file, if landed.

        Returns the unit's ``(key, spec, payload)`` triples in unit
        order, or ``None`` when the file is not (or no longer) there.
        A result stamped with a different code-fingerprint salt — a work
        directory reused across simulator versions — is discarded and
        its unit re-enqueued: serving it would launder a stale payload
        past the cache's own salt verification. A unit discarded
        :data:`MAX_SALT_DISCARDS` times means a live worker is running
        *different* code, which would loop forever — that is an error.
        """
        path = self.queue.result_path(uid)
        if not path.exists():
            return None
        try:
            records = load_results(path)
        except ConfigError:
            if not path.exists():
                # A concurrent orchestrator waiting on the same unit
                # consumed it between our scan and the read.
                return None
            raise
        by_key = {record["key"]: record for record in records}
        if len(by_key) != len(group) or any(key not in by_key for key, _ in group):
            raise SimulationError(
                f"{path} does not hold exactly the result(s) for "
                f"{_group_label(group)} — corrupt or misplaced result file"
            )
        if any(record.get("salt") != default_salt() for record in records):
            discards[uid] = discards.get(uid, 0) + 1
            if discards[uid] >= self.MAX_SALT_DISCARDS:
                raise SimulationError(
                    f"discarded {discards[uid]} results for "
                    f"{_group_label(group)} computed with a different "
                    "simulator version — a 'repro queue worker' running "
                    f"other code is attached to {self.queue.root}"
                )
            self.queue.forget(uid)
            self.queue.enqueue_batch(tuple(spec for _, spec in group))
            return None
        triples = [(key, spec, by_key[key]["payload"]) for key, spec in group]
        self.queue.forget(uid)
        return triples

    def _raise_failure(self, uid: str, group) -> None:
        """Surface a worker's spec-failure report as the sweep's error.

        The report is consumed (so a retry re-attempts the unit) and the
        worker's error raised here — the queue equivalent of the
        exception a local backend would propagate directly. A report
        from a different simulator version (stale file in a reused work
        dir) is dropped instead: its error may no longer exist.
        """
        path = self.queue.failed_path(uid)
        try:
            report = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            if not path.exists():
                return  # consumed by a concurrent orchestrator
            report = {}
        if report.get("salt") != default_salt():
            path.unlink(missing_ok=True)
            return
        self.queue.forget(uid)
        raise SimulationError(
            f"{_group_label(group)} failed on worker "
            f"{report.get('worker', 'unknown')}: "
            f"{report.get('error', 'unreadable failure report')}"
        )

    def _requeue_vanished(self, waiting: dict) -> None:
        """Re-enqueue units that disappeared without producing a result.

        A concurrent orchestrator waiting on the same unit consumes the
        result file *and* the unit with it (``forget``); whoever is
        still waiting simply enqueues again. Benign races re-execute a
        point at worst — results are bit-identical by construction.
        """
        for uid, group in waiting.items():
            if (
                self.queue.result_path(uid).exists()
                or self.queue.failed_path(uid).exists()
                or self.queue.queued_path(uid).exists()
                or self.queue.claimed_path(uid).exists()
            ):
                continue
            self.queue.enqueue_batch(tuple(spec for _, spec in group))

    def close(self) -> None:
        """Nothing to release: workers are independent processes."""
