"""Pluggable plan-execution backends.

:class:`~repro.runner.pool.SweepRunner` owns the *policy* of a sweep —
dedupe, cache lookup, reassembly — and delegates the *mechanics* of
executing the pending points to a :class:`Backend`:

* :class:`LocalPoolBackend` — the default: inline for one point or one
  job, a persistent ``ProcessPoolExecutor`` otherwise. Everything stays
  in this process tree.
* :class:`FileShardBackend` — the push-model distributed execution: the
  pending points are compiled into a wire-format
  :class:`~repro.runner.plan.Plan`, sharded deterministically, and each
  shard is executed by an independent ``repro worker run`` process that
  shares nothing with the submitter but a work directory. The worker
  result files are read back (and folded into the submitter's cache by
  the runner, exactly like locally-computed payloads).
* :class:`~repro.runner.queue.QueueBackend` — the pull model: pending
  points become claimable unit files in a work directory and any number
  of ``repro queue worker`` processes pull them; leases detect crashed
  workers and their units are re-enqueued (see
  :mod:`repro.runner.queue`).

All backends yield ``(key, spec, payload)`` triples as points complete;
results are a pure function of the spec, so every backend produces
bit-identical payloads — the invariant the ``distributed-smoke`` and
``queue-smoke`` CI jobs pin.
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
from concurrent.futures import ProcessPoolExecutor, as_completed
from pathlib import Path
from typing import Iterator, Protocol

from ..errors import ConfigError, SimulationError
from .plan import Plan, RunSpec

#: Backend names accepted by ``--backend`` (see :func:`make_backend`).
BACKEND_NAMES = ("local", "shards", "queue")


class Backend(Protocol):
    """Executes a batch of unique, cache-missed plan points."""

    def run(
        self, pending: list[tuple[str, RunSpec]]
    ) -> Iterator[tuple[str, RunSpec, dict]]:
        """Yield ``(key, spec, payload)`` for every pending point.

        Order is unspecified (workers race); the runner reassembles by
        key. Implementations must yield exactly one triple per input.
        """
        ...

    def close(self) -> None:
        """Release worker resources (idempotent)."""
        ...


class LocalPoolBackend:
    """In-process execution: inline, or across a ``ProcessPoolExecutor``.

    The pool is created lazily and persists across plans, so a multi-plan
    run (``figures`` submits one plan per figure) pays worker spin-up
    once — this matters on spawn-start platforms, where every worker
    re-imports the package.
    """

    def __init__(self, jobs: int = 1) -> None:
        self.jobs = max(1, int(jobs))
        self._executor: ProcessPoolExecutor | None = None

    def _pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.jobs)
        return self._executor

    def run(
        self, pending: list[tuple[str, RunSpec]]
    ) -> Iterator[tuple[str, RunSpec, dict]]:
        from .pool import execute_spec  # circular at import time only

        if self.jobs == 1 or len(pending) <= 1:
            for key, spec in pending:
                yield key, spec, execute_spec(spec)
            return
        futures = {
            self._pool().submit(execute_spec, spec): (key, spec)
            for key, spec in pending
        }
        for future in as_completed(futures):
            key, spec = futures[future]
            yield key, spec, future.result()

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None


class FileShardBackend:
    """Share-nothing execution through ``repro worker run`` processes.

    Each plan becomes ``shards`` wire-format shard files in a work
    directory; one worker subprocess per shard executes it and writes a
    result file; the backend reads the results back. The subprocesses
    are real ``python -m repro worker run`` invocations — the exact
    command a remote machine would run against a shared filesystem — so
    local ``--backend shards`` sweeps exercise the full distributed
    path, serialisation included.

    Attributes:
        shards: how many worker processes (= shard files) per plan.
        worker_jobs: ``--jobs`` forwarded to each worker (default 1:
            one process per shard is already the parallelism).
        work_dir: where shard/result files live; a temporary directory
            (cleaned up on :meth:`close`) when not given. Pass an
            explicit directory to keep the files for inspection.
    """

    def __init__(
        self,
        shards: int = 2,
        worker_jobs: int = 1,
        work_dir: str | os.PathLike | None = None,
    ) -> None:
        if shards < 1:
            raise ConfigError(f"shard count must be >= 1, got {shards}")
        self.shards = int(shards)
        self.worker_jobs = max(1, int(worker_jobs))
        self._keep_work = work_dir is not None
        self._work_dir = Path(work_dir) if work_dir is not None else None
        self._tmp: tempfile.TemporaryDirectory | None = None
        self._plan_seq = 0

    # Compatibility with call sites that size progress output off the
    # runner's job count.
    @property
    def jobs(self) -> int:
        return self.shards

    def _root(self) -> Path:
        if self._work_dir is None:
            self._tmp = tempfile.TemporaryDirectory(prefix="repro-shards-")
            self._work_dir = Path(self._tmp.name)
        self._work_dir.mkdir(parents=True, exist_ok=True)
        return self._work_dir

    def run(
        self, pending: list[tuple[str, RunSpec]]
    ) -> Iterator[tuple[str, RunSpec, dict]]:
        from .worker import load_results  # circular at import time only

        self._plan_seq += 1
        plan_dir = self._root() / f"plan-{self._plan_seq:03d}"
        plan_dir.mkdir(parents=True, exist_ok=True)
        plan = Plan(specs=[spec for _, spec in pending])
        shards = [s for s in plan.shard(self.shards) if s.specs]
        procs: list[tuple[subprocess.Popen, Path, Path]] = []
        by_key = dict(pending)
        seen: set[str] = set()
        try:
            for shard in shards:
                index = shard.meta["shard"]["index"]
                shard_path = shard.save(
                    plan_dir / f"shard-{index}-of-{self.shards}.json"
                )
                out_path = plan_dir / f"results-{index}-of-{self.shards}.json"
                command = [
                    sys.executable,
                    "-m",
                    "repro",
                    "worker",
                    "run",
                    str(shard_path),
                    "--out",
                    str(out_path),
                    "--jobs",
                    str(self.worker_jobs),
                ]
                proc = subprocess.Popen(
                    command,
                    stdout=subprocess.PIPE,
                    stderr=subprocess.PIPE,
                    text=True,
                )
                procs.append((proc, shard_path, out_path))

            for proc, shard_path, out_path in procs:
                _, stderr = proc.communicate()
                if proc.returncode != 0:
                    raise SimulationError(
                        f"worker for {shard_path.name} exited with "
                        f"{proc.returncode}:\n{stderr.strip()}"
                    )
                for record in load_results(out_path):
                    key = record["key"]
                    spec = by_key.get(key)
                    if spec is None:
                        raise SimulationError(
                            f"{out_path.name} returned result for unknown "
                            f"spec key {key[:32]}..."
                        )
                    seen.add(key)
                    yield key, spec, record["payload"]
        except BaseException:
            # One failed (or abandoned) shard must not leave the others
            # running as orphans — they would burn CPU and write into a
            # work dir close() is about to delete. Kill and reap before
            # propagating.
            for proc, _, _ in procs:
                if proc.poll() is None:
                    proc.kill()
                    proc.wait()
            raise
        missing = len(by_key) - len(seen)
        if missing:
            raise SimulationError(
                f"workers returned {len(seen)}/{len(by_key)} results "
                f"({missing} missing) — incomplete result files under "
                f"{plan_dir}"
            )

    def close(self) -> None:
        if self._tmp is not None:
            self._tmp.cleanup()
            self._tmp = None
            self._work_dir = None


def make_backend(
    name: str,
    jobs: int = 1,
    work_dir: str | os.PathLike | None = None,
    queue_batch: int = 1,
) -> Backend:
    """Build the ``--backend`` CLI choice: 'local', 'shards' or 'queue'.

    ``jobs`` means worker processes where this process owns them: the
    pool width locally, the shard count (one worker process per shard)
    for 'shards'. The 'queue' backend ignores it — its parallelism is
    however many ``repro queue worker`` processes attach to the shared
    ``work_dir`` (which is therefore required). ``queue_batch`` groups
    that many points per claimable queue unit (ignored by the other
    backends).
    """
    if name == "local":
        return LocalPoolBackend(jobs=jobs)
    if name == "shards":
        return FileShardBackend(shards=max(1, int(jobs)), work_dir=work_dir)
    if name == "queue":
        from .queue import QueueBackend  # circular at import time only

        if work_dir is None:
            raise ConfigError(
                "the queue backend needs --work-dir (the directory the "
                "'repro queue worker' processes watch)"
            )
        return QueueBackend(work_dir, batch=queue_batch)
    raise ConfigError(f"unknown backend '{name}' (known: {', '.join(BACKEND_NAMES)})")
