"""Plan execution: dedupe, cache lookup, execution backend, reassembly.

:class:`SweepRunner` is the single entry point every sweep goes through
(figure runners, ``compare_mechanisms``, the ``sweep`` CLI, benchmarks):

1. the plan's specs are deduplicated by content key — plans routinely
   contain identical points (the in-order Fig. 8 calibration submits
   its reference and its measurement as the same spec), and with a
   cache attached the dedupe extends across calls and processes;
2. each unique point is looked up in the optional
   :class:`~repro.runner.cache.ResultCache`;
3. the remaining points run through the pluggable
   :class:`~repro.runner.backend.Backend` —
   :class:`~repro.runner.backend.LocalPoolBackend` executes
   :func:`execute_spec` inline or across a ``ProcessPoolExecutor``,
   :class:`~repro.runner.backend.FileShardBackend` ships serialized
   shards to independent ``repro worker`` processes. Workers rebuild
   everything from the spec, so results are a pure function of the spec
   and bit-identical for every ``jobs`` setting and every backend;
4. results are reassembled in plan order.

Determinism: the workload builders seed their RNGs from ``spec.seed``
alone and the simulator is single-threaded per run, so scheduling order
can never leak into results — the property the result cache, the
serial-vs-parallel equality tests and the local-vs-sharded CI gate rely
on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence

from ..sim.soc import RunResult
from ..workloads import build_workload, trace_stats
from ..workloads.base import TraceStats
from ..workloads.registry import elem_bytes
from .backend import Backend, LocalPoolBackend
from .cache import (
    ResultCache,
    materialise,
    result_to_payload,
    trace_to_payload,
)
from .plan import RunSpec
from .progress import NullProgress


@lru_cache(maxsize=64)
def _workload_for(
    workload: str,
    scale: float,
    elem_bytes_: int,
    seed: int,
    workload_args: tuple,
):
    """Process-local memo over the pure workload builders.

    Plans routinely pair the same workload with many systems (a figures
    plan runs every mechanism over each workload), and builders are pure
    functions of these arguments, so the lowered program is shared.
    Programs are immutable once built — every consumer (engines,
    prefetchers, trace stats) only reads them.
    """
    return build_workload(
        workload,
        scale=scale,
        elem_bytes=elem_bytes_,
        seed=seed,
        **dict(workload_args),
    )


def execute_spec(spec: RunSpec) -> dict:
    """Run one spec and return its JSON payload (the worker entry point).

    Module-level so it pickles under every multiprocessing start method.
    The platform side is rebuilt entirely from ``spec.system`` — the
    declarative :class:`~repro.spec.SystemSpec` — so results are a pure
    function of the spec and bit-identical for every ``jobs`` setting.
    """
    program = _workload_for(
        spec.workload,
        spec.scale,
        elem_bytes(spec.dtype),
        spec.seed,
        spec.workload_args,
    )
    if spec.kind == "trace":
        return trace_to_payload(trace_stats(program))
    system = spec.system.build(program)
    result = system.run_with_base() if spec.with_base else system.run()
    return result_to_payload(result)


@dataclass
class PlanReport:
    """What one :meth:`SweepRunner.run_plan` call actually did."""

    total: int = 0
    unique: int = 0
    cache_hits: int = 0
    submitted: int = 0
    elapsed: float = 0.0


class SweepRunner:
    """Executes plans of :class:`RunSpec` points with caching + a backend.

    Attributes:
        jobs: worker processes; 1 executes inline in this process
            (shorthand for the default :class:`LocalPoolBackend`).
        backend: the execution backend for cache-missed points; pass a
            :class:`~repro.runner.backend.FileShardBackend` (or the CLI's
            ``--backend shards``) to run them as share-nothing worker
            processes over serialized shards.
        cache: optional on-disk result cache shared across plans/runs.
        submitted / cache_hits: cumulative counters over the runner's
            lifetime (the warm-run tests assert ``submitted == 0``).
        last_report: per-plan breakdown of the most recent call.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: ResultCache | None = None,
        progress=None,
        backend: Backend | None = None,
    ) -> None:
        self.backend = backend if backend is not None else LocalPoolBackend(jobs=jobs)
        self.jobs = getattr(self.backend, "jobs", max(1, int(jobs)))
        self.cache = cache
        self.progress = progress if progress is not None else NullProgress()
        self.submitted = 0
        self.cache_hits = 0
        self.last_report: PlanReport | None = None

    def close(self) -> None:
        """Release backend resources (idempotent; runner stays usable)."""
        self.backend.close()

    def __enter__(self) -> "SweepRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def run(self, spec: RunSpec) -> RunResult | TraceStats:
        """Execute a single point (one-element plan)."""
        return self.run_plan([spec])[0]

    def run_plan(self, specs: Sequence[RunSpec]) -> list[RunResult | TraceStats]:
        """Execute a plan; returns results aligned with ``specs``."""
        start = time.time()
        specs = list(specs)
        unique: dict[str, RunSpec] = {}
        for spec in specs:
            unique.setdefault(spec.key(), spec)

        payloads: dict[str, dict] = {}
        pending: list[tuple[str, RunSpec]] = []
        for key, spec in unique.items():
            hit = self.cache.get(spec) if self.cache is not None else None
            if hit is not None:
                payloads[key] = hit
            else:
                pending.append((key, spec))

        hits = len(unique) - len(pending)
        self.progress.plan_started(len(specs), len(unique), hits)
        done = hits
        streamed = 0
        try:
            if pending:
                for key, spec, payload in self.backend.run(pending):
                    payloads[key] = payload
                    self._store(spec, payload)
                    streamed += 1
                    done += 1
                    self.progress.point_done(spec.label(), "run", done, len(unique))
        except BaseException:
            # A failed plan still accounts for what it did: the streamed
            # results are cached (a retry resumes warm), the cumulative
            # counters and last_report carry the partial counts, and the
            # observer gets plan_failed so a live progress line is
            # cleared before the traceback prints over it.
            self.submitted += streamed
            self.cache_hits += hits
            self.last_report = PlanReport(
                total=len(specs),
                unique=len(unique),
                cache_hits=hits,
                submitted=streamed,
                elapsed=time.time() - start,
            )
            # getattr: pre-plan_failed observers (custom classes not
            # derived from NullProgress) must not turn the real error
            # into an AttributeError.
            plan_failed = getattr(self.progress, "plan_failed", None)
            if plan_failed is not None:
                plan_failed(done, len(unique), self.last_report.elapsed)
            raise

        self.submitted += len(pending)
        self.cache_hits += hits
        self.last_report = PlanReport(
            total=len(specs),
            unique=len(unique),
            cache_hits=hits,
            submitted=len(pending),
            elapsed=time.time() - start,
        )
        self.progress.plan_finished(len(pending), hits, self.last_report.elapsed)
        return [materialise(payloads[spec.key()]) for spec in specs]

    def _store(self, spec: RunSpec, payload: dict) -> None:
        if self.cache is not None:
            self.cache.put(spec, payload)
