"""Plan execution: dedupe, cache lookup, worker pool, reassembly.

:class:`SweepRunner` is the single entry point every sweep goes through
(figure runners, ``compare_mechanisms``, the ``sweep`` CLI, benchmarks):

1. the plan's specs are deduplicated by content key — plans routinely
   contain identical points (the in-order Fig. 8 calibration submits
   its reference and its measurement as the same spec), and with a
   cache attached the dedupe extends across calls and processes;
2. each unique point is looked up in the optional
   :class:`~repro.runner.cache.ResultCache`;
3. the remaining points run through :func:`execute_spec` — inline when
   ``jobs == 1``, across a ``ProcessPoolExecutor`` otherwise. Workers
   receive the pickled spec and rebuild everything from it, so results
   are a pure function of the spec and bit-identical for every ``jobs``
   setting;
4. results are reassembled in plan order.

Determinism: the workload builders seed their RNGs from ``spec.seed``
alone and the simulator is single-threaded per run, so scheduling order
can never leak into results — the property the result cache and the
serial-vs-parallel equality tests rely on.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Sequence

from ..sim.soc import RunResult
from ..workloads import build_workload, trace_stats
from ..workloads.base import TraceStats
from ..workloads.registry import elem_bytes
from .cache import (
    ResultCache,
    materialise,
    result_to_payload,
    trace_to_payload,
)
from .plan import RunSpec
from .progress import NullProgress


def execute_spec(spec: RunSpec) -> dict:
    """Run one spec and return its JSON payload (the worker entry point).

    Module-level so it pickles under every multiprocessing start method.
    The platform side is rebuilt entirely from ``spec.system`` — the
    declarative :class:`~repro.spec.SystemSpec` — so results are a pure
    function of the spec and bit-identical for every ``jobs`` setting.
    """
    program = build_workload(
        spec.workload,
        scale=spec.scale,
        elem_bytes=elem_bytes(spec.dtype),
        seed=spec.seed,
        **dict(spec.workload_args),
    )
    if spec.kind == "trace":
        return trace_to_payload(trace_stats(program))
    system = spec.system.build(program)
    result = system.run_with_base() if spec.with_base else system.run()
    return result_to_payload(result)


@dataclass
class PlanReport:
    """What one :meth:`SweepRunner.run_plan` call actually did."""

    total: int = 0
    unique: int = 0
    cache_hits: int = 0
    submitted: int = 0
    elapsed: float = 0.0


class SweepRunner:
    """Executes plans of :class:`RunSpec` points with caching + workers.

    Attributes:
        jobs: worker processes; 1 executes inline in this process.
        cache: optional on-disk result cache shared across plans/runs.
        submitted / cache_hits: cumulative counters over the runner's
            lifetime (the warm-run tests assert ``submitted == 0``).
        last_report: per-plan breakdown of the most recent call.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: ResultCache | None = None,
        progress=None,
    ) -> None:
        self.jobs = max(1, int(jobs))
        self.cache = cache
        self.progress = progress if progress is not None else NullProgress()
        self.submitted = 0
        self.cache_hits = 0
        self.last_report: PlanReport | None = None
        self._executor: ProcessPoolExecutor | None = None

    def _pool(self) -> ProcessPoolExecutor:
        """The worker pool, created lazily and reused across plans.

        Persistent so a multi-plan run (``figures`` submits one plan per
        figure) pays worker spin-up once — this matters on spawn-start
        platforms, where every worker re-imports the package.
        """
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.jobs)
        return self._executor

    def close(self) -> None:
        """Shut the worker pool down (idempotent; runner stays usable)."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __enter__(self) -> "SweepRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def run(self, spec: RunSpec) -> RunResult | TraceStats:
        """Execute a single point (one-element plan)."""
        return self.run_plan([spec])[0]

    def run_plan(
        self, specs: Sequence[RunSpec]
    ) -> list[RunResult | TraceStats]:
        """Execute a plan; returns results aligned with ``specs``."""
        start = time.time()
        specs = list(specs)
        unique: dict[str, RunSpec] = {}
        for spec in specs:
            unique.setdefault(spec.key(), spec)

        payloads: dict[str, dict] = {}
        pending: list[tuple[str, RunSpec]] = []
        for key, spec in unique.items():
            hit = self.cache.get(spec) if self.cache is not None else None
            if hit is not None:
                payloads[key] = hit
            else:
                pending.append((key, spec))

        self.progress.plan_started(
            len(specs), len(unique), len(unique) - len(pending)
        )
        done = len(unique) - len(pending)
        if self.jobs == 1 or len(pending) <= 1:
            for key, spec in pending:
                payloads[key] = execute_spec(spec)
                self._store(spec, payloads[key])
                done += 1
                self.progress.point_done(
                    spec.label(), "run", done, len(unique)
                )
        else:
            futures = {
                self._pool().submit(execute_spec, spec): (key, spec)
                for key, spec in pending
            }
            for future in as_completed(futures):
                key, spec = futures[future]
                payloads[key] = future.result()
                self._store(spec, payloads[key])
                done += 1
                self.progress.point_done(
                    spec.label(), "run", done, len(unique)
                )

        hits = len(unique) - len(pending)
        self.submitted += len(pending)
        self.cache_hits += hits
        self.last_report = PlanReport(
            total=len(specs),
            unique=len(unique),
            cache_hits=hits,
            submitted=len(pending),
            elapsed=time.time() - start,
        )
        self.progress.plan_finished(
            len(pending), hits, self.last_report.elapsed
        )
        return [materialise(payloads[spec.key()]) for spec in specs]

    def _store(self, spec: RunSpec, payload: dict) -> None:
        if self.cache is not None:
            self.cache.put(spec, payload)
