"""Fleets: pluggable worker herders over the queue's work-dir protocol.

The queue backend (:mod:`repro.runner.queue`) is crash-tolerant but says
nothing about worker *acquisition*: someone must start ``repro queue
worker`` processes against the shared work directory. This module is
that someone. A :class:`Fleet` owns a set of workers through a
:class:`FleetDriver` — the pluggable submission mechanism — and herds
them: dead workers are restarted (with exponential backoff and a
max-restart cap, so a worker that dies on arrival cannot fork-bomb a
cluster), and an optional autoscaler grows and shrinks the fleet
between ``--min``/``--max`` against the queue's depth.

Drivers speak one tiny protocol — ``submit``/``poll``/``stop`` over
JSON-serialisable :class:`WorkerHandle` s — and live in the
:data:`FLEET_DRIVERS` registry (the same plug-in pattern as
:data:`repro.registry.MECHANISMS`), so a new cluster is one small class:

* :class:`LocalDriver` — subprocess herder on this machine (``-n N``
  workers, stdout/err captured under ``<work_dir>/fleet/logs/``). Fully
  testable in-process; the ``fleet-smoke`` CI job drives it.
* :class:`SSHDriver` — fan-out over a host list file; each worker is a
  ``nohup``'d ``repro queue worker`` launched through ``ssh``, its
  output captured per host on the (shared) filesystem.
* :class:`SlurmDriver` — renders an sbatch array script from a template
  and submits it via ``sbatch``; liveness is polled through ``squeue``.

All three assume only what the queue already assumes: every worker can
see the work directory. Fleet state (driver name + config, worker
handles, restart counts) persists in ``<work_dir>/fleet/state.json``,
so ``repro fleet up`` / ``status`` / ``down`` compose across processes
— the process that tears a fleet down need not be the one that raised
it.
"""

from __future__ import annotations

import json
import os
import shlex
import signal
import string
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Protocol, Sequence

from ..errors import ConfigError
from ..registry import Registry
from .cache import atomic_write_json
from .queue import QueueStatus, WorkQueue

#: Worker liveness states reported by :meth:`FleetDriver.poll`.
RUNNING = "running"
EXITED = "exited"
UNKNOWN = "unknown"  # the driver could not reach the worker's machine

#: Default ceiling on crash restarts before the herder gives up on
#: replacing workers (a worker that dies on arrival is a config problem,
#: not a transient — restarting it forever would melt a cluster).
DEFAULT_MAX_RESTARTS = 5

#: Base of the exponential restart backoff, seconds: the k-th restart
#: waits ``backoff * 2**(k-1)`` after the previous one.
DEFAULT_RESTART_BACKOFF = 1.0


@dataclass(frozen=True)
class WorkerHandle:
    """One submitted worker, as the driver knows it.

    ``id`` is fleet-unique and human-legible (``local-4242-1``,
    ``nodeA:17``, ``slurm-991_0``); ``data`` is the driver's private,
    JSON-serialisable bookkeeping (pid, host, job id, log path) — it
    round-trips through the fleet state file so a *different* process
    can poll and stop workers it never submitted.
    """

    id: str
    data: dict

    def to_dict(self) -> dict:
        return {"id": self.id, "data": dict(self.data)}

    @classmethod
    def from_dict(cls, d: dict) -> "WorkerHandle":
        try:
            return cls(id=d["id"], data=dict(d["data"]))
        except (KeyError, TypeError) as exc:
            raise ConfigError(f"malformed worker handle: {exc}") from None


class FleetDriver(Protocol):
    """The pluggable submission mechanism behind a :class:`Fleet`.

    Implementations are *mechanism only*: they start, observe and stop
    workers. Restart policy, backoff, autoscaling and state persistence
    live in :class:`Fleet`, so every driver gets them for free.
    """

    name: str

    def submit(self, count: int) -> list[WorkerHandle]:
        """Start ``count`` workers against the work directory."""
        ...

    def poll(self, handles: Sequence[WorkerHandle]) -> dict[str, str]:
        """Map each handle id to :data:`RUNNING`/:data:`EXITED`/:data:`UNKNOWN`."""
        ...

    def stop(self, handles: Sequence[WorkerHandle]) -> None:
        """Stop the given workers (interrupt first, escalate if needed)."""
        ...

    def config(self) -> dict:
        """JSON-serialisable kwargs that rebuild this driver (state file)."""
        ...


def _pid_alive(pid) -> bool:
    if not isinstance(pid, int) or pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, not ours
        return True
    return True


def _run_command(command: Sequence[str]) -> str:
    """Run one submission-plumbing command, returning its stdout.

    A non-zero exit is a :class:`~repro.errors.ConfigError` carrying the
    command and its stderr — ssh/sbatch failures are operator input
    problems (bad host, missing binary), not simulator bugs. A missing
    binary reads the same way instead of a raw ``FileNotFoundError``.
    """
    try:
        proc = subprocess.run(
            list(command), capture_output=True, text=True, check=False
        )
    except FileNotFoundError:
        raise ConfigError(
            f"'{command[0]}' is not available on this machine "
            f"(needed by: {' '.join(command)})"
        ) from None
    if proc.returncode != 0:
        raise ConfigError(
            f"command failed ({proc.returncode}): {' '.join(command)}\n"
            f"{proc.stderr.strip()}"
        )
    return proc.stdout


def _worker_cli_args(work_dir: Path, worker_args: Sequence[str]) -> list[str]:
    return ["queue", "worker", "--work-dir", str(work_dir), *worker_args]


class LocalDriver:
    """Subprocess herder: ``-n N`` ``repro queue worker`` children.

    Workers are started in their own sessions (``start_new_session``) so
    a Ctrl-C aimed at the herder does not take the whole fleet with it,
    and each worker's stdout/stderr is captured under
    ``<work_dir>/fleet/logs/<worker-id>.log``. Handles submitted by
    *this* process are polled through their ``Popen`` (which also reaps
    them); handles restored from a state file fall back to pid liveness
    probes.

    ``command`` overrides the worker argv wholesale — the herder tests
    use throwaway sleeper processes instead of real workers.
    """

    name = "local"

    def __init__(
        self,
        work_dir: str | os.PathLike,
        worker_args: Sequence[str] = (),
        command: Sequence[str] | None = None,
    ) -> None:
        self.work_dir = Path(work_dir)
        self.worker_args = list(worker_args)
        self._command = list(command) if command is not None else None
        self.log_dir = self.work_dir / "fleet" / "logs"
        self._procs: dict[str, subprocess.Popen] = {}
        self._seq = 0

    def config(self) -> dict:
        cfg: dict = {"worker_args": list(self.worker_args)}
        if self._command is not None:
            cfg["command"] = list(self._command)
        return cfg

    def _argv(self) -> list[str]:
        if self._command is not None:
            return list(self._command)
        return [
            sys.executable,
            "-m",
            "repro",
            *_worker_cli_args(self.work_dir, self.worker_args),
        ]

    def submit(self, count: int) -> list[WorkerHandle]:
        self.log_dir.mkdir(parents=True, exist_ok=True)
        handles = []
        for _ in range(count):
            self._seq += 1
            wid = f"local-{os.getpid()}-{self._seq}"
            log_path = self.log_dir / f"{wid}.log"
            with open(log_path, "ab") as log:
                proc = subprocess.Popen(
                    self._argv(),
                    stdout=log,
                    stderr=subprocess.STDOUT,
                    start_new_session=True,
                )
            self._procs[wid] = proc
            handles.append(
                WorkerHandle(wid, {"pid": proc.pid, "log": str(log_path)})
            )
        return handles

    def poll(self, handles: Sequence[WorkerHandle]) -> dict[str, str]:
        states = {}
        for handle in handles:
            proc = self._procs.get(handle.id)
            if proc is not None:
                states[handle.id] = RUNNING if proc.poll() is None else EXITED
            else:
                states[handle.id] = (
                    RUNNING if _pid_alive(handle.data.get("pid")) else EXITED
                )
        return states

    def _signal(self, handle: WorkerHandle, signum: int) -> None:
        pid = handle.data.get("pid")
        if isinstance(pid, int) and pid > 0:
            try:
                os.kill(pid, signum)
            except OSError:
                pass

    def stop(self, handles: Sequence[WorkerHandle], grace: float = 5.0) -> None:
        """Interrupt the workers; SIGKILL whatever outlives ``grace``.

        SIGINT gives a worker its ``KeyboardInterrupt`` path — it
        releases its claimed unit back to the queue before exiting, so
        a stopped fleet orphans nothing (a SIGKILLed straggler's unit
        is recovered by lease expiry instead).
        """
        for handle in handles:
            self._signal(handle, signal.SIGINT)
        deadline = time.monotonic() + grace
        remaining = list(handles)
        while remaining and time.monotonic() < deadline:
            states = self.poll(remaining)
            remaining = [h for h in remaining if states.get(h.id) == RUNNING]
            if remaining:
                time.sleep(0.05)
        for handle in remaining:
            self._signal(handle, signal.SIGKILL)
        for handle in handles:
            proc = self._procs.pop(handle.id, None)
            if proc is not None:
                try:
                    proc.wait(timeout=5)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    pass

    def kill(self, handle: WorkerHandle) -> None:
        """SIGKILL one worker — the herder's crash-injection test hook."""
        self._signal(handle, signal.SIGKILL)


def parse_hosts_file(path: str | os.PathLike) -> list[tuple[str, int]]:
    """Parse an SSH fleet host list: one ``host [slots]`` per line.

    Blank lines and ``#`` comments are ignored; ``slots`` (default 1) is
    how many workers the host runs. Returns ``(host, slots)`` pairs in
    file order — submission round-robins across hosts so a small fleet
    spreads before any host doubles up.
    """
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise ConfigError(f"cannot read hosts file {path}: {exc}") from None
    hosts = []
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        slots = 1
        if len(parts) == 2:
            try:
                slots = int(parts[1])
            except ValueError:
                raise ConfigError(
                    f"{path}:{lineno}: slot count must be an integer, "
                    f"got {parts[1]!r}"
                ) from None
        elif len(parts) != 1:
            raise ConfigError(
                f"{path}:{lineno}: expected 'host [slots]', got {raw!r}"
            )
        if slots < 1:
            raise ConfigError(f"{path}:{lineno}: slot count must be >= 1")
        hosts.append((parts[0], slots))
    if not hosts:
        raise ConfigError(f"hosts file {path} lists no hosts")
    return hosts


class SSHDriver:
    """Fan-out over a host list: one ``nohup``'d worker per slot via ssh.

    The work directory must be a *shared* filesystem path valid on every
    host — the same assumption the queue protocol itself makes. Worker
    output is captured per host under ``<work_dir>/fleet/logs/`` (on
    that shared filesystem), and the remote worker command defaults to
    the installed ``repro`` console script (override with
    ``remote_cmd`` when the remote environment needs activation, e.g.
    ``"source venv/bin/activate && repro"``).

    ``run`` injects the command executor (tests capture the exact ssh
    argv without a network).
    """

    name = "ssh"

    def __init__(
        self,
        work_dir: str | os.PathLike,
        hosts_file: str | os.PathLike | None = None,
        hosts: Sequence[tuple[str, int]] | None = None,
        worker_args: Sequence[str] = (),
        remote_cmd: str = "repro",
        ssh_cmd: Sequence[str] = ("ssh", "-o", "BatchMode=yes"),
        run=None,
    ) -> None:
        if hosts is None:
            if hosts_file is None:
                raise ConfigError(
                    "the ssh fleet driver needs a hosts file "
                    "(repro fleet --hosts FILE; one 'host [slots]' per line)"
                )
            hosts = parse_hosts_file(hosts_file)
        self.work_dir = Path(work_dir)
        self.hosts = [(str(h), int(s)) for h, s in hosts]
        self.hosts_file = str(hosts_file) if hosts_file is not None else None
        self.worker_args = list(worker_args)
        self.remote_cmd = remote_cmd
        self.ssh_cmd = list(ssh_cmd)
        self._run = run if run is not None else _run_command
        self._used: dict[str, int] = {host: 0 for host, _ in self.hosts}

    def config(self) -> dict:
        return {
            "hosts": [list(pair) for pair in self.hosts],
            "hosts_file": self.hosts_file,
            "worker_args": list(self.worker_args),
            "remote_cmd": self.remote_cmd,
            "ssh_cmd": list(self.ssh_cmd),
        }

    @property
    def capacity(self) -> int:
        return sum(slots for _, slots in self.hosts)

    def _next_host(self) -> str:
        """Least-loaded host with a free slot, in file order."""
        best = None
        for host, slots in self.hosts:
            used = self._used[host]
            if used >= slots:
                continue
            if best is None or used < self._used[best]:
                best = host
        if best is None:
            raise ConfigError(
                f"ssh fleet is at capacity ({self.capacity} slot(s) across "
                f"{len(self.hosts)} host(s)) — grow the hosts file to grow "
                "the fleet"
            )
        return best

    def submit(self, count: int) -> list[WorkerHandle]:
        log_dir = self.work_dir / "fleet" / "logs"
        handles = []
        for _ in range(count):
            host = self._next_host()
            self._used[host] += 1
            slot = self._used[host]
            log_path = log_dir / f"{host}-{slot}.log"
            worker = " ".join(
                [self.remote_cmd]
                + [shlex.quote(a) for a in _worker_cli_args(
                    self.work_dir, self.worker_args
                )]
            )
            remote = (
                f"mkdir -p {shlex.quote(str(log_dir))} && "
                f"nohup {worker} >> {shlex.quote(str(log_path))} 2>&1 "
                f"& echo $!"
            )
            out = self._run([*self.ssh_cmd, host, remote])
            try:
                pid = int(out.strip().splitlines()[-1])
            except (ValueError, IndexError):
                raise ConfigError(
                    f"ssh worker launch on {host} did not echo a pid "
                    f"(got {out.strip()!r})"
                ) from None
            handles.append(
                WorkerHandle(
                    f"{host}:{pid}",
                    {"host": host, "pid": pid, "log": str(log_path)},
                )
            )
        return handles

    def poll(self, handles: Sequence[WorkerHandle]) -> dict[str, str]:
        states = {}
        for handle in handles:
            host, pid = handle.data.get("host"), handle.data.get("pid")
            # `kill -0` succeeds iff the pid is alive; the trailing echo
            # keeps ssh's own exit code 0 either way, so only a transport
            # failure surfaces as an error (-> UNKNOWN, not EXITED: an
            # unreachable host must not trigger a restart storm).
            probe = f"kill -0 {int(pid)} 2>/dev/null && echo up || echo down"
            try:
                out = self._run([*self.ssh_cmd, str(host), probe])
            except ConfigError:
                states[handle.id] = UNKNOWN
                continue
            states[handle.id] = RUNNING if out.strip().endswith("up") else EXITED
        return states

    def stop(self, handles: Sequence[WorkerHandle]) -> None:
        for handle in handles:
            host, pid = handle.data.get("host"), handle.data.get("pid")
            try:
                self._run([*self.ssh_cmd, str(host), f"kill -INT {int(pid)}"])
            except ConfigError:
                continue  # already gone, or host unreachable
            self._used[str(host)] = max(0, self._used.get(str(host), 1) - 1)


#: The built-in sbatch array template. ``$`` placeholders are
#: :class:`string.Template` substitutions; a custom template
#: (``--sbatch-template``) must keep ``$worker_cmd`` and ``$array_spec``
#: and may add partition/account/time directives freely.
DEFAULT_SBATCH_TEMPLATE = """\
#!/bin/bash
#SBATCH --job-name=$job_name
#SBATCH --array=$array_spec
#SBATCH --output=$log_dir/slurm-%A_%a.log
$worker_cmd
"""


class SlurmDriver:
    """Batch-scheduler submission: one sbatch array task per worker.

    ``submit(n)`` renders the template to
    ``<work_dir>/fleet/sbatch-<seq>.sh`` and submits it with ``sbatch
    --parsable``; ``poll`` asks ``squeue`` which array tasks still
    exist (pending counts as running — the scheduler owns the wait);
    ``stop`` is ``scancel`` per array task. ``run`` injects the command
    executor for tests, exactly like :class:`SSHDriver`.
    """

    name = "slurm"

    def __init__(
        self,
        work_dir: str | os.PathLike,
        sbatch_template: str | os.PathLike | None = None,
        worker_args: Sequence[str] = (),
        remote_cmd: str = "repro",
        run=None,
    ) -> None:
        self.work_dir = Path(work_dir)
        self.sbatch_template = (
            str(sbatch_template) if sbatch_template is not None else None
        )
        self.worker_args = list(worker_args)
        self.remote_cmd = remote_cmd
        self._run = run if run is not None else _run_command
        self._seq = 0

    def config(self) -> dict:
        return {
            "sbatch_template": self.sbatch_template,
            "worker_args": list(self.worker_args),
            "remote_cmd": self.remote_cmd,
        }

    def _template_text(self) -> str:
        if self.sbatch_template is None:
            return DEFAULT_SBATCH_TEMPLATE
        try:
            return Path(self.sbatch_template).read_text(encoding="utf-8")
        except OSError as exc:
            raise ConfigError(
                f"cannot read sbatch template {self.sbatch_template}: {exc}"
            ) from None

    def render(self, count: int) -> str:
        """The sbatch script text for ``count`` array tasks."""
        log_dir = self.work_dir / "fleet" / "logs"
        worker = " ".join(
            [self.remote_cmd]
            + [shlex.quote(a) for a in _worker_cli_args(
                self.work_dir, self.worker_args
            )]
        )
        try:
            return string.Template(self._template_text()).substitute(
                job_name="repro-fleet",
                array_spec=f"0-{count - 1}",
                log_dir=str(log_dir),
                worker_cmd=worker,
            )
        except (KeyError, ValueError) as exc:
            raise ConfigError(
                f"sbatch template {self.sbatch_template}: bad placeholder "
                f"({exc}) — known: $job_name $array_spec $log_dir $worker_cmd"
            ) from None

    def submit(self, count: int) -> list[WorkerHandle]:
        fleet_dir = self.work_dir / "fleet"
        log_dir = fleet_dir / "logs"
        log_dir.mkdir(parents=True, exist_ok=True)
        self._seq += 1
        script = fleet_dir / f"sbatch-{self._seq:03d}.sh"
        script.write_text(self.render(count), encoding="utf-8")
        out = self._run(["sbatch", "--parsable", str(script)])
        job = out.strip().split(";")[0]
        if not job:
            raise ConfigError("sbatch --parsable returned no job id")
        return [
            WorkerHandle(f"slurm-{job}_{task}", {"job": job, "task": task})
            for task in range(count)
        ]

    @staticmethod
    def _live_tasks(squeue_out: str) -> set[int]:
        """Array task indices ``squeue`` still lists (any state).

        Pending arrays print compactly (``991_[2-5]``); running tasks
        print one row each (``991_3``). Both count as live.
        """
        tasks: set[int] = set()
        for line in squeue_out.splitlines():
            ident = line.split()[0] if line.split() else ""
            if "_" not in ident:
                continue
            suffix = ident.split("_", 1)[1]
            if suffix.startswith("[") and suffix.endswith("]"):
                for part in suffix[1:-1].split(","):
                    part = part.split("%", 1)[0]  # throttle suffix
                    if "-" in part:
                        lo, _, hi = part.partition("-")
                        try:
                            tasks.update(range(int(lo), int(hi) + 1))
                        except ValueError:
                            continue
                    else:
                        try:
                            tasks.add(int(part))
                        except ValueError:
                            continue
            else:
                try:
                    tasks.add(int(suffix))
                except ValueError:
                    continue
        return tasks

    def poll(self, handles: Sequence[WorkerHandle]) -> dict[str, str]:
        by_job: dict[str, list[WorkerHandle]] = {}
        for handle in handles:
            by_job.setdefault(str(handle.data.get("job")), []).append(handle)
        states: dict[str, str] = {}
        for job, job_handles in by_job.items():
            try:
                out = self._run(["squeue", "-h", "-j", job, "-o", "%i %T"])
            except ConfigError:
                for handle in job_handles:
                    states[handle.id] = UNKNOWN
                continue
            live = self._live_tasks(out)
            for handle in job_handles:
                task = handle.data.get("task")
                states[handle.id] = RUNNING if task in live else EXITED
        return states

    def stop(self, handles: Sequence[WorkerHandle]) -> None:
        for handle in handles:
            job, task = handle.data.get("job"), handle.data.get("task")
            try:
                self._run(["scancel", f"{job}_{task}"])
            except ConfigError:
                continue


#: Fleet driver registry: `repro fleet --driver` choices. Register a
#: new cluster's driver here (same Registry as mechanisms/engines).
FLEET_DRIVERS = Registry("fleet driver")
FLEET_DRIVERS.register("local", LocalDriver)
FLEET_DRIVERS.register("ssh", SSHDriver)
FLEET_DRIVERS.register("slurm", SlurmDriver)


def make_driver(name: str, work_dir: str | os.PathLike, **kwargs) -> FleetDriver:
    """Build a registered driver (``ConfigError`` lists known names)."""
    cls = FLEET_DRIVERS.get(name)
    return cls(work_dir, **kwargs)


@dataclass(frozen=True)
class AutoscalerPolicy:
    """Pure grow/shrink decision against one queue-status scan.

    Demand is outstanding work — queued units plus claimed ones (every
    claimed unit is a worker mid-execution; expired leases are already
    counted inside ``claimed``). The target worker count is demand
    clamped into ``[min_workers, max_workers]``: an idle queue drains
    the fleet to the floor, a deep one grows it to the ceiling, and one
    worker per outstanding unit is the point of diminishing returns in
    between.
    """

    min_workers: int
    max_workers: int

    def __post_init__(self) -> None:
        if self.min_workers < 0:
            raise ConfigError(
                f"min workers must be >= 0, got {self.min_workers}"
            )
        if self.max_workers < max(1, self.min_workers):
            raise ConfigError(
                f"max workers must be >= max(1, min), got "
                f"min={self.min_workers} max={self.max_workers}"
            )

    def target(self, status: QueueStatus, current: int) -> int:
        demand = status.queued + status.claimed
        return max(self.min_workers, min(self.max_workers, demand))


@dataclass
class FleetStatus:
    """One observation of a fleet: per-worker states + the queue scan."""

    workers: dict[str, str]
    queue: QueueStatus
    size: int
    restarts: int
    gave_up: bool

    @property
    def running(self) -> int:
        return sum(1 for state in self.workers.values() if state == RUNNING)


class Fleet:
    """A herd of queue workers: submit, watch, restart, scale, stop.

    The fleet's *nominal size* starts at :meth:`up`'s count. Each
    :meth:`tick` polls the driver, drops exited workers, and refills the
    deficit — immediately for autoscaler growth, behind an exponential
    backoff (``restart_backoff * 2**(k-1)``, one worker per window) for
    crash replacements, giving up entirely after ``max_restarts``
    replacements so a worker that always dies on arrival cannot spin a
    cluster. With ``min_workers``/``max_workers`` set, an
    :class:`AutoscalerPolicy` retargets the nominal size against queue
    depth each tick, stopping surplus workers when the queue drains.

    ``clock`` injects time for the backoff tests; ``log`` is an optional
    ``callable(str)`` for herder event lines (the CLI passes a stderr
    printer).
    """

    def __init__(
        self,
        work_dir: str | os.PathLike,
        driver: FleetDriver,
        min_workers: int | None = None,
        max_workers: int | None = None,
        max_restarts: int = DEFAULT_MAX_RESTARTS,
        restart_backoff: float = DEFAULT_RESTART_BACKOFF,
        clock=time.monotonic,
        log=None,
    ) -> None:
        self.queue = WorkQueue(work_dir)
        self.driver = driver
        if (min_workers is None) != (max_workers is None):
            raise ConfigError(
                "autoscaling needs both min and max worker bounds"
            )
        self.policy = (
            AutoscalerPolicy(min_workers, max_workers)
            if min_workers is not None
            else None
        )
        self.max_restarts = int(max_restarts)
        self.restart_backoff = float(restart_backoff)
        self.clock = clock
        self.log = log if log is not None else (lambda text: None)
        self.workers: list[WorkerHandle] = []
        self.size = 0
        self.restarts = 0
        self.gave_up = False
        self._owed_restarts = 0
        self._next_restart_at = 0.0
        self._chaos_armed = False
        self._herd_stop: threading.Event | None = None
        self._herd_thread: threading.Thread | None = None

    # -- state persistence ---------------------------------------------------

    @property
    def state_path(self) -> Path:
        return self.queue.root / "fleet" / "state.json"

    def save_state(self) -> None:
        atomic_write_json(
            self.state_path,
            {
                "driver": self.driver.name,
                "driver_config": self.driver.config(),
                "workers": [handle.to_dict() for handle in self.workers],
                "size": self.size,
                "restarts": self.restarts,
            },
        )

    @classmethod
    def attach(cls, work_dir: str | os.PathLike, **kwargs) -> "Fleet":
        """Rebuild a fleet from ``<work_dir>/fleet/state.json``.

        The driver is reconstructed from its persisted name and config,
        so ``repro fleet status``/``down`` work from any process that
        sees the work directory — not just the one that ran ``up``.
        """
        path = Path(work_dir) / "fleet" / "state.json"
        try:
            state = json.loads(path.read_text(encoding="utf-8"))
        except OSError:
            raise ConfigError(
                f"no fleet state under {work_dir} — did 'repro fleet up' "
                "run against this work dir?"
            ) from None
        except ValueError as exc:
            raise ConfigError(f"corrupt fleet state {path}: {exc}") from None
        config = {
            k: v
            for k, v in dict(state.get("driver_config") or {}).items()
            if v is not None
        }
        driver = make_driver(state.get("driver", "local"), work_dir, **config)
        fleet = cls(work_dir, driver, **kwargs)
        fleet.workers = [
            WorkerHandle.from_dict(d) for d in state.get("workers", [])
        ]
        fleet.size = int(state.get("size", len(fleet.workers)))
        fleet.restarts = int(state.get("restarts", 0))
        return fleet

    # -- lifecycle -----------------------------------------------------------

    def up(self, count: int) -> list[WorkerHandle]:
        """Raise the fleet: ``count`` workers against a ready work dir.

        Clears any stale ``stop`` sentinel first — a previous ``fleet
        down`` drains workers by writing it, and freshly raised workers
        must not drain on arrival.
        """
        if count < 1:
            raise ConfigError(f"fleet size must be >= 1, got {count}")
        self.queue.ensure()
        self.queue.stop_path.unlink(missing_ok=True)
        handles = self.driver.submit(count)
        self.workers.extend(handles)
        self.size = len(self.workers)
        self.save_state()
        self.log(
            f"fleet up: {len(handles)} {self.driver.name} worker(s) "
            f"on {self.queue.root}"
        )
        return handles

    def status(self) -> FleetStatus:
        """Poll every worker and scan the queue (no mutation)."""
        return FleetStatus(
            workers=self.driver.poll(self.workers),
            queue=self.queue.status(),
            size=self.size,
            restarts=self.restarts,
            gave_up=self.gave_up,
        )

    def down(self, drain_timeout: float = 10.0) -> None:
        """Lower the fleet: drain via the stop sentinel, then stop hard.

        The sentinel asks every worker on the work dir to finish its
        current unit and exit; whatever is still alive after
        ``drain_timeout`` seconds is stopped through the driver
        (interrupt, then kill). Fleet state is removed last, so a
        crashed ``down`` can simply be re-run.
        """
        self.stop_herding()
        self.queue.ensure()
        self.queue.stop_path.touch()
        deadline = time.monotonic() + max(0.0, drain_timeout)
        remaining = list(self.workers)
        while remaining and time.monotonic() < deadline:
            states = self.driver.poll(remaining)
            remaining = [h for h in remaining if states.get(h.id) == RUNNING]
            if remaining:
                time.sleep(0.1)
        if remaining:
            self.log(
                f"fleet down: stopping {len(remaining)} worker(s) that did "
                f"not drain within {drain_timeout:g}s"
            )
            self.driver.stop(remaining)
        self.workers = []
        self.size = 0
        self.state_path.unlink(missing_ok=True)
        self.log(f"fleet down: {self.queue.root}")

    # -- herding -------------------------------------------------------------

    def arm_chaos(self) -> None:
        """Arm the restart test hook: SIGKILL one worker mid-run.

        The next :meth:`tick` that observes a claimed unit (i.e. real
        work in flight) kills one worker through the driver's ``kill``
        hook; the ordinary restart path must then replace it. This is
        how the ``fleet-smoke`` CI job proves the herder's crash story
        without hand-rolled process juggling in YAML.
        """
        if getattr(self.driver, "kill", None) is None:
            raise ConfigError(
                f"the {self.driver.name} driver has no kill hook — the "
                "restart test hook needs the local driver"
            )
        self._chaos_armed = True

    def tick(self) -> FleetStatus:
        """One herding pass: reap, chaos, autoscale, refill.

        Returns the post-pass :class:`FleetStatus` so callers (the herd
        loop, tests) observe exactly what the pass acted on.
        """
        states = self.driver.poll(self.workers)
        alive = [h for h in self.workers if states.get(h.id) != EXITED]
        died = len(self.workers) - len(alive)
        if died:
            dead_ids = [h.id for h in self.workers if states.get(h.id) == EXITED]
            self.workers = alive
            self._owed_restarts += died
            self.log(f"herder: {died} worker(s) exited ({', '.join(dead_ids)})")
        queue_status = self.queue.status()
        stopping = queue_status.stopping
        now = self.clock()

        if self._chaos_armed and queue_status.claimed > 0 and self.workers:
            victim = self.workers[0]
            self.driver.kill(victim)  # type: ignore[attr-defined]
            self._chaos_armed = False
            self.log(f"herder: chaos hook SIGKILLed {victim.id}")

        if not stopping:
            if self.policy is not None:
                target = self.policy.target(queue_status, self.size)
                if target != self.size:
                    self.log(f"autoscaler: {self.size} -> {target} worker(s)")
                self.size = target
            if len(self.workers) > self.size:
                surplus = self.workers[self.size :]
                self.workers = self.workers[: self.size]
                self.driver.stop(surplus)
                self.log(f"herder: stopped {len(surplus)} surplus worker(s)")
            deficit = self.size - len(self.workers)
            # Deficit from autoscaler growth refills immediately; the
            # part owed to worker deaths sits behind the backoff, one
            # replacement per window, and stops at the restart cap.
            self._owed_restarts = min(self._owed_restarts, max(0, deficit))
            growth = deficit - self._owed_restarts
            if growth > 0:
                self.workers.extend(self.driver.submit(growth))
            if self._owed_restarts > 0:
                if self.restarts >= self.max_restarts:
                    if not self.gave_up:
                        self.gave_up = True
                        self.log(
                            f"herder: restart cap ({self.max_restarts}) "
                            "reached — dead workers will not be replaced"
                        )
                elif now >= self._next_restart_at:
                    self.workers.extend(self.driver.submit(1))
                    self._owed_restarts -= 1
                    self.restarts += 1
                    backoff = self.restart_backoff * (2 ** (self.restarts - 1))
                    self._next_restart_at = now + backoff
                    self.log(
                        f"herder: restarted 1 worker "
                        f"(restart {self.restarts}/{self.max_restarts}, "
                        f"next backoff {backoff:g}s)"
                    )
            self.save_state()
        return FleetStatus(
            workers=self.driver.poll(self.workers),
            queue=queue_status,
            size=self.size,
            restarts=self.restarts,
            gave_up=self.gave_up,
        )

    def start_herding(self, interval: float = 0.5) -> None:
        """Run :meth:`tick` on a daemon thread until :meth:`stop_herding`.

        A tick that raises is logged and retried next interval — a
        transient poll failure must not end supervision for the rest of
        a long sweep.
        """
        if self._herd_thread is not None:
            return
        stop = threading.Event()

        def loop() -> None:
            while not stop.wait(interval):
                try:
                    self.tick()
                except Exception as exc:  # pragma: no cover - defensive
                    self.log(f"herder: tick failed: {exc}")

        thread = threading.Thread(target=loop, daemon=True, name="fleet-herder")
        thread.start()
        self._herd_stop = stop
        self._herd_thread = thread

    def stop_herding(self) -> None:
        if self._herd_thread is None:
            return
        assert self._herd_stop is not None
        self._herd_stop.set()
        self._herd_thread.join(timeout=10)
        self._herd_thread = None
        self._herd_stop = None
