"""Sweep runner: plans, worker pool, on-disk result cache, progress.

The subsystem that turns every paper sweep into an explicit, cacheable,
parallel plan:

* :mod:`repro.runner.plan` — :class:`RunSpec` points and cartesian
  :func:`expand`-sion;
* :mod:`repro.runner.pool` — :class:`SweepRunner`, the dedupe + cache +
  ``ProcessPoolExecutor`` execution engine;
* :mod:`repro.runner.cache` — :class:`ResultCache`, content-addressed
  JSON memoisation under ``.repro-cache/``;
* :mod:`repro.runner.progress` — optional live progress reporting.
"""

from ..spec import SystemSpec
from .cache import (
    CACHE_SALT,
    DEFAULT_CACHE_DIR,
    GCReport,
    ResultCache,
    materialise,
    payload_to_result,
    result_to_payload,
)
from .plan import MemorySpec, NVRSpec, RunSpec, expand, shape_l2
from .pool import PlanReport, SweepRunner, execute_spec
from .progress import NullProgress, Progress

__all__ = [
    "CACHE_SALT",
    "DEFAULT_CACHE_DIR",
    "GCReport",
    "MemorySpec",
    "NVRSpec",
    "NullProgress",
    "PlanReport",
    "Progress",
    "ResultCache",
    "RunSpec",
    "SweepRunner",
    "SystemSpec",
    "execute_spec",
    "expand",
    "materialise",
    "payload_to_result",
    "result_to_payload",
    "shape_l2",
]
