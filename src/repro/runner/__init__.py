"""Sweep runner: plans, execution backends, result cache, progress.

The subsystem that turns every paper sweep into an explicit, cacheable,
parallel — and distributable — plan:

* :mod:`repro.runner.plan` — :class:`RunSpec` points, cartesian
  :func:`expand`-sion, and the wire-format :class:`Plan`
  (JSON round-trip + deterministic sharding);
* :mod:`repro.runner.pool` — :class:`SweepRunner`, the dedupe + cache +
  backend execution engine;
* :mod:`repro.runner.backend` — pluggable :class:`Backend` protocol:
  :class:`LocalPoolBackend` (in-process ``ProcessPoolExecutor``),
  :class:`FileShardBackend` (share-nothing ``repro worker`` processes
  over serialized shards) and :class:`QueueBackend` (workers *pull*
  claimable units from a shared directory);
* :mod:`repro.runner.queue` — the pull-based work queue:
  :class:`WorkQueue` unit/lease/result protocol and the
  :class:`QueueBackend` orchestrator with crash recovery;
* :mod:`repro.runner.worker` — shard and queue-unit execution plus
  result merging, the machinery behind ``repro worker run``,
  ``repro queue worker`` and ``repro plan merge``;
* :mod:`repro.runner.fleet` — worker *acquisition* for the queue:
  :class:`Fleet` herding (restart-on-death, autoscaling) over pluggable
  :data:`FLEET_DRIVERS` (local subprocesses, SSH fan-out, SLURM arrays);
* :mod:`repro.runner.sync` — remote cache sync (:func:`push_cache` /
  :func:`pull_cache`), sharing sweep warmth across filesystems;
* :mod:`repro.runner.cache` — :class:`ResultCache`, content-addressed
  JSON memoisation under ``.repro-cache/`` with an inter-process lock
  for structural mutations;
* :mod:`repro.runner.progress` — optional live progress reporting.
"""

from ..spec import SystemSpec
from .backend import (
    BACKEND_NAMES,
    Backend,
    FileShardBackend,
    LocalPoolBackend,
    make_backend,
)
from .cache import (
    CACHE_SALT,
    DEFAULT_CACHE_DIR,
    GCReport,
    ResultCache,
    materialise,
    payload_to_result,
    result_to_payload,
    tenant_salt,
    trace_to_payload,
    validate_tenant,
)
from .plan import (
    PLAN_FORMAT,
    MemorySpec,
    NVRSpec,
    Plan,
    RunSpec,
    expand,
    shape_l2,
)
from .fleet import (
    FLEET_DRIVERS,
    AutoscalerPolicy,
    Fleet,
    FleetStatus,
    LocalDriver,
    SlurmDriver,
    SSHDriver,
    WorkerHandle,
    make_driver,
    parse_hosts_file,
)
from .pool import PlanReport, SweepRunner, execute_spec
from .progress import NullProgress, Progress
from .queue import (
    QueueBackend,
    QueueStatus,
    WorkQueue,
    batch_unit_id,
    unit_id,
    units_per_minute,
)
from .sync import SyncReport, pull_cache, push_cache
from .worker import (
    MergeReport,
    load_results,
    merge_results,
    run_queue_worker,
    run_shard,
    write_results,
)

__all__ = [
    "AutoscalerPolicy",
    "BACKEND_NAMES",
    "Backend",
    "CACHE_SALT",
    "DEFAULT_CACHE_DIR",
    "FLEET_DRIVERS",
    "FileShardBackend",
    "Fleet",
    "FleetStatus",
    "GCReport",
    "LocalDriver",
    "LocalPoolBackend",
    "MemorySpec",
    "MergeReport",
    "NVRSpec",
    "NullProgress",
    "PLAN_FORMAT",
    "Plan",
    "PlanReport",
    "Progress",
    "QueueBackend",
    "QueueStatus",
    "ResultCache",
    "RunSpec",
    "SSHDriver",
    "SlurmDriver",
    "SweepRunner",
    "SyncReport",
    "SystemSpec",
    "WorkQueue",
    "WorkerHandle",
    "batch_unit_id",
    "execute_spec",
    "expand",
    "load_results",
    "make_backend",
    "make_driver",
    "materialise",
    "merge_results",
    "parse_hosts_file",
    "payload_to_result",
    "pull_cache",
    "push_cache",
    "result_to_payload",
    "run_queue_worker",
    "run_shard",
    "shape_l2",
    "tenant_salt",
    "trace_to_payload",
    "unit_id",
    "units_per_minute",
    "validate_tenant",
    "write_results",
]
