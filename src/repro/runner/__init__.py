"""Sweep runner: plans, execution backends, result cache, progress.

The subsystem that turns every paper sweep into an explicit, cacheable,
parallel — and distributable — plan:

* :mod:`repro.runner.plan` — :class:`RunSpec` points, cartesian
  :func:`expand`-sion, and the wire-format :class:`Plan`
  (JSON round-trip + deterministic sharding);
* :mod:`repro.runner.pool` — :class:`SweepRunner`, the dedupe + cache +
  backend execution engine;
* :mod:`repro.runner.backend` — pluggable :class:`Backend` protocol:
  :class:`LocalPoolBackend` (in-process ``ProcessPoolExecutor``) and
  :class:`FileShardBackend` (share-nothing ``repro worker`` processes
  over serialized shards);
* :mod:`repro.runner.worker` — shard execution and result merging, the
  machinery behind ``repro worker run`` / ``repro plan merge``;
* :mod:`repro.runner.cache` — :class:`ResultCache`, content-addressed
  JSON memoisation under ``.repro-cache/`` with an inter-process lock
  for structural mutations;
* :mod:`repro.runner.progress` — optional live progress reporting.
"""

from ..spec import SystemSpec
from .backend import (
    BACKEND_NAMES,
    Backend,
    FileShardBackend,
    LocalPoolBackend,
    make_backend,
)
from .cache import (
    CACHE_SALT,
    DEFAULT_CACHE_DIR,
    GCReport,
    ResultCache,
    materialise,
    payload_to_result,
    result_to_payload,
    trace_to_payload,
)
from .plan import (
    PLAN_FORMAT,
    MemorySpec,
    NVRSpec,
    Plan,
    RunSpec,
    expand,
    shape_l2,
)
from .pool import PlanReport, SweepRunner, execute_spec
from .progress import NullProgress, Progress
from .worker import (
    MergeReport,
    load_results,
    merge_results,
    run_shard,
    write_results,
)

__all__ = [
    "BACKEND_NAMES",
    "Backend",
    "CACHE_SALT",
    "DEFAULT_CACHE_DIR",
    "FileShardBackend",
    "GCReport",
    "LocalPoolBackend",
    "MemorySpec",
    "MergeReport",
    "NVRSpec",
    "NullProgress",
    "PLAN_FORMAT",
    "Plan",
    "PlanReport",
    "Progress",
    "ResultCache",
    "RunSpec",
    "SweepRunner",
    "SystemSpec",
    "execute_spec",
    "expand",
    "load_results",
    "make_backend",
    "materialise",
    "merge_results",
    "payload_to_result",
    "result_to_payload",
    "run_shard",
    "shape_l2",
    "trace_to_payload",
    "write_results",
]
