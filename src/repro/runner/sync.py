"""Remote cache sync: share sweep warmth across filesystems.

A fleet on one machine warms its local ``.repro-cache/``; a fleet on
another filesystem starts cold. :func:`push_cache`/:func:`pull_cache`
move entries between a local :class:`~repro.runner.cache.ResultCache`
and a *remote tier* — either a plain directory (an NFS export, a mounted
bucket) or an ``rsync`` target (``rsync://host/module/path`` or
``host:path``), so ``repro cache push --remote ...`` after a fleet run
and ``repro cache pull --remote ...`` before the next one makes warmth
portable.

Pushes are cheap and trusting: entries are content-addressed, so a file
that already exists remotely is skipped and concurrent pushers converge.
Pulls are *verified* exactly like PR-5 cache reads: an entry only merges
if its stored salt matches the local cache's salt, its spec parses, and
its content address matches its filename — a remote tier populated by a
different code version (different salt) contributes nothing rather than
poisoning the local cache with stale results.
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import tempfile
from dataclasses import dataclass
from pathlib import Path

from ..errors import ConfigError
from .cache import ResultCache, atomic_write_json
from .plan import RunSpec


@dataclass
class SyncReport:
    """What one push/pull pass moved (and what it refused)."""

    copied: int = 0
    skipped: int = 0
    rejected: int = 0
    examined: int = 0

    def summary(self, direction: str) -> str:
        return (
            f"{direction}: {self.copied} entr{'y' if self.copied == 1 else 'ies'} "
            f"copied, {self.skipped} already present, {self.rejected} rejected "
            f"({self.examined} examined)"
        )


def is_rsync_remote(remote: str) -> bool:
    """``rsync://`` URLs and ``host:path`` specs go through rsync.

    A bare path — absolute, relative, or a Windows-style drive letter —
    is treated as a directory. ``host:path`` is recognised by a colon
    before the first slash, rsync's own rule.
    """
    if remote.startswith("rsync://"):
        return True
    head = remote.split("/", 1)[0]
    return ":" in head and not remote.startswith(":") and len(head.split(":")[0]) > 1


def _rsync(source: str, dest: str) -> None:
    argv = ["rsync", "-a", "--exclude", ".lock", "--exclude", "*.tmp", source, dest]
    try:
        proc = subprocess.run(argv, capture_output=True, text=True, check=False)
    except FileNotFoundError:
        raise ConfigError(
            "rsync is not available on this machine — use a directory "
            "remote, or install rsync"
        ) from None
    if proc.returncode != 0:
        raise ConfigError(
            f"rsync failed ({proc.returncode}): {' '.join(argv)}\n"
            f"{proc.stderr.strip()}"
        )


def _entry_spec(cache: ResultCache, path: Path) -> RunSpec | None:
    """The verified spec of one remote entry, or ``None`` if rejected.

    Acceptance mirrors :meth:`ResultCache.get`: the entry must be JSON
    of the ``{salt, spec, payload}`` shape, its salt must equal the
    local cache's, its spec must parse, and its content address
    (``sha256(salt + "\\n" + spec.key())``) must match the filename —
    so a renamed, stale, or foreign-version entry is refused, never
    merged.
    """
    try:
        with open(path, encoding="utf-8") as handle:
            entry = json.load(handle)
        if entry["salt"] != cache.salt:
            return None
        spec = RunSpec.from_dict(entry["spec"])
        if cache.key_for(spec) != path.stem:
            return None
        if not isinstance(entry["payload"], dict):
            return None
    except (OSError, ValueError, KeyError, TypeError, ConfigError):
        # Unreadable, malformed, or wrong-shape entries are exactly the
        # foreign files this gate exists to refuse — skip, don't raise.
        return None
    return spec


def _entry_paths(root: Path) -> list[Path]:
    if not root.is_dir():
        return []
    return sorted(root.glob("??/*.json"))


def _push_to_dir(cache: ResultCache, remote_root: Path) -> SyncReport:
    report = SyncReport()
    remote_root.mkdir(parents=True, exist_ok=True)
    for path in cache.entries():
        report.examined += 1
        dest = remote_root / path.parent.name / path.name
        if dest.exists():
            report.skipped += 1
            continue
        dest.parent.mkdir(parents=True, exist_ok=True)
        # Copy via temp + rename so a concurrent puller on the remote
        # tier never reads a half-copied entry.
        fd, tmp = tempfile.mkstemp(dir=dest.parent, suffix=".tmp")
        os.close(fd)
        try:
            shutil.copyfile(path, tmp)
            os.replace(tmp, dest)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        report.copied += 1
    return report


def _pull_from_dir(cache: ResultCache, remote_root: Path) -> SyncReport:
    report = SyncReport()
    if not remote_root.is_dir():
        raise ConfigError(f"remote cache directory {remote_root} does not exist")
    with cache.lock():
        for path in _entry_paths(remote_root):
            report.examined += 1
            local = cache.root / path.parent.name / path.name
            if local.exists():
                report.skipped += 1
                continue
            spec = _entry_spec(cache, path)
            if spec is None:
                report.rejected += 1
                continue
            # Re-serialise through atomic_write_json rather than copying
            # bytes: the local entry is then canonical (key-sorted,
            # NaN-normalised) regardless of who wrote the remote file.
            entry = json.loads(path.read_text(encoding="utf-8"))
            atomic_write_json(local, entry)
            cache.writes += 1
            report.copied += 1
    return report


def push_cache(cache: ResultCache, remote: str) -> SyncReport:
    """Copy every local entry the remote tier is missing.

    Directory remotes are copied entry-by-entry (temp + rename, skip
    existing); rsync remotes hand the whole tree to ``rsync -a`` —
    content addressing makes re-pushing idempotent either way.
    """
    if is_rsync_remote(remote):
        if not cache.root.is_dir():
            return SyncReport()
        report = SyncReport(examined=len(cache.entries()))
        _rsync(str(cache.root) + "/", remote.rstrip("/") + "/")
        report.copied = report.examined
        return report
    return _push_to_dir(cache, Path(remote))


def pull_cache(cache: ResultCache, remote: str) -> SyncReport:
    """Merge the remote tier's entries into the local cache, verified.

    Every candidate entry is salt-, spec- and address-checked (see
    :func:`_entry_spec`) before it lands; the merge holds the cache
    lock so a concurrent ``gc`` can never collect between scan and
    write. Rsync remotes are staged into a temp directory first and
    verified from there — remote bytes are never trusted directly.
    """
    if is_rsync_remote(remote):
        with tempfile.TemporaryDirectory(prefix="repro-pull-") as staging:
            _rsync(remote.rstrip("/") + "/", staging + "/")
            return _pull_from_dir(cache, Path(staging))
    return _pull_from_dir(cache, Path(remote))
