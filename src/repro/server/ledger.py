"""Durable sweep ledger: one JSON record per submitted sweep.

The daemon's restart story. Every accepted ``POST /v1/sweeps`` writes a
record under ``<work>/server/sweeps/`` before the submission is
acknowledged::

    <work>/server/sweeps/<sweep_id>.json

A record stores identity, not progress: the tenant, the submitted specs
(in submission order — result order is part of the contract) and any
terminal error. Progress is *derived* — which points are in the cache,
which units are queued or claimed — so a restarted daemon reloads the
records, re-scans cache and queue, and resumes every sweep exactly
where the filesystem says it is, with nothing to replay and no journal
to compact.

The sweep id is a content address over (tenant, ordered spec keys), so
resubmitting an identical sweep maps onto the same record — the POST is
idempotent by construction, and the second submission reports whatever
the first one already cached.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import ConfigError
from ..runner.cache import atomic_write_json
from ..runner.plan import RunSpec
from ..spec import parse_json

#: Version stamp of the ledger record layout.
LEDGER_FORMAT = 1


def sweep_id(tenant: str | None, specs) -> str:
    """Content address of one submission: tenant + ordered spec keys.

    Submission order is folded in (not a sorted set): the results
    endpoint returns points in submission order, so two submissions
    that differ only in order are different sweeps — while a truly
    identical resubmission, from the same tenant, lands on the same id
    and therefore the same ledger record.
    """
    digest = hashlib.sha256()
    digest.update((tenant or "").encode())
    for spec in specs:
        digest.update(b"\n")
        digest.update(spec.key().encode())
    return digest.hexdigest()[:24]


@dataclass
class SweepRecord:
    """One submitted sweep, as persisted (identity, not progress)."""

    id: str
    tenant: str | None
    specs: list[RunSpec]
    meta: dict = field(default_factory=dict)
    created_at: float = 0.0
    error: str | None = None

    @classmethod
    def create(
        cls,
        tenant: str | None,
        specs,
        meta: dict | None = None,
    ) -> "SweepRecord":
        specs = list(specs)
        if not specs:
            raise ConfigError("a sweep needs at least one point")
        return cls(
            id=sweep_id(tenant, specs),
            tenant=tenant,
            specs=specs,
            meta=dict(meta or {}),
            created_at=time.time(),
        )

    def to_dict(self) -> dict:
        return {
            "format": LEDGER_FORMAT,
            "id": self.id,
            "tenant": self.tenant,
            "created_at": self.created_at,
            "meta": self.meta,
            "specs": [spec.to_dict() for spec in self.specs],
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "SweepRecord":
        if not isinstance(d, dict):
            raise ConfigError(f"sweep record must be a dict, got {type(d).__name__}")
        version = d.get("format")
        if version != LEDGER_FORMAT:
            raise ConfigError(
                f"unsupported sweep record format {version!r} "
                f"(this reader understands format {LEDGER_FORMAT})"
            )
        raw_specs = d.get("specs")
        if not isinstance(raw_specs, list) or not raw_specs:
            raise ConfigError("sweep record 'specs' must be a non-empty list")
        try:
            specs = [RunSpec.from_dict(s) for s in raw_specs]
        except (ConfigError, KeyError, TypeError) as exc:
            raise ConfigError(f"sweep record spec: {exc}") from None
        record = cls(
            id=str(d.get("id", "")),
            tenant=d.get("tenant"),
            specs=specs,
            meta=dict(d.get("meta") or {}),
            created_at=float(d.get("created_at", 0.0)),
            error=d.get("error"),
        )
        if record.id != sweep_id(record.tenant, record.specs):
            raise ConfigError(
                "sweep record id does not match its tenant/specs — "
                "corrupt or hand-edited ledger file"
            )
        return record


class SweepLedger:
    """The on-disk ledger: atomic per-sweep records under one directory."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.sweeps_dir = self.root / "sweeps"

    def path_for(self, sweep: str) -> Path:
        return self.sweeps_dir / f"{sweep}.json"

    def save(self, record: SweepRecord) -> Path:
        """Persist (or overwrite — e.g. clearing an error) one record."""
        return atomic_write_json(self.path_for(record.id), record.to_dict())

    def load(self, sweep: str) -> SweepRecord:
        """Read one record; :class:`ConfigError` if missing or corrupt."""
        path = self.path_for(sweep)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise ConfigError(f"no sweep record {sweep}: {exc}") from None
        return SweepRecord.from_dict(parse_json(text, f"sweep record {path}"))

    def load_all(self) -> list[SweepRecord]:
        """Every readable record, oldest first (daemon startup reload).

        An unreadable or corrupt record is skipped, not fatal: one bad
        file must not keep the daemon from resuming every other sweep.
        """
        if not self.sweeps_dir.is_dir():
            return []
        records = []
        for path in sorted(self.sweeps_dir.glob("*.json")):
            try:
                document = json.loads(path.read_text(encoding="utf-8"))
                records.append(SweepRecord.from_dict(document))
            except (OSError, ValueError, ConfigError):
                continue
        records.sort(key=lambda r: (r.created_at, r.id))
        return records
