"""SweepEngine: submissions, per-tenant dedupe, drain threads, status.

The orchestration core of ``repro serve``, deliberately free of any
HTTP: everything here is plain-Python callable (and unit-testable)
state over the same primitives every other front door uses —

* a submission is parsed into :class:`~repro.runner.RunSpec` points
  (:func:`parse_submission`), content-addressed into a sweep id, and
  persisted to the :class:`~repro.server.ledger.SweepLedger` before it
  is acknowledged;
* the tenant's :class:`~repro.runner.ResultCache` namespace is scanned
  point-by-point — hits are done before any worker hears about the
  sweep, and a fully-cached submission never touches the queue at all
  (the "second identical POST enqueues nothing" guarantee);
* the misses drain through an ordinary :class:`~repro.session.Session`
  over the :class:`~repro.runner.QueueBackend` on a background thread
  per sweep — the exact orchestration a ``Session.remote`` sweep runs,
  crash recovery and salt verification included, so any ``repro queue
  worker`` or fleet drains server sweeps unchanged;
* progress is *derived*, never journalled: :meth:`SweepEngine.poll`
  watches the tenant cache for outstanding points and turns each
  landing into an event (the SSE feed), and :meth:`SweepEngine.status`
  reads queued/claimed straight off the work directory. A restarted
  daemon reloads the ledger and resumes from what the filesystem
  already says (:meth:`SweepEngine.start`).

Concurrency model: submissions, status reads and :meth:`poll` run on
the server's event-loop thread; only the sweep *drains* run on
threads. Shared sweep state is guarded by one lock, and subscriber
callbacks fire outside it.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import ConfigError, ReproError
from ..resultset import RESULT_FORMATS, ResultSet
from ..runner.cache import ResultCache, materialise, validate_tenant
from ..runner.plan import Plan, RunSpec
from ..runner.queue import (
    DEFAULT_POLL,
    QueueBackend,
    WorkQueue,
    unit_id,
    units_per_minute,
)
from ..session import Grid, Session, resolve_cache_dir
from ..spec import SystemSpec
from .ledger import SweepLedger, SweepRecord

__all__ = ["SweepEngine", "SweepState", "fleet_summary", "parse_submission"]


def parse_submission(document) -> tuple[list[RunSpec], dict]:
    """Turn a ``POST /v1/sweeps`` body into (specs, meta).

    Exactly one point source is required: ``grid`` (declarative
    :class:`~repro.session.Grid` axes — values may be scalars or
    lists), ``plan`` (a wire-format :class:`~repro.runner.Plan`
    document, the ``repro plan export`` output), or ``specs`` (a bare
    list of spec dicts). Anything malformed is a
    :class:`~repro.errors.ConfigError` — a 400, never a traceback.
    """
    if not isinstance(document, dict):
        raise ConfigError(
            f"submission body must be a JSON object, got "
            f"{type(document).__name__}"
        )
    meta = document.get("meta", {})
    if not isinstance(meta, dict):
        raise ConfigError("submission 'meta' must be an object")
    sources = [k for k in ("grid", "plan", "specs") if k in document]
    if len(sources) != 1:
        raise ConfigError(
            "submission needs exactly one of 'grid', 'plan' or 'specs' "
            f"(got {', '.join(sources) or 'none'})"
        )
    source = sources[0]
    if source == "grid":
        axes = document["grid"]
        if not isinstance(axes, dict) or not axes:
            raise ConfigError("submission 'grid' must be a non-empty object")
        specs = Grid(**axes).specs()
    elif source == "plan":
        specs = list(Plan.from_dict(document["plan"]).specs)
    else:
        raw = document["specs"]
        if not isinstance(raw, list) or not raw:
            raise ConfigError("submission 'specs' must be a non-empty list")
        try:
            specs = [RunSpec.from_dict(d) for d in raw]
        except (ConfigError, KeyError, TypeError) as exc:
            raise ConfigError(f"submission spec: {exc}") from None
    if not specs:
        raise ConfigError("submission expands to zero points")
    return specs, dict(meta)


def fleet_summary(work_dir: str | os.PathLike) -> dict:
    """What ``<work>/fleet/state.json`` says about the attached fleet.

    Read directly (not through :meth:`~repro.runner.Fleet.attach`) so a
    work directory that never ran ``fleet up`` — workers started by
    hand, or none at all — reports an empty fleet instead of raising.
    """
    path = Path(work_dir) / "fleet" / "state.json"
    try:
        state = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return {"driver": None, "size": 0, "workers": 0, "restarts": 0}
    if not isinstance(state, dict):
        return {"driver": None, "size": 0, "workers": 0, "restarts": 0}
    workers = state.get("workers") or []
    return {
        "driver": state.get("driver"),
        "size": int(state.get("size", len(workers))),
        "workers": len(workers),
        "restarts": int(state.get("restarts", 0)),
    }


class _EngineStopped(Exception):
    """Internal: a drain thread interrupted by engine shutdown."""


@dataclass
class SweepState:
    """In-memory progress of one ledgered sweep."""

    record: SweepRecord
    unique: list[tuple[str, RunSpec]]  # (spec.key(), spec), submission order
    done: set = field(default_factory=set)  # spec keys present in the cache
    cached_at_submit: int = 0
    finished: bool = False
    error: str | None = None
    thread: threading.Thread | None = None


class SweepEngine:
    """Sweep-as-a-service orchestration over cache + queue + Session."""

    def __init__(
        self,
        work_dir: str | os.PathLike,
        cache_dir: str | os.PathLike | None = None,
        lease_timeout: float | None = None,
        queue_timeout: float | None = None,
        poll_interval: float = DEFAULT_POLL,
        engine: str | None = None,
    ) -> None:
        self.work_dir = Path(work_dir)
        self.queue = WorkQueue(self.work_dir).ensure()
        self.ledger = SweepLedger(self.work_dir / "server")
        self.cache_dir = resolve_cache_dir(cache_dir)
        self.lease_timeout = lease_timeout
        self.queue_timeout = queue_timeout
        self.poll_interval = float(poll_interval)
        # Validate eagerly; fold "reference" to None like Session does.
        self.engine = SystemSpec(engine=engine).engine if engine else None
        self.started_at = time.time()
        self._lock = threading.Lock()
        self._states: dict[str, SweepState] = {}
        self._subscribers: dict[str, list] = {}
        self._caches: dict[str | None, ResultCache] = {}
        self._stop = threading.Event()
        self._points_seen = 0
        self._points_cached = 0

    # -- plumbing ------------------------------------------------------------

    def cache_for(self, tenant: str | None) -> ResultCache:
        """The (memoised) cache namespace of one tenant."""
        if tenant not in self._caches:
            self._caches[tenant] = ResultCache(self.cache_dir, tenant=tenant)
        return self._caches[tenant]

    def _apply_engine(self, spec: RunSpec) -> RunSpec:
        if self.engine is None or spec.engine is not None:
            return spec
        return spec.with_engine(self.engine)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> int:
        """Reload the ledger and resume every unfinished sweep.

        Returns how many sweeps went back into flight. Fully-cached
        records become immediately-done states; records with a
        persisted error stay failed (a resubmission retries them);
        everything else re-scans the cache and re-enqueues its misses
        — enqueues are content-addressed and idempotent, so units
        still queued or claimed from before the restart are simply
        waited on, not duplicated.
        """
        resumed = 0
        for record in self.ledger.load_all():
            with self._lock:
                if record.id in self._states:
                    continue
                state = self._make_state(record)
                self._states[record.id] = state
                self._activate(state, fresh=False)
                if not state.finished:
                    resumed += 1
        return resumed

    def shutdown(self, timeout: float = 2.0) -> None:
        """Interrupt drain threads; safe to call repeatedly.

        Drains abort *without* recording an error (the sweep is not
        failed — the daemon is going away), so a restarted engine
        resumes them as pending. Threads stuck executing (not polling)
        are daemons and die with the process.
        """
        self._stop.set()
        with self._lock:
            threads = [s.thread for s in self._states.values() if s.thread]
        for thread in threads:
            thread.join(timeout)

    # -- submission ----------------------------------------------------------

    def submit(
        self, specs, tenant: str | None = None, meta: dict | None = None
    ) -> tuple[str, bool]:
        """Accept one sweep; returns (sweep id, created-new-record).

        Idempotent by content address: resubmitting the same specs (as
        the same tenant) maps onto the existing sweep — an active one
        is simply reported, a finished one is re-validated against the
        cache (all present: every point is a hit and nothing is
        enqueued; evicted or previously failed: the misses drain
        again). ``meta`` is recorded on first submission only.
        """
        tenant = validate_tenant(tenant) if tenant else None
        specs = [self._apply_engine(spec) for spec in specs]
        record = SweepRecord.create(tenant, specs, meta)
        with self._lock:
            state = self._states.get(record.id)
            created = state is None
            if created:
                state = self._make_state(record)
                self.ledger.save(record)
                self._states[record.id] = state
                self._activate(state, fresh=True)
            elif state.finished:
                self._activate(state, fresh=True)
        return record.id, created

    def _make_state(self, record: SweepRecord) -> SweepState:
        unique: list[tuple[str, RunSpec]] = []
        seen = set()
        for spec in record.specs:
            key = spec.key()
            if key not in seen:
                seen.add(key)
                unique.append((key, spec))
        return SweepState(record=record, unique=unique)

    def _activate(self, state: SweepState, fresh: bool) -> None:
        """(Re-)scan the tenant cache and set the sweep in motion.

        Called under the lock. ``fresh`` marks a client submission (the
        scan counts toward the server's hit-rate stats and clears any
        previous failure); a ledger reload keeps a persisted error as a
        failed terminal state instead of silently retrying.
        """
        cache = self.cache_for(state.record.tenant)
        done = set()
        for key, spec in state.unique:
            if cache.get(spec) is not None:
                done.add(key)
        state.done = done
        state.cached_at_submit = len(done)
        if fresh:
            self._points_seen += len(state.unique)
            self._points_cached += len(done)
        if len(done) == len(state.unique):
            state.finished = True
            state.error = None
            self._clear_record_error(state)
            return
        if not fresh and state.record.error:
            state.finished = True
            state.error = state.record.error
            return
        state.finished = False
        state.error = None
        self._clear_record_error(state)
        self._start_drain(state)

    def _clear_record_error(self, state: SweepState) -> None:
        if state.record.error is not None:
            state.record.error = None
            try:
                self.ledger.save(state.record)
            except OSError:  # pragma: no cover - unwritable ledger
                pass

    # -- draining ------------------------------------------------------------

    def _start_drain(self, state: SweepState) -> None:
        thread = threading.Thread(
            target=self._drain,
            args=(state,),
            daemon=True,
            name=f"sweep-{state.record.id[:8]}",
        )
        state.thread = thread
        thread.start()

    def _interruptible_sleep(self, seconds: float) -> None:
        if self._stop.wait(seconds):
            raise _EngineStopped

    def _drain(self, state: SweepState) -> None:
        """One sweep's worker thread: a Session over the queue backend.

        Results stream into the tenant cache as units land (the
        standard incremental fold), which is exactly what
        :meth:`poll` watches — this thread owns *execution*, never
        status. A spec failure out of the queue records the error on
        the state and the ledger; an engine shutdown aborts silently
        so a restart resumes the sweep as pending.
        """
        try:
            if self._stop.is_set():
                return
            backend = QueueBackend(
                self.work_dir,
                lease_timeout=self.lease_timeout,
                timeout=self.queue_timeout,
            )
            backend._sleep = self._interruptible_sleep
            cache = self.cache_for(state.record.tenant)
            session = Session(cache=cache, backend=backend)
            try:
                session.sweep([spec for _, spec in state.unique])
            finally:
                session.close()
        except _EngineStopped:
            return
        except Exception as exc:
            message = (
                str(exc)
                if isinstance(exc, ReproError)
                else f"{type(exc).__name__}: {exc}"
            )
            with self._lock:
                state.error = message
                state.record.error = message
                try:
                    self.ledger.save(state.record)
                except OSError:  # pragma: no cover - unwritable ledger
                    pass
        finally:
            state.thread = None

    # -- progress ------------------------------------------------------------

    def poll(self) -> int:
        """Fold newly-landed cache entries into sweep state; emit events.

        The single place progress is observed: every active sweep's
        outstanding points are checked against its tenant cache (a
        stat per point), each landing becomes a ``point`` event, and a
        sweep whose last point landed — or whose drain thread recorded
        an error — becomes terminal with a ``done``/``failed`` event.
        Returns the number of events dispatched.
        """
        events: list[tuple[str, dict]] = []
        with self._lock:
            for sid, state in self._states.items():
                if state.finished:
                    continue
                cache = self.cache_for(state.record.tenant)
                for key, spec in state.unique:
                    if key in state.done:
                        continue
                    if cache.path_for(spec).exists():
                        state.done.add(key)
                        events.append((sid, self._point_event(state, spec)))
                if len(state.done) == len(state.unique):
                    state.finished = True
                    state.error = None
                    self._clear_record_error(state)
                    events.append((sid, self._terminal_event(state)))
                elif state.error is not None and state.thread is None:
                    state.finished = True
                    events.append((sid, self._terminal_event(state)))
            dispatch = [
                (callback, event)
                for sid, event in events
                for callback in self._subscribers.get(sid, ())
            ]
        for callback, event in dispatch:
            callback(event)
        return len(events)

    def _point_event(self, state: SweepState, spec: RunSpec) -> dict:
        return {
            "event": "point",
            "sweep": state.record.id,
            "key": spec.key(),
            "label": spec.label(),
            "done": len(state.done),
            "total": len(state.unique),
        }

    def _terminal_event(self, state: SweepState) -> dict:
        if state.error is not None:
            return {
                "event": "failed",
                "sweep": state.record.id,
                "error": state.error,
                "done": len(state.done),
                "total": len(state.unique),
            }
        return {
            "event": "done",
            "sweep": state.record.id,
            "done": len(state.done),
            "total": len(state.unique),
        }

    def subscribe(self, sweep: str, callback) -> tuple[list[dict], object]:
        """Attach a live event listener; returns (replay, unsubscribe).

        ``replay`` holds one ``point`` event per already-landed point
        (submission order) plus the terminal event when the sweep is
        already over — taken under the same lock that registers the
        listener, so a point lands either in the replay or on the
        callback, never both, never neither.
        """
        with self._lock:
            state = self._states.get(sweep)
            if state is None:
                raise ConfigError(f"unknown sweep id {sweep!r}")
            replay = []
            landed = 0
            for key, spec in state.unique:
                if key in state.done:
                    landed += 1
                    replay.append(
                        {
                            "event": "point",
                            "sweep": state.record.id,
                            "key": key,
                            "label": spec.label(),
                            "done": landed,
                            "total": len(state.unique),
                        }
                    )
            if state.finished:
                replay.append(self._terminal_event(state))
            self._subscribers.setdefault(sweep, []).append(callback)

        def unsubscribe() -> None:
            with self._lock:
                listeners = self._subscribers.get(sweep, [])
                if callback in listeners:
                    listeners.remove(callback)
                if not listeners:
                    self._subscribers.pop(sweep, None)

        return replay, unsubscribe

    # -- read side -----------------------------------------------------------

    def sweep_ids(self) -> list[str]:
        with self._lock:
            return sorted(self._states)

    def status(self, sweep: str) -> dict:
        """Status document of one sweep (the ``GET /v1/sweeps/{id}`` body)."""
        with self._lock:
            state = self._states.get(sweep)
            if state is None:
                raise ConfigError(f"unknown sweep id {sweep!r}")
            return self._status_locked(state)

    def _status_locked(self, state: SweepState) -> dict:
        total = len(state.unique)
        done = len(state.done)
        queued = running = 0
        if not state.finished:
            for key, spec in state.unique:
                if key in state.done:
                    continue
                uid = unit_id(spec)
                if self.queue.claimed_path(uid).exists():
                    running += 1
                elif self.queue.queued_path(uid).exists():
                    queued += 1
        if state.error is not None and state.thread is None:
            phase = "failed"
        elif state.finished:
            phase = "cached" if state.cached_at_submit == total else "done"
        elif running or done > state.cached_at_submit:
            phase = "running"
        else:
            phase = "queued"
        return {
            "id": state.record.id,
            "tenant": state.record.tenant,
            "state": phase,
            "created_at": state.record.created_at,
            "meta": state.record.meta,
            "error": state.error,
            "points": {
                "total": len(state.record.specs),
                "unique": total,
                "done": done,
                "cached_at_submit": state.cached_at_submit,
                "queued": queued,
                "running": running,
            },
        }

    def is_done(self, sweep: str) -> bool:
        with self._lock:
            state = self._states.get(sweep)
            if state is None:
                raise ConfigError(f"unknown sweep id {sweep!r}")
            return state.finished and state.error is None

    def results(self, sweep: str, fmt: str = "json") -> str:
        """The finished sweep as rendered ResultSet text.

        Rebuilt from the tenant cache in submission order — the same
        materialisation path a warm local sweep takes, so the JSON
        flavour is byte-identical to ``Session.sweep(...).to_json()``
        of the same points. A point evicted between completion and
        this read (a racing ``cache gc``) flips the sweep back to
        pending and raises, so the caller re-polls rather than getting
        a partial result set.
        """
        if fmt not in RESULT_FORMATS:
            raise ConfigError(
                f"unknown result format '{fmt}' "
                f"(known: {', '.join(RESULT_FORMATS)})"
            )
        with self._lock:
            state = self._states.get(sweep)
            if state is None:
                raise ConfigError(f"unknown sweep id {sweep!r}")
            if not (state.finished and state.error is None):
                raise ConfigError(
                    f"sweep {sweep} has no results yet "
                    f"(state: {self._status_locked(state)['state']})"
                )
            cache = self.cache_for(state.record.tenant)
            entries = []
            for spec in state.record.specs:
                payload = cache.get(spec)
                if payload is None:
                    state.done.discard(spec.key())
                    state.finished = False
                    self._start_drain(state)
                    raise ConfigError(
                        f"sweep {sweep}: point {spec.label()} was evicted "
                        "from the cache — re-draining; poll status again"
                    )
                entries.append((spec, materialise(payload)))
        return ResultSet(entries).render(fmt)

    # -- stats ---------------------------------------------------------------

    def stats(self) -> dict:
        """The ``GET /v1/stats`` document: server, cache, queue, fleet."""
        queue_status = self.queue.status(self.lease_timeout, deep=True)
        workers = [
            {
                "worker": s.get("worker"),
                "units": int(s.get("units", 0)),
                "points": int(s.get("points", 0)),
                "failures": int(s.get("failures", 0)),
                "units_per_min": round(units_per_minute(s), 2),
                "last_done_at": s.get("last_done_at"),
            }
            for s in self.queue.worker_stats()
        ]
        with self._lock:
            by_phase: dict[str, int] = {}
            for state in self._states.values():
                phase = self._status_locked(state)["state"]
                by_phase[phase] = by_phase.get(phase, 0) + 1
            seen, cached = self._points_seen, self._points_cached
            tenants = sorted(
                {s.record.tenant for s in self._states.values() if s.record.tenant}
            )
        return {
            "server": {
                "uptime_s": round(time.time() - self.started_at, 3),
                "work_dir": str(self.work_dir),
                "sweeps": {"total": sum(by_phase.values()), **by_phase},
                "tenants": tenants,
            },
            "cache": {
                "dir": str(self.cache_dir),
                "points_submitted": seen,
                "points_cached_at_submit": cached,
                "hit_rate": round(cached / seen, 4) if seen else None,
            },
            "queue": queue_status.to_dict(),
            "workers": workers,
            "fleet": fleet_summary(self.work_dir),
        }
