"""Asyncio HTTP/1.1 front end for the sweep daemon.

Stdlib-only by design: the repo's no-new-dependencies rule covers the
server too, so this is ``asyncio.start_server`` plus ~100 lines of
HTTP/1.1 — enough for ``curl``, :class:`repro.client.SweepClient` and
CI. Deliberate simplifications: every response closes the connection
(no keep-alive), bodies are bounded, and anything malformed is a JSON
``{"error": ...}`` with a 4xx, never a traceback on the socket.

Routes (all JSON unless noted)::

    GET  /healthz                       liveness probe
    GET  /v1/stats                      cache / queue / fleet / worker stats
    POST /v1/sweeps                     submit (grid | plan | specs body)
    GET  /v1/sweeps                     every known sweep's status
    GET  /v1/sweeps/{id}                one sweep's status
    GET  /v1/sweeps/{id}/results        ResultSet (?format=json|csv|markdown)
    GET  /v1/sweeps/{id}/events         Server-Sent Events progress stream

The ``X-Repro-Tenant`` request header selects the cache namespace for a
submission. Reads are by sweep id only — ids are content addresses that
already fold the tenant in, so holding an id is the read capability.

Threading: the event loop owns all engine reads and the periodic
:meth:`~repro.server.engine.SweepEngine.poll`; sweep execution runs on
the engine's drain threads. :func:`start_in_thread` hosts the whole
loop on a daemon thread for tests and in-process examples.
"""

from __future__ import annotations

import asyncio
import json
import threading
from contextlib import suppress
from dataclasses import dataclass, field
from urllib.parse import parse_qs, unquote, urlsplit

from ..errors import ConfigError
from ..runner.cache import validate_tenant
from ..utils import sanitize_nonfinite
from .engine import SweepEngine, parse_submission

__all__ = ["ServerHandle", "SweepServer", "start_in_thread"]

#: Largest accepted request body, bytes. A 100k-point plan document is
#: ~20 MB of JSON; anything bigger is almost certainly a mistake.
MAX_BODY_BYTES = 32 * 1024 * 1024

#: Seconds of SSE silence before a ``: keepalive`` comment is sent.
SSE_KEEPALIVE_S = 15.0

_REASONS = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
}

_CONTENT_TYPES = {
    "json": "application/json; charset=utf-8",
    "csv": "text/csv; charset=utf-8",
    "markdown": "text/markdown; charset=utf-8",
}


class _HttpError(Exception):
    """Internal: abort request handling with (status, message)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class SweepServer:
    """The daemon: one engine behind an asyncio socket server."""

    def __init__(
        self,
        engine: SweepEngine,
        host: str = "127.0.0.1",
        port: int = 8080,
    ) -> None:
        self.engine = engine
        self.host = host
        self.port = int(port)
        self._server: asyncio.base_events.Server | None = None
        self._poll_task: asyncio.Task | None = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind the socket, reload the ledger, start the poll loop.

        With ``port=0`` the OS picks a free port; ``self.port`` holds
        the actual one afterwards (tests and CI scrape it).
        """
        resumed = self.engine.start()
        if resumed:
            self.engine.poll()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port, limit=1 << 20
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._poll_task = asyncio.get_running_loop().create_task(self._poll_loop())

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Close the socket, stop polling, interrupt drain threads."""
        if self._poll_task is not None:
            self._poll_task.cancel()
            with suppress(asyncio.CancelledError):
                await self._poll_task
            self._poll_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.engine.shutdown()

    async def _poll_loop(self) -> None:
        """Drive engine.poll() — the only writer of progress/events."""
        while True:
            try:
                self.engine.poll()
            # repro: ignore[RPR005] poll must outlive any one bad tick
            except Exception:  # pragma: no cover - keep the loop alive
                pass
            await asyncio.sleep(self.engine.poll_interval)

    # -- connection handling -------------------------------------------------

    async def _handle(self, reader, writer) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path, query, headers, body = request
            try:
                await self._route(method, path, query, headers, body, writer)
            except _HttpError as exc:
                self._send_json(writer, exc.status, {"error": str(exc)})
            except ConfigError as exc:
                self._send_json(writer, 400, {"error": str(exc)})
            except Exception as exc:  # pragma: no cover - last-ditch 500
                self._send_json(
                    writer, 500, {"error": f"{type(exc).__name__}: {exc}"}
                )
            await writer.drain()
        except (ConnectionError, asyncio.TimeoutError):
            pass
        finally:
            with suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _read_request(self, reader):
        """Parse one request; ``None`` if the peer hung up early."""
        try:
            head = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=30.0
            )
        except (
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
            asyncio.TimeoutError,
        ):
            return None
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            return None
        method, target, _version = parts
        split = urlsplit(target)
        path = unquote(split.path)
        query = {
            k: v[-1] for k, v in parse_qs(split.query).items() if v
        }
        headers = {}
        for line in lines[1:]:
            if ":" in line:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        body = b""
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            length = 0
        if length > MAX_BODY_BYTES:
            raise _HttpError(413, f"request body over {MAX_BODY_BYTES} bytes")
        if length > 0:
            try:
                body = await asyncio.wait_for(
                    reader.readexactly(length), timeout=60.0
                )
            except (asyncio.IncompleteReadError, asyncio.TimeoutError):
                return None
        return method, path, query, headers, body

    # -- responses -----------------------------------------------------------

    def _send(
        self,
        writer,
        status: int,
        body: bytes,
        content_type: str,
        extra_headers: str = "",
    ) -> None:
        reason = _REASONS.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n"
            f"{extra_headers}\r\n"
        )
        writer.write(head.encode("latin-1") + body)

    def _send_json(self, writer, status: int, document) -> None:
        # Strict wire JSON: engine payloads may carry non-finite floats
        # (a diverged metric), which bare json.dumps would emit as the
        # NaN literal no strict parser accepts — null them first.
        body = (
            json.dumps(
                sanitize_nonfinite(document), sort_keys=True, allow_nan=False
            )
            + "\n"
        ).encode("utf-8")
        self._send(writer, status, body, _CONTENT_TYPES["json"])

    # -- routing -------------------------------------------------------------

    async def _route(self, method, path, query, headers, body, writer) -> None:
        segments = [s for s in path.split("/") if s]
        if path == "/healthz":
            self._require(method, "GET")
            self._send_json(writer, 200, {"ok": True})
            return
        if path == "/v1/stats":
            self._require(method, "GET")
            self._send_json(writer, 200, self.engine.stats())
            return
        if segments[:2] == ["v1", "sweeps"]:
            if len(segments) == 2:
                if method == "POST":
                    self._submit(headers, body, writer)
                    return
                self._require(method, "GET")
                statuses = [
                    self.engine.status(sid) for sid in self.engine.sweep_ids()
                ]
                self._send_json(writer, 200, {"sweeps": statuses})
                return
            sweep = segments[2]
            if len(segments) == 3:
                self._require(method, "GET")
                self._send_json(writer, 200, self._status_or_404(sweep))
                return
            if len(segments) == 4 and segments[3] == "results":
                self._require(method, "GET")
                self._results(sweep, query, writer)
                return
            if len(segments) == 4 and segments[3] == "events":
                self._require(method, "GET")
                await self._events(sweep, writer)
                return
        raise _HttpError(404, f"no route for {path}")

    def _require(self, method: str, expected: str) -> None:
        if method != expected:
            raise _HttpError(405, f"method {method} not allowed (use {expected})")

    def _tenant(self, headers) -> str | None:
        raw = headers.get("x-repro-tenant")
        if not raw:
            return None
        try:
            return validate_tenant(raw)
        except ConfigError as exc:
            raise _HttpError(400, str(exc)) from None

    def _status_or_404(self, sweep: str) -> dict:
        try:
            return self.engine.status(sweep)
        except ConfigError as exc:
            raise _HttpError(404, str(exc)) from None

    def _submit(self, headers, body, writer) -> None:
        tenant = self._tenant(headers)
        try:
            document = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise _HttpError(400, f"request body is not valid JSON: {exc}") from None
        specs, meta = parse_submission(document)
        sweep, created = self.engine.submit(specs, tenant=tenant, meta=meta)
        status = self.engine.status(sweep)
        status["created"] = created
        self._send_json(writer, 201 if created else 200, status)

    def _results(self, sweep: str, query, writer) -> None:
        status = self._status_or_404(sweep)
        fmt = query.get("format", "json")
        if fmt not in _CONTENT_TYPES:
            raise _HttpError(
                400,
                f"unknown result format '{fmt}' "
                f"(known: {', '.join(sorted(_CONTENT_TYPES))})",
            )
        if status["state"] not in ("done", "cached"):
            raise _HttpError(
                409,
                f"sweep {sweep} has no results yet (state: {status['state']})",
            )
        try:
            text = self.engine.results(sweep, fmt)
        except ConfigError as exc:  # evicted between status and read
            raise _HttpError(409, str(exc)) from None
        self._send(writer, 200, text.encode("utf-8"), _CONTENT_TYPES[fmt])

    # -- SSE -----------------------------------------------------------------

    @staticmethod
    def _sse_frame(event: dict) -> bytes:
        data = json.dumps(sanitize_nonfinite(event), sort_keys=True, allow_nan=False)
        return f"event: {event['event']}\ndata: {data}\n\n".encode("utf-8")

    async def _events(self, sweep: str, writer) -> None:
        """Stream a sweep's progress as Server-Sent Events.

        Replays every already-landed point first, then relays live
        events from the poll loop; the stream closes itself after the
        terminal ``done``/``failed`` frame. Engine callbacks fire on
        this same loop thread, so a plain ``asyncio.Queue`` bridges
        them with no cross-thread ceremony.
        """
        queue: asyncio.Queue = asyncio.Queue()
        try:
            replay, unsubscribe = self.engine.subscribe(sweep, queue.put_nowait)
        except ConfigError as exc:
            raise _HttpError(404, str(exc)) from None
        try:
            head = (
                "HTTP/1.1 200 OK\r\n"
                "Content-Type: text/event-stream; charset=utf-8\r\n"
                "Cache-Control: no-store\r\n"
                "Connection: close\r\n\r\n"
            )
            writer.write(head.encode("latin-1"))
            terminal = False
            for event in replay:
                writer.write(self._sse_frame(event))
                terminal = terminal or event["event"] in ("done", "failed")
            await writer.drain()
            while not terminal:
                try:
                    event = await asyncio.wait_for(
                        queue.get(), timeout=SSE_KEEPALIVE_S
                    )
                except asyncio.TimeoutError:
                    writer.write(b": keepalive\n\n")
                    await writer.drain()
                    continue
                writer.write(self._sse_frame(event))
                await writer.drain()
                terminal = event["event"] in ("done", "failed")
        finally:
            unsubscribe()


# -- self-hosting for tests and examples --------------------------------------


@dataclass
class ServerHandle:
    """A server running on its own daemon thread; ``stop()`` to end it."""

    engine: SweepEngine
    host: str
    port: int
    thread: threading.Thread
    _loop: asyncio.AbstractEventLoop = field(repr=False, default=None)

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def stop(self, timeout: float = 10.0) -> None:
        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(loop.stop)
        self.thread.join(timeout)


def start_in_thread(
    engine: SweepEngine, host: str = "127.0.0.1", port: int = 0
) -> ServerHandle:
    """Host a :class:`SweepServer` on a fresh event loop + daemon thread.

    Returns once the socket is bound (default ``port=0`` → OS-assigned,
    read it off the handle). The loop, server and engine shut down when
    :meth:`ServerHandle.stop` is called.
    """
    started = threading.Event()
    box: dict = {}

    def run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        server = SweepServer(engine, host=host, port=port)
        try:
            loop.run_until_complete(server.start())
        except BaseException as exc:  # bind/reload failure -> caller
            box["error"] = exc
            started.set()
            loop.close()
            return
        box["server"] = server
        box["loop"] = loop
        started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(server.stop())
            loop.close()

    thread = threading.Thread(target=run, daemon=True, name="repro-serve")
    thread.start()
    if not started.wait(timeout=30.0):
        raise ConfigError("server thread failed to start within 30s")
    if "error" in box:
        raise box["error"]
    server: SweepServer = box["server"]
    return ServerHandle(
        engine=engine,
        host=server.host,
        port=server.port,
        thread=thread,
        _loop=box["loop"],
    )
