"""repro serve: the sweep-as-a-service daemon over Session and the queue.

The HTTP front door of the reproduction — a long-lived, stdlib-only
(``asyncio``, no ``http.server``) daemon that accepts sweep submissions
over a small JSON API, dedupes them point-by-point against the
content-addressed result cache, enqueues only the misses on the
pull-based work queue (any ``repro queue worker`` or PR-8 fleet drains
them unchanged), and streams results back as they land::

    repro serve --work work/ --port 8080        # the daemon
    repro queue worker --work-dir work/ &       # or: repro fleet up

    curl -d '{"grid": {"workload": "gcn", "mechanism": ["inorder","nvr"],
              "scale": 0.1}}' localhost:8080/v1/sweeps
    curl localhost:8080/v1/sweeps/<id>          # status + per-point counts
    curl localhost:8080/v1/sweeps/<id>/results  # ResultSet JSON (?format=csv)
    curl localhost:8080/v1/sweeps/<id>/events   # SSE: points as they land

Layering: the server sits *above* Session/queue/fleet and invents no
execution machinery of its own —

* :mod:`repro.server.ledger` — the durable sweep ledger under
  ``<work>/server/sweeps/``: one content-addressed JSON record per
  submission, so a restarted daemon resumes every sweep id it ever
  acknowledged;
* :mod:`repro.server.engine` — :class:`SweepEngine`, the orchestration
  core: parses submissions, scans the (per-tenant) cache, drains each
  sweep through a :class:`~repro.session.Session` over the
  :class:`~repro.runner.QueueBackend` on a background thread, and
  derives status/events by watching results land in the cache;
* :mod:`repro.server.http` — :class:`SweepServer`, the asyncio HTTP/1.1
  front end: request parsing, routing, JSON errors, SSE streaming, and
  :func:`start_in_thread` for tests and examples that self-host.

Multi-tenancy: the ``X-Repro-Tenant`` header selects a per-tenant cache
namespace (:class:`~repro.runner.ResultCache` with ``tenant=``) — a
distinct salt and directory per tenant, quota-manageable with ``repro
cache gc --tenant``. The programmatic client is
:class:`repro.client.SweepClient`.
"""

from .engine import SweepEngine, parse_submission
from .http import ServerHandle, SweepServer, start_in_thread
from .ledger import LEDGER_FORMAT, SweepLedger, SweepRecord, sweep_id

__all__ = [
    "LEDGER_FORMAT",
    "ServerHandle",
    "SweepEngine",
    "SweepLedger",
    "SweepRecord",
    "SweepServer",
    "parse_submission",
    "start_in_thread",
    "sweep_id",
]
