"""Plain-text rendering of experiment results.

The paper's figures are bar charts, heat maps and line series; in a
terminal library the equivalents are aligned tables (one per figure).
Everything here returns strings — callers decide where they go.
"""

from __future__ import annotations

from typing import Sequence


def _fmt(value, floatfmt: str) -> str:
    if isinstance(value, float):
        return format(value, floatfmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str | None = None,
    floatfmt: str = ".3f",
) -> str:
    """Render an aligned column table."""
    cells = [[_fmt(v, floatfmt) for v in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in cells)) if cells else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(h).rjust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_grid(
    row_labels: Sequence,
    col_labels: Sequence,
    values: Sequence[Sequence[float]],
    title: str | None = None,
    floatfmt: str = ".2f",
) -> str:
    """Render a heat-map-style grid (Fig. 9)."""
    headers = [""] + [str(c) for c in col_labels]
    rows = [
        [str(rl)] + [format(v, floatfmt) for v in row]
        for rl, row in zip(row_labels, values)
    ]
    return format_table(headers, rows, title=title)


def format_series(
    x_label: str,
    x_values: Sequence,
    series: dict[str, Sequence[float]],
    title: str | None = None,
    floatfmt: str = ".1f",
) -> str:
    """Render line-series data as columns (Fig. 8 b/c)."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x] + [s[i] for s in series.values()])
    return format_table(headers, rows, title=title, floatfmt=floatfmt)
