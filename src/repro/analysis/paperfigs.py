"""Generate EXPERIMENTS.md: every paper table/figure, paper vs measured.

Run as a module to regenerate the full comparison::

    python -m repro.analysis.paperfigs --scale 0.6 -o EXPERIMENTS.md

Scale trades run time for statistical weight; shapes are stable from
~0.3. The full-paper run (scale 1.0) takes tens of minutes on a laptop.
"""

from __future__ import annotations

import argparse
import sys
import time

from ..llm import calibration_plan, layer_miss_plan
from ..runner import Plan, SweepRunner
from ..session import (
    Session,
    add_session_arguments,
    coerce_session,
    session_from_args,
)
from ..utils import geometric_mean
from ..workloads import WORKLOAD_ORDER
from .experiments import (
    fig1b_plan,
    fig1b_sparsity_gap,
    fig5_latency_breakdown,
    fig5_plan,
    fig6_accuracy_coverage,
    fig6_plan,
    fig6c_data_movement,
    fig6c_plan,
    fig7_bandwidth_allocation,
    fig7_plan,
    fig8a_layer_miss,
    fig8bc_llm_throughput,
    fig9_nsb_sensitivity,
    fig9_plan,
    table1_overhead,
    table2_plan,
    table2_workloads,
)
from .report import format_grid, format_series, format_table

#: ``generate_report`` caps the heavier figures below the headline scale;
#: :func:`figures_plan` must apply the same caps to cover the same points.
FIG8_SCALE_CAP = 0.4
FIG9_SCALE_CAP = 0.5


def _header(scale: float, seed: int, elapsed: float, session=None) -> str:
    run_line = (
        f"Run parameters: scale={scale}, seed={seed}, wall time "
        f"{elapsed / 60:.1f} min."
    )
    if session is not None:
        run_line += (
            f" Sweep: {session.submitted} points simulated, "
            f"{session.cache_hits} served from cache ({session.jobs} jobs)."
        )
    return (
        "# EXPERIMENTS — paper vs measured\n\n"
        "Reproduction of every table and figure in *NVR: Vector Runahead on\n"
        "NPUs for Sparse Memory Access* (DAC 2025). Absolute numbers differ\n"
        "from the paper (our substrate is a cycle-approximate Python\n"
        "simulator, not the authors' ScaleSim/RTL testbed); the *shape* —\n"
        "who wins, by roughly what factor, where crossovers fall — is the\n"
        "reproduction target. Regenerate with:\n\n"
        "```\n"
        f"python -m repro.analysis.paperfigs --scale {scale} -o EXPERIMENTS.md\n"
        "```\n\n"
        f"{run_line}\n"
    )


def _fig1b(scale: float, seed: int, session=None) -> str:
    res = fig1b_sparsity_gap(scale=scale, seed=seed, session=session)
    rows = [
        [f"1/{r}", round(s, 2), r, round(r / s, 2), int(o)]
        for r, s, o in zip(res.ratios, res.speedups, res.offchip_per_step)
    ]
    body = format_table(
        [
            "params",
            "measured speedup",
            "ideal",
            "gap (ideal/measured)",
            "off-chip B/step",
        ],
        rows,
    )
    return (
        "## Fig. 1b — sparsity vs actual speedup gap\n\n"
        "**Paper:** 16x parameter reduction yields only ~5x measured speedup\n"
        "on a 256 KiB-L2 NPU — cache misses erode the sparsity gain.\n\n"
        "**Measured** (DS TopK sweep, streaming-prefetch baseline):"
        f"\n\n```\n{body}\n```\n\n"
        "**Shape:** speedup stays at or below ideal and the absolute gap\n"
        "widens with sparsity. Our gap is smaller than the paper's because\n"
        "the simulated in-order NPU retains intra-vector MLP through its\n"
        "64-entry MSHR file, which makes the dense baseline bandwidth-bound\n"
        "(see DESIGN.md §3); the motivating observation — misses, not\n"
        "parameter count, limit sparse speedup — is carried by Fig. 5.\n"
    )


def _fig5(scale: float, seed: int, session=None) -> str:
    res = fig5_latency_breakdown(scale=scale, seed=seed, session=session)
    sections = []
    for panel, data in res.panels.items():
        rows = []
        for workload in WORKLOAD_ORDER:
            per = data[workload]
            rows.append(
                [workload]
                + [
                    f"{per[m].base:.2f}+{per[m].stall:.2f}"
                    for m in ("inorder", "ooo", "stream", "imp", "dvr", "nvr")
                ]
            )
        table = format_table(
            ["workload", "InO", "OoO", "Stream", "IMP", "DVR", "NVR"],
            rows,
            title=f"[{panel}] normalised latency (base+stall, InO total = 1.00)",
        )
        speedups = [1.0 / max(data[w]["nvr"].total, 1e-9) for w in WORKLOAD_ORDER]
        sections.append(
            f"```\n{table}\n```\n"
            f"- NVR mean stall-time reduction vs InO: "
            f"**{res.stall_reduction(panel, 'nvr') * 100:.1f}%**"
            f" (paper: 98.3% INT8 / 99.2% FP16 / 97.3% INT32)\n"
            f"- NVR geomean speedup vs InO: "
            f"**{geometric_mean(speedups):.2f}x** (paper: ~4x average)\n"
        )
    return (
        "## Fig. 5 — normalised latency per workload\n\n"
        "**Paper:** cache-miss stalls dominate InO; OoO helps little;\n"
        "prefetchers help in the order stream < IMP < DVR < NVR; NVR removes\n"
        "97-99% of stall time; ST is the low-miss exception.\n\n"
        "**Measured:**\n\n" + "\n".join(sections)
    )


def _fig6(scale: float, seed: int, session=None) -> str:
    res = fig6_accuracy_coverage(scale=scale, seed=seed, session=session)
    rows = []
    for workload in WORKLOAD_ORDER:
        per = res.data[workload]
        rows.append(
            [workload]
            + [round(per[m][0], 2) for m in ("stream", "imp", "dvr", "nvr")]
            + [round(per[m][1], 2) for m in ("stream", "imp", "dvr", "nvr")]
        )
    table = format_table(
        [
            "workload",
            "acc:stream",
            "acc:imp",
            "acc:dvr",
            "acc:nvr",
            "cov:stream",
            "cov:imp",
            "cov:dvr",
            "cov:nvr",
        ],
        rows,
    )
    return (
        "## Fig. 6a/6b — prefetcher accuracy and coverage\n\n"
        "**Paper:** NVR holds both metrics above ~90% on most workloads;\n"
        "coverage is the harder metric; IMP/DVR collapse on the hash-table\n"
        "workloads (MK/SCN).\n\n"
        f"**Measured:**\n\n```\n{table}\n```\n\n"
        f"- NVR means: accuracy **{res.mean_accuracy('nvr'):.2f}**, coverage "
        f"**{res.mean_coverage('nvr'):.2f}** (paper: >0.90 both)\n"
        f"- Capability gap on MK: IMP coverage "
        f"{res.data['mk']['imp'][1]:.2f}, DVR {res.data['mk']['dvr'][1]:.2f}, "
        f"NVR {res.data['mk']['nvr'][1]:.2f} — only the sparse unit can\n"
        "  evaluate the hash `sparse_func`.\n"
    )


def _fig6c(scale: float, seed: int, session=None) -> str:
    res = fig6c_data_movement(scale=scale, seed=seed, session=session)
    rows = [
        [
            name,
            res.offchip_demand[name],
            res.in_chip[name],
            f"{res.reduction(name):.1f}x",
        ]
        for name in ("inorder", "nvr", "nvr+nsb")
    ]
    table = format_table(
        ["config", "off-chip demand B", "in-chip B", "reduction vs InO"],
        rows,
    )
    return (
        "## Fig. 6c — data movement during actual load execution\n\n"
        "**Paper:** NVR cuts off-chip accesses during demand execution ~30x;\n"
        "the NSB adds a further ~5x.\n\n"
        f"**Measured (DS):**\n\n```\n{table}\n```\n\n"
        "**Deviation:** our NSB's extra demand-path reduction is small at\n"
        "the default geometry because the L2 already retains the (fully\n"
        "covered) speculative window; the NSB's benefit appears as in-chip\n"
        "latency (hits at 2 vs 18 cycles) and in the Fig. 9 area-normalised\n"
        "comparison instead.\n"
    )


def _fig7(scale: float, seed: int, session=None) -> str:
    res = fig7_bandwidth_allocation(scale=scale, seed=seed, session=session)
    shares = ("npu_demand", "nvr_prefetch", "l2_to_npu", "nsb_to_npu")
    rows = [
        ["explicit preload (baseline)", 100.0, "-", "-", "-"],
        ["nvr"] + [round(res.without_nsb[k], 1) for k in shares],
        ["nvr+nsb"] + [round(res.with_nsb[k], 1) for k in shares],
    ]
    table = format_table(
        ["config", "off-chip demand", "off-chip prefetch", "L2->NPU", "NSB->NPU"],
        rows,
        title="traffic, % of the explicit-preload baseline's off-chip volume",
    )
    return (
        "## Fig. 7 — normalised bandwidth allocation\n\n"
        "**Paper:** off-chip bandwidth drops ~75% vs the baseline in both\n"
        "configurations; prefetch traffic replaces demand traffic.\n\n"
        f"**Measured (DS):**\n\n```\n{table}\n```\n\n"
        f"- Off-chip reduction: **{res.offchip_reduction(False) * 100:.0f}%** "
        f"without NSB, **{res.offchip_reduction(True) * 100:.0f}%** with "
        "(paper: ~75%). The baseline is the coarse-granule explicit-preload\n"
        "traffic model (DESIGN.md substitution table); our line-granular\n"
        "NVR fetches beat it by more than the paper's RTL measurement.\n"
    )


def _fig8(scale: float, seed: int, session=None) -> str:
    rates = fig8a_layer_miss(scale=scale, seed=seed, session=session)
    rows = [
        [
            layer,
            f"{per['inorder'][0]:.4f}",
            f"{per['inorder'][1]:.4f}",
            f"{per['nvr'][0]:.4f}",
            f"{per['nvr'][1]:.4f}",
        ]
        for layer, per in rates.items()
    ]
    table_a = format_table(
        ["layer", "InO batch", "InO element", "NVR batch", "NVR element"],
        rows,
        title="miss rates per attention layer",
    )
    res = fig8bc_llm_throughput(calib_scale=scale, seed=seed, session=session)
    prefill = format_series(
        "GB/s", res.bandwidths,
        {f"base l={l}": res.prefill["inorder"][l] for l in res.prefill["inorder"]} | {
            f"nvr l={l}": res.prefill["nvr"][l] for l in res.prefill["nvr"]
        },
        floatfmt=".0f",
    )
    decode = format_series(
        "GB/s", res.bandwidths,
        {f"base l={l}": res.decode["inorder"][l] for l in res.decode["inorder"]} | {
            f"nvr l={l}": res.decode["nvr"][l] for l in res.decode["nvr"]
        },
        floatfmt=".1f",
    )
    gains = ", ".join(
        f"l={l}: +{res.decode_gain(l) * 100:.0f}%" for l in (512, 1024, 2048)
    )
    return (
        "## Fig. 8 — system-level LLM evaluation\n\n"
        "**Paper (8a):** under NVR both overall and per-batch miss rates\n"
        "drop by orders of magnitude (log-scale plot), the per-batch rate\n"
        "decaying slower.\n\n"
        f"**Measured (8a):**\n\n```\n{table_a}\n```\n\n"
        "**Paper (8b/8c):** prefill is compute-bound — NVR reaches peak\n"
        "throughput at lower bandwidth; decode is IO-bound — NVR delivers\n"
        "~50% average throughput gain, growing with sequence length.\n\n"
        f"**Measured (8b, prefill tokens/s):**\n\n```\n{prefill}\n```\n\n"
        f"**Measured (8c, decode tokens/s/seq):**\n\n```\n{decode}\n```\n\n"
        f"- Decode gains: {gains} (paper: ~50% average, growing with l)\n"
    )


def _fig9(scale: float, seed: int, session=None) -> str:
    res = fig9_nsb_sensitivity(scale=scale, seed=seed, session=session)
    grid = format_grid(
        [f"NSB {n}" for n in res.nsb_sizes],
        [f"L2 {l}" for l in res.l2_sizes],
        res.perf,
        title="perf = 1/(latency x area), arbitrary units (higher is better)",
    )
    return (
        "## Fig. 9 — NSB and L2 cache sensitivity\n\n"
        "**Paper:** modest NSB growth beats equal-area L2 scaling ~5x\n"
        "(256 KiB L2: NSB 4->16 KiB vs L2 256->1024 KiB).\n\n"
        f"**Measured (DS):**\n\n```\n{grid}\n```\n\n"
        f"- NSB-vs-L2 benefit ratio: **{res.nsb_vs_l2_benefit():.1f}x** "
        "(paper: ~5x)\n\n"
        "**Deviation:** the paper's grid also shows large *absolute* latency\n"
        "gains from NSB growth at small L2 (their speculative window lives\n"
        "in the NSB). In our both-fill hierarchy (prefetches land in L2 and\n"
        "NSB, per the paper's Q&A3 \"prefetching data into the L1/L2 cache\n"
        "hierarchy\") latency saturates once the window is L2-resident, so\n"
        "the benefit ratio is carried by the area normalisation.\n"
    )


def _table1() -> str:
    report = table1_overhead()
    rows = [
        [name, entries, bits, paper, "yes" if match else "no (see note)"]
        for name, entries, bits, paper, match in report.rows()
    ]
    table = format_table(
        ["structure", "entries", "computed bits", "paper bits", "match"],
        rows,
    )
    return (
        "## Table I — NVR hardware overhead\n\n"
        "**Paper:** 9.72 KiB of detector storage (+16 KiB optional NSB);\n"
        "3% / 4.6% area vs baseline Gemmini (TSMC 28 nm).\n\n"
        f"**Measured (field-by-field bit accounting):**\n\n```\n{table}\n```\n\n"
        f"- Itemised detector storage: **{report.total_bits} bits "
        f"({report.total_kib:.2f} KiB)**.\n"
        "- Notes: the scanned table's SCD sum (2464) omits its own 48-bit\n"
        "  PC field (fields total 2512); the LBD quote \"32x1027\" is a typo\n"
        "  for 32x107=3424, which our fields match exactly. The paper's\n"
        "  9.72 KiB headline includes unlisted queue/VRF storage beyond the\n"
        "  itemised fields.\n"
        f"- Storage-ratio area model vs 320 KiB baseline SRAM: "
        f"**{report.area_fraction(False) * 100:.2f}%** without NSB, "
        f"**{report.area_fraction(True) * 100:.2f}%** with "
        "(paper: 3% / 4.6% of full-chip area incl. logic).\n"
    )


def _table2(scale: float, seed: int, session=None) -> str:
    rows = [
        [
            r.short,
            r.full_name,
            r.domain,
            r.gather_elements,
            round(r.footprint_kib),
            round(r.reuse_factor, 1),
        ]
        for r in table2_workloads(scale=scale, seed=seed, session=session)
    ]
    table = format_table(
        ["short", "workload", "domain", "gathers", "footprint KiB", "reuse"],
        rows,
    )
    return (
        "## Table II — sparse computation workloads\n\n"
        "**Paper:** eight workloads spanning LLMs, GNNs, sparse attention,\n"
        "point clouds and MoE.\n\n"
        f"**Measured (synthetic trace generators, DESIGN.md §1):**\n\n"
        f"```\n{table}\n```\n"
    )


def generate_report(
    scale: float = 0.6,
    seed: int = 0,
    runner: SweepRunner | None = None,
    session: Session | None = None,
) -> str:
    """Produce the full EXPERIMENTS.md text.

    All figures share ``session`` (defaulting to the process-wide
    :func:`~repro.session.default_session`; a bare runner is accepted
    via the deprecated ``runner`` keyword). The session's cache means
    points duplicated across figures simulate once and a warm cache
    regenerates the whole report without simulating at all.
    """
    start = time.time()
    session = coerce_session(session, runner)
    sections = [
        _fig1b(scale, seed, session),
        _fig5(scale, seed, session),
        _fig6(scale, seed, session),
        _fig6c(scale, seed, session),
        _fig7(scale, seed, session),
        _fig8(min(scale, FIG8_SCALE_CAP), seed, session),
        _fig9(min(scale, FIG9_SCALE_CAP), seed, session),
        _table1(),
        _table2(scale, seed, session),
    ]
    header = _header(scale, seed, time.time() - start, session)
    return header + "\n" + "\n".join(sections)


def figures_plan(scale: float = 0.6, seed: int = 0) -> Plan:
    """Every runner point a full :func:`generate_report` pass submits.

    Built from the same per-figure plan builders the figure runners use
    (same scale caps included), so executing this plan — locally, or
    sharded across worker machines and merged — warms a cache from which
    a subsequent ``repro figures`` run is served without simulating
    anything. The ``distributed-smoke`` CI job pins exactly that.
    """
    fig8_scale = min(scale, FIG8_SCALE_CAP)
    specs = [
        *fig1b_plan(scale=scale, seed=seed),
        *fig5_plan(scale=scale, seed=seed),
        *fig6_plan(scale=scale, seed=seed),
        *fig6c_plan(scale=scale, seed=seed),
        *fig7_plan(scale=scale, seed=seed),
        *layer_miss_plan(("inorder", "nvr"), scale=fig8_scale, seed=seed),
        *calibration_plan("inorder", scale=fig8_scale, seed=seed),
        *calibration_plan("nvr", scale=fig8_scale, seed=seed),
        *fig9_plan(scale=min(scale, FIG9_SCALE_CAP), seed=seed),
        *table2_plan(scale=scale, seed=seed),
    ]
    return Plan(specs=specs, meta={"source": "figures", "scale": scale, "seed": seed})


def add_runner_arguments(parser: argparse.ArgumentParser) -> None:
    """Deprecated alias of :func:`repro.session.add_session_arguments`."""
    add_session_arguments(parser)


def runner_from_args(args: argparse.Namespace, quiet: bool = False) -> SweepRunner:
    """Deprecated: build a session's runner from the shared flags.

    Use :func:`repro.session.session_from_args` (or
    ``Session.from_args``) — the Session owns the cache/backend/jobs
    policy in one object.
    """
    return session_from_args(args, quiet=quiet).runner


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.6)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("-o", "--output", default="EXPERIMENTS.md")
    add_session_arguments(parser)
    args = parser.parse_args(argv)
    with session_from_args(args) as session:
        text = generate_report(scale=args.scale, seed=args.seed, session=session)
    with open(args.output, "w") as handle:
        handle.write(text)
    print(f"wrote {args.output} ({len(text)} chars)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
