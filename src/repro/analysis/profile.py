"""Simulator throughput profiling: ``repro profile``.

The committed performance trajectory (``benchmarks/BENCH_trajectory.json``)
tracks end-to-end plan wall time; this module answers the next question —
*where* the time goes for one point and how the simulation kernels
compare. Each profiled point is split into its two wall-time phases:

* **build** — lowering the workload to a :class:`SparseProgram` (trace
  generation; shared across mechanisms by the runner's workload memo,
  but charged per point here so the split is visible);
* **simulate** — executing the program on the platform, the phase the
  vectorized kernels accelerate.

Cycle counters come from the run itself, so the derived rates
(``kcycles_per_s``, ``events_per_s``) relate simulated work to wall
time — the simulator's figure of merit. Runs are deliberately uncached
and in-process: profiling must execute, and the paired engines must
execute in the same interpreter to be comparable.

Timing discipline: each phase is repeated ``repeat`` times and the
minimum is reported. On shared machines the minimum estimates the
noise-free cost; means and medians drift with scheduler interference
(the same convention the benchmark trajectory uses).
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass

from ..errors import ConfigError
from ..spec import SystemSpec
from ..workloads import build_workload
from ..workloads.registry import elem_bytes

#: Engine spellings accepted by ``--engines`` (None means "reference").
PROFILE_ENGINES = ("reference", "vectorized", "batched")


@dataclass(frozen=True)
class ProfileRecord:
    """Wall-time and cycle accounting for one profiled point.

    The per-level memory breakdown (where demand lines were served and
    how the prefetcher did) is carried alongside the timing so an engine
    comparison doubles as an equivalence spot-check: identical points
    must agree on every memory counter, whatever their wall time.
    """

    workload: str
    mechanism: str
    engine: str
    nsb: bool
    dtype: str
    scale: float
    seed: int
    build_s: float
    simulate_s: float
    total_cycles: int
    demand_accesses: int
    # Per-level demand outcome: lines served by the NSB, by the L2, and
    # lines that had to be filled from DRAM (L2 demand misses).
    nsb_hits: int = 0
    l2_hits: int = 0
    dram_fills: int = 0
    # Prefetch effectiveness at those levels.
    pf_useful: int = 0
    pf_late: int = 0

    @property
    def kcycles_per_s(self) -> float:
        """Simulated kilocycles per wall-second (higher is faster)."""
        if self.simulate_s <= 0:
            return 0.0
        return self.total_cycles / self.simulate_s / 1e3

    @property
    def events_per_s(self) -> float:
        """Demand line events processed per wall-second."""
        if self.simulate_s <= 0:
            return 0.0
        return self.demand_accesses / self.simulate_s

    def to_dict(self) -> dict:
        d = asdict(self)
        d["kcycles_per_s"] = round(self.kcycles_per_s, 1)
        d["events_per_s"] = round(self.events_per_s, 1)
        return d


def _min_wall(fn, repeat: int):
    """Run ``fn`` ``repeat`` times; (min wall seconds, last return)."""
    best = float("inf")
    value = None
    for _ in range(repeat):
        t0 = time.perf_counter()
        value = fn()
        elapsed = time.perf_counter() - t0
        if elapsed < best:
            best = elapsed
    return best, value


def profile_point(
    workload: str,
    mechanism: str = "nvr",
    engine: str | None = None,
    nsb: bool = False,
    dtype: str = "fp16",
    scale: float = 0.1,
    seed: int = 0,
    repeat: int = 3,
) -> ProfileRecord:
    """Profile one (workload, mechanism, engine) point.

    The build phase is timed on a fresh lowering each repeat; the
    simulate phase rebuilds the platform each repeat (cold caches, cold
    prefetcher state) so repeats are independent and identical.
    """
    if repeat < 1:
        raise ConfigError(f"profile repeat must be >= 1, got {repeat}")
    spec = SystemSpec(mechanism=mechanism, nsb=nsb, engine=engine)
    eb = elem_bytes(dtype)

    build_s, program = _min_wall(
        lambda: build_workload(workload, scale=scale, elem_bytes=eb, seed=seed),
        repeat,
    )
    simulate_s, result = _min_wall(lambda: spec.build(program).run(), repeat)
    stats = result.stats
    return ProfileRecord(
        workload=workload,
        mechanism=mechanism,
        engine=engine if engine is not None else "reference",
        nsb=nsb,
        dtype=dtype,
        scale=scale,
        seed=seed,
        build_s=build_s,
        simulate_s=simulate_s,
        total_cycles=result.total_cycles,
        demand_accesses=(
            stats.l2.demand_accesses + stats.nsb.demand_accesses
        ),
        nsb_hits=stats.nsb.demand_hits,
        l2_hits=stats.l2.demand_hits,
        dram_fills=stats.l2.demand_misses,
        pf_useful=stats.prefetch.useful,
        pf_late=stats.prefetch.late,
    )


def profile_grid(
    workloads,
    mechanisms,
    engines=("reference",),
    nsb: bool = False,
    dtype: str = "fp16",
    scale: float = 0.1,
    seed: int = 0,
    repeat: int = 3,
) -> list[ProfileRecord]:
    """Profile the cartesian grid, workload-major like the figures."""
    return [
        profile_point(
            w,
            mechanism=m,
            engine=None if e in (None, "reference") else e,
            nsb=nsb,
            dtype=dtype,
            scale=scale,
            seed=seed,
            repeat=repeat,
        )
        for w in workloads
        for m in mechanisms
        for e in engines
    ]


def profile_json(records: list[ProfileRecord]) -> str:
    """The ``repro profile --json`` document."""
    return json.dumps(
        {
            "format": 1,
            "records": [record.to_dict() for record in records],
        },
        indent=1,
        sort_keys=True,
    )
