"""Derived metrics over :class:`~repro.sim.soc.RunResult` collections.

All published quantities are computed here, once, so that figures, tests
and benches agree on definitions:

* **normalised latency** — total cycles over the in-order baseline's.
* **stall fraction** — (total − base) / total, the Fig. 5 upper segment.
* **miss reduction** — reduction in stall events (true misses plus late
  prefetches, both of which stall the vector pipeline).
* **coverage / accuracy** — delegated to
  :class:`~repro.sim.stats.RunStats` (single source of truth).
* **bandwidth shares** — byte-level split for Figs. 6c/7.
"""

from __future__ import annotations

from ..errors import ConfigError
from ..sim.soc import RunResult
from ..sim.stats import RunStats
from ..utils import geometric_mean


def normalised_latency(
    results: dict[str, RunResult], baseline: str = "inorder"
) -> dict[str, float]:
    """Total cycles of each mechanism over the baseline's."""
    if baseline not in results:
        raise ConfigError(f"baseline '{baseline}' missing from results")
    base = results[baseline].total_cycles
    if base <= 0:
        raise ConfigError("baseline run has no cycles")
    return {name: r.total_cycles / base for name, r in results.items()}


def stall_fraction(result: RunResult) -> float:
    """Fraction of wall-clock spent stalled on cache misses.

    Requires a run produced by ``run_with_base`` (needs base_cycles).
    """
    if result.base_cycles is None:
        raise ConfigError("stall_fraction needs a run_with_base result")
    if result.total_cycles == 0:
        return 0.0
    return result.stall_cycles / result.total_cycles


def stall_events(stats: RunStats) -> int:
    """Pipeline-stalling memory events: true misses plus late prefetches."""
    return stats.l2.demand_misses + stats.prefetch.late


def miss_reduction(ours: RunResult, reference: RunResult) -> float:
    """Fractional reduction in stall events versus ``reference``."""
    ref = stall_events(reference.stats)
    if ref == 0:
        return 0.0
    return 1.0 - stall_events(ours.stats) / ref


def geomean_speedup(
    per_workload: dict[str, dict[str, RunResult]],
    mechanism: str,
    baseline: str = "inorder",
) -> float:
    """Geometric-mean speedup of ``mechanism`` across workloads."""
    speedups = []
    for results in per_workload.values():
        speedups.append(
            results[baseline].total_cycles / results[mechanism].total_cycles
        )
    return geometric_mean(speedups)


def bandwidth_shares(stats: RunStats) -> dict[str, int]:
    """Byte-level traffic decomposition (Figs. 6c and 7)."""
    return {
        "off_chip_demand": stats.traffic.off_chip_demand_bytes,
        "off_chip_prefetch": stats.traffic.off_chip_prefetch_bytes,
        "off_chip_total": stats.traffic.off_chip_total_bytes,
        "l2_to_npu": stats.traffic.l2_to_npu_bytes,
        "nsb_to_npu": stats.traffic.nsb_to_npu_bytes,
    }
