"""One runner per paper table/figure (the DESIGN.md experiment index).

Every runner is a pure function of (scale, seed): it expresses its
simulation matrix as a plan of :class:`~repro.runner.RunSpec` points —
built declaratively by the per-figure ``*_plan()`` builders on top of
:class:`~repro.session.Grid` — submits the plan through a
:class:`~repro.session.Session` and selects the results it needs out of
the returned :class:`~repro.resultset.ResultSet` by axis (no positional
spec/result zipping). Pass a shared ``session`` to reuse one worker pool
and one on-disk result cache across figures — identical points then
simulate exactly once per cache lifetime; a bare
:class:`~repro.runner.SweepRunner` is still accepted via the deprecated
``runner`` keyword. ``scale`` trades run time for statistical weight;
the shapes (who wins, by what factor, where crossovers fall) are stable
from ``scale≈0.3`` upward.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..api import MECHANISM_ORDER
from ..core.overhead import OverheadReport, nvr_overhead
from ..llm import (
    NPUHardware,
    TransformerSpec,
    calibrate_memory_efficiency,
    decode_throughput,
    layer_miss_rates,
    prefill_throughput,
)
from ..runner import RunSpec, SweepRunner, shape_l2
from ..session import Grid, Session, coerce_session
from ..sim.memory.cache import CacheConfig
from ..sim.soc import RunResult
from ..utils import KIB, geometric_mean
from ..workloads import WORKLOAD_INFO, WORKLOAD_ORDER
from .metrics import bandwidth_shares

PREFETCHER_MECHS: tuple[str, ...] = ("stream", "imp", "dvr", "nvr")


def l2_config(size_kib: int) -> CacheConfig:
    """Shape an L2 of ``size_kib`` (back-compat alias of ``shape_l2``)."""
    return shape_l2(size_kib)


# ---------------------------------------------------------------------------
# Fig. 1b — sparsity vs actual speedup gap
# ---------------------------------------------------------------------------


@dataclass
class Fig1bResult:
    """Parameter-reduction sweep of sparse attention (DS)."""

    ratios: list[int]
    cycles_per_step: list[float]
    speedups: list[float]  # vs the dense (ratio=1) configuration
    offchip_per_step: list[float]

    def gap_at(self, ratio: int) -> float:
        """Theoretical over actual speedup at one reduction ratio."""
        i = self.ratios.index(ratio)
        return ratio / self.speedups[i]


def fig1b_plan(
    ratios: tuple[int, ...] = (1, 2, 4, 8, 16),
    scale: float = 0.4,
    seed: int = 0,
) -> list[RunSpec]:
    """The Fig. 1b TopK sweep as plan content.

    drift=1.0: scores are re-ranked from scratch each step (worst-case
    TopK churn), isolating the miss penalty from selection locality.
    """
    return Grid(
        workload="ds",
        mechanism="stream",
        scale=scale,
        seed=seed,
        topk_ratio=list(ratios),
        drift=1.0,
    ).specs()


def fig1b_sparsity_gap(
    ratios: tuple[int, ...] = (1, 2, 4, 8, 16),
    scale: float = 0.4,
    seed: int = 0,
    runner: SweepRunner | None = None,
    session: Session | None = None,
) -> Fig1bResult:
    """Fig. 1b: 16x fewer parameters yields well under 16x speedup.

    The baseline NPU runs with its native streaming efficiency (modelled
    by the stream prefetcher — dense attention reads the KV cache as
    bulk DMA bursts, which a stride engine covers); sparse TopK selection
    defeats exactly that engine, so the measured speedup falls short of
    the parameter reduction — the motivation gap.
    """
    session = coerce_session(session, runner)
    rs = session.sweep(fig1b_plan(ratios, scale=scale, seed=seed))
    cycles, offchip = [], []
    for ratio in ratios:
        result = rs.one(topk_ratio=ratio)
        steps = max(1, result.n_rows or 0)
        cycles.append(result.total_cycles / steps)
        offchip.append(result.stats.traffic.off_chip_total_bytes / steps)
    speedups = [cycles[0] / c for c in cycles]
    return Fig1bResult(
        ratios=list(ratios),
        cycles_per_step=cycles,
        speedups=speedups,
        offchip_per_step=offchip,
    )


# ---------------------------------------------------------------------------
# Fig. 5 — normalised latency breakdown
# ---------------------------------------------------------------------------


@dataclass
class Fig5Cell:
    """One bar: base + stall, normalised to the panel's InO total."""

    base: float
    stall: float

    @property
    def total(self) -> float:
        return self.base + self.stall


@dataclass
class Fig5Result:
    """panel -> workload -> mechanism -> Fig5Cell."""

    panels: dict[str, dict[str, dict[str, Fig5Cell]]]

    def mean_latency(self, panel: str, mechanism: str) -> float:
        cells = [w[mechanism] for w in self.panels[panel].values()]
        return geometric_mean([max(c.total, 1e-9) for c in cells])

    def stall_reduction(self, panel: str, mechanism: str) -> float:
        """Mean reduction of stall time vs InO within a panel."""
        reductions = []
        for per_mech in self.panels[panel].values():
            ino = per_mech["inorder"].stall
            ours = per_mech[mechanism].stall
            if ino > 0:
                reductions.append(1.0 - ours / ino)
        return sum(reductions) / len(reductions) if reductions else 0.0


_FIG5_PANELS: tuple[tuple[str, str, bool], ...] = (
    ("int8", "int8", False),
    ("fp16", "fp16", False),
    ("int32", "int32", False),
    ("int32+nsb", "int32", True),
)


def fig5_plan(
    workloads: tuple[str, ...] = WORKLOAD_ORDER,
    mechanisms: tuple[str, ...] = MECHANISM_ORDER,
    panels: tuple[str, ...] = ("int8", "fp16", "int32", "int32+nsb"),
    scale: float = 0.5,
    seed: int = 0,
) -> list[RunSpec]:
    """The Fig. 5 ``panels x workloads x mechanisms`` grid as plan content.

    The panel axis is not a cartesian product (the NSB panel repeats the
    int32 dtype), so the plan is one Grid per panel, concatenated in
    panel order.
    """
    specs: list[RunSpec] = []
    for _, dtype, nsb in [p for p in _FIG5_PANELS if p[0] in panels]:
        specs += Grid(
            workload=workloads,
            mechanism=mechanisms,
            dtype=dtype,
            nsb=nsb,
            scale=scale,
            seed=seed,
            with_base=True,
        ).specs()
    return specs


def fig5_latency_breakdown(
    workloads: tuple[str, ...] = WORKLOAD_ORDER,
    mechanisms: tuple[str, ...] = MECHANISM_ORDER,
    panels: tuple[str, ...] = ("int8", "fp16", "int32", "int32+nsb"),
    scale: float = 0.5,
    seed: int = 0,
    runner: SweepRunner | None = None,
    session: Session | None = None,
) -> Fig5Result:
    """Fig. 5: all four panels of the latency breakdown.

    The full figure is one plan of ``panels x workloads x mechanisms``
    base+stall points — the hottest sweep of the reproduction, and the
    reason the runner exists.
    """
    session = coerce_session(session, runner)
    rs = session.sweep(fig5_plan(workloads, mechanisms, panels, scale=scale, seed=seed))
    out: dict[str, dict[str, dict[str, Fig5Cell]]] = {}
    for panel_name, dtype, nsb in [p for p in _FIG5_PANELS if p[0] in panels]:
        panel: dict[str, dict[str, Fig5Cell]] = {}
        for workload in workloads:
            per_mech: dict[str, RunResult] = {
                mech: rs.one(workload=workload, mechanism=mech, dtype=dtype, nsb=nsb)
                for mech in mechanisms
            }
            ino_total = per_mech["inorder"].total_cycles
            panel[workload] = {
                mech: Fig5Cell(
                    base=r.base_cycles / ino_total,
                    stall=r.stall_cycles / ino_total,
                )
                for mech, r in per_mech.items()
            }
        out[panel_name] = panel
    return Fig5Result(panels=out)


# ---------------------------------------------------------------------------
# Fig. 6a/6b — accuracy and coverage
# ---------------------------------------------------------------------------


@dataclass
class Fig6Result:
    """workload -> mechanism -> (accuracy, coverage)."""

    data: dict[str, dict[str, tuple[float, float]]]

    def mean_accuracy(self, mechanism: str) -> float:
        return sum(w[mechanism][0] for w in self.data.values()) / len(self.data)

    def mean_coverage(self, mechanism: str) -> float:
        return sum(w[mechanism][1] for w in self.data.values()) / len(self.data)


def fig6_plan(
    workloads: tuple[str, ...] = WORKLOAD_ORDER,
    mechanisms: tuple[str, ...] = PREFETCHER_MECHS,
    scale: float = 0.5,
    seed: int = 0,
) -> list[RunSpec]:
    """The Fig. 6a/6b accuracy/coverage grid as plan content."""
    return Grid(
        workload=workloads, mechanism=mechanisms, scale=scale, seed=seed
    ).specs()


def fig6_accuracy_coverage(
    workloads: tuple[str, ...] = WORKLOAD_ORDER,
    mechanisms: tuple[str, ...] = PREFETCHER_MECHS,
    scale: float = 0.5,
    seed: int = 0,
    runner: SweepRunner | None = None,
    session: Session | None = None,
) -> Fig6Result:
    """Fig. 6a/6b: prefetcher accuracy and coverage per workload."""
    session = coerce_session(session, runner)
    rs = session.sweep(fig6_plan(workloads, mechanisms, scale=scale, seed=seed))
    data: dict[str, dict[str, tuple[float, float]]] = {}
    for workload in workloads:
        data[workload] = {}
        for mech in mechanisms:
            result = rs.one(workload=workload, mechanism=mech)
            data[workload][mech] = (
                result.stats.prefetch.accuracy,
                result.stats.coverage(),
            )
    return Fig6Result(data=data)


# ---------------------------------------------------------------------------
# Fig. 6c — data movement (off-chip access reduction)
# ---------------------------------------------------------------------------


@dataclass
class Fig6cResult:
    """Demand off-chip bytes during actual load execution, per config."""

    offchip_demand: dict[str, int]
    in_chip: dict[str, int]

    def reduction(self, config: str, versus: str = "inorder") -> float:
        """How many times fewer demand off-chip bytes than ``versus``."""
        ours = max(1, self.offchip_demand[config])
        return self.offchip_demand[versus] / ours


#: The Fig. 6c bars: config label -> (mechanism, nsb).
_FIG6C_CONFIGS: dict[str, tuple[str, bool]] = {
    "inorder": ("inorder", False),
    "nvr": ("nvr", False),
    "nvr+nsb": ("nvr", True),
}


def fig6c_plan(
    workload: str = "ds", scale: float = 0.5, seed: int = 0
) -> list[RunSpec]:
    """The Fig. 6c InO / NVR / NVR+NSB triple as plan content."""
    return (
        Grid(
            workload=workload,
            mechanism=["inorder", "nvr"],
            scale=scale,
            seed=seed,
        ).specs()
        + Grid(
            workload=workload, mechanism="nvr", nsb=True, scale=scale, seed=seed
        ).specs()
    )


def fig6c_data_movement(
    workload: str = "ds",
    scale: float = 0.5,
    seed: int = 0,
    runner: SweepRunner | None = None,
    session: Session | None = None,
) -> Fig6cResult:
    """Fig. 6c: InO vs NVR vs NVR+NSB demand off-chip traffic.

    The paper plots actual-load execution traffic (prefetch bandwidth
    removed): NVR turns demand misses into overlappable prefetches
    (~30x), and the NSB removes re-fetches on top (~5x more).
    """
    session = coerce_session(session, runner)
    rs = session.sweep(fig6c_plan(workload, scale=scale, seed=seed))
    offchip, in_chip = {}, {}
    for name, (mech, nsb) in _FIG6C_CONFIGS.items():
        shares = bandwidth_shares(rs.one(mechanism=mech, nsb=nsb).stats)
        offchip[name] = shares["off_chip_demand"]
        in_chip[name] = shares["l2_to_npu"] + shares["nsb_to_npu"]
    return Fig6cResult(offchip_demand=offchip, in_chip=in_chip)


# ---------------------------------------------------------------------------
# Fig. 7 — bandwidth allocation
# ---------------------------------------------------------------------------


def explicit_preload_bytes(program, granule: int = 512) -> int:
    """Off-chip traffic of the baseline's *explicit preload* (no NVR).

    A Gemmini-class NPU without gather support must ``mvin`` the scattered
    operand at coarse DMA granularity: per sparse row, every touched
    ``granule``-byte region is transferred whole. This is the
    over-fetching the paper's Sec. II attributes to explicit buffers
    ("out-of-bounds accesses") and the reference against which Fig. 7's
    ~75% off-chip bandwidth reduction is measured.
    """
    total = 0
    current_row = -1
    blocks: set[int] = set()
    for tile in program.tiles:
        if tile.row != current_row:
            total += len(blocks) * granule
            blocks = set()
            current_row = tile.row
        for gather in tile.gathers:
            for addr in gather.byte_addrs:
                first = int(addr) // granule
                last = (int(addr) + gather.seg_bytes - 1) // granule
                blocks.update(range(first, last + 1))
    total += len(blocks) * granule
    return total


@dataclass
class Fig7Result:
    """Traffic shares normalised to the explicit-preload baseline (=100)."""

    preload_baseline: float  # always 100
    without_nsb: dict[str, float]
    with_nsb: dict[str, float]

    def offchip_reduction(self, with_nsb: bool) -> float:
        """Fractional off-chip traffic reduction vs explicit preload."""
        shares = self.with_nsb if with_nsb else self.without_nsb
        offchip = shares["npu_demand"] + shares["nvr_prefetch"]
        return 1.0 - offchip / 100.0


def fig7_plan(workload: str = "ds", scale: float = 0.5, seed: int = 0) -> list[RunSpec]:
    """The Fig. 7 preload / NVR / NVR+NSB triple as plan content."""
    return (
        Grid(
            workload=workload,
            mechanism=["preload", "nvr"],
            scale=scale,
            seed=seed,
        ).specs()
        + Grid(
            workload=workload, mechanism="nvr", nsb=True, scale=scale, seed=seed
        ).specs()
    )


def fig7_bandwidth_allocation(
    workload: str = "ds",
    scale: float = 0.5,
    seed: int = 0,
    runner: SweepRunner | None = None,
    session: Session | None = None,
) -> Fig7Result:
    """Fig. 7: who uses the memory system, with and without the NSB.

    The 100% reference is the *simulated* explicit-preload baseline
    (Gemmini's native coarse-DMA mode, ``mechanism='preload'``); NVR's
    line-granular speculative fetches plus residual demand misses
    replace its over-fetched bursts.
    """
    session = coerce_session(session, runner)
    rs = session.sweep(fig7_plan(workload, scale=scale, seed=seed))
    baseline = rs.one(mechanism="preload")
    no_nsb = rs.one(mechanism="nvr", nsb=False)
    with_nsb = rs.one(mechanism="nvr", nsb=True)
    preload = max(1, baseline.stats.traffic.off_chip_total_bytes)

    def shares(result: RunResult) -> dict[str, float]:
        s = bandwidth_shares(result.stats)
        return {
            "npu_demand": 100.0 * s["off_chip_demand"] / preload,
            "nvr_prefetch": 100.0 * s["off_chip_prefetch"] / preload,
            "l2_to_npu": 100.0 * s["l2_to_npu"] / preload,
            "nsb_to_npu": 100.0 * s["nsb_to_npu"] / preload,
        }

    return Fig7Result(
        preload_baseline=100.0,
        without_nsb=shares(no_nsb),
        with_nsb=shares(with_nsb),
    )


# ---------------------------------------------------------------------------
# Fig. 8 — system-level LLM evaluation
# ---------------------------------------------------------------------------


def fig8a_layer_miss(
    scale: float = 0.3,
    seed: int = 0,
    runner: SweepRunner | None = None,
    session: Session | None = None,
) -> dict[str, dict[str, tuple[float, float]]]:
    """Fig. 8a: per-layer batch/element miss rates, InO vs NVR."""
    return layer_miss_rates(
        mechanisms=("inorder", "nvr"),
        scale=scale,
        seed=seed,
        session=coerce_session(session, runner),
    )


@dataclass
class Fig8bcResult:
    """Throughput-vs-bandwidth series for both stages."""

    bandwidths: list[float]
    prefill: dict[str, dict[int, list[float]]]  # mech -> seq len -> series
    decode: dict[str, dict[int, list[float]]]

    def decode_gain(self, seq_len: int, bw_index: int = -1) -> float:
        base = self.decode["inorder"][seq_len][bw_index]
        return self.decode["nvr"][seq_len][bw_index] / base - 1.0


def fig8bc_llm_throughput(
    prefill_lens: tuple[int, ...] = (1024, 2048, 4096),
    decode_lens: tuple[int, ...] = (512, 1024, 2048),
    bandwidths: tuple[float, ...] = (100, 200, 400, 800, 1600, 2400, 3200, 4000),
    calib_scale: float = 0.3,
    seed: int = 0,
    runner: SweepRunner | None = None,
    session: Session | None = None,
) -> Fig8bcResult:
    """Fig. 8b/8c: prefill and decode throughput vs bandwidth."""
    session = coerce_session(session, runner)
    spec, hw = TransformerSpec(), NPUHardware()
    calibs = {
        "inorder": calibrate_memory_efficiency(
            "inorder", scale=calib_scale, seed=seed, session=session
        ),
        "nvr": calibrate_memory_efficiency(
            "nvr", scale=calib_scale, seed=seed, session=session
        ),
    }
    prefill: dict[str, dict[int, list[float]]] = {}
    decode: dict[str, dict[int, list[float]]] = {}
    for mech, calib in calibs.items():
        prefill[mech] = {
            l: [prefill_throughput(spec, hw, l, bw, calib) for bw in bandwidths]
            for l in prefill_lens
        }
        decode[mech] = {
            l: [decode_throughput(spec, hw, l, bw, calib) for bw in bandwidths]
            for l in decode_lens
        }
    return Fig8bcResult(bandwidths=list(bandwidths), prefill=prefill, decode=decode)


# ---------------------------------------------------------------------------
# Fig. 9 — NSB vs L2 sensitivity
# ---------------------------------------------------------------------------


@dataclass
class Fig9Result:
    """Perf grid: rows = NSB KiB, cols = L2 KiB; perf = 1/(latency*area)."""

    nsb_sizes: list[int]
    l2_sizes: list[int]
    perf: list[list[float]]  # arbitrary units, scaled for readability
    cycles: list[list[int]]

    def cell(self, nsb_kib: int, l2_kib: int) -> float:
        return self.perf[self.nsb_sizes.index(nsb_kib)][self.l2_sizes.index(l2_kib)]

    def nsb_vs_l2_benefit(self) -> float:
        """The paper's headline comparison: at 256 KiB L2, growing the NSB
        4 KiB -> 16 KiB versus growing the L2 256 -> 1024 KiB at 4 KiB NSB.
        Returns the ratio of perf gains (paper: ~5x)."""
        nsb_gain = self.cell(16, 256) / self.cell(4, 256)
        l2_gain = self.cell(4, 1024) / self.cell(4, 256)
        return nsb_gain / max(l2_gain, 1e-9)


def fig9_plan(
    nsb_sizes: tuple[int, ...] = (4, 8, 16, 32),
    l2_sizes: tuple[int, ...] = (64, 128, 192, 256, 384, 512, 1024),
    workload: str = "ds",
    scale: float = 0.4,
    seed: int = 0,
) -> list[RunSpec]:
    """The Fig. 9 NSB-size x L2-size grid as plan content."""
    return Grid(
        workload=workload,
        mechanism="nvr",
        scale=scale,
        seed=seed,
        nsb_kib=nsb_sizes,
        l2_kib=l2_sizes,
    ).specs()


def fig9_nsb_sensitivity(
    nsb_sizes: tuple[int, ...] = (4, 8, 16, 32),
    l2_sizes: tuple[int, ...] = (64, 128, 192, 256, 384, 512, 1024),
    workload: str = "ds",
    scale: float = 0.4,
    seed: int = 0,
    runner: SweepRunner | None = None,
    session: Session | None = None,
) -> Fig9Result:
    """Fig. 9: NSB and L2 cache impact, perf = 1/(latency x area)."""
    session = coerce_session(session, runner)
    rs = session.sweep(fig9_plan(nsb_sizes, l2_sizes, workload, scale=scale, seed=seed))
    perf: list[list[float]] = []
    cycles: list[list[int]] = []
    for nsb_kib in nsb_sizes:
        perf_row, cyc_row = [], []
        for l2_kib in l2_sizes:
            result = rs.one(nsb_kib=nsb_kib, l2_kib=l2_kib)
            area = nsb_kib + l2_kib
            perf_row.append(1e9 / (result.total_cycles * area))
            cyc_row.append(result.total_cycles)
        perf.append(perf_row)
        cycles.append(cyc_row)
    return Fig9Result(
        nsb_sizes=list(nsb_sizes),
        l2_sizes=list(l2_sizes),
        perf=perf,
        cycles=cycles,
    )


# ---------------------------------------------------------------------------
# Sensitivity ablations (Sec. V sensitivity space: runahead depth/width,
# NSB sizing, issue width) — declarative Grid sweeps over the derived
# platform axes: every point carries a full serialisable platform
# description, so the studies cache and parallelise like the figures.
# ---------------------------------------------------------------------------

ABLATION_WORKLOADS: tuple[str, ...] = ("ds", "gcn", "st")


@dataclass
class AblationResult:
    """One sensitivity table: rows = axis values, columns = workloads."""

    name: str
    axis: str
    values: list[int]
    workloads: list[str]
    cycles: dict[str, list[int]]  # workload -> cycles aligned with values

    def speedups(self, workload: str) -> list[float]:
        """Per-value speedup over the first (baseline) axis value."""
        base = self.cycles[workload][0]
        return [base / max(c, 1) for c in self.cycles[workload]]

    def geomean_speedups(self) -> list[float]:
        """Per-value geometric-mean speedup across the workloads."""
        return [
            geometric_mean([self.speedups(w)[i] for w in self.workloads])
            for i in range(len(self.values))
        ]

    def best_value(self) -> int:
        """Axis value with the highest geomean speedup."""
        means = self.geomean_speedups()
        return self.values[means.index(max(means))]


def _run_ablation(
    name: str,
    axis: str,
    grid_axis: str,
    values: tuple[int, ...],
    workloads: tuple[str, ...],
    scale: float,
    seed: int,
    runner: SweepRunner | None,
    session: Session | None,
) -> AblationResult:
    session = coerce_session(session, runner)
    rs = session.sweep(
        Grid(
            workload=workloads,
            mechanism="nvr",
            scale=scale,
            seed=seed,
            **{grid_axis: tuple(values)},
        )
    )
    cycles = {
        w: [rs.one(workload=w, **{grid_axis: v}).total_cycles for v in values]
        for w in workloads
    }
    return AblationResult(
        name=name,
        axis=axis,
        values=list(values),
        workloads=list(workloads),
        cycles=cycles,
    )


def ablate_nvr_depth(
    values: tuple[int, ...] = (1, 2, 4, 8, 16),
    workloads: tuple[str, ...] = ABLATION_WORKLOADS,
    scale: float = 0.4,
    seed: int = 0,
    runner: SweepRunner | None = None,
    session: Session | None = None,
) -> AblationResult:
    """Runahead depth sweep: how far ahead NVR chases the W stream."""
    return _run_ablation(
        "nvr-depth", "depth_tiles", "nvr_depth",
        values, workloads, scale, seed, runner, session,
    )


def ablate_nvr_width(
    values: tuple[int, ...] = (4, 8, 16, 32),
    workloads: tuple[str, ...] = ABLATION_WORKLOADS,
    scale: float = 0.4,
    seed: int = 0,
    runner: SweepRunner | None = None,
    session: Session | None = None,
) -> AblationResult:
    """Vector width sweep: NVR's parallel-entry count N (Table I: 16)."""
    return _run_ablation(
        "nvr-width", "vector_width", "nvr_width",
        values, workloads, scale, seed, runner, session,
    )


def ablate_nsb_size(
    values: tuple[int, ...] = (4, 8, 16, 32, 64),
    workloads: tuple[str, ...] = ABLATION_WORKLOADS,
    scale: float = 0.4,
    seed: int = 0,
    runner: SweepRunner | None = None,
    session: Session | None = None,
) -> AblationResult:
    """NSB capacity sweep at the default 256 KiB L2 (Fig. 9's row axis)."""
    return _run_ablation(
        "nsb-size", "nsb_kib", "nsb_kib",
        values, workloads, scale, seed, runner, session,
    )


def ablate_issue_width(
    values: tuple[int, ...] = (1, 2, 4, 8),
    workloads: tuple[str, ...] = ABLATION_WORKLOADS,
    scale: float = 0.4,
    seed: int = 0,
    runner: SweepRunner | None = None,
    session: Session | None = None,
) -> AblationResult:
    """Load-pipeline issue width sweep (line requests per cycle)."""
    return _run_ablation(
        "issue-width", "issue_width", "issue_width",
        values, workloads, scale, seed, runner, session,
    )


#: Named ablation studies, the `repro ablate` CLI's menu.
ABLATIONS = {
    "nvr-depth": ablate_nvr_depth,
    "nvr-width": ablate_nvr_width,
    "nsb-size": ablate_nsb_size,
    "issue-width": ablate_issue_width,
}


# ---------------------------------------------------------------------------
# Tables
# ---------------------------------------------------------------------------


def table1_overhead(vector_width: int = 16) -> OverheadReport:
    """Table I: NVR hardware storage overhead."""
    return nvr_overhead(vector_width=vector_width)


@dataclass
class Table2Row:
    short: str
    full_name: str
    domain: str
    gather_elements: int
    footprint_kib: float
    reuse_factor: float


def table2_plan(scale: float = 0.3, seed: int = 0) -> list[RunSpec]:
    """The Table II trace-statistics pass as plan content."""
    return Grid(
        workload=WORKLOAD_ORDER, kind="trace", scale=scale, seed=seed
    ).specs()


def table2_workloads(
    scale: float = 0.3,
    seed: int = 0,
    runner: SweepRunner | None = None,
    session: Session | None = None,
) -> list[Table2Row]:
    """Table II: the workload suite, with measured trace statistics."""
    session = coerce_session(session, runner)
    rs = session.sweep(table2_plan(scale=scale, seed=seed))
    rows = []
    for short in WORKLOAD_ORDER:
        stats = rs.one(workload=short)
        info = WORKLOAD_INFO[short]
        rows.append(
            Table2Row(
                short=info.short,
                full_name=info.full_name,
                domain=info.domain,
                gather_elements=stats.gather_elements,
                footprint_kib=stats.footprint_bytes / KIB,
                reuse_factor=stats.reuse_factor,
            )
        )
    return rows
