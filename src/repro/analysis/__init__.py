"""Analysis layer: metrics, per-figure experiment runners, text reports.

* :mod:`repro.analysis.metrics` — every derived metric (normalised
  latency, miss reduction, coverage summaries, bandwidth shares) in one
  place so definitions cannot drift between figures.
* :mod:`repro.analysis.experiments` — one runner per paper table/figure
  (the experiment index of DESIGN.md).
* :mod:`repro.analysis.report` — ascii rendering for examples/benches.
"""

from .experiments import (
    fig1b_sparsity_gap,
    fig5_latency_breakdown,
    fig6_accuracy_coverage,
    fig6c_data_movement,
    fig7_bandwidth_allocation,
    fig8a_layer_miss,
    fig8bc_llm_throughput,
    fig9_nsb_sensitivity,
    table1_overhead,
    table2_workloads,
)
from .metrics import (
    bandwidth_shares,
    geomean_speedup,
    miss_reduction,
    normalised_latency,
    stall_fraction,
)
from .report import format_grid, format_series, format_table
from .traces import (
    gather_line_trace,
    miss_rate_curve,
    profile_trace,
    reuse_distances,
)

__all__ = [
    "bandwidth_shares",
    "fig1b_sparsity_gap",
    "fig5_latency_breakdown",
    "fig6_accuracy_coverage",
    "fig6c_data_movement",
    "fig7_bandwidth_allocation",
    "fig8a_layer_miss",
    "fig8bc_llm_throughput",
    "fig9_nsb_sensitivity",
    "format_grid",
    "format_series",
    "format_table",
    "gather_line_trace",
    "geomean_speedup",
    "miss_rate_curve",
    "miss_reduction",
    "normalised_latency",
    "profile_trace",
    "reuse_distances",
    "stall_fraction",
    "table1_overhead",
    "table2_workloads",
]
