"""Machine-readable export of experiment results (JSON).

Every experiment runner returns dataclasses; this module flattens them to
plain JSON-serialisable dicts so downstream plotting/analysis pipelines
can consume reproduction data without importing the library.
"""

from __future__ import annotations

import json
from dataclasses import asdict, is_dataclass
from typing import Any

import numpy as np

from ..errors import ConfigError
from ..sim.soc import RunResult


def _jsonable(value: Any) -> Any:
    """Recursively convert dataclasses/numpy values to JSON-native types."""
    if is_dataclass(value) and not isinstance(value, type):
        return {k: _jsonable(v) for k, v in asdict(value).items()}
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    raise ConfigError(f"cannot JSON-export value of type {type(value)!r}")


def run_result_dict(result: RunResult) -> dict:
    """Flatten one RunResult to the metrics a plot needs."""
    stats = result.stats
    return {
        "program": result.program_name,
        "mechanism": result.mechanism,
        "mode": result.mode,
        "total_cycles": result.total_cycles,
        "base_cycles": result.base_cycles,
        "stall_cycles": result.stall_cycles,
        "compute_cycles": stats.compute_cycles,
        "l2_demand_accesses": stats.l2.demand_accesses,
        "l2_demand_misses": stats.l2.demand_misses,
        "nsb_demand_hits": stats.nsb.demand_hits,
        "prefetch_issued": stats.prefetch.issued,
        "prefetch_useful": stats.prefetch.useful,
        "prefetch_late": stats.prefetch.late,
        "accuracy": stats.prefetch.accuracy,
        "coverage": stats.coverage(),
        "off_chip_demand_bytes": stats.traffic.off_chip_demand_bytes,
        "off_chip_prefetch_bytes": stats.traffic.off_chip_prefetch_bytes,
        "batch_miss_rate": stats.batch.batch_miss_rate,
        "element_miss_rate": stats.batch.element_miss_rate,
    }


def export_json(result: Any, path: str | None = None, indent: int = 2) -> str:
    """Serialise any experiment result (dataclass/dict tree) to JSON.

    Args:
        result: an experiment runner's return value or a RunResult.
        path: optional file to write.

    Returns:
        The JSON text.
    """
    if isinstance(result, RunResult):
        payload = run_result_dict(result)
    else:
        payload = _jsonable(result)
    text = json.dumps(payload, indent=indent, sort_keys=True)
    if path is not None:
        with open(path, "w") as handle:
            handle.write(text)
    return text
