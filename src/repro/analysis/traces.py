"""Access-trace analysis: reuse distances, working sets, miss-rate curves.

The cache behaviour every figure rests on is a function of the gather
trace's *reuse-distance distribution* — this module extracts it so users
can understand (and predict) how their own sparse workloads will behave
before running the full simulator:

* :func:`gather_line_trace` — the line-granular address stream a program
  will present to the hierarchy;
* :func:`reuse_distances` — LRU stack distances (unique lines between
  consecutive touches of the same line);
* :func:`miss_rate_curve` — cold+capacity miss rate as a function of
  cache size, directly from the distances (Mattson's stack algorithm),
  an analytic cross-check of the simulator's measured miss rates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from ..sim.npu.program import SparseProgram


def gather_line_trace(program: SparseProgram, line_bytes: int = 64) -> np.ndarray:
    """The program's gather accesses as a line-address stream.

    Streams (W values/indices) are excluded — they are trivially
    sequential; the irregular gathers are what caches struggle with.
    """
    pieces: list[np.ndarray] = []
    for tile in program.tiles:
        for gather in tile.gathers:
            for lines in gather.element_lines(line_bytes):
                pieces.append(lines)
    if not pieces:
        return np.zeros(0, dtype=np.int64)
    return np.concatenate(pieces)


def reuse_distances(trace: np.ndarray) -> np.ndarray:
    """LRU stack distance per access; -1 marks cold (first-touch) accesses.

    O(N log N) via a Fenwick tree over last-access positions.
    """
    n = len(trace)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    # Fenwick tree holding 1 at positions that are the *latest* access of
    # some line; distance = count of set positions after the line's last
    # access.
    tree = np.zeros(n + 1, dtype=np.int64)

    def update(i: int, delta: int) -> None:
        i += 1
        while i <= n:
            tree[i] += delta
            i += i & (-i)

    def query(i: int) -> int:
        """Sum of positions [0, i]."""
        i += 1
        total = 0
        while i > 0:
            total += tree[i]
            i -= i & (-i)
        return int(total)

    last_pos: dict[int, int] = {}
    out = np.empty(n, dtype=np.int64)
    total_set = 0
    for pos, line in enumerate(trace.tolist()):
        prev = last_pos.get(line)
        if prev is None:
            out[pos] = -1
        else:
            # Unique lines touched strictly after prev.
            out[pos] = total_set - query(prev)
            update(prev, -1)
            total_set -= 1
        last_pos[line] = pos
        update(pos, 1)
        total_set += 1
    return out


@dataclass(frozen=True)
class TraceProfile:
    """Summary of one gather trace."""

    accesses: int
    unique_lines: int
    cold_fraction: float
    median_reuse_distance: float  # over re-references only
    p90_reuse_distance: float

    @property
    def footprint_bytes(self) -> int:
        return self.unique_lines * 64


def profile_trace(program: SparseProgram, line_bytes: int = 64) -> TraceProfile:
    """Reuse-distance profile of a program's gather stream."""
    trace = gather_line_trace(program, line_bytes)
    distances = reuse_distances(trace)
    hot = distances[distances >= 0]
    return TraceProfile(
        accesses=int(len(trace)),
        unique_lines=int((distances < 0).sum()),
        cold_fraction=float((distances < 0).mean()) if len(distances) else 0.0,
        median_reuse_distance=float(np.median(hot)) if len(hot) else 0.0,
        p90_reuse_distance=float(np.percentile(hot, 90)) if len(hot) else 0.0,
    )


def miss_rate_curve(trace: np.ndarray, cache_lines: list[int]) -> dict[int, float]:
    """Fully-associative LRU miss rate at each capacity (Mattson).

    An access misses when its stack distance is ``>= capacity`` (or it is
    cold). This is the analytic upper bound a set-associative cache
    approaches; tests use it to cross-check the simulator.
    """
    if any(c < 1 for c in cache_lines):
        raise ConfigError("cache capacities must be positive")
    distances = reuse_distances(trace)
    n = len(distances)
    if n == 0:
        return {c: 0.0 for c in cache_lines}
    out = {}
    for capacity in cache_lines:
        misses = int(((distances < 0) | (distances >= capacity)).sum())
        out[capacity] = misses / n
    return out
