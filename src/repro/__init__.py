"""NVR: Vector Runahead on NPUs for Sparse Memory Access — reproduction.

A from-scratch, cycle-approximate Python reproduction of the DAC 2025
paper's full system: Gemmini-like NPU simulator, baseline prefetchers
(stream / IMP / DVR), the NVR prefetching micro-architecture, the eight
Table II sparse workloads, and an LLMCompass-like system-level model.

Quickstart::

    from repro import run_workload
    result = run_workload("gcn", mechanism="nvr")
    print(result.total_cycles, result.stats.coverage())

See README.md for the architecture overview and DESIGN.md for the
paper-to-module map.
"""

__version__ = "1.0.0"

from .api import (
    DTYPE_BYTES,
    MECHANISM_ORDER,
    MECHANISMS,
    WORKLOADS,
    compare_mechanisms,
    make_system,
    run_workload,
)
from .client import SweepClient
from .resultset import ResultSet
from .runner import ResultCache, RunSpec, SweepRunner, expand
from .session import Grid, Session, default_session
from .spec import SystemSpec

__all__ = [
    "DTYPE_BYTES",
    "Grid",
    "MECHANISMS",
    "MECHANISM_ORDER",
    "ResultCache",
    "ResultSet",
    "RunSpec",
    "Session",
    "SweepClient",
    "SweepRunner",
    "SystemSpec",
    "WORKLOADS",
    "compare_mechanisms",
    "default_session",
    "expand",
    "make_system",
    "run_workload",
    "__version__",
]
