"""Small shared helpers: power-of-two math, seeded RNG, human-readable sizes.

Kept deliberately tiny — anything with domain meaning lives in a domain
module, not here.
"""

from __future__ import annotations

import math

import numpy as np

from .errors import ConfigError

KIB = 1024
MIB = 1024 * 1024


def is_pow2(value: int) -> bool:
    """Return True when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def require_pow2(value: int, name: str) -> int:
    """Validate that ``value`` is a power of two, returning it unchanged."""
    if not is_pow2(value):
        raise ConfigError(f"{name} must be a positive power of two, got {value}")
    return value


def log2_int(value: int) -> int:
    """Exact integer log2 of a power-of-two value."""
    require_pow2(value, "value")
    return value.bit_length() - 1


def ceil_div(a: int, b: int) -> int:
    """Ceiling integer division for non-negative ``a`` and positive ``b``."""
    if b <= 0:
        raise ConfigError(f"ceil_div divisor must be positive, got {b}")
    return -(-a // b)


def align_down(addr: int, granule: int) -> int:
    """Round ``addr`` down to a multiple of the power-of-two ``granule``."""
    return addr & ~(granule - 1)


def align_up(addr: int, granule: int) -> int:
    """Round ``addr`` up to a multiple of the power-of-two ``granule``."""
    return (addr + granule - 1) & ~(granule - 1)


def make_rng(seed: int | None) -> np.random.Generator:
    """Create a deterministic numpy Generator from an integer seed.

    ``None`` is accepted for convenience in exploratory use but every
    library-internal caller passes an explicit seed so runs replay exactly.
    """
    return np.random.default_rng(seed)


def human_bytes(n_bytes: float) -> str:
    """Format a byte count for reports: ``1536 -> '1.5 KiB'``."""
    value = float(n_bytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or unit == "TiB":
            if unit == "B":
                return f"{int(value)} {unit}"
            return f"{value:.1f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")


def sanitize_nonfinite(value):
    """Replace non-finite floats with ``None``, recursively.

    JSON has no NaN/Infinity: ``json.dumps`` happily emits the bare
    Python literals, producing files no strict parser accepts. Every
    JSON writer in the library (cache entries, worker result files, the
    ``sweep --json`` payload) maps non-finite metrics — a CV over an
    empty trace, a ratio against zero — to ``null`` through this helper
    and serialises with ``allow_nan=False``, so one path can never leak
    an invalid document while another stays clean.
    """
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {key: sanitize_nonfinite(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [sanitize_nonfinite(item) for item in value]
    return value


def geometric_mean(values: list[float]) -> float:
    """Geometric mean of positive values; the standard for speedup summaries."""
    if not values:
        raise ValueError("geometric_mean of empty sequence")
    arr = np.asarray(values, dtype=float)
    if np.any(arr <= 0):
        raise ValueError("geometric_mean requires strictly positive values")
    return float(np.exp(np.mean(np.log(arr))))
