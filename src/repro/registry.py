"""Plug-in registries: the extension points of the simulator.

Three axes of the system are open for extension without touching
:mod:`repro.api`:

* **mechanisms** (this module's :data:`MECHANISMS`) — a named pairing of
  a prefetcher factory with an execution-engine mode, the unit the
  paper's Fig. 5 bars compare;
* **engines** (:data:`repro.sim.npu.executor.ENGINES`) — the execution
  models themselves (in-order, ideal OoO, explicit preload);
* **workloads** (:data:`repro.workloads.registry.WORKLOAD_BUILDERS`) —
  the Table II trace builders.

All three are instances of the same :class:`Registry`, so registering a
new scenario is one call (or decorator) next to its implementation::

    from repro.registry import MECHANISMS, MechanismDef
    MECHANISMS.register(
        "mypf", MechanismDef("mypf", MyPrefetcher, mode="inorder")
    )

and every consumer — :func:`repro.api.make_system`, the sweep runner,
the CLI choices — picks it up, because they all resolve names through
the registry at call time.

One caveat for parallel sweeps: worker processes rebuild everything by
re-importing ``repro`` and resolving the pickled spec's names, so a
registration must happen at *import time* of a module the workers also
import. On Linux the default ``fork`` start method inherits the parent's
registrations for free; on spawn platforms (macOS/Windows), register in
your package's ``__init__`` rather than in a script body, or run with
``jobs=1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from .errors import ConfigError, ReproError
from .prefetch import (
    DecoupledVectorRunahead,
    IndirectMemoryPrefetcher,
    NullPrefetcher,
    Prefetcher,
    StreamPrefetcher,
)


class Registry:
    """A named ``str -> definition`` mapping with decorator registration.

    Lookup failures raise the registry's error class with the known names
    listed, so a typo in a mechanism/engine/workload name is always a
    one-line diagnosis. Iteration order is registration order.
    """

    def __init__(self, kind: str, error: type[ReproError] = ConfigError) -> None:
        self.kind = kind
        self.error = error
        self._entries: dict[str, object] = {}

    # -- registration --------------------------------------------------------

    def register(self, name: str, value=None, *, replace: bool = False):
        """Register ``value`` under ``name``; usable as a decorator.

        Duplicate names raise unless ``replace=True`` — silently shadowing
        a built-in mechanism is almost always a bug in an extension.
        """
        if value is None:
            return lambda v: self.register(name, v, replace=replace)
        if name in self._entries and not replace:
            raise self.error(
                f"{self.kind} '{name}' is already registered "
                "(pass replace=True to override)"
            )
        self._entries[name] = value
        return value

    def unregister(self, name: str) -> None:
        """Remove an entry (tests and throwaway extensions)."""
        self._entries.pop(name, None)

    # -- lookup --------------------------------------------------------------

    def get(self, name: str):
        try:
            return self._entries[name]
        except KeyError:
            raise self.error(
                f"unknown {self.kind} '{name}' "
                f"(known: {', '.join(self._entries)})"
            ) from None

    def names(self) -> tuple[str, ...]:
        return tuple(self._entries)

    # -- mapping protocol ----------------------------------------------------

    def __getitem__(self, name: str):
        return self.get(name)

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self):
        return self._entries.keys()

    def items(self):
        return self._entries.items()

    def __repr__(self) -> str:
        return f"Registry({self.kind!r}, {list(self._entries)})"


@dataclass(frozen=True)
class MechanismDef:
    """One Fig. 5 bar: a prefetcher factory bound to an engine mode.

    Attributes:
        name: registry key (also the CLI spelling).
        prefetcher: zero-arg factory — or, when ``uses_nvr_config``,
            a one-arg factory taking ``NVRConfig | None``.
        mode: execution-engine name resolved through
            :data:`repro.sim.npu.executor.ENGINES`.
        uses_nvr_config: whether the mechanism is tuned by an
            :class:`~repro.core.controller.NVRConfig`; passing one to any
            other mechanism is a :class:`~repro.errors.ConfigError`.
    """

    name: str
    prefetcher: Callable[..., Prefetcher]
    mode: str = "inorder"
    uses_nvr_config: bool = False

    def factory(self, nvr_config=None) -> Callable[[], Prefetcher]:
        """A fresh-prefetcher-per-run factory, with config validation."""
        if nvr_config is not None and not self.uses_nvr_config:
            raise ConfigError(
                f"mechanism '{self.name}' does not take an nvr_config "
                "(only NVR-family mechanisms are tuned by NVRConfig)"
            )
        if self.uses_nvr_config:
            builder = self.prefetcher
            return lambda: builder(nvr_config)
        return self.prefetcher


#: Mechanism registry: the paper's six Fig. 5 bars plus 'preload',
#: Gemmini's native explicit-DMA operating mode (the Sec. II baseline
#: whose over-fetch motivates Figs. 1b/7).
MECHANISMS = Registry("mechanism")

# The NVR prefetcher lives in repro.core; import it here (not at module
# top) only to keep the registration block self-contained and readable.
from .core.nvr import NVRPrefetcher  # noqa: E402

MECHANISMS.register("inorder", MechanismDef("inorder", NullPrefetcher))
MECHANISMS.register("ooo", MechanismDef("ooo", NullPrefetcher, mode="ooo"))
MECHANISMS.register("stream", MechanismDef("stream", StreamPrefetcher))
MECHANISMS.register("imp", MechanismDef("imp", IndirectMemoryPrefetcher))
MECHANISMS.register("dvr", MechanismDef("dvr", DecoupledVectorRunahead))
MECHANISMS.register("nvr", MechanismDef("nvr", NVRPrefetcher, uses_nvr_config=True))
MECHANISMS.register("preload", MechanismDef("preload", NullPrefetcher, mode="preload"))

#: The paper figures' bar order (excludes the preload baseline).
MECHANISM_ORDER: tuple[str, ...] = (
    "inorder",
    "ooo",
    "stream",
    "imp",
    "dvr",
    "nvr",
)
