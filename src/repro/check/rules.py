"""The initial ``repro check`` rule pack.

Each rule encodes one correctness contract the repo's runtime relies on
but Python cannot express. Scopes are fnmatch patterns over the logical
path (``repro/runner/queue.py``); a rule only fires inside its scope so
e.g. RPR003's determinism contract does not outlaw ``time`` in the
worker loop, where wall clocks are legitimate.

All checks are syntactic (AST shape, not types): that keeps them fast,
dependency-free and predictable, at the cost of resolvable aliasing
(``from json import dump as d``) slipping through. The contracts they
guard are conventions of *this* codebase, which does not alias stdlib
modules — the self-hosted CI gate keeps it that way.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatch
from typing import Iterator, Sequence

from .base import FileContext, Finding, call_name, register_rule


def in_scope(rel: str, patterns: Sequence[str]) -> bool:
    return any(fnmatch(rel, pattern) for pattern in patterns)


def _keyword(node: ast.Call, name: str) -> ast.keyword | None:
    for kw in node.keywords:
        if kw.arg == name:
            return kw
    return None


def _keyword_is(node: ast.Call, name: str, value: bool) -> bool:
    kw = _keyword(node, name)
    return (
        kw is not None
        and isinstance(kw.value, ast.Constant)
        and kw.value.value is value
    )


def _enclosing_function_names(tree: ast.Module) -> dict[int, str]:
    """Map each node id to the name of its innermost enclosing function."""
    names: dict[int, str] = {}

    def visit(node: ast.AST, current: str) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            current = node.name
        for child in ast.iter_child_nodes(node):
            names[id(child)] = current
            visit(child, current)

    visit(tree, "")
    return names


def _contains_json_dumps(node: ast.AST) -> bool:
    return any(
        isinstance(sub, ast.Call) and call_name(sub) == "json.dumps"
        for sub in ast.walk(node)
    )


@register_rule
class AtomicWriteRule:
    """RPR001 — durable state files are written via ``atomic_write_json``.

    The cache/queue/ledger/fleet protocols all assume a reader never
    observes a half-written JSON document: the queue claims by renaming
    whole files, the cache trusts any present blob, and crashed writers
    must leave no torn state behind. ``atomic_write_json`` (temp file +
    ``os.replace``) is the only write path that guarantees this.
    """

    code = "RPR001"
    name = "atomic-durable-writes"
    severity = "error"
    description = (
        "durable JSON state must be written via atomic_write_json, "
        "not raw json.dump/open(..., 'w')"
    )
    rationale = (
        "queue/cache/ledger readers trust any file that exists; a raw "
        "write torn by a crash corrupts shared state that os.replace "
        "would have published atomically"
    )
    scope = (
        "repro/runner/cache.py",
        "repro/runner/queue.py",
        "repro/runner/fleet.py",
        "repro/runner/sync.py",
        "repro/runner/worker.py",
        "repro/server/*.py",
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not in_scope(ctx.rel, self.scope):
            return
        enclosing = _enclosing_function_names(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            # atomic_write_json itself is the one sanctioned json.dump
            # site: it writes to a private temp fd before os.replace.
            if enclosing.get(id(node), "") == "atomic_write_json":
                continue
            name = call_name(node)
            if name == "json.dump":
                yield ctx.finding(
                    self.code,
                    node,
                    "raw json.dump to durable state; route through "
                    "atomic_write_json (temp file + os.replace)",
                )
            elif name.endswith("write_text") or name.endswith("write_bytes"):
                if _contains_json_dumps(node):
                    yield ctx.finding(
                        self.code,
                        node,
                        "non-atomic write_text/write_bytes of a JSON "
                        "document; route through atomic_write_json",
                    )


@register_rule
class CanonicalJsonRule:
    """RPR002 — wire/cache JSON is sorted and NaN-free.

    Cache keys, ledgers and HTTP bodies are compared byte-for-byte (the
    CI ``cmp`` gates, result-cache hits, fleet sync). ``sort_keys=True``
    makes dict order irrelevant; ``allow_nan=False`` refuses the
    non-standard ``NaN``/``Infinity`` literals that other parsers (and
    the repo's own strict loads) reject — non-finite floats must be
    mapped to ``None`` first via ``utils.sanitize_nonfinite``.
    """

    code = "RPR002"
    name = "canonical-json"
    severity = "error"
    description = (
        "json.dump/json.dumps on wire or cache paths must pass "
        "sort_keys=True and allow_nan=False"
    )
    rationale = (
        "byte-identity of serialized state is the property every cache "
        "hit and CI cmp gate depends on; unsorted keys or bare NaN "
        "literals silently break it"
    )
    scope = (
        "repro/client.py",
        "repro/resultset.py",
        "repro/__main__.py",
        "repro/server/*.py",
        "repro/runner/*.py",
        "repro/spec/*.py",
        "repro/check/*.py",
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not in_scope(ctx.rel, self.scope):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if call_name(node) not in ("json.dump", "json.dumps"):
                continue
            missing = [
                spelled
                for flag, value, spelled in (
                    ("sort_keys", True, "sort_keys=True"),
                    ("allow_nan", False, "allow_nan=False"),
                )
                if not _keyword_is(node, flag, value)
            ]
            if missing:
                yield ctx.finding(
                    self.code,
                    node,
                    "wire/cache serialization must pass " + " and ".join(missing),
                )


@register_rule
class DeterminismRule:
    """RPR003 — canonicalization and hashing paths are deterministic.

    ``stable_hash`` over a spec must yield the same digest on every
    host, every process, every run: it names cache entries and queue
    units. Clocks, RNGs, UUIDs and unordered set iteration all inject
    per-process entropy into that digest.
    """

    code = "RPR003"
    name = "deterministic-hash-paths"
    severity = "error"
    description = (
        "no time/random/uuid/secrets imports or unordered set iteration "
        "in spec canonicalization or plan hashing modules"
    )
    rationale = (
        "cache keys and queue unit names are stable hashes of specs; "
        "any per-process entropy in those paths splits the cache and "
        "breaks cross-host byte-identity"
    )
    scope = (
        "repro/spec/*.py",
        "repro/runner/plan.py",
    )
    banned_modules = ("time", "random", "uuid", "secrets", "datetime")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not in_scope(ctx.rel, self.scope):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in self.banned_modules:
                        yield ctx.finding(
                            self.code,
                            node,
                            "import of nondeterministic module "
                            f"{alias.name!r} in a hashed path",
                        )
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if node.level == 0 and root in self.banned_modules:
                    yield ctx.finding(
                        self.code,
                        node,
                        "import from nondeterministic module "
                        f"{node.module!r} in a hashed path",
                    )
            elif isinstance(node, (ast.For, ast.comprehension)):
                target = node.iter
                if self._is_unordered(target):
                    yield ctx.finding(
                        self.code,
                        target,
                        "iteration over an unordered set in a hashed "
                        "path; wrap in sorted(...)",
                    )

    @staticmethod
    def _is_unordered(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            return call_name(node) in ("set", "frozenset")
        return False


@register_rule
class AsyncBlockingRule:
    """RPR004 — the asyncio server never blocks the event loop.

    One ``time.sleep`` or sync ``open`` inside a coroutine stalls every
    connected client: the SSE stream, the poll loop, heartbeats. Slow
    work belongs in ``run_in_executor`` or outside the server package.
    """

    code = "RPR004"
    name = "no-blocking-in-async"
    severity = "error"
    description = (
        "no blocking calls (time.sleep, subprocess.*, sync file I/O) "
        "inside async def bodies in server/"
    )
    rationale = (
        "the server is single-event-loop; any sync block freezes every "
        "client, heartbeat and SSE stream at once"
    )
    scope = ("repro/server/*.py",)
    blocking = (
        "time.sleep",
        "os.system",
        "open",
        "os.fdopen",
    )
    blocking_prefixes = ("subprocess.",)
    blocking_methods = (
        ".read_text",
        ".write_text",
        ".read_bytes",
        ".write_bytes",
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not in_scope(ctx.rel, self.scope):
            return
        for func in ast.walk(ctx.tree):
            if not isinstance(func, ast.AsyncFunctionDef):
                continue
            yield from self._check_async_body(ctx, func)

    def _check_async_body(
        self, ctx: FileContext, func: ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        stack: list[ast.AST] = list(ast.iter_child_nodes(func))
        while stack:
            node = stack.pop()
            # a nested sync def runs only when explicitly called (e.g.
            # handed to run_in_executor) — not on the event loop here.
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            stack.extend(ast.iter_child_nodes(node))
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            hit = (
                name in self.blocking
                or any(name.startswith(p) for p in self.blocking_prefixes)
                or any(name.endswith(m) for m in self.blocking_methods)
            )
            if hit:
                yield ctx.finding(
                    self.code,
                    node,
                    f"blocking call {name!r} inside async def "
                    f"{func.name!r}; use run_in_executor or move it "
                    "off the event loop",
                )


@register_rule
class SwallowedExceptionRule:
    """RPR005 — no silently-swallowed broad excepts.

    ``except Exception: pass`` hides queue corruption, cache races and
    protocol bugs equally well. A broad handler must re-raise, log, call
    *something*, or carry an inline justification.
    """

    code = "RPR005"
    name = "no-silent-except"
    severity = "error"
    description = (
        "broad except (Exception/BaseException/bare) must re-raise, "
        "log, or carry a repro: ignore justification"
    )
    rationale = (
        "a swallowed broad except converts crashes into silent wrong "
        "answers; every deliberate swallow must be visible and "
        "justified at the site"
    )
    scope = ("repro/*.py", "repro/*/*.py")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not in_scope(ctx.rel, self.scope):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_broad(node.type):
                continue
            if self._handler_acts(node):
                continue
            yield ctx.finding(
                self.code,
                node,
                "broad except swallows the error without re-raise, "
                "logging, or any side effect; narrow it or justify "
                "with '# repro: ignore[RPR005] <reason>'",
            )

    @staticmethod
    def _is_broad(type_node: ast.expr | None) -> bool:
        if type_node is None:  # bare except
            return True
        names = (
            [type_node]
            if not isinstance(type_node, ast.Tuple)
            else list(type_node.elts)
        )
        for item in names:
            if isinstance(item, ast.Name) and item.id in (
                "Exception",
                "BaseException",
            ):
                return True
        return False

    @staticmethod
    def _handler_acts(node: ast.ExceptHandler) -> bool:
        """True if the handler re-raises or does observable work."""
        for sub in ast.walk(node):
            if isinstance(sub, (ast.Raise, ast.Call, ast.Return, ast.Yield)):
                if isinstance(sub, ast.Return) and sub.value is None:
                    continue
                if (
                    isinstance(sub, ast.Return)
                    and isinstance(sub.value, ast.Constant)
                    and sub.value.value is None
                ):
                    continue
                return True
        return False


@register_rule
class QueueRenameRule:
    """RPR006 — queue state transitions are single renames.

    A unit moves pending -> claimed -> done by ``os.replace`` so exactly
    one worker can win it and no observer sees it in two states.
    Copy-then-delete opens a window where the unit exists twice (double
    execution) or zero times (lost work).
    """

    code = "RPR006"
    name = "queue-moves-are-renames"
    severity = "error"
    description = (
        "queue claim/result moves must use os.rename/os.replace, "
        "never shutil copy-then-delete"
    )
    rationale = (
        "rename is the queue's mutual-exclusion primitive: atomic, "
        "fails for all but one claimant; a copy+delete races and can "
        "double-run or lose a unit"
    )
    scope = ("repro/runner/queue.py",)
    banned = (
        "shutil.copy",
        "shutil.copy2",
        "shutil.copyfile",
        "shutil.copytree",
        "shutil.move",
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not in_scope(ctx.rel, self.scope):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) and call_name(node) in self.banned:
                yield ctx.finding(
                    self.code,
                    node,
                    f"{call_name(node)} in the queue protocol; state "
                    "moves must be a single os.rename/os.replace",
                )


__all__ = [
    "AtomicWriteRule",
    "CanonicalJsonRule",
    "DeterminismRule",
    "AsyncBlockingRule",
    "SwallowedExceptionRule",
    "QueueRenameRule",
    "in_scope",
]
