"""Core types of the ``repro check`` static-analysis engine.

The engine mirrors the repo's plug-in idiom: :data:`CHECK_RULES` is a
:class:`~repro.registry.Registry` of :class:`Rule` implementations, one
per invariant code (``RPR001``...), so a new contract lands as one
registered class next to its documentation — the CLI, the JSON output
and the test harness pick it up automatically.

A rule sees one :class:`FileContext` at a time (path, source text,
parsed AST) and yields :class:`Finding` objects. Suppressions are
handled centrally by the engine: a finding on a line whose own (or
immediately preceding) comment says ``# repro: ignore[RPR001]`` is
dropped, so every escape hatch is grep-able and carries its code.
"""

from __future__ import annotations

import ast
import re
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterable, Protocol, runtime_checkable

from ..registry import Registry

#: Rule severities, mildest first. Only ``error`` findings gate the CLI
#: exit code; ``warning`` findings are reported but do not fail a run.
SEVERITIES = ("warning", "error")

#: ``# repro: ignore[RPR001]`` or ``# repro: ignore[RPR001,RPR005] why``.
#: The bracket list is mandatory — a blanket un-coded suppression would
#: silently cover rules added later, which is exactly the rot this
#: subsystem exists to prevent.
SUPPRESS_RE = re.compile(r"#\s*repro:\s*ignore\[([A-Z0-9,\s]+)\]")

_CODE_RE = re.compile(r"^RPR\d{3}$")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    code: str
    message: str
    path: str
    line: int
    col: int = 0
    severity: str = "error"

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.code)

    def to_dict(self) -> dict:
        return asdict(self)

    def render(self) -> str:
        """The one-line human form: ``path:line:col: RPR001 message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


class FileContext:
    """Everything a rule may inspect about one source file.

    ``rel`` is the file's *logical* path — the path from the ``repro``
    package root spelled ``repro/runner/queue.py`` — which is what rule
    scopes match against. It is derived from the real path, so fixture
    files in a test's ``tmp/src/repro/...`` mirror scope exactly like
    the installed tree.
    """

    def __init__(self, path: str | Path, text: str, tree: ast.Module) -> None:
        self.path = Path(path)
        self.text = text
        self.tree = tree
        self.lines = text.splitlines()
        self.rel = logical_path(self.path)

    def finding(
        self,
        code: str,
        node: ast.AST,
        message: str,
        severity: str = "error",
    ) -> Finding:
        return Finding(
            code=code,
            message=message,
            path=str(self.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            severity=severity,
        )

    def suppressed_codes(self, line: int) -> set[str]:
        """Codes suppressed at ``line`` (1-based): own or preceding line."""
        codes: set[str] = set()
        for index in (line - 1, line - 2):  # the line itself, then above
            if 0 <= index < len(self.lines):
                for match in SUPPRESS_RE.finditer(self.lines[index]):
                    codes.update(
                        c.strip() for c in match.group(1).split(",") if c.strip()
                    )
        return codes


@runtime_checkable
class Rule(Protocol):
    """The contract every ``CHECK_RULES`` entry implements.

    Attributes:
        code: stable identifier (``RPR###``) used in output, ``--rule``
            selection and suppression comments.
        name: short kebab-case label for the catalog.
        severity: one of :data:`SEVERITIES`.
        description: one-line statement of the invariant.
        rationale: why the invariant exists (rendered in the docs
            catalog and ``repro check --list``).
    """

    code: str
    name: str
    severity: str
    description: str
    rationale: str

    def check(self, ctx: FileContext) -> Iterable[Finding]: ...


#: The rule registry, mirroring MECHANISMS/ENGINES/FLEET_DRIVERS: keys
#: are rule codes, values are Rule instances. Register at import time of
#: :mod:`repro.check.rules` so every consumer sees the same pack.
CHECK_RULES = Registry("check rule")


def register_rule(rule_cls: type) -> type:
    """Class decorator: instantiate and register a rule by its code."""
    rule = rule_cls()
    if not _CODE_RE.match(rule.code):
        raise ValueError(f"rule code {rule.code!r} must match RPR###")
    if rule.severity not in SEVERITIES:
        raise ValueError(
            f"rule {rule.code} severity {rule.severity!r} not in {SEVERITIES}"
        )
    CHECK_RULES.register(rule.code, rule)
    return rule_cls


def logical_path(path: Path) -> str:
    """The path from the ``repro`` package root, posix-style.

    ``/any/prefix/src/repro/runner/queue.py -> repro/runner/queue.py``;
    a path with no ``repro`` component falls back to its filename, which
    matches no package-scoped rule.
    """
    parts = path.as_posix().split("/")
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return "/".join(parts[i:])
    return path.name


def call_name(node: ast.AST) -> str:
    """Dotted name of a call target: ``json.dump``, ``open``, ``x.write``.

    Attribute chains rooted at an arbitrary expression render the
    *attribute* path only (``spam().write_text`` -> ``.write_text``), so
    rules can match method names without resolving receiver types.
    """
    if isinstance(node, ast.Call):
        node = node.func
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return "." + ".".join(reversed(parts)) if parts else ""
