"""File discovery, rule execution and reporting for ``repro check``."""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from ..errors import ConfigError
from .base import CHECK_RULES, FileContext, Finding, Rule
from .config import CheckConfig

#: Pseudo-code for files the engine itself cannot process (syntax
#: errors, undecodable bytes). Not a registered rule — it cannot be
#: selected with ``--rule`` — but it is suppressible and reported like
#: one so a broken file never silently passes the gate.
PARSE_ERROR_CODE = "RPR000"


@dataclass
class Report:
    """The outcome of one engine run."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    files_checked: int = 0
    rules: Sequence[str] = ()

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def exit_code(self) -> int:
        return 1 if self.errors else 0

    def to_dict(self) -> dict:
        return {
            "files_checked": self.files_checked,
            "findings": [f.to_dict() for f in self.findings],
            "rules": list(self.rules),
            "suppressed": self.suppressed,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True, allow_nan=False)


def discover_files(paths: Iterable[str | Path], config: CheckConfig) -> list[Path]:
    """Expand the CLI path arguments into a sorted list of .py files."""
    seen: dict[Path, None] = {}
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise ConfigError(f"check path does not exist: {path}")
        if path.is_dir():
            candidates: Iterator[Path] = path.rglob("*.py")
        else:
            candidates = iter([path])
        for candidate in candidates:
            if config.excludes_path(candidate):
                continue
            seen[candidate] = None
    return sorted(seen)


def select_rules(codes: Sequence[str] | None) -> list[Rule]:
    """Resolve ``--rule`` selections (or all registered rules) in order."""
    if not codes:
        return [CHECK_RULES.get(code) for code in sorted(CHECK_RULES.names())]
    rules = []
    for code in codes:
        rules.append(CHECK_RULES.get(code.upper()))
    return rules


def check_file(
    path: Path, rules: Sequence[Rule], config: CheckConfig
) -> tuple[list[Finding], int]:
    """Run ``rules`` over one file; returns (kept findings, #suppressed)."""
    try:
        text = path.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=str(path))
    except (SyntaxError, UnicodeDecodeError, OSError) as exc:
        finding = Finding(
            code=PARSE_ERROR_CODE,
            message=f"cannot analyze file: {exc}",
            path=str(path),
            line=getattr(exc, "lineno", 1) or 1,
        )
        return [finding], 0

    ctx = FileContext(path, text, tree)
    kept: list[Finding] = []
    suppressed = 0
    for rule in rules:
        for finding in rule.check(ctx):
            if finding.code in config.ignore_codes:
                suppressed += 1
            elif finding.code in ctx.suppressed_codes(finding.line):
                suppressed += 1
            else:
                kept.append(finding)
    return kept, suppressed


def run_check(
    paths: Iterable[str | Path],
    *,
    rule_codes: Sequence[str] | None = None,
    config: CheckConfig | None = None,
) -> Report:
    """Run the selected rule pack over ``paths`` and build a report."""
    config = config or CheckConfig()
    rules = select_rules(rule_codes)
    report = Report(rules=[rule.code for rule in rules])
    for path in discover_files(paths, config):
        findings, suppressed = check_file(path, rules, config)
        report.findings.extend(findings)
        report.suppressed += suppressed
        report.files_checked += 1
    report.findings.sort(key=Finding.sort_key)
    return report
