"""Argument handling and rendering for the ``repro check`` subcommand.

Kept separate from :mod:`repro.__main__` so the engine is usable as a
library (tests drive :func:`run` directly) and so ``__main__`` stays a
thin dispatch table.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import IO

from .base import CHECK_RULES
from .config import load_config
from .engine import run_check

# Import for the registration side effect: the rule pack must be in
# CHECK_RULES before any engine run or --list.
from . import rules as _rules  # noqa: F401


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit the report as canonical JSON on stdout",
    )
    parser.add_argument(
        "--rule",
        action="append",
        dest="rule_codes",
        metavar="RPR###",
        help="run only this rule (repeatable)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        dest="list_rules",
        help="list registered rules and exit",
    )


def list_rules(stream: IO[str]) -> int:
    for code in sorted(CHECK_RULES.names()):
        rule = CHECK_RULES.get(code)
        stream.write(f"{rule.code} [{rule.severity}] {rule.name}\n")
        stream.write(f"    {rule.description}\n")
    return 0


def run(args: argparse.Namespace, stream: IO[str] | None = None) -> int:
    stream = stream if stream is not None else sys.stdout
    if args.list_rules:
        return list_rules(stream)
    anchor = Path(args.paths[0]) if args.paths else Path.cwd()
    config = load_config(anchor if anchor.is_dir() else anchor.parent)
    report = run_check(args.paths, rule_codes=args.rule_codes, config=config)
    if args.as_json:
        stream.write(report.to_json() + "\n")
        return report.exit_code
    for finding in report.findings:
        stream.write(finding.render() + "\n")
    summary = (
        f"checked {report.files_checked} file(s): "
        f"{len(report.findings)} finding(s), "
        f"{report.suppressed} suppressed"
    )
    stream.write(summary + "\n")
    return report.exit_code
