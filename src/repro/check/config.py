"""Project-level configuration for ``repro check``.

Configuration lives in ``pyproject.toml`` under ``[tool.repro-check]``:

.. code-block:: toml

    [tool.repro-check]
    exclude = ["repro/vendored/*"]
    ignore = ["RPR004"]

``exclude`` patterns match the logical path (``repro/...``); ``ignore``
disables a code project-wide. Both default to empty. ``tomllib`` ships
with Python 3.11+; on older interpreters the config file is simply not
read and defaults apply — the analyzer itself has no dependencies.
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatch
from pathlib import Path

from ..errors import ConfigError
from .base import logical_path

try:
    import tomllib
except ImportError:  # pragma: no cover - Python < 3.11
    tomllib = None  # type: ignore[assignment]


@dataclass
class CheckConfig:
    exclude: tuple[str, ...] = ()
    ignore_codes: frozenset = frozenset()

    def excludes_path(self, path: Path) -> bool:
        rel = logical_path(path)
        return any(fnmatch(rel, pattern) for pattern in self.exclude)


def load_config(start: Path | None = None) -> CheckConfig:
    """Load ``[tool.repro-check]`` from the nearest pyproject.toml.

    Walks up from ``start`` (default: cwd). Missing file, missing
    table or an interpreter without ``tomllib`` all yield defaults.
    """
    if tomllib is None:
        return CheckConfig()
    directory = (start or Path.cwd()).resolve()
    for candidate in (directory, *directory.parents):
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return _parse(pyproject)
    return CheckConfig()


def _parse(pyproject: Path) -> CheckConfig:
    try:
        with open(pyproject, "rb") as handle:
            document = tomllib.load(handle)
    except (OSError, tomllib.TOMLDecodeError) as exc:
        raise ConfigError(f"cannot read {pyproject}: {exc}") from exc
    table = document.get("tool", {}).get("repro-check", {})
    if not isinstance(table, dict):
        raise ConfigError("[tool.repro-check] must be a table")
    exclude = table.get("exclude", [])
    ignore = table.get("ignore", [])
    for name, value in (("exclude", exclude), ("ignore", ignore)):
        if not isinstance(value, list) or not all(
            isinstance(item, str) for item in value
        ):
            raise ConfigError(f"[tool.repro-check] {name} must be a list of strings")
    return CheckConfig(exclude=tuple(exclude), ignore_codes=frozenset(ignore))
