"""``repro check``: invariant-aware static analysis for this repo.

The package machine-checks the correctness contracts the runtime
relies on — atomic durable writes, canonical JSON, deterministic hash
paths, a non-blocking server loop, no silent broad excepts, rename-only
queue moves. See ``docs/static-analysis.md`` for the rule catalog.

Importing this package loads the rule pack into :data:`CHECK_RULES`.
"""

from .base import CHECK_RULES, FileContext, Finding, Rule, register_rule
from .config import CheckConfig, load_config
from .engine import PARSE_ERROR_CODE, Report, run_check
from . import rules  # noqa: F401  (registration side effect)

__all__ = [
    "CHECK_RULES",
    "CheckConfig",
    "FileContext",
    "Finding",
    "PARSE_ERROR_CODE",
    "Report",
    "Rule",
    "load_config",
    "register_rule",
    "run_check",
    "rules",
]
