"""Top-level convenience API.

Wraps workload building, mechanism selection and system construction into
two calls::

    from repro import run_workload, compare_mechanisms

    result = run_workload("gcn", mechanism="nvr")
    table = compare_mechanisms("ds", dtype="int8", nsb=True)

Every knob the experiments sweep (dtype, NSB, scale, seed, runahead depth)
is exposed as a keyword argument.
"""

from __future__ import annotations

from typing import Callable

from .core import NVRConfig, NVRPrefetcher
from .errors import ConfigError
from .prefetch import (
    DecoupledVectorRunahead,
    IndirectMemoryPrefetcher,
    NullPrefetcher,
    Prefetcher,
    StreamPrefetcher,
)
from .sim.memory.hierarchy import MemoryConfig
from .sim.npu.program import SparseProgram
from .sim.soc import RunResult, System
from .workloads import WORKLOAD_ORDER, build_workload

# Mechanism name -> (prefetcher factory, executor mode). The paper's six
# Fig. 5 bars, plus 'preload': Gemmini's native explicit-DMA operating
# mode (the Sec. II baseline whose over-fetch motivates Figs. 1b/7).
MECHANISMS: dict[str, tuple[Callable[[], Prefetcher], str]] = {
    "inorder": (NullPrefetcher, "inorder"),
    "ooo": (NullPrefetcher, "ooo"),
    "stream": (StreamPrefetcher, "inorder"),
    "imp": (IndirectMemoryPrefetcher, "inorder"),
    "dvr": (DecoupledVectorRunahead, "inorder"),
    "nvr": (NVRPrefetcher, "inorder"),
    "preload": (NullPrefetcher, "preload"),
}

MECHANISM_ORDER: tuple[str, ...] = (
    "inorder", "ooo", "stream", "imp", "dvr", "nvr",
)

WORKLOADS: tuple[str, ...] = WORKLOAD_ORDER

DTYPE_BYTES = {"int8": 1, "fp16": 2, "int32": 4}


def _elem_bytes(dtype: str) -> int:
    if dtype not in DTYPE_BYTES:
        raise ConfigError(
            f"unknown dtype '{dtype}' (known: {', '.join(DTYPE_BYTES)})"
        )
    return DTYPE_BYTES[dtype]


def make_system(
    program: SparseProgram,
    mechanism: str = "nvr",
    nsb: bool = False,
    memory: MemoryConfig | None = None,
    nvr_config: NVRConfig | None = None,
) -> System:
    """Wire a lowered program to a mechanism and memory hierarchy."""
    if mechanism not in MECHANISMS:
        raise ConfigError(
            f"unknown mechanism '{mechanism}' (known: {', '.join(MECHANISMS)})"
        )
    factory, mode = MECHANISMS[mechanism]
    if mechanism == "nvr" and nvr_config is not None:
        factory = lambda: NVRPrefetcher(nvr_config)  # noqa: E731
    mem = memory if memory is not None else MemoryConfig()
    if nsb and mem.nsb is None:
        mem = mem.with_nsb(True)
    return System(
        program=program, memory=mem, prefetcher_factory=factory, mode=mode
    )


def run_workload(
    workload: str,
    mechanism: str = "nvr",
    dtype: str = "fp16",
    nsb: bool = False,
    scale: float = 1.0,
    seed: int = 0,
    with_base: bool = False,
    memory: MemoryConfig | None = None,
    nvr_config: NVRConfig | None = None,
    **workload_kwargs,
) -> RunResult:
    """Build one Table II workload and run it under one mechanism.

    Args:
        workload: DS, GAT, GCN, GSABT, H2O, MK, SCN or ST.
        mechanism: inorder, ooo, stream, imp, dvr or nvr.
        dtype: int8 / fp16 / int32 (the Fig. 5 panels).
        nsb: enable the 16 KiB Non-blocking Speculative Buffer.
        scale: trace size multiplier (1.0 = evaluation default).
        with_base: also run a perfect-memory pass to fill
            ``result.base_cycles`` (the Fig. 5 base/stall split).
    """
    program = build_workload(
        workload, scale=scale, elem_bytes=_elem_bytes(dtype), seed=seed,
        **workload_kwargs,
    )
    system = make_system(program, mechanism, nsb, memory, nvr_config)
    return system.run_with_base() if with_base else system.run()


_SPEC_FIELDS = ("dtype", "nsb", "scale", "seed", "with_base")


def _specs_for(workload: str, mechanisms: tuple[str, ...], kwargs: dict):
    """Express ``run_workload`` kwargs as runner specs, or ``None``.

    Object-valued overrides (``memory=``/``nvr_config=``) and non-scalar
    workload kwargs cannot be content-addressed, so those calls fall back
    to the direct loop.
    """
    from .runner import RunSpec

    if "memory" in kwargs or "nvr_config" in kwargs:
        return None
    spec_kwargs = {k: kwargs[k] for k in _SPEC_FIELDS if k in kwargs}
    extra = {k: v for k, v in kwargs.items() if k not in spec_kwargs}
    if not all(isinstance(v, (bool, int, float, str)) for v in extra.values()):
        return None
    return [
        RunSpec(
            workload,
            mechanism=m,
            workload_args=tuple(extra.items()),
            **spec_kwargs,
        )
        for m in mechanisms
    ]


def compare_mechanisms(
    workload: str,
    mechanisms: tuple[str, ...] = MECHANISM_ORDER,
    runner=None,
    jobs: int = 1,
    cache=None,
    **kwargs,
) -> dict[str, RunResult]:
    """Run one workload under several mechanisms; returns name -> result.

    Submits the mechanism sweep as one plan through
    :class:`repro.runner.SweepRunner`, so points deduplicate, execute
    across ``jobs`` worker processes and memoise in ``cache``. Pass an
    existing ``runner`` to share its cache/pool with a larger sweep.
    Object-valued overrides (``memory=``, ``nvr_config=``) bypass the
    runner and execute serially in-process.
    """
    specs = _specs_for(workload, mechanisms, kwargs)
    if specs is None:
        return {
            m: run_workload(workload, mechanism=m, **kwargs)
            for m in mechanisms
        }
    if runner is None:
        from .runner import SweepRunner

        runner = SweepRunner(jobs=jobs, cache=cache)
    return dict(zip(mechanisms, runner.run_plan(specs)))
