"""Top-level convenience API.

Wraps workload building, mechanism selection and system construction into
two calls::

    from repro import run_workload, compare_mechanisms

    result = run_workload("gcn", mechanism="nvr")
    table = compare_mechanisms("ds", dtype="int8", nsb=True)

Every knob the experiments sweep (dtype, NSB, scale, seed, runahead
depth/width, memory geometry, issue width) is exposed as a keyword
argument, and every knob is spec-able: mechanism names resolve through
:data:`repro.registry.MECHANISMS`, and object-valued overrides
(``memory=``, ``nvr_config=``, ``executor=``) are folded into a
serialisable :class:`~repro.spec.SystemSpec`.

Both calls are thin shims over the process-wide
:class:`~repro.session.Session` (:func:`repro.session.default_session`),
so single points and sweeps alike deduplicate and memoise in the on-disk
result cache — a repeated ``run_workload`` call is a warm hit, exactly
like a sweep point. For anything beyond one-off calls (shared worker
pools, scratch caches, grids), use a :class:`~repro.session.Session`
directly; the ``runner=``/``jobs=``/``cache=``/``backend=`` keywords of
:func:`compare_mechanisms` remain for back-compat but are deprecated in
favour of passing a ``Session``.
"""

from __future__ import annotations

from .core import NVRConfig
from .registry import MECHANISM_ORDER, MECHANISMS
from .sim.memory.hierarchy import MemoryConfig
from .sim.npu.executor import ExecutorConfig
from .sim.npu.program import SparseProgram
from .sim.soc import RunResult, System
from .spec import SystemSpec
from .workloads import WORKLOAD_ORDER, build_workload
from .workloads.registry import DTYPE_BYTES, elem_bytes as _elem_bytes

WORKLOADS: tuple[str, ...] = WORKLOAD_ORDER

__all__ = [
    "DTYPE_BYTES",
    "MECHANISMS",
    "MECHANISM_ORDER",
    "WORKLOADS",
    "compare_mechanisms",
    "make_system",
    "run_workload",
]

#: Workload arguments must be scalars to be plan content (cacheable);
#: anything else falls back to the direct in-process path.
_SCALARS = (bool, int, float, str)


def make_system(
    program: SparseProgram,
    mechanism: str = "nvr",
    nsb: bool = False,
    memory: MemoryConfig | None = None,
    nvr_config: NVRConfig | None = None,
    executor: ExecutorConfig | None = None,
) -> System:
    """Wire a lowered program to a mechanism and memory hierarchy.

    Incompatible combinations raise :class:`~repro.errors.ConfigError`
    rather than being silently resolved: an ``nvr_config`` for a mechanism that
    does not use one, or ``nsb=True`` alongside a ``memory`` override
    that already configures an NSB.
    """
    spec = SystemSpec(
        mechanism=mechanism,
        nsb=nsb,
        memory=memory,
        nvr=nvr_config,
        executor=executor,
    )
    return spec.build(program)


def run_workload(
    workload: str,
    mechanism: str = "nvr",
    dtype: str = "fp16",
    nsb: bool = False,
    scale: float = 1.0,
    seed: int = 0,
    with_base: bool = False,
    memory: MemoryConfig | None = None,
    nvr_config: NVRConfig | None = None,
    executor: ExecutorConfig | None = None,
    engine: str | None = None,
    **workload_kwargs,
) -> RunResult:
    """Build one Table II workload and run it under one mechanism.

    Args:
        workload: DS, GAT, GCN, GSABT, H2O, MK, SCN or ST.
        mechanism: any registered mechanism (inorder, ooo, stream, imp,
            dvr, nvr, preload, ...).
        dtype: int8 / fp16 / int32 (the Fig. 5 panels).
        nsb: enable the 16 KiB Non-blocking Speculative Buffer.
        scale: trace size multiplier (1.0 = evaluation default).
        with_base: also run a perfect-memory pass to fill
            ``result.base_cycles`` (the Fig. 5 base/stall split).
        engine: simulation-kernel implementation ("reference" or
            "vectorized"); a speed knob only — results are bit-identical.

    Executes through :func:`~repro.session.default_session`, so the point
    is content-addressed and memoised in the on-disk result cache —
    repeating the call (examples, notebooks) is a warm hit. Non-scalar
    ``workload_kwargs`` cannot be plan content and fall back to a direct,
    uncached in-process run.
    """
    if all(isinstance(v, _SCALARS) for v in workload_kwargs.values()):
        from .runner import RunSpec
        from .session import default_session

        spec = RunSpec(
            workload,
            mechanism=mechanism,
            dtype=dtype,
            nsb=nsb,
            scale=scale,
            seed=seed,
            with_base=with_base,
            memory=memory,
            nvr=nvr_config,
            executor=executor,
            engine=engine,
            workload_args=tuple(workload_kwargs.items()),
        )
        return default_session().run(spec)
    program = build_workload(
        workload,
        scale=scale,
        elem_bytes=_elem_bytes(dtype),
        seed=seed,
        **workload_kwargs,
    )
    system = make_system(program, mechanism, nsb, memory, nvr_config, executor)
    system.engine = engine
    return system.run_with_base() if with_base else system.run()


_SPEC_FIELDS = ("dtype", "nsb", "scale", "seed", "with_base")


def compare_mechanisms(
    workload: str,
    mechanisms: tuple[str, ...] = MECHANISM_ORDER,
    runner=None,
    jobs: int = 1,
    cache=None,
    backend=None,
    memory: MemoryConfig | None = None,
    nvr_config: NVRConfig | None = None,
    executor: ExecutorConfig | None = None,
    **kwargs,
) -> dict[str, RunResult]:
    """Run one workload under several mechanisms; returns name -> result.

    Submits the mechanism sweep through a
    :class:`~repro.session.Session`, so points deduplicate, execute
    across worker processes and memoise in the on-disk cache. Pass a
    ``Session`` (or, for back-compat, a bare
    :class:`~repro.runner.SweepRunner`) as ``runner`` to share its
    cache/pool with a larger sweep; with no arguments the process-wide
    :func:`~repro.session.default_session` is used. The ``jobs``/
    ``cache``/``backend`` keywords are deprecated spellings of the same
    ``Session`` knobs and build a one-shot session when given.

    Object-valued overrides are first-class plan content: ``memory=``
    and ``executor=`` apply to every mechanism, while ``nvr_config=``
    tunes exactly the mechanisms that declare ``uses_nvr_config``
    (passing it alongside baselines is how the paper's sensitivity
    sweeps are expressed). Remaining keyword arguments are forwarded to
    the workload builder and must be scalars — they are part of each
    point's content address.
    """
    from .errors import ConfigError
    from .runner import RunSpec
    from .session import Session, coerce_session, default_session

    if nvr_config is not None and not any(
        MECHANISMS.get(m).uses_nvr_config for m in mechanisms
    ):
        raise ConfigError(
            "nvr_config was passed but none of the compared mechanisms "
            f"({', '.join(mechanisms)}) uses one — the sweep would "
            "silently ignore it"
        )
    spec_kwargs = {k: kwargs.pop(k) for k in _SPEC_FIELDS if k in kwargs}
    workload_args = tuple(kwargs.items())
    specs = [
        RunSpec(
            workload,
            mechanism=m,
            memory=memory,
            nvr=nvr_config if MECHANISMS.get(m).uses_nvr_config else None,
            executor=executor,
            workload_args=workload_args,
            **spec_kwargs,
        )
        for m in mechanisms
    ]
    if runner is not None:
        results = coerce_session(runner=runner).sweep(specs).results
    elif jobs == 1 and cache is None and backend is None:
        results = default_session().sweep(specs).results
    else:
        with Session(jobs=jobs, cache=cache, backend=backend) as session:
            results = session.sweep(specs).results
    return dict(zip(mechanisms, results))
