"""Top-level convenience API.

Wraps workload building, mechanism selection and system construction into
two calls::

    from repro import run_workload, compare_mechanisms

    result = run_workload("gcn", mechanism="nvr")
    table = compare_mechanisms("ds", dtype="int8", nsb=True)

Every knob the experiments sweep (dtype, NSB, scale, seed, runahead
depth/width, memory geometry, issue width) is exposed as a keyword
argument, and every knob is spec-able: mechanism names resolve through
:data:`repro.registry.MECHANISMS`, and object-valued overrides
(``memory=``, ``nvr_config=``, ``executor=``) are folded into a
serialisable :class:`~repro.spec.SystemSpec`, so *every*
``compare_mechanisms`` call — sensitivity sweeps included — executes
through the shared :class:`~repro.runner.SweepRunner` cache/pool. There
is no serial fallback path.
"""

from __future__ import annotations

from .core import NVRConfig
from .registry import MECHANISM_ORDER, MECHANISMS
from .sim.memory.hierarchy import MemoryConfig
from .sim.npu.executor import ExecutorConfig
from .sim.npu.program import SparseProgram
from .sim.soc import RunResult, System
from .spec import SystemSpec
from .workloads import WORKLOAD_ORDER, build_workload
from .workloads.registry import DTYPE_BYTES, elem_bytes as _elem_bytes

WORKLOADS: tuple[str, ...] = WORKLOAD_ORDER

__all__ = [
    "DTYPE_BYTES",
    "MECHANISMS",
    "MECHANISM_ORDER",
    "WORKLOADS",
    "compare_mechanisms",
    "make_system",
    "run_workload",
]


def make_system(
    program: SparseProgram,
    mechanism: str = "nvr",
    nsb: bool = False,
    memory: MemoryConfig | None = None,
    nvr_config: NVRConfig | None = None,
    executor: ExecutorConfig | None = None,
) -> System:
    """Wire a lowered program to a mechanism and memory hierarchy.

    Incompatible combinations raise :class:`~repro.errors.ConfigError`
    rather than being silently resolved: an ``nvr_config`` for a mechanism that
    does not use one, or ``nsb=True`` alongside a ``memory`` override
    that already configures an NSB.
    """
    spec = SystemSpec(
        mechanism=mechanism,
        nsb=nsb,
        memory=memory,
        nvr=nvr_config,
        executor=executor,
    )
    return spec.build(program)


def run_workload(
    workload: str,
    mechanism: str = "nvr",
    dtype: str = "fp16",
    nsb: bool = False,
    scale: float = 1.0,
    seed: int = 0,
    with_base: bool = False,
    memory: MemoryConfig | None = None,
    nvr_config: NVRConfig | None = None,
    executor: ExecutorConfig | None = None,
    **workload_kwargs,
) -> RunResult:
    """Build one Table II workload and run it under one mechanism.

    Args:
        workload: DS, GAT, GCN, GSABT, H2O, MK, SCN or ST.
        mechanism: any registered mechanism (inorder, ooo, stream, imp,
            dvr, nvr, preload, ...).
        dtype: int8 / fp16 / int32 (the Fig. 5 panels).
        nsb: enable the 16 KiB Non-blocking Speculative Buffer.
        scale: trace size multiplier (1.0 = evaluation default).
        with_base: also run a perfect-memory pass to fill
            ``result.base_cycles`` (the Fig. 5 base/stall split).

    Executes directly in-process (it is a single point, not a sweep);
    use :func:`compare_mechanisms` or a
    :class:`~repro.runner.SweepRunner` plan for anything cached or
    parallel.
    """
    program = build_workload(
        workload,
        scale=scale,
        elem_bytes=_elem_bytes(dtype),
        seed=seed,
        **workload_kwargs,
    )
    system = make_system(program, mechanism, nsb, memory, nvr_config, executor)
    return system.run_with_base() if with_base else system.run()


_SPEC_FIELDS = ("dtype", "nsb", "scale", "seed", "with_base")


def compare_mechanisms(
    workload: str,
    mechanisms: tuple[str, ...] = MECHANISM_ORDER,
    runner=None,
    jobs: int = 1,
    cache=None,
    backend=None,
    memory: MemoryConfig | None = None,
    nvr_config: NVRConfig | None = None,
    executor: ExecutorConfig | None = None,
    **kwargs,
) -> dict[str, RunResult]:
    """Run one workload under several mechanisms; returns name -> result.

    Submits the mechanism sweep as one plan through
    :class:`repro.runner.SweepRunner`, so points deduplicate, execute
    across ``jobs`` worker processes and memoise in ``cache``. Pass an
    existing ``runner`` to share its cache/pool with a larger sweep, or
    a ``backend`` (e.g. :class:`repro.runner.FileShardBackend`) to run
    missing points through share-nothing worker processes.

    Object-valued overrides are first-class plan content: ``memory=``
    and ``executor=`` apply to every mechanism, while ``nvr_config=``
    tunes exactly the mechanisms that declare ``uses_nvr_config``
    (passing it alongside baselines is how the paper's sensitivity
    sweeps are expressed). Remaining keyword arguments are forwarded to
    the workload builder and must be scalars — they are part of each
    point's content address.
    """
    from .errors import ConfigError
    from .runner import RunSpec

    if nvr_config is not None and not any(
        MECHANISMS.get(m).uses_nvr_config for m in mechanisms
    ):
        raise ConfigError(
            "nvr_config was passed but none of the compared mechanisms "
            f"({', '.join(mechanisms)}) uses one — the sweep would "
            "silently ignore it"
        )
    spec_kwargs = {k: kwargs.pop(k) for k in _SPEC_FIELDS if k in kwargs}
    workload_args = tuple(kwargs.items())
    specs = [
        RunSpec(
            workload,
            mechanism=m,
            memory=memory,
            nvr=nvr_config if MECHANISMS.get(m).uses_nvr_config else None,
            executor=executor,
            workload_args=workload_args,
            **spec_kwargs,
        )
        for m in mechanisms
    ]
    if runner is None:
        from .runner import SweepRunner

        runner = SweepRunner(jobs=jobs, cache=cache, backend=backend)
    return dict(zip(mechanisms, runner.run_plan(specs)))
