"""Top-level convenience API.

Wraps workload building, mechanism selection and system construction into
two calls::

    from repro import run_workload, compare_mechanisms

    result = run_workload("gcn", mechanism="nvr")
    table = compare_mechanisms("ds", dtype="int8", nsb=True)

Every knob the experiments sweep (dtype, NSB, scale, seed, runahead depth)
is exposed as a keyword argument.
"""

from __future__ import annotations

from typing import Callable

from .core import NVRConfig, NVRPrefetcher
from .errors import ConfigError
from .prefetch import (
    DecoupledVectorRunahead,
    IndirectMemoryPrefetcher,
    NullPrefetcher,
    Prefetcher,
    StreamPrefetcher,
)
from .sim.memory.hierarchy import MemoryConfig
from .sim.npu.program import SparseProgram
from .sim.soc import RunResult, System
from .workloads import WORKLOAD_ORDER, build_workload

# Mechanism name -> (prefetcher factory, executor mode). The paper's six
# Fig. 5 bars, plus 'preload': Gemmini's native explicit-DMA operating
# mode (the Sec. II baseline whose over-fetch motivates Figs. 1b/7).
MECHANISMS: dict[str, tuple[Callable[[], Prefetcher], str]] = {
    "inorder": (NullPrefetcher, "inorder"),
    "ooo": (NullPrefetcher, "ooo"),
    "stream": (StreamPrefetcher, "inorder"),
    "imp": (IndirectMemoryPrefetcher, "inorder"),
    "dvr": (DecoupledVectorRunahead, "inorder"),
    "nvr": (NVRPrefetcher, "inorder"),
    "preload": (NullPrefetcher, "preload"),
}

MECHANISM_ORDER: tuple[str, ...] = (
    "inorder", "ooo", "stream", "imp", "dvr", "nvr",
)

WORKLOADS: tuple[str, ...] = WORKLOAD_ORDER

DTYPE_BYTES = {"int8": 1, "fp16": 2, "int32": 4}


def _elem_bytes(dtype: str) -> int:
    if dtype not in DTYPE_BYTES:
        raise ConfigError(
            f"unknown dtype '{dtype}' (known: {', '.join(DTYPE_BYTES)})"
        )
    return DTYPE_BYTES[dtype]


def make_system(
    program: SparseProgram,
    mechanism: str = "nvr",
    nsb: bool = False,
    memory: MemoryConfig | None = None,
    nvr_config: NVRConfig | None = None,
) -> System:
    """Wire a lowered program to a mechanism and memory hierarchy."""
    if mechanism not in MECHANISMS:
        raise ConfigError(
            f"unknown mechanism '{mechanism}' (known: {', '.join(MECHANISMS)})"
        )
    factory, mode = MECHANISMS[mechanism]
    if mechanism == "nvr" and nvr_config is not None:
        factory = lambda: NVRPrefetcher(nvr_config)  # noqa: E731
    mem = memory if memory is not None else MemoryConfig()
    if nsb and mem.nsb is None:
        mem = mem.with_nsb(True)
    return System(
        program=program, memory=mem, prefetcher_factory=factory, mode=mode
    )


def run_workload(
    workload: str,
    mechanism: str = "nvr",
    dtype: str = "fp16",
    nsb: bool = False,
    scale: float = 1.0,
    seed: int = 0,
    with_base: bool = False,
    memory: MemoryConfig | None = None,
    nvr_config: NVRConfig | None = None,
    **workload_kwargs,
) -> RunResult:
    """Build one Table II workload and run it under one mechanism.

    Args:
        workload: DS, GAT, GCN, GSABT, H2O, MK, SCN or ST.
        mechanism: inorder, ooo, stream, imp, dvr or nvr.
        dtype: int8 / fp16 / int32 (the Fig. 5 panels).
        nsb: enable the 16 KiB Non-blocking Speculative Buffer.
        scale: trace size multiplier (1.0 = evaluation default).
        with_base: also run a perfect-memory pass to fill
            ``result.base_cycles`` (the Fig. 5 base/stall split).
    """
    program = build_workload(
        workload, scale=scale, elem_bytes=_elem_bytes(dtype), seed=seed,
        **workload_kwargs,
    )
    system = make_system(program, mechanism, nsb, memory, nvr_config)
    return system.run_with_base() if with_base else system.run()


def compare_mechanisms(
    workload: str,
    mechanisms: tuple[str, ...] = MECHANISM_ORDER,
    **kwargs,
) -> dict[str, RunResult]:
    """Run one workload under several mechanisms; returns name -> result."""
    return {
        m: run_workload(workload, mechanism=m, **kwargs) for m in mechanisms
    }
