"""Command-line interface.

Usage::

    python -m repro run ds --mechanism nvr --dtype fp16 --scale 0.5
    python -m repro compare gcn --nsb
    python -m repro workloads
    python -m repro overhead
    python -m repro figures --scale 0.6 -o EXPERIMENTS.md
"""

from __future__ import annotations

import argparse
import sys

from .analysis import format_table, table1_overhead, table2_workloads
from .analysis.paperfigs import main as figures_main
from .api import DTYPE_BYTES, MECHANISM_ORDER, compare_mechanisms, run_workload
from .workloads import WORKLOAD_INFO, WORKLOAD_ORDER


def _cmd_run(args: argparse.Namespace) -> int:
    result = run_workload(
        args.workload,
        mechanism=args.mechanism,
        dtype=args.dtype,
        nsb=args.nsb,
        scale=args.scale,
        seed=args.seed,
        with_base=True,
    )
    stats = result.stats
    print(f"workload   : {result.program_name}")
    print(f"mechanism  : {result.mechanism} ({result.mode})")
    print(f"cycles     : {result.total_cycles}")
    print(f"base/stall : {result.base_cycles} / {result.stall_cycles}")
    print(f"L2 misses  : {stats.l2.demand_misses}")
    print(f"accuracy   : {stats.prefetch.accuracy:.3f}")
    print(f"coverage   : {stats.coverage():.3f}")
    print(f"off-chip   : {stats.traffic.off_chip_total_bytes} bytes")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    results = compare_mechanisms(
        args.workload,
        dtype=args.dtype,
        nsb=args.nsb,
        scale=args.scale,
        seed=args.seed,
    )
    base = results["inorder"].total_cycles
    rows = [
        [
            name,
            r.total_cycles,
            round(r.total_cycles / base, 3),
            round(r.stats.prefetch.accuracy, 3),
            round(r.stats.coverage(), 3),
            r.stats.l2.demand_misses,
        ]
        for name, r in results.items()
    ]
    print(
        format_table(
            ["mechanism", "cycles", "norm", "accuracy", "coverage", "misses"],
            rows,
            title=f"{args.workload} ({args.dtype}, nsb={args.nsb})",
        )
    )
    return 0


def _cmd_workloads(args: argparse.Namespace) -> int:
    rows = [
        [r.short, r.full_name, r.domain, r.gather_elements,
         round(r.footprint_kib), round(r.reuse_factor, 1)]
        for r in table2_workloads(scale=args.scale, seed=args.seed)
    ]
    print(
        format_table(
            ["short", "workload", "domain", "gathers", "KiB", "reuse"],
            rows,
            title="Table II workloads",
        )
    )
    return 0


def _cmd_overhead(args: argparse.Namespace) -> int:
    report = table1_overhead()
    rows = [
        [name, entries, bits, paper, "yes" if ok else "no"]
        for name, entries, bits, paper, ok in report.rows()
    ]
    print(
        format_table(
            ["structure", "entries", "bits", "paper", "match"],
            rows,
            title="Table I - NVR hardware overhead",
        )
    )
    print(f"total: {report.total_bits} bits ({report.total_kib:.2f} KiB)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one workload/mechanism")
    run_p.add_argument("workload", choices=list(WORKLOAD_ORDER))
    run_p.add_argument(
        "--mechanism", default="nvr",
        choices=list(MECHANISM_ORDER) + ["preload"],
    )
    run_p.add_argument("--dtype", default="fp16", choices=list(DTYPE_BYTES))
    run_p.add_argument("--nsb", action="store_true")
    run_p.add_argument("--scale", type=float, default=0.5)
    run_p.add_argument("--seed", type=int, default=0)
    run_p.set_defaults(fn=_cmd_run)

    cmp_p = sub.add_parser("compare", help="run all mechanisms on a workload")
    cmp_p.add_argument("workload", choices=list(WORKLOAD_ORDER))
    cmp_p.add_argument("--dtype", default="fp16", choices=list(DTYPE_BYTES))
    cmp_p.add_argument("--nsb", action="store_true")
    cmp_p.add_argument("--scale", type=float, default=0.5)
    cmp_p.add_argument("--seed", type=int, default=0)
    cmp_p.set_defaults(fn=_cmd_compare)

    wl_p = sub.add_parser("workloads", help="list Table II workloads")
    wl_p.add_argument("--scale", type=float, default=0.3)
    wl_p.add_argument("--seed", type=int, default=0)
    wl_p.set_defaults(fn=_cmd_workloads)

    oh_p = sub.add_parser("overhead", help="Table I hardware overhead")
    oh_p.set_defaults(fn=_cmd_overhead)

    fig_p = sub.add_parser("figures", help="regenerate EXPERIMENTS.md")
    fig_p.add_argument("--scale", type=float, default=0.6)
    fig_p.add_argument("--seed", type=int, default=0)
    fig_p.add_argument("-o", "--output", default="EXPERIMENTS.md")
    fig_p.set_defaults(
        fn=lambda a: figures_main(
            ["--scale", str(a.scale), "--seed", str(a.seed), "-o", a.output]
        )
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
