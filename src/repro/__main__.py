"""Command-line interface.

Usage::

    python -m repro run ds --mechanism nvr --dtype fp16 --scale 0.5
    python -m repro compare gcn --nsb --jobs 4
    python -m repro sweep --workloads ds,gcn --mechanisms inorder,nvr
    python -m repro sweep --spec plan.json --backend shards --jobs 4
    python -m repro ablate nvr-depth --workloads ds,gcn --jobs 4
    python -m repro profile --workloads gcn,mk --engines reference,vectorized
    python -m repro workloads
    python -m repro overhead
    python -m repro figures --scale 0.6 --jobs 4 -o EXPERIMENTS.md
    python -m repro plan export --figures --scale 0.1 --out plan.json
    python -m repro plan shard plan.json --shards 4 --out-dir shards/
    python -m repro worker run shards/plan-shard-0-of-4.json --out r0.json
    python -m repro plan merge r0.json r1.json ...
    python -m repro queue worker --work-dir work/ &
    python -m repro sweep --backend queue --work-dir work/ --workloads ds
    python -m repro queue status --work-dir work/ [--json]
    python -m repro serve --work work/ --port 8080
    python -m repro fleet run --driver local -n 4 --scale 0.25 -o EXP.md
    python -m repro fleet up --work-dir work/ --driver ssh --hosts hosts.txt -n 8
    python -m repro fleet status --work-dir work/
    python -m repro fleet down --work-dir work/
    python -m repro cache
    python -m repro cache gc --max-mb 64 --dry-run
    python -m repro cache gc --max-mb 16 --tenant alice
    python -m repro cache clear
    python -m repro cache push --remote /mnt/shared/repro-cache
    python -m repro cache pull --remote rsync://host/module/repro-cache

Every executing subcommand (``run``, ``compare``, ``sweep``, ``ablate``,
``figures``) shares one parent parser of session flags —
``--jobs/--backend/--work-dir/--no-cache/--cache-dir`` — and builds one
:class:`~repro.session.Session` from them: ``--jobs N`` fans plans out
over N worker processes and every result (single ``run`` points
included) is memoised in the on-disk cache (``.repro-cache/`` or
``$REPRO_CACHE_DIR``; disable with ``--no-cache``), so repeated and
overlapping invocations only simulate new points. ``--backend shards``
runs the missing points as share-nothing ``repro worker`` subprocesses
over serialized shards instead — the same wire format the
``plan``/``worker`` commands expose for multi-machine sweeps: *export* a
plan, *shard* it, run each shard with ``worker run`` wherever, and
*merge* the result files back into the cache; figure runs then consume
them as ordinary warm hits. ``--backend queue`` inverts the deal:
missing points become claimable unit files under ``--work-dir`` and any
number of ``repro queue worker`` processes *pull* them, heartbeating a
lease so crashed workers' units are re-enqueued automatically; ``queue
status`` inspects a work directory and ``touch <work-dir>/stop`` drains
the workers. ``fleet`` owns the workers' *lifecycle*: ``fleet up``
submits N ``queue worker`` processes through a pluggable driver
(``local`` subprocesses, ``ssh`` fan-out over a hosts file, ``slurm``
sbatch arrays), ``fleet status``/``down`` inspect and drain them from
any process sharing the work directory, and ``fleet run`` is the
one-command path — raise a herded (restart-on-death, optionally
autoscaled) fleet, drain a figures or plan sweep through it, tear it
down. ``cache gc`` bounds the cache's size with least-recently-accessed
eviction, and ``cache push``/``pull --remote`` sync entries with a
shared directory or rsync tier so fleets on different filesystems share
warmth (pulls are salt/spec-verified, exactly like cache reads).
``serve`` turns the same machinery into a long-lived daemon: sweeps
arrive over HTTP (``POST /v1/sweeps``), dedupe point-by-point against
the cache, and only the misses hit the queue — see
:mod:`repro.server` and ``docs/server.md``. An ``X-Repro-Tenant``
header selects an isolated per-tenant cache namespace, which ``cache
gc/clear --tenant`` manage individually.

``sweep`` expands its axis flags through a declarative
:class:`~repro.session.Grid` and dumps its ``--json`` payload from the
:class:`~repro.resultset.ResultSet` record format.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

from .analysis import format_table, table1_overhead, table2_workloads
from .analysis.experiments import ABLATION_WORKLOADS, ABLATIONS
from .analysis.paperfigs import figures_plan, generate_report
from .analysis.profile import PROFILE_ENGINES, profile_grid, profile_json
from .api import DTYPE_BYTES, MECHANISM_ORDER, compare_mechanisms
from .check import cli as check_cli
from .errors import ConfigError, ReproError
from .runner import (
    FLEET_DRIVERS,
    Fleet,
    Plan,
    ResultCache,
    WorkQueue,
    merge_results,
    pull_cache,
    push_cache,
    result_to_payload,
    run_queue_worker,
    run_shard,
    trace_to_payload,
    units_per_minute,
    write_results,
)
from .runner.fleet import make_driver
from .runner.progress import Progress
from .runner.queue import (
    DEFAULT_HEARTBEAT,
    DEFAULT_LEASE_TIMEOUT,
    DEFAULT_POLL,
    LEASE_TIMEOUT_ENV,
)
from .session import (
    Grid,
    Session,
    add_session_arguments,
    resolve_cache_dir,
    session_from_args,
)
from .utils import sanitize_nonfinite
from .workloads import WORKLOAD_ORDER


def _cmd_run(args: argparse.Namespace) -> int:
    with session_from_args(args, quiet=True) as session:
        result = session.run(
            args.workload,
            mechanism=args.mechanism,
            dtype=args.dtype,
            nsb=args.nsb,
            scale=args.scale,
            seed=args.seed,
            with_base=True,
        )
    stats = result.stats
    print(f"workload   : {result.program_name}")
    print(f"mechanism  : {result.mechanism} ({result.mode})")
    print(f"cycles     : {result.total_cycles}")
    print(f"base/stall : {result.base_cycles} / {result.stall_cycles}")
    print(f"L2 misses  : {stats.l2.demand_misses}")
    print(f"accuracy   : {stats.prefetch.accuracy:.3f}")
    print(f"coverage   : {stats.coverage():.3f}")
    print(f"off-chip   : {stats.traffic.off_chip_total_bytes} bytes")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    with session_from_args(args) as session:
        results = compare_mechanisms(
            args.workload,
            runner=session,
            dtype=args.dtype,
            nsb=args.nsb,
            scale=args.scale,
            seed=args.seed,
        )
    base = results["inorder"].total_cycles
    rows = [
        [
            name,
            r.total_cycles,
            round(r.total_cycles / base, 3),
            round(r.stats.prefetch.accuracy, 3),
            round(r.stats.coverage(), 3),
            r.stats.l2.demand_misses,
        ]
        for name, r in results.items()
    ]
    print(
        format_table(
            ["mechanism", "cycles", "norm", "accuracy", "coverage", "misses"],
            rows,
            title=f"{args.workload} ({args.dtype}, nsb={args.nsb})",
        )
    )
    return 0


def _csv(text: str, known: tuple[str, ...], axis: str) -> tuple[str, ...]:
    """Parse a comma-separated axis value; ``all`` selects every option."""
    if text.strip().lower() == "all":
        return known
    values = tuple(v.strip() for v in text.split(",") if v.strip())
    for value in values:
        if value not in known:
            raise SystemExit(f"unknown {axis} '{value}' (known: {', '.join(known)})")
    return values


def _nonneg_float(text: str) -> float:
    value = float(text)
    if not (value >= 0) or value == float("inf"):  # rejects NaN too
        raise argparse.ArgumentTypeError(f"must be a finite value >= 0, got {text}")
    return value


def _numbers(text: str, parse, axis: str) -> tuple:
    try:
        return tuple(parse(v) for v in text.split(","))
    except ValueError:
        raise SystemExit(f"invalid {axis} list '{text}'") from None


def _sweep_grid(args: argparse.Namespace) -> Grid:
    """The sweep CLI's axis flags as a declarative :class:`Grid`."""
    return Grid(
        workload=_csv(args.workloads, WORKLOAD_ORDER, "workload"),
        mechanism=_csv(
            args.mechanisms,
            tuple(MECHANISM_ORDER) + ("preload",),
            "mechanism",
        ),
        dtype=_csv(args.dtypes, tuple(DTYPE_BYTES), "dtype"),
        nsb=(False, True) if args.nsb == "both" else (args.nsb == "on",),
        scale=_numbers(args.scales, float, "scale"),
        seed=_numbers(args.seeds, int, "seed"),
        engine=_csv(args.engines, PROFILE_ENGINES, "engine"),
        with_base=args.with_base,
    )


def _payload_records(specs, results) -> list[dict]:
    """Content-addressed records, re-serialised exactly as a worker would.

    ``repro sweep --spec --json`` and ``repro worker run`` outputs are
    directly comparable: payloads are a pure function of the spec, so a
    local run and a shard-merged run of the same plan dump identical
    records — the byte-for-byte check ``distributed-smoke`` performs.
    """
    return [
        {
            "key": spec.key(),
            "spec": spec.to_dict(),
            "payload": (
                trace_to_payload(result)
                if spec.kind == "trace"
                else result_to_payload(result)
            ),
        }
        for spec, result in zip(specs, results)
    ]


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.spec is not None:
        # Spec-file input: execute an exported wire-format plan as-is.
        # Plans mix kinds (sim/trace/with_base), so the per-point metrics
        # table is skipped in favour of raw payload records.
        plan = Plan.load(args.spec)
        with session_from_args(args) as session:
            rs = session.sweep(plan)
        report = session.last_report
        print(
            f"plan {args.spec}: {report.total} points, "
            f"{report.submitted} simulated, {report.cache_hits} cached"
        )
        if args.json is not None:
            records = _payload_records(rs.specs, rs.results)
            with open(args.json, "w", encoding="utf-8") as handle:
                json.dump(
                    sanitize_nonfinite(records),
                    handle,
                    indent=1,
                    sort_keys=True,
                    allow_nan=False,
                )
            print(f"wrote {args.json} ({len(records)} records)")
        return 0
    with session_from_args(args) as session:
        rs = session.sweep(_sweep_grid(args))
    rows = [
        [
            spec.workload,
            spec.mechanism,
            spec.dtype,
            "y" if spec.nsb else "n",
            spec.scale,
            spec.seed,
            result.total_cycles,
            round(result.stats.prefetch.accuracy, 3),
            round(result.stats.coverage(), 3),
            result.stats.traffic.off_chip_total_bytes,
        ]
        for spec, result in rs
    ]
    report = session.last_report
    print(
        format_table(
            [
                "workload",
                "mech",
                "dtype",
                "nsb",
                "scale",
                "seed",
                "cycles",
                "accuracy",
                "coverage",
                "off-chip B",
            ],
            rows,
            title=(
                f"sweep: {report.total} points, {report.submitted} simulated,"
                f" {report.cache_hits} cached"
            ),
        )
    )
    if args.json is not None:
        rs.to_json(args.json)
        print(f"wrote {args.json} ({len(rs)} records)")
    return 0


def _cmd_ablate(args: argparse.Namespace) -> int:
    study = ABLATIONS[args.study]
    workloads = _csv(args.workloads, WORKLOAD_ORDER, "workload")
    kwargs = dict(workloads=workloads, scale=args.scale, seed=args.seed)
    if args.values is not None:
        kwargs["values"] = _numbers(args.values, int, "values")
    with session_from_args(args) as session:
        result = study(session=session, **kwargs)
    geomeans = result.geomean_speedups()
    rows = [
        [value]
        + [result.cycles[w][i] for w in result.workloads]
        + [round(geomeans[i], 3)]
        for i, value in enumerate(result.values)
    ]
    print(
        format_table(
            [result.axis] + list(result.workloads) + ["geomean speedup"],
            rows,
            title=(
                f"ablation {result.name}: cycles per {result.axis} "
                f"(scale {args.scale:g}, seed {args.seed})"
            ),
        )
    )
    print(
        f"# best {result.axis}: {result.best_value()} "
        f"(geomean speedup {max(geomeans):.3f} over "
        f"{result.axis}={result.values[0]})"
    )
    if args.json is not None:
        record = {
            "name": result.name,
            "axis": result.axis,
            "values": result.values,
            "workloads": result.workloads,
            "cycles": result.cycles,
            "geomean_speedups": geomeans,
            "scale": args.scale,
            "seed": args.seed,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(
                sanitize_nonfinite(record),
                handle,
                indent=2,
                sort_keys=True,
                allow_nan=False,
            )
        print(f"# wrote {args.json}")
    return 0


def _cmd_plan_export(args: argparse.Namespace) -> int:
    if args.figures:
        plan = figures_plan(scale=args.scale, seed=args.seed)
    else:
        plan = _sweep_grid(args).plan(source="sweep")
    path = plan.save(args.out)
    print(f"wrote {path}: {len(plan)} points " f"({len(plan.unique_specs())} unique)")
    return 0


def _cmd_plan_shard(args: argparse.Namespace) -> int:
    plan = Plan.load(args.plan)
    shards = plan.shard(args.shards)
    out_dir = Path(args.out_dir) if args.out_dir else Path(args.plan).parent
    out_dir.mkdir(parents=True, exist_ok=True)
    stem = Path(args.plan).stem
    for shard in shards:
        index = shard.meta["shard"]["index"]
        path = shard.save(out_dir / f"{stem}-shard-{index}-of-{args.shards}.json")
        print(f"{path}: {len(shard)} points")
    return 0


def _cmd_plan_merge(args: argparse.Namespace) -> int:
    cache = ResultCache(resolve_cache_dir(getattr(args, "cache_dir", None)))
    report = merge_results(args.results, cache)
    print(
        f"merged {report.records} results from {report.files} file(s) "
        f"into {cache.root} ({report.merged} new, "
        f"{report.refreshed} refreshed)"
    )
    return 0


def _cmd_worker_run(args: argparse.Namespace) -> int:
    plan = Plan.load(args.shard)
    records = run_shard(plan, jobs=args.jobs, progress=Progress())
    path = write_results(args.out, records)
    print(f"wrote {path} ({len(records)} results)")
    return 0


def _cmd_queue_worker(args: argparse.Namespace) -> int:
    def log(text: str) -> None:
        print(text, file=sys.stderr, flush=True)

    done = run_queue_worker(
        args.work_dir,
        worker_id=args.worker_id,
        idle_timeout=args.idle_timeout,
        max_units=args.max_units,
        poll=args.poll,
        heartbeat=args.heartbeat,
        log=log,
    )
    print(f"executed {done} unit(s) from {args.work_dir}")
    return 0


def _cmd_queue_status(args: argparse.Namespace) -> int:
    queue = WorkQueue(args.work_dir)
    deep = not args.shallow
    status = queue.status(args.lease_timeout, deep=deep)
    if args.json:
        # The machine contract: the same document 'repro serve' embeds
        # under "queue" in GET /v1/stats.
        document = {"work_dir": str(queue.root), **status.to_dict()}
        print(json.dumps(document, indent=2, sort_keys=True, allow_nan=False))
        return 0
    print(f"work dir  : {queue.root}")
    queued = f"{status.queued}"
    if deep:
        queued += f" ({status.queued_points} point(s))"
    print(f"queued    : {queued}")
    print(
        f"claimed   : {status.claimed} "
        f"({status.expired} lease-expired, recoverable)"
    )
    print(f"results   : {status.results}")
    print(f"failed    : {status.failed}")
    print(f"stopping  : {'yes' if status.stopping else 'no'}")
    if status.corrupt:
        print(
            f"# quarantined {status.corrupt} corrupt unit(s) into failed/ "
            "(interrupted or foreign enqueue)"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    # Imported lazily: the server package is only needed by this one
    # subcommand, and every other CLI path should not pay for it.
    from .server import SweepEngine, SweepServer

    engine = SweepEngine(
        args.work_dir,
        cache_dir=getattr(args, "cache_dir", None),
        lease_timeout=args.lease_timeout,
        engine=args.engine,
    )

    async def _serve() -> None:
        server = SweepServer(engine, host=args.host, port=args.port)
        await server.start()
        # Flushed immediately so scripts (and CI) can scrape the bound
        # port even when --port 0 asked the OS to pick one.
        print(f"serving on http://{server.host}:{server.port}", flush=True)
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await server.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    return 0


def _driver_options(args: argparse.Namespace) -> dict:
    """Driver-specific CLI flags as :func:`make_driver` keyword options.

    Each flag is validated against the chosen driver here, so ``--hosts``
    with ``--driver local`` is a one-line ConfigError instead of an
    unexpected-keyword traceback out of the driver constructor.
    """
    options: dict = {}
    wants = {
        "hosts_file": (getattr(args, "hosts", None), ("ssh",)),
        "sbatch_template": (getattr(args, "sbatch_template", None), ("slurm",)),
        "remote_cmd": (getattr(args, "remote_cmd", None), ("ssh", "slurm")),
    }
    for option, (value, drivers) in wants.items():
        if value is None:
            continue
        if args.driver not in drivers:
            flag = "--" + option.replace("_", "-").replace("-file", "")
            raise ConfigError(
                f"{flag} only applies to --driver "
                f"{'/'.join(drivers)}, not '{args.driver}'"
            )
        options[option] = value
    if getattr(args, "worker_arg", None):
        options["worker_args"] = list(args.worker_arg)
    return options


def _cmd_fleet_up(args: argparse.Namespace) -> int:
    driver = make_driver(args.driver, args.work_dir, **_driver_options(args))
    fleet = Fleet(args.work_dir, driver)
    handles = fleet.up(args.size)
    for handle in handles:
        print(f"started {handle.id}")
    print(
        f"fleet up: {len(handles)} {args.driver} worker(s) on "
        f"{fleet.queue.root} (state: {fleet.state_path})"
    )
    return 0


def _cmd_fleet_status(args: argparse.Namespace) -> int:
    fleet = Fleet.attach(args.work_dir)
    status = fleet.status()
    queue_status = fleet.queue.status(deep=True)
    print(f"work dir  : {fleet.queue.root}")
    print(f"driver    : {fleet.driver.name}")
    print(f"workers   : {status.running}/{len(status.workers)} running")
    for wid, state in sorted(status.workers.items()):
        print(f"  {wid}: {state}")
    print(
        f"queued    : {queue_status.queued} "
        f"({queue_status.queued_points} point(s))"
    )
    print(
        f"claimed   : {queue_status.claimed} "
        f"({queue_status.expired} lease-expired, recoverable)"
    )
    print(f"results   : {queue_status.results}")
    print(f"failed    : {queue_status.failed}")
    print(f"stopping  : {'yes' if queue_status.stopping else 'no'}")
    stats = fleet.queue.worker_stats()
    if stats:
        print("throughput:")
        for entry in stats:
            rate = units_per_minute(entry)
            print(
                f"  {entry.get('worker')}: {entry.get('units', 0)} unit(s), "
                f"{entry.get('points', 0)} point(s), "
                f"{entry.get('failures', 0)} failure(s), "
                f"{rate:.1f} units/min"
            )
    return 0


def _cmd_fleet_down(args: argparse.Namespace) -> int:
    fleet = Fleet.attach(args.work_dir)
    count = len(fleet.workers)
    fleet.down(drain_timeout=args.drain_timeout)
    print(f"fleet down: drained {count} worker(s) on {fleet.queue.root}")
    return 0


def _cmd_fleet_run(args: argparse.Namespace) -> int:
    if (args.min is None) != (args.max is None):
        raise ConfigError("autoscaling needs both --min and --max")
    scratch = None
    work_dir = args.work_dir
    if work_dir is None:
        scratch = tempfile.TemporaryDirectory(prefix="repro-fleet-")
        work_dir = scratch.name
    driver_options = _driver_options(args)
    if args.driver == "local":
        # Local fleets are the CI/laptop path: poll fast enough that
        # worker pickup latency never dominates a small plan.
        driver_options.setdefault("worker_args", ["--poll", "0.05"])

    def log(text: str) -> None:
        print(f"# {text}", file=sys.stderr, flush=True)

    try:
        session = Session.fleet(
            work_dir,
            driver=args.driver,
            size=args.size,
            min_workers=args.min,
            max_workers=args.max,
            driver_options=driver_options,
            timeout=args.timeout,
            batch=getattr(args, "queue_batch", None),
            cache=False if getattr(args, "no_cache", False) else None,
            cache_dir=getattr(args, "cache_dir", None),
            progress=True,
            engine=getattr(args, "engine", None),
        )
        with session:
            fleet = session._fleet
            fleet.log = log
            if args.test_kill_worker:
                fleet.arm_chaos()
            if args.spec is not None:
                plan = Plan.load(args.spec)
                rs = session.sweep(plan)
                report = session.last_report
                print(
                    f"plan {args.spec}: {report.total} points, "
                    f"{report.submitted} simulated, {report.cache_hits} cached"
                )
                if args.json is not None:
                    records = _payload_records(rs.specs, rs.results)
                    with open(args.json, "w", encoding="utf-8") as handle:
                        json.dump(
                            sanitize_nonfinite(records),
                            handle,
                            indent=1,
                            sort_keys=True,
                            allow_nan=False,
                        )
                    print(f"wrote {args.json} ({len(records)} records)")
            else:
                text = generate_report(
                    scale=args.scale, seed=args.seed, session=session
                )
                with open(args.output, "w") as handle:
                    handle.write(text)
                print(f"wrote {args.output} ({len(text)} chars)")
            if args.test_kill_worker and fleet.restarts < 1:
                raise ConfigError(
                    "--test-kill-worker: the chaos hook never fired (the "
                    "plan drained before any unit was observed claimed) — "
                    "use a larger plan or more workers"
                )
    finally:
        if scratch is not None:
            scratch.cleanup()
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    records = profile_grid(
        _csv(args.workloads, WORKLOAD_ORDER, "workload"),
        _csv(
            args.mechanisms,
            tuple(MECHANISM_ORDER) + ("preload",),
            "mechanism",
        ),
        engines=_csv(args.engines, PROFILE_ENGINES, "engine"),
        nsb=args.nsb,
        dtype=args.dtype,
        scale=args.scale,
        seed=args.seed,
        repeat=args.repeat,
    )
    rows = [
        [
            r.workload,
            r.mechanism,
            r.engine,
            round(r.build_s, 3),
            round(r.simulate_s, 3),
            r.total_cycles,
            round(r.kcycles_per_s, 1),
        ]
        for r in records
    ]
    print(
        format_table(
            ["workload", "mech", "engine", "build_s", "sim_s", "cycles", "kcyc/s"],
            rows,
            title=(
                f"profile (scale={args.scale}, min of {args.repeat} "
                f"repeat{'s' if args.repeat != 1 else ''})"
            ),
        )
    )
    # Per-level memory breakdown: where demand lines were served (NSB /
    # L2 / DRAM fill) and prefetch effectiveness. Identical points must
    # agree on every one of these counters regardless of engine — a
    # visible equivalence spot-check next to the timing comparison.
    mem_rows = [
        [
            r.workload,
            r.mechanism,
            r.engine,
            r.nsb_hits,
            r.l2_hits,
            r.dram_fills,
            r.pf_useful,
            r.pf_late,
        ]
        for r in records
    ]
    print()
    print(
        format_table(
            [
                "workload",
                "mech",
                "engine",
                "nsb_hits",
                "l2_hits",
                "dram_fills",
                "pf_useful",
                "pf_late",
            ],
            mem_rows,
            title="memory breakdown (engine-invariant counters)",
        )
    )
    if args.json is not None:
        Path(args.json).write_text(profile_json(records) + "\n", encoding="utf-8")
        print(f"wrote {args.json} ({len(records)} records)")
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    with session_from_args(args) as session:
        text = generate_report(scale=args.scale, seed=args.seed, session=session)
    with open(args.output, "w") as handle:
        handle.write(text)
    print(f"wrote {args.output} ({len(text)} chars)")
    return 0


def _print_cache_stats(cache: ResultCache) -> None:
    entries = cache.entries()
    size = cache.size_bytes()
    print(f"cache dir : {cache.root}")
    print(f"entries   : {len(entries)}")
    print(f"size      : {size / 1024:.1f} KiB")
    if cache.tenant is None:
        tenants = cache.tenants()
        if tenants:
            print(f"tenants   : {', '.join(tenants)} (scope with --tenant)")


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = ResultCache(
        resolve_cache_dir(getattr(args, "cache_dir", None)),
        tenant=getattr(args, "tenant", None),
    )
    action = getattr(args, "cache_cmd", None)
    if action is None:
        action = "clear" if args.clear else "stats"
    if action == "clear":
        removed = cache.clear()
        print(f"cleared {removed} entries from {cache.root}")
        return 0
    if action in ("push", "pull"):
        sync = push_cache if action == "push" else pull_cache
        report = sync(cache, args.remote)
        print(report.summary(action))
        return 0
    if action == "gc":
        report = cache.gc(int(args.max_mb * 1024 * 1024), dry_run=args.dry_run)
        verb = "would evict" if report.dry_run else "evicted"
        print(
            f"{verb} {report.removed}/{report.examined} entries "
            f"({report.freed_bytes / 1024:.1f} KiB) from {cache.root}"
        )
        print(
            f"kept      : {report.kept} entries "
            f"({report.kept_bytes / 1024:.1f} KiB <= {args.max_mb:g} MB)"
        )
        return 0
    _print_cache_stats(cache)
    return 0


def _cmd_workloads(args: argparse.Namespace) -> int:
    rows = [
        [
            r.short,
            r.full_name,
            r.domain,
            r.gather_elements,
            round(r.footprint_kib),
            round(r.reuse_factor, 1),
        ]
        for r in table2_workloads(scale=args.scale, seed=args.seed)
    ]
    print(
        format_table(
            ["short", "workload", "domain", "gathers", "KiB", "reuse"],
            rows,
            title="Table II workloads",
        )
    )
    return 0


def _cmd_overhead(args: argparse.Namespace) -> int:
    report = table1_overhead()
    rows = [
        [name, entries, bits, paper, "yes" if ok else "no"]
        for name, entries, bits, paper, ok in report.rows()
    ]
    print(
        format_table(
            ["structure", "entries", "bits", "paper", "match"],
            rows,
            title="Table I - NVR hardware overhead",
        )
    )
    print(f"total: {report.total_bits} bits ({report.total_kib:.2f} KiB)")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    return check_cli.run(args)


def _add_sweep_axis_arguments(parser: argparse.ArgumentParser) -> None:
    """The sweep-plan expansion axes (shared by ``sweep``/``plan export``)."""
    parser.add_argument(
        "--workloads",
        default="all",
        help="comma-separated workloads, or 'all'",
    )
    parser.add_argument(
        "--mechanisms",
        default=",".join(MECHANISM_ORDER),
        help="comma-separated mechanisms, or 'all'",
    )
    parser.add_argument(
        "--dtypes", default="fp16", help="comma-separated dtypes, or 'all'"
    )
    parser.add_argument(
        "--nsb",
        choices=("off", "on", "both"),
        default="off",
        help="sweep the NSB axis (default off)",
    )
    parser.add_argument("--scales", default="0.5", help="comma-separated trace scales")
    parser.add_argument("--seeds", default="0", help="comma-separated RNG seeds")
    parser.add_argument(
        "--engines",
        default="reference",
        help="comma-separated simulation kernels "
        "(reference,vectorized,batched); a speed knob — results are "
        "bit-identical",
    )
    parser.add_argument(
        "--with-base",
        action="store_true",
        help="also run perfect-memory passes (base/stall split)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    # One parent parser owns the session flags for every executing
    # subcommand; `session_from_args` fills the real defaults, so the
    # flags may be repeated at any nesting level without clobbering
    # (see repro.session.add_session_arguments).
    session_parent = argparse.ArgumentParser(add_help=False)
    add_session_arguments(session_parent)
    cache_parent = argparse.ArgumentParser(add_help=False)
    cache_parent.add_argument(
        "--cache-dir",
        default=argparse.SUPPRESS,
        help="cache directory (default $REPRO_CACHE_DIR or .repro-cache)",
    )

    run_p = sub.add_parser(
        "run", parents=[session_parent], help="run one workload/mechanism"
    )
    run_p.add_argument("workload", choices=list(WORKLOAD_ORDER))
    run_p.add_argument(
        "--mechanism",
        default="nvr",
        choices=list(MECHANISM_ORDER) + ["preload"],
    )
    run_p.add_argument("--dtype", default="fp16", choices=list(DTYPE_BYTES))
    run_p.add_argument("--nsb", action="store_true")
    run_p.add_argument("--scale", type=float, default=0.5)
    run_p.add_argument("--seed", type=int, default=0)
    run_p.set_defaults(fn=_cmd_run)

    cmp_p = sub.add_parser(
        "compare",
        parents=[session_parent],
        help="run all mechanisms on a workload",
    )
    cmp_p.add_argument("workload", choices=list(WORKLOAD_ORDER))
    cmp_p.add_argument("--dtype", default="fp16", choices=list(DTYPE_BYTES))
    cmp_p.add_argument("--nsb", action="store_true")
    cmp_p.add_argument("--scale", type=float, default=0.5)
    cmp_p.add_argument("--seed", type=int, default=0)
    cmp_p.set_defaults(fn=_cmd_compare)

    sweep_p = sub.add_parser(
        "sweep",
        parents=[session_parent],
        help="run an explicit (workload x mechanism x ...) plan",
    )
    _add_sweep_axis_arguments(sweep_p)
    sweep_p.add_argument(
        "--spec",
        default=None,
        metavar="PLAN",
        help="execute an exported plan file instead of the axis flags "
        "(prints a summary; use --json for the result records)",
    )
    sweep_p.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also dump one JSON record per point",
    )
    sweep_p.set_defaults(fn=_cmd_sweep)

    abl_p = sub.add_parser(
        "ablate",
        parents=[session_parent],
        help="NVR/NSB sensitivity sweeps through the runner",
    )
    abl_p.add_argument("study", choices=sorted(ABLATIONS))
    abl_p.add_argument(
        "--values",
        default=None,
        help="comma-separated axis values (default: the study's sweep)",
    )
    abl_p.add_argument(
        "--workloads",
        default=",".join(ABLATION_WORKLOADS),
        help="comma-separated workloads, or 'all'",
    )
    abl_p.add_argument("--scale", type=float, default=0.4)
    abl_p.add_argument("--seed", type=int, default=0)
    abl_p.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also dump the full ablation record as JSON",
    )
    abl_p.set_defaults(fn=_cmd_ablate)

    plan_p = sub.add_parser(
        "plan",
        help="export, shard and merge wire-format sweep plans "
        "(the multi-machine workflow)",
    )
    plan_sub = plan_p.add_subparsers(dest="plan_cmd", required=True)
    exp_p = plan_sub.add_parser(
        "export", help="compile a plan to a JSON file workers can execute"
    )
    exp_p.add_argument(
        "--out",
        "-o",
        default="plan.json",
        help="plan file to write (default plan.json)",
    )
    exp_p.add_argument(
        "--figures",
        action="store_true",
        help="export the full paper-figures plan (everything a "
        "'repro figures' run would simulate; ignores the axis flags)",
    )
    exp_p.add_argument(
        "--scale",
        type=float,
        default=0.6,
        help="figure scale for --figures (default 0.6)",
    )
    exp_p.add_argument(
        "--seed",
        type=int,
        default=0,
        help="RNG seed for --figures (default 0)",
    )
    _add_sweep_axis_arguments(exp_p)
    exp_p.set_defaults(fn=_cmd_plan_export)
    shard_p = plan_sub.add_parser(
        "shard", help="partition a plan into deterministic shard files"
    )
    shard_p.add_argument("plan", help="plan file from 'plan export'")
    shard_p.add_argument(
        "--shards",
        type=int,
        required=True,
        help="how many shard files to write",
    )
    shard_p.add_argument(
        "--out-dir",
        default=None,
        help="directory for the shard files (default: next to the plan)",
    )
    shard_p.set_defaults(fn=_cmd_plan_shard)
    merge_p = plan_sub.add_parser(
        "merge",
        parents=[cache_parent],
        help="fold 'worker run' result files into the result cache",
    )
    merge_p.add_argument("results", nargs="+", help="result files from 'worker run'")
    merge_p.set_defaults(fn=_cmd_plan_merge)

    worker_p = sub.add_parser(
        "worker",
        help="execute plan shards (the distributed worker side)",
    )
    worker_sub = worker_p.add_subparsers(dest="worker_cmd", required=True)
    wrun_p = worker_sub.add_parser(
        "run", help="execute one shard file and write its result file"
    )
    wrun_p.add_argument("shard", help="shard (or whole plan) file")
    wrun_p.add_argument("--out", required=True, help="result file to write")
    wrun_p.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="local worker processes for this shard (default 1)",
    )
    wrun_p.set_defaults(fn=_cmd_worker_run)

    queue_p = sub.add_parser(
        "queue",
        help="pull-based work queue: workers claim units from a shared "
        "--work-dir (pairs with 'sweep --backend queue')",
    )
    queue_sub = queue_p.add_subparsers(dest="queue_cmd", required=True)
    qworker_p = queue_sub.add_parser(
        "worker",
        help="claim and execute queue units until stopped or idle",
    )
    qworker_p.add_argument(
        "--work-dir",
        required=True,
        metavar="DIR",
        help="the shared work directory to pull units from",
    )
    qworker_p.add_argument(
        "--worker-id",
        default=None,
        help="lease identity (default host:pid)",
    )
    qworker_p.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        metavar="SEC",
        help="exit after this long with an empty queue "
        "(default: wait for work forever)",
    )
    qworker_p.add_argument(
        "--max-units",
        type=int,
        default=None,
        metavar="N",
        help="exit after executing N units",
    )
    qworker_p.add_argument(
        "--poll",
        type=float,
        default=DEFAULT_POLL,
        metavar="SEC",
        help=f"queue re-scan interval when idle (default {DEFAULT_POLL:g})",
    )
    qworker_p.add_argument(
        "--heartbeat",
        type=float,
        default=DEFAULT_HEARTBEAT,
        metavar="SEC",
        help="lease touch interval while executing "
        f"(default {DEFAULT_HEARTBEAT:g}; keep well under the "
        "orchestrator's lease timeout)",
    )
    qworker_p.set_defaults(fn=_cmd_queue_worker)
    qstatus_p = queue_sub.add_parser(
        "status", help="one scan of a work directory's queue state"
    )
    qstatus_p.add_argument(
        "--work-dir",
        required=True,
        metavar="DIR",
        help="the shared work directory to inspect",
    )
    qstatus_p.add_argument(
        "--lease-timeout",
        type=float,
        default=None,
        metavar="SEC",
        help="age that counts a claimed unit's lease as expired "
        f"(default ${LEASE_TIMEOUT_ENV} or {DEFAULT_LEASE_TIMEOUT:g})",
    )
    qstatus_p.add_argument(
        "--shallow",
        action="store_true",
        help="only count files; skip reading queued units (the deep "
        "default also counts points per unit and quarantines corrupt "
        "unit files into failed/)",
    )
    qstatus_p.add_argument(
        "--json",
        action="store_true",
        help="emit the scan as a JSON document (the same shape 'repro "
        "serve' reports under \"queue\" in /v1/stats)",
    )
    qstatus_p.set_defaults(fn=_cmd_queue_status)

    serve_p = sub.add_parser(
        "serve",
        parents=[cache_parent],
        help="sweep-as-a-service daemon: accept sweep submissions over "
        "HTTP, dedupe against the cache, enqueue misses on the work "
        "queue (drain with 'queue worker' or 'fleet up')",
    )
    serve_p.add_argument(
        "--work",
        "--work-dir",
        dest="work_dir",
        required=True,
        metavar="DIR",
        help="the shared work directory (queue units + sweep ledger)",
    )
    serve_p.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address (default 127.0.0.1)",
    )
    serve_p.add_argument(
        "--port",
        type=int,
        default=8080,
        metavar="N",
        help="bind port (default 8080; 0 = OS-assigned, printed on start)",
    )
    serve_p.add_argument(
        "--lease-timeout",
        type=float,
        default=None,
        metavar="SEC",
        help="age that counts a claimed unit's lease as expired "
        f"(default ${LEASE_TIMEOUT_ENV} or {DEFAULT_LEASE_TIMEOUT:g})",
    )
    serve_p.add_argument(
        "--engine",
        default=None,
        metavar="KERNEL",
        help="default simulation kernel for submitted points "
        "('vectorized'/'batched'); a speed knob — results are "
        "bit-identical, but it changes cache keys",
    )
    serve_p.set_defaults(fn=_cmd_serve)

    fleet_p = sub.add_parser(
        "fleet",
        help="raise, herd and drain 'repro queue worker' fleets through "
        "pluggable drivers (local subprocesses, ssh, slurm)",
    )
    fleet_sub = fleet_p.add_subparsers(dest="fleet_cmd", required=True)

    def _add_driver_arguments(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--driver",
            choices=FLEET_DRIVERS.names(),
            default="local",
            help="how workers are acquired (default local)",
        )
        p.add_argument(
            "-n",
            "--size",
            type=int,
            default=2,
            metavar="N",
            help="workers to start (default 2)",
        )
        p.add_argument(
            "--hosts",
            default=None,
            metavar="FILE",
            help="--driver ssh: host list, one 'host [slots]' per line "
            "('#' comments)",
        )
        p.add_argument(
            "--sbatch-template",
            default=None,
            metavar="FILE",
            help="--driver slurm: sbatch script template ($job_name, "
            "$array_spec, $log_dir, $worker_cmd placeholders; "
            "default: a minimal built-in array script)",
        )
        p.add_argument(
            "--remote-cmd",
            default=None,
            metavar="CMD",
            help="--driver ssh/slurm: the remote 'repro' invocation "
            "(default 'repro'; use e.g. 'source venv/bin/activate && "
            "repro' when the remote needs activation)",
        )
        p.add_argument(
            "--worker-arg",
            action="append",
            default=None,
            metavar="ARG",
            help="extra 'repro queue worker' argument (repeatable, e.g. "
            "--worker-arg=--heartbeat --worker-arg=0.5)",
        )

    fup_p = fleet_sub.add_parser(
        "up", help="submit N workers against a work directory"
    )
    fup_p.add_argument(
        "--work-dir",
        required=True,
        metavar="DIR",
        help="the shared work directory the workers pull from",
    )
    _add_driver_arguments(fup_p)
    fup_p.set_defaults(fn=_cmd_fleet_up)

    fstatus_p = fleet_sub.add_parser(
        "status",
        help="poll a raised fleet's workers and its queue (from any "
        "process sharing the work dir)",
    )
    fstatus_p.add_argument("--work-dir", required=True, metavar="DIR")
    fstatus_p.set_defaults(fn=_cmd_fleet_status)

    fdown_p = fleet_sub.add_parser(
        "down", help="drain a raised fleet (stop sentinel, then stop hard)"
    )
    fdown_p.add_argument("--work-dir", required=True, metavar="DIR")
    fdown_p.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        metavar="SEC",
        help="seconds to wait for workers to finish their current unit "
        "before stopping them (default 10)",
    )
    fdown_p.set_defaults(fn=_cmd_fleet_down)

    frun_p = fleet_sub.add_parser(
        "run",
        parents=[cache_parent],
        help="one-command fleet lifecycle: up, drain a figures/plan "
        "sweep through the herded fleet, down",
    )
    frun_p.add_argument(
        "--work-dir",
        default=None,
        metavar="DIR",
        help="work directory for the fleet (default: a temporary one)",
    )
    _add_driver_arguments(frun_p)
    frun_p.add_argument(
        "--min",
        type=int,
        default=None,
        metavar="N",
        help="autoscale floor (with --max): the herder retargets the "
        "fleet between the bounds against queue depth",
    )
    frun_p.add_argument(
        "--max",
        type=int,
        default=None,
        metavar="N",
        help="autoscale ceiling (with --min)",
    )
    frun_p.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SEC",
        help="overall seconds to wait per plan (default: forever)",
    )
    frun_p.add_argument(
        "--queue-batch",
        type=int,
        default=None,
        metavar="N",
        help="points per claimable unit (default 1)",
    )
    frun_p.add_argument("--no-cache", action="store_true", help=argparse.SUPPRESS)
    frun_p.add_argument(
        "--engine",
        default=None,
        metavar="KERNEL",
        help="default simulation kernel ('vectorized'/'batched')",
    )
    frun_p.add_argument(
        "--scale", type=float, default=0.6, help="figures scale (default 0.6)"
    )
    frun_p.add_argument("--seed", type=int, default=0)
    frun_p.add_argument(
        "-o",
        "--output",
        default="EXPERIMENTS.md",
        help="figures report path (default EXPERIMENTS.md)",
    )
    frun_p.add_argument(
        "--spec",
        default=None,
        metavar="PLAN",
        help="drain an exported plan file instead of the figures report",
    )
    frun_p.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="with --spec: dump one JSON record per point",
    )
    frun_p.add_argument(
        "--test-kill-worker",
        action="store_true",
        help="restart test hook: SIGKILL one worker once real work is "
        "observed in flight and require the herder to replace it "
        "(local driver only; exercised by CI)",
    )
    frun_p.set_defaults(fn=_cmd_fleet_run)

    tenant_parent = argparse.ArgumentParser(add_help=False)
    tenant_parent.add_argument(
        "--tenant",
        default=argparse.SUPPRESS,
        metavar="NAME",
        help="scope to one server tenant's cache namespace "
        "(default: the shared default namespace)",
    )

    cache_p = sub.add_parser(
        "cache",
        parents=[cache_parent, tenant_parent],
        help="inspect, garbage-collect or clear the result cache",
    )
    cache_p.add_argument("--clear", action="store_true", help="same as 'cache clear'")
    cache_sub = cache_p.add_subparsers(dest="cache_cmd")
    gc_p = cache_sub.add_parser(
        "gc",
        parents=[cache_parent, tenant_parent],
        help="evict least-recently-accessed entries over a size bound "
        "(per-tenant with --tenant)",
    )
    gc_p.add_argument(
        "--max-mb",
        type=_nonneg_float,
        required=True,
        help="shrink the cache to at most this many megabytes",
    )
    gc_p.add_argument(
        "--dry-run",
        action="store_true",
        help="report what would be evicted without deleting anything",
    )
    cache_sub.add_parser(
        "clear",
        parents=[cache_parent, tenant_parent],
        help="delete every entry (per-tenant with --tenant)",
    )
    push_p = cache_sub.add_parser(
        "push",
        parents=[cache_parent],
        help="copy local entries a remote cache tier is missing",
    )
    push_p.add_argument(
        "--remote",
        required=True,
        metavar="DEST",
        help="remote tier: a directory, rsync://host/module/path, or "
        "host:path (goes through rsync)",
    )
    pull_p = cache_sub.add_parser(
        "pull",
        parents=[cache_parent],
        help="merge a remote tier's entries into the local cache "
        "(salt/spec-verified — foreign-version entries are rejected)",
    )
    pull_p.add_argument(
        "--remote",
        required=True,
        metavar="SRC",
        help="remote tier: a directory, rsync://host/module/path, or "
        "host:path (goes through rsync)",
    )
    cache_p.set_defaults(fn=_cmd_cache)

    wl_p = sub.add_parser("workloads", help="list Table II workloads")
    wl_p.add_argument("--scale", type=float, default=0.3)
    wl_p.add_argument("--seed", type=int, default=0)
    wl_p.set_defaults(fn=_cmd_workloads)

    oh_p = sub.add_parser("overhead", help="Table I hardware overhead")
    oh_p.set_defaults(fn=_cmd_overhead)

    prof_p = sub.add_parser(
        "profile",
        help="time the build/simulate phases per point (uncached, in-process)",
    )
    prof_p.add_argument(
        "--workloads", default="gcn,mk", help="comma-separated workloads, or 'all'"
    )
    prof_p.add_argument(
        "--mechanisms", default="nvr", help="comma-separated mechanisms, or 'all'"
    )
    prof_p.add_argument(
        "--engines",
        default=",".join(PROFILE_ENGINES),
        help="comma-separated simulation kernels to compare "
        f"(default {','.join(PROFILE_ENGINES)})",
    )
    prof_p.add_argument("--nsb", action="store_true")
    prof_p.add_argument("--dtype", default="fp16", choices=list(DTYPE_BYTES))
    prof_p.add_argument("--scale", type=float, default=0.1)
    prof_p.add_argument("--seed", type=int, default=0)
    prof_p.add_argument(
        "--repeat",
        type=int,
        default=3,
        help="time each phase N times and report the minimum (default 3)",
    )
    prof_p.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also dump the profile records as JSON",
    )
    prof_p.set_defaults(fn=_cmd_profile)

    fig_p = sub.add_parser(
        "figures", parents=[session_parent], help="regenerate EXPERIMENTS.md"
    )
    fig_p.add_argument("--scale", type=float, default=0.6)
    fig_p.add_argument("--seed", type=int, default=0)
    fig_p.add_argument("-o", "--output", default="EXPERIMENTS.md")
    fig_p.set_defaults(fn=_cmd_figures)

    check_p = sub.add_parser(
        "check",
        help="static analysis: machine-check the repo's correctness "
        "contracts (rule catalog in docs/static-analysis.md)",
    )
    check_cli.add_arguments(check_p)
    check_p.set_defaults(fn=_cmd_check)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        # Config mistakes (a corrupt plan/shard file, an inconsistent
        # override) are user input errors: report them as one clean line,
        # not a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
