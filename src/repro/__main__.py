"""Command-line interface.

Usage::

    python -m repro run ds --mechanism nvr --dtype fp16 --scale 0.5
    python -m repro compare gcn --nsb --jobs 4
    python -m repro sweep --workloads ds,gcn --mechanisms inorder,nvr
    python -m repro workloads
    python -m repro overhead
    python -m repro figures --scale 0.6 --jobs 4 -o EXPERIMENTS.md
    python -m repro cache --clear

``compare``, ``sweep`` and ``figures`` execute through the sweep runner:
``--jobs N`` fans the plan out over N worker processes and every result
is memoised in the on-disk cache (``.repro-cache/`` by default; disable
with ``--no-cache``), so repeated and overlapping sweeps only simulate
new points.
"""

from __future__ import annotations

import argparse
import json
import sys

from .analysis import format_table, table1_overhead, table2_workloads
from .analysis.paperfigs import (
    add_runner_arguments,
    main as figures_main,
    runner_from_args,
)
from .api import DTYPE_BYTES, MECHANISM_ORDER, compare_mechanisms, run_workload
from .runner import DEFAULT_CACHE_DIR, ResultCache, expand
from .workloads import WORKLOAD_ORDER


def _cmd_run(args: argparse.Namespace) -> int:
    result = run_workload(
        args.workload,
        mechanism=args.mechanism,
        dtype=args.dtype,
        nsb=args.nsb,
        scale=args.scale,
        seed=args.seed,
        with_base=True,
    )
    stats = result.stats
    print(f"workload   : {result.program_name}")
    print(f"mechanism  : {result.mechanism} ({result.mode})")
    print(f"cycles     : {result.total_cycles}")
    print(f"base/stall : {result.base_cycles} / {result.stall_cycles}")
    print(f"L2 misses  : {stats.l2.demand_misses}")
    print(f"accuracy   : {stats.prefetch.accuracy:.3f}")
    print(f"coverage   : {stats.coverage():.3f}")
    print(f"off-chip   : {stats.traffic.off_chip_total_bytes} bytes")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    results = compare_mechanisms(
        args.workload,
        runner=runner_from_args(args),
        dtype=args.dtype,
        nsb=args.nsb,
        scale=args.scale,
        seed=args.seed,
    )
    base = results["inorder"].total_cycles
    rows = [
        [
            name,
            r.total_cycles,
            round(r.total_cycles / base, 3),
            round(r.stats.prefetch.accuracy, 3),
            round(r.stats.coverage(), 3),
            r.stats.l2.demand_misses,
        ]
        for name, r in results.items()
    ]
    print(
        format_table(
            ["mechanism", "cycles", "norm", "accuracy", "coverage", "misses"],
            rows,
            title=f"{args.workload} ({args.dtype}, nsb={args.nsb})",
        )
    )
    return 0


def _csv(text: str, known: tuple[str, ...], axis: str) -> tuple[str, ...]:
    """Parse a comma-separated axis value; ``all`` selects every option."""
    if text.strip().lower() == "all":
        return known
    values = tuple(v.strip() for v in text.split(",") if v.strip())
    for value in values:
        if value not in known:
            raise SystemExit(
                f"unknown {axis} '{value}' (known: {', '.join(known)})"
            )
    return values


def _numbers(text: str, parse, axis: str) -> tuple:
    try:
        return tuple(parse(v) for v in text.split(","))
    except ValueError:
        raise SystemExit(f"invalid {axis} list '{text}'") from None


def _cmd_sweep(args: argparse.Namespace) -> int:
    specs = expand(
        workloads=_csv(args.workloads, WORKLOAD_ORDER, "workload"),
        mechanisms=_csv(
            args.mechanisms, tuple(MECHANISM_ORDER) + ("preload",),
            "mechanism",
        ),
        dtypes=_csv(args.dtypes, tuple(DTYPE_BYTES), "dtype"),
        nsb=(False, True) if args.nsb == "both" else (args.nsb == "on",),
        scales=_numbers(args.scales, float, "scale"),
        seeds=_numbers(args.seeds, int, "seed"),
        with_base=args.with_base,
    )
    runner = runner_from_args(args)
    results = runner.run_plan(specs)
    rows, records = [], []
    for spec, result in zip(specs, results):
        rows.append([
            spec.workload, spec.mechanism, spec.dtype,
            "y" if spec.nsb else "n", spec.scale, spec.seed,
            result.total_cycles,
            round(result.stats.prefetch.accuracy, 3),
            round(result.stats.coverage(), 3),
            result.stats.traffic.off_chip_total_bytes,
        ])
        records.append({
            "spec": spec.to_dict(),
            "total_cycles": result.total_cycles,
            "base_cycles": result.base_cycles,
            "accuracy": result.stats.prefetch.accuracy,
            "coverage": result.stats.coverage(),
            "off_chip_bytes": result.stats.traffic.off_chip_total_bytes,
            "l2_demand_misses": result.stats.l2.demand_misses,
        })
    report = runner.last_report
    print(
        format_table(
            ["workload", "mech", "dtype", "nsb", "scale", "seed", "cycles",
             "accuracy", "coverage", "off-chip B"],
            rows,
            title=(
                f"sweep: {report.total} points, {report.submitted} simulated,"
                f" {report.cache_hits} cached"
            ),
        )
    )
    if args.json is not None:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(records, handle, indent=2)
        print(f"wrote {args.json} ({len(records)} records)")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = ResultCache(args.cache_dir)
    if args.clear:
        removed = cache.clear()
        print(f"cleared {removed} entries from {cache.root}")
        return 0
    entries = cache.entries()
    size = cache.size_bytes()
    print(f"cache dir : {cache.root}")
    print(f"entries   : {len(entries)}")
    print(f"size      : {size / 1024:.1f} KiB")
    return 0


def _cmd_workloads(args: argparse.Namespace) -> int:
    rows = [
        [r.short, r.full_name, r.domain, r.gather_elements,
         round(r.footprint_kib), round(r.reuse_factor, 1)]
        for r in table2_workloads(scale=args.scale, seed=args.seed)
    ]
    print(
        format_table(
            ["short", "workload", "domain", "gathers", "KiB", "reuse"],
            rows,
            title="Table II workloads",
        )
    )
    return 0


def _cmd_overhead(args: argparse.Namespace) -> int:
    report = table1_overhead()
    rows = [
        [name, entries, bits, paper, "yes" if ok else "no"]
        for name, entries, bits, paper, ok in report.rows()
    ]
    print(
        format_table(
            ["structure", "entries", "bits", "paper", "match"],
            rows,
            title="Table I - NVR hardware overhead",
        )
    )
    print(f"total: {report.total_bits} bits ({report.total_kib:.2f} KiB)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one workload/mechanism")
    run_p.add_argument("workload", choices=list(WORKLOAD_ORDER))
    run_p.add_argument(
        "--mechanism", default="nvr",
        choices=list(MECHANISM_ORDER) + ["preload"],
    )
    run_p.add_argument("--dtype", default="fp16", choices=list(DTYPE_BYTES))
    run_p.add_argument("--nsb", action="store_true")
    run_p.add_argument("--scale", type=float, default=0.5)
    run_p.add_argument("--seed", type=int, default=0)
    run_p.set_defaults(fn=_cmd_run)

    cmp_p = sub.add_parser("compare", help="run all mechanisms on a workload")
    cmp_p.add_argument("workload", choices=list(WORKLOAD_ORDER))
    cmp_p.add_argument("--dtype", default="fp16", choices=list(DTYPE_BYTES))
    cmp_p.add_argument("--nsb", action="store_true")
    cmp_p.add_argument("--scale", type=float, default=0.5)
    cmp_p.add_argument("--seed", type=int, default=0)
    add_runner_arguments(cmp_p)
    cmp_p.set_defaults(fn=_cmd_compare)

    sweep_p = sub.add_parser(
        "sweep", help="run an explicit (workload x mechanism x ...) plan"
    )
    sweep_p.add_argument(
        "--workloads", default="all",
        help="comma-separated workloads, or 'all'",
    )
    sweep_p.add_argument(
        "--mechanisms", default=",".join(MECHANISM_ORDER),
        help="comma-separated mechanisms, or 'all'",
    )
    sweep_p.add_argument(
        "--dtypes", default="fp16", help="comma-separated dtypes, or 'all'"
    )
    sweep_p.add_argument(
        "--nsb", choices=("off", "on", "both"), default="off",
        help="sweep the NSB axis (default off)",
    )
    sweep_p.add_argument(
        "--scales", default="0.5", help="comma-separated trace scales"
    )
    sweep_p.add_argument(
        "--seeds", default="0", help="comma-separated RNG seeds"
    )
    sweep_p.add_argument(
        "--with-base", action="store_true",
        help="also run perfect-memory passes (base/stall split)",
    )
    sweep_p.add_argument(
        "--json", default=None, metavar="PATH",
        help="also dump one JSON record per point",
    )
    add_runner_arguments(sweep_p)
    sweep_p.set_defaults(fn=_cmd_sweep)

    cache_p = sub.add_parser("cache", help="inspect or clear the result cache")
    cache_p.add_argument(
        "--cache-dir", default=DEFAULT_CACHE_DIR,
        help=f"cache directory (default {DEFAULT_CACHE_DIR})",
    )
    cache_p.add_argument("--clear", action="store_true")
    cache_p.set_defaults(fn=_cmd_cache)

    wl_p = sub.add_parser("workloads", help="list Table II workloads")
    wl_p.add_argument("--scale", type=float, default=0.3)
    wl_p.add_argument("--seed", type=int, default=0)
    wl_p.set_defaults(fn=_cmd_workloads)

    oh_p = sub.add_parser("overhead", help="Table I hardware overhead")
    oh_p.set_defaults(fn=_cmd_overhead)

    fig_p = sub.add_parser("figures", help="regenerate EXPERIMENTS.md")
    fig_p.add_argument("--scale", type=float, default=0.6)
    fig_p.add_argument("--seed", type=int, default=0)
    fig_p.add_argument("-o", "--output", default="EXPERIMENTS.md")
    add_runner_arguments(fig_p)
    fig_p.set_defaults(
        fn=lambda a: figures_main(
            ["--scale", str(a.scale), "--seed", str(a.seed), "-o", a.output,
             "--jobs", str(a.jobs), "--cache-dir", a.cache_dir]
            + (["--no-cache"] if a.no_cache else [])
        )
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
