"""ResultSet: an ordered, queryable (spec, result) container.

Every :meth:`~repro.session.Session.sweep` returns a :class:`ResultSet`
— the third leg of the Session/Grid/ResultSet front door. It pairs each
submitted :class:`~repro.runner.RunSpec` with its
:class:`~repro.sim.soc.RunResult` (or
:class:`~repro.workloads.base.TraceStats` for ``kind="trace"`` points)
in plan order, and replaces the hand-zipped ``for spec, result in
zip(specs, results)`` loops the figure runners used to carry:

* **select** — :meth:`filter` narrows by axis values, :meth:`one` fetches
  exactly one result (``rs.one(workload="ds", mechanism="nvr")``);
* **reshape** — :meth:`pivot` turns two axes into a table,
  :meth:`speedup_over` computes per-group ratios against a baseline
  selection (``rs.speedup_over(mechanism="inorder")``);
* **export** — :meth:`to_records` / :meth:`to_csv` /
  :meth:`to_markdown` / :meth:`to_json` flatten the set for files,
  notebooks and the ``repro sweep --json`` CLI payload.

Axes are resolved by :func:`axis_value`: the scalar spec fields
(``workload``/``mechanism``/``dtype``/``nsb``/``scale``/``seed``/
``with_base``/``kind``), the derived platform axes a
:class:`~repro.session.Grid` can sweep (``nvr_depth``, ``nvr_width``,
``nvr_fuzz``, ``nsb_kib``, ``l2_kib``, ``cpu_traffic``,
``issue_width``, ``ooo_window``) and, as a fallback, any workload
argument carried by the spec (``topk_ratio``, ``drift``, ...).
"""

from __future__ import annotations

import csv
import io
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator, Sequence

from .core.controller import NVRConfig
from .errors import ConfigError
from .runner.plan import RunSpec
from .sim.npu.executor import ExecutorConfig
from .sim.soc import RunResult
from .utils import KIB, sanitize_nonfinite
from .workloads.base import TraceStats

#: Scalar axes read straight off the spec.
SPEC_AXES: tuple[str, ...] = (
    "workload",
    "mechanism",
    "dtype",
    "nsb",
    "scale",
    "seed",
    "with_base",
    "kind",
)

#: Platform axes derived from the spec's canonical SystemSpec (the same
#: names :class:`~repro.session.Grid` accepts as sweep axes).
DERIVED_AXES: tuple[str, ...] = (
    "nvr_depth",
    "nvr_width",
    "nvr_fuzz",
    "nsb_kib",
    "l2_kib",
    "cpu_traffic",
    "issue_width",
    "ooo_window",
)

#: Formats :meth:`ResultSet.render` (and the server's ``?format=``) accept.
RESULT_FORMATS: tuple[str, ...] = ("json", "csv", "markdown")

_MISSING = object()

_DERIVED_DEFAULTS: dict[str, object] | None = None


def _derived_defaults() -> dict[str, object]:
    """Each derived axis' value on the all-defaults platform (memoised)."""
    global _DERIVED_DEFAULTS
    if _DERIVED_DEFAULTS is None:
        nvr = RunSpec("ds", mechanism="nvr")
        base = RunSpec("ds", mechanism="inorder")
        _DERIVED_DEFAULTS = {
            axis: axis_value(
                nvr if axis in ("nvr_depth", "nvr_width", "nvr_fuzz") else base,
                axis,
            )
            for axis in DERIVED_AXES
        }
    return _DERIVED_DEFAULTS


def axis_value(spec: RunSpec, axis: str):
    """Resolve one axis of a spec (see the module docstring for the set).

    Unknown axes fall through to the spec's workload arguments; a spec
    that does not carry the argument yields a *missing* sentinel that
    never matches a filter.
    """
    if axis in SPEC_AXES:
        return getattr(spec, axis)
    system = spec.system
    if axis in ("nvr_depth", "nvr_width", "nvr_fuzz"):
        nvr = system.nvr if system.nvr is not None else NVRConfig()
        field = {
            "nvr_depth": "depth_tiles",
            "nvr_width": "vector_width",
            "nvr_fuzz": "fuzz_vectors",
        }[axis]
        return getattr(nvr, field)
    if axis in ("issue_width", "ooo_window"):
        executor = system.executor if system.executor is not None else ExecutorConfig()
        return getattr(executor, axis)
    if axis == "l2_kib":
        return system.resolved_memory().l2.size_bytes // KIB
    if axis == "nsb_kib":
        nsb = system.resolved_memory().nsb
        return nsb.size_bytes // KIB if nsb is not None else None
    if axis == "cpu_traffic":
        return system.resolved_memory().cpu_traffic is not None
    args = dict(spec.workload_args)
    if axis in args:
        return args[axis]
    return _MISSING


#: Named result metrics accepted wherever a ``value`` is selected.
_SIM_METRICS: tuple[str, ...] = (
    "total_cycles",
    "base_cycles",
    "stall_cycles",
    "accuracy",
    "coverage",
    "off_chip_bytes",
    "l2_demand_misses",
)


def metric_value(result, metric):
    """Extract a named (or callable) metric from one result."""
    if callable(metric):
        return metric(result)
    if isinstance(result, TraceStats):
        try:
            return getattr(result, metric)
        except AttributeError:
            raise ConfigError(
                f"trace statistics have no metric '{metric}'"
            ) from None
    if metric == "accuracy":
        return result.stats.prefetch.accuracy
    if metric == "coverage":
        return result.stats.coverage()
    if metric == "off_chip_bytes":
        return result.stats.traffic.off_chip_total_bytes
    if metric == "l2_demand_misses":
        return result.stats.l2.demand_misses
    try:
        return getattr(result, metric)
    except AttributeError:
        raise ConfigError(
            f"unknown result metric '{metric}' "
            f"(named metrics: {', '.join(_SIM_METRICS)}; "
            "or pass a callable)"
        ) from None


def _axes_record(spec: RunSpec, derived: tuple[str, ...] = ()) -> dict:
    """The identifying axis columns of one spec (for records/grouping).

    ``derived`` names extra platform axes (resolved via
    :func:`axis_value`) to include — the ResultSet passes the derived
    axes that are non-default anywhere in the set, so an ablation export
    says which ``nvr_depth``/``nsb_kib``/... each row belongs to.
    """
    record = {axis: getattr(spec, axis) for axis in SPEC_AXES if axis != "kind"}
    if spec.kind != "sim":
        record["kind"] = spec.kind
    for axis in derived:
        record[axis] = axis_value(spec, axis)
    record.update(dict(spec.workload_args))
    return record


@dataclass(frozen=True)
class Pivot:
    """A two-axis reshape of a :class:`ResultSet` (see :meth:`ResultSet.pivot`)."""

    row_axis: str
    col_axis: str
    rows: list
    cols: list
    values: list[list]

    def cell(self, row, col):
        return self.values[self.rows.index(row)][self.cols.index(col)]

    def to_markdown(self) -> str:
        header = [f"{self.row_axis}\\{self.col_axis}"] + [str(c) for c in self.cols]
        lines = ["| " + " | ".join(header) + " |"]
        lines.append("|" + "|".join(" --- " for _ in header) + "|")
        for row, series in zip(self.rows, self.values):
            cells = [str(row)] + [_fmt(v) for v in series]
            lines.append("| " + " | ".join(cells) + " |")
        return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


class ResultSet:
    """Ordered ``(RunSpec, result)`` pairs with selection and export.

    Iteration yields the pairs in submission (plan) order; ``specs`` and
    ``results`` expose the two columns. All selection methods return new
    sets / plain data — a ResultSet is immutable once built.
    """

    def __init__(self, entries: Sequence[tuple[RunSpec, RunResult | TraceStats]]):
        self._entries = list(entries)

    # -- container protocol --------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[tuple[RunSpec, RunResult | TraceStats]]:
        return iter(self._entries)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return ResultSet(self._entries[index])
        return self._entries[index]

    def __repr__(self) -> str:
        return f"ResultSet({len(self._entries)} points)"

    @property
    def specs(self) -> list[RunSpec]:
        return [spec for spec, _ in self._entries]

    @property
    def results(self) -> list[RunResult | TraceStats]:
        return [result for _, result in self._entries]

    # -- selection -----------------------------------------------------------

    def filter(
        self, predicate: Callable[[RunSpec, object], bool] | None = None, **axes
    ) -> "ResultSet":
        """Entries whose axes equal ``axes`` (and satisfy ``predicate``)."""
        out = []
        for spec, result in self._entries:
            if any(axis_value(spec, axis) != want for axis, want in axes.items()):
                continue
            if predicate is not None and not predicate(spec, result):
                continue
            out.append((spec, result))
        return ResultSet(out)

    def one(self, **axes) -> RunResult | TraceStats:
        """The single result matching ``axes``; raises unless exactly one."""
        matches = self.filter(**axes)
        if len(matches) != 1:
            wanted = ", ".join(f"{k}={v!r}" for k, v in axes.items())
            raise ConfigError(
                f"expected exactly one result for ({wanted}), "
                f"found {len(matches)} of {len(self)}"
            )
        return matches.results[0]

    def _record_derived_axes(self) -> tuple[str, ...]:
        """Derived axes worth a record column: non-default somewhere."""
        defaults = _derived_defaults()
        return tuple(
            axis
            for axis in DERIVED_AXES
            if any(
                axis_value(spec, axis) != defaults[axis]
                for spec, _ in self._entries
            )
        )

    # -- reshaping -----------------------------------------------------------

    def pivot(self, rows: str, cols: str, value="total_cycles") -> Pivot:
        """Reshape two axes into a table of ``value`` cells.

        Row/column labels appear in first-occurrence order (i.e. the
        grid's expansion order). Each (row, col) cell must be unique —
        duplicated points are a :class:`~repro.errors.ConfigError`, not a
        silent aggregate.
        """
        row_labels: list = []
        col_labels: list = []
        cells: dict[tuple, object] = {}
        for spec, result in self._entries:
            r, c = axis_value(spec, rows), axis_value(spec, cols)
            if r is _MISSING or c is _MISSING:
                continue
            if r not in row_labels:
                row_labels.append(r)
            if c not in col_labels:
                col_labels.append(c)
            if (r, c) in cells:
                raise ConfigError(
                    f"pivot cell ({rows}={r}, {cols}={c}) is not unique — "
                    "filter the set down before pivoting"
                )
            cells[(r, c)] = metric_value(result, value)
        values = [
            [cells.get((r, c)) for c in col_labels] for r in row_labels
        ]
        return Pivot(
            row_axis=rows, col_axis=cols, rows=row_labels, cols=col_labels,
            values=values,
        )

    def speedup_over(self, value="total_cycles", **baseline) -> list[dict]:
        """Per-point speedup versus a baseline selection.

        ``baseline`` names the axes that identify the reference points
        (``mechanism="inorder"``); every other point is matched to the
        baseline sharing its remaining axes, and its record gains a
        ``"speedup"`` column (``baseline_value / point_value`` — > 1
        means faster than the baseline for cycle-like metrics). Baseline
        points themselves are omitted from the output.

        Ambiguity and degeneracy are :class:`~repro.errors.ConfigError`s,
        matching :meth:`pivot`'s no-silent-aggregate contract: two
        baseline points sharing a group key would make the reference
        depend on iteration order, and a zero point metric has no
        defined ratio.
        """
        if not baseline:
            raise ConfigError(
                "speedup_over needs at least one baseline axis, "
                "e.g. speedup_over(mechanism='inorder')"
            )
        group_axes = [
            axis
            for axis in (*SPEC_AXES, *DERIVED_AXES)
            if axis not in baseline
        ]

        def group_key(spec: RunSpec) -> tuple:
            parts = [(axis, axis_value(spec, axis)) for axis in group_axes]
            parts += [
                (k, v) for k, v in spec.workload_args if k not in baseline
            ]
            return tuple(parts)

        label = ", ".join(f"{k}={v!r}" for k, v in baseline.items())
        metric_name = value if isinstance(value, str) else "metric"
        reference: dict[tuple, object] = {}
        for spec, result in self.filter(**baseline):
            key = group_key(spec)
            if key in reference:
                raise ConfigError(
                    f"baseline ({label}) matches more than one point for "
                    f"{spec.label()} — filter the set down before "
                    "speedup_over"
                )
            reference[key] = metric_value(result, value)
        derived = self._record_derived_axes()
        out = []
        for spec, result in self._entries:
            if all(axis_value(spec, k) == v for k, v in baseline.items()):
                continue
            key = group_key(spec)
            if key not in reference:
                raise ConfigError(
                    f"no baseline ({label}) point matches {spec.label()}"
                )
            point_value = metric_value(result, value)
            if point_value == 0:
                raise ConfigError(
                    f"cannot compute speedup: {metric_name} is 0 for "
                    f"{spec.label()}"
                )
            out.append(
                {
                    **_axes_record(spec, derived),
                    "speedup": reference[key] / point_value,
                }
            )
        return out

    # -- export --------------------------------------------------------------

    def to_records(self) -> list[dict]:
        """One flat dict per point: axis columns plus result metrics.

        Derived platform axes (``nvr_depth``, ``nsb_kib``, ...) appear
        as columns whenever any point in the set carries a non-default
        value, so ablation exports are self-describing.
        """
        derived = self._record_derived_axes()
        records = []
        for spec, result in self._entries:
            record = _axes_record(spec, derived)
            if isinstance(result, TraceStats):
                record.update(
                    gather_elements=result.gather_elements,
                    footprint_bytes=result.footprint_bytes,
                    reuse_factor=result.reuse_factor,
                )
            else:
                record.update(
                    total_cycles=result.total_cycles,
                    base_cycles=result.base_cycles,
                    stall_cycles=result.stall_cycles,
                    accuracy=result.stats.prefetch.accuracy,
                    coverage=result.stats.coverage(),
                    off_chip_bytes=result.stats.traffic.off_chip_total_bytes,
                    l2_demand_misses=result.stats.l2.demand_misses,
                )
            records.append(record)
        return records

    def _columns(self) -> list[str]:
        columns: list[str] = []
        for record in self.to_records():
            for key in record:
                if key not in columns:
                    columns.append(key)
        return columns

    def to_csv(self, path: str | os.PathLike | None = None) -> str:
        """CSV text of :meth:`to_records` (written to ``path`` if given)."""
        columns = self._columns()
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=columns, lineterminator="\n")
        writer.writeheader()
        for record in self.to_records():
            writer.writerow({k: "" if v is None else v for k, v in record.items()})
        text = buffer.getvalue()
        if path is not None:
            Path(path).write_text(text, encoding="utf-8")
        return text

    def to_markdown(self) -> str:
        """A GitHub-style pipe table of :meth:`to_records`."""
        columns = self._columns()
        lines = ["| " + " | ".join(columns) + " |"]
        lines.append("|" + "|".join(" --- " for _ in columns) + "|")
        for record in self.to_records():
            cells = [
                "" if record.get(c) is None else _fmt(record.get(c, ""))
                for c in columns
            ]
            lines.append("| " + " | ".join(cells) + " |")
        return "\n".join(lines)

    def to_json(self, path: str | os.PathLike | None = None, indent: int = 2) -> str:
        """JSON text of :meth:`to_records` (written to ``path`` if given).

        Non-finite metrics (a CV over an empty trace) become ``null``:
        ``json.dumps`` would otherwise emit bare ``NaN``/``Infinity``
        literals, which are not JSON and break strict parsers.
        """
        # repro: ignore[RPR002] records keep insertion (column) order on purpose
        text = json.dumps(
            sanitize_nonfinite(self.to_records()), indent=indent, allow_nan=False
        )
        if path is not None:
            Path(path).write_text(text + "\n", encoding="utf-8")
        return text

    def render(self, fmt: str = "json") -> str:
        """One of :data:`RESULT_FORMATS` as text, newline-terminated.

        The single dispatch point behind every "give me this ResultSet
        as FORMAT" surface — the server's ``?format=`` query parameter
        in particular — so a format name is validated (and spelled) in
        exactly one place. The JSON flavour is byte-identical to what
        :meth:`to_json` writes to a file, which is what lets CI ``cmp``
        a served result body against a local ``--json`` dump.
        """
        if fmt not in RESULT_FORMATS:
            raise ConfigError(
                f"unknown result format '{fmt}' "
                f"(known: {', '.join(RESULT_FORMATS)})"
            )
        if fmt == "csv":
            text = self.to_csv()
        elif fmt == "markdown":
            text = self.to_markdown()
        else:
            text = self.to_json()
        return text if text.endswith("\n") else text + "\n"
