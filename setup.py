"""Legacy setup shim.

All real metadata — including the ``src/`` package layout — lives in
pyproject.toml; with network access a plain ``pip install -e .`` is all
you need (CI exercises exactly that). This shim exists for the offline
environment, which ships setuptools without the ``wheel`` package, so
PEP 517 editable installs fail with ``invalid command 'bdist_wheel'``;
there, ``python setup.py develop`` installs the same editable layout
without needing wheel.
"""

from setuptools import setup

setup()
