"""Legacy setup shim.

The offline environment ships setuptools without the ``wheel`` package, so
PEP 660 editable installs fail. This shim lets
``pip install -e . --no-use-pep517`` fall back to ``setup.py develop``.
All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
