"""Tests for the Table I hardware overhead accounting."""

import pytest

from repro.core.overhead import (
    lbd_bits,
    nvr_overhead,
    scd_bits,
    sd_bits,
    snooper_bits,
    vmig_bits,
)
from repro.errors import ConfigError


class TestStructureArithmetic:
    def test_sd_matches_table1(self):
        s = sd_bits(16)
        assert s.per_entry_bits == 110
        assert s.total_bits == 48 + 16 * 110 == 1808
        assert s.matches_paper

    def test_scd_field_sum(self):
        s = scd_bits(32)
        assert s.per_entry_bits == 77
        # Paper quotes 2464 (= 32 x 77, PC omitted from their sum); the
        # field-complete total includes the 48-bit PC.
        assert s.total_bits == 48 + 32 * 77 == 2512
        assert s.paper_quoted_bits == 2464
        assert not s.matches_paper

    def test_lbd_matches_table1(self):
        s = lbd_bits(32)
        assert s.per_entry_bits == 107
        assert s.total_bits == 32 * 107 == 3424
        assert s.matches_paper

    def test_vmig_matches_table1(self):
        s = vmig_bits(16)
        assert s.per_entry_bits == 184
        assert s.total_bits == 260 + 16 * 184 == 3204
        assert s.matches_paper

    def test_snooper_matches_table1(self):
        s = snooper_bits(16)
        assert s.per_entry_bits == 68
        assert s.total_bits == 160 + 16 * 68 == 1248
        assert s.matches_paper


class TestReport:
    def test_total_is_sum_of_structures(self):
        report = nvr_overhead()
        assert report.total_bits == sum(s.total_bits for s in report.structures)

    def test_default_total_value(self):
        report = nvr_overhead()
        assert report.total_bits == 1808 + 2512 + 3424 + 3204 + 1248

    def test_storage_under_two_kib(self):
        """Detector storage is tiny — negligible vs the NPU (paper's point)."""
        report = nvr_overhead()
        assert report.total_kib < 2.0

    def test_area_fraction_without_nsb_small(self):
        report = nvr_overhead()
        assert report.area_fraction(with_nsb=False) < 0.05

    def test_area_fraction_with_nsb_larger(self):
        report = nvr_overhead()
        assert report.area_fraction(True) > report.area_fraction(False)

    def test_rows_structure(self):
        rows = nvr_overhead().rows()
        names = [r[0] for r in rows]
        assert names == ["SD", "SCD", "LBD", "VMIG", "Snooper"]

    def test_scaling_with_vector_width(self):
        n8 = nvr_overhead(vector_width=8).total_bits
        n32 = nvr_overhead(vector_width=32).total_bits
        assert n8 < nvr_overhead().total_bits < n32

    def test_bad_width_rejected(self):
        with pytest.raises(ConfigError):
            nvr_overhead(vector_width=0)
