"""Tests for the baseline prefetchers: mechanism-level behaviour."""

import numpy as np

from repro.prefetch import (
    DecoupledVectorRunahead,
    IndirectMemoryPrefetcher,
    NullPrefetcher,
    StreamPrefetcher,
)
from repro.sim.memory.hierarchy import MemoryConfig
from repro.sim.npu.program import ProgramConfig, build_one_side_program
from repro.sim.soc import System
from repro.sparse.csr import CSRMatrix
from repro.sparse.generate import uniform_csr


def sequential_program():
    """A fully dense single row: pure streaming, stride prefetch heaven."""
    dense = np.ones((4, 512), dtype=np.float32)
    w = CSRMatrix.from_dense(dense)
    return build_one_side_program("seq", w, ProgramConfig(elem_bytes=4))


def irregular_program(seed=1):
    w = uniform_csr(120, 4096, 0.02, seed=seed)
    return build_one_side_program("irr", w, ProgramConfig(elem_bytes=2))


def hashed_program(seed=2):
    w = uniform_csr(120, 2048, 0.04, seed=seed)
    perm = np.random.default_rng(seed).permutation(2048).astype(np.int64)
    return build_one_side_program(
        "hash", w, ProgramConfig(elem_bytes=2, index_map=perm)
    )


def run(program, factory, mode="inorder"):
    return System(
        program=program, memory=MemoryConfig(), prefetcher_factory=factory, mode=mode
    ).run()


class TestNull:
    def test_issues_nothing(self):
        res = run(irregular_program(), NullPrefetcher)
        assert res.stats.prefetch.issued == 0
        assert res.stats.coverage() == 0.0


class TestStream:
    def test_covers_streaming_workload(self):
        res = run(sequential_program(), StreamPrefetcher)
        # Degree-16 streaming prefetch: covers a solid fraction; the rest
        # are late (demand advances faster than one DRAM latency) - those
        # still shorten stalls but do not count as covered.
        assert res.stats.coverage() > 0.25
        covered_or_late = res.stats.prefetch.useful + res.stats.prefetch.late
        assert covered_or_late > 0.7 * (covered_or_late + res.stats.l2.demand_misses)

    def test_low_coverage_on_irregular(self):
        res = run(irregular_program(), StreamPrefetcher)
        assert res.stats.coverage() < 0.4

    def test_accuracy_degrades_on_irregular(self):
        seq = run(sequential_program(), StreamPrefetcher).stats.prefetch.accuracy
        irr = run(irregular_program(), StreamPrefetcher).stats.prefetch.accuracy
        assert irr < seq

    def test_faster_than_no_prefetch_on_streaming(self):
        base = run(sequential_program(), NullPrefetcher).total_cycles
        with_pf = run(sequential_program(), StreamPrefetcher).total_cycles
        assert with_pf < base


class TestIMP:
    def test_learns_affine_map(self):
        res = run(irregular_program(), IndirectMemoryPrefetcher)
        assert res.stats.prefetch.issued > 100
        assert res.stats.prefetch.accuracy > 0.9

    def test_beats_stream_on_irregular(self):
        stream = run(irregular_program(), StreamPrefetcher)
        imp = run(irregular_program(), IndirectMemoryPrefetcher)
        assert imp.total_cycles < stream.total_cycles

    def test_silent_on_hashed_gathers(self):
        """No consistent (base, shift) exists for a hash permutation."""
        res = run(hashed_program(), IndirectMemoryPrefetcher)
        # Index-stream (regular) prefetches still happen; indirect coverage
        # must be negligible.
        assert res.stats.coverage() < 0.2

    def test_shallow_lookahead_leaves_late_prefetches(self):
        res = run(irregular_program(), IndirectMemoryPrefetcher)
        assert res.stats.prefetch.late > 0


class TestDVR:
    def test_triggered_by_stalls(self):
        prog = irregular_program()
        res = run(prog, DecoupledVectorRunahead)
        assert res.stats.prefetch.issued > 0

    def test_high_coverage_on_affine(self):
        res = run(irregular_program(), DecoupledVectorRunahead)
        assert res.stats.coverage() > 0.6

    def test_beats_imp_on_affine(self):
        imp = run(irregular_program(), IndirectMemoryPrefetcher)
        dvr = run(irregular_program(), DecoupledVectorRunahead)
        assert dvr.total_cycles < imp.total_cycles

    def test_covers_only_index_side_on_hashed(self):
        affine_cov = run(irregular_program(), DecoupledVectorRunahead).stats.coverage()
        hashed_cov = run(hashed_program(), DecoupledVectorRunahead).stats.coverage()
        assert hashed_cov < 0.3
        assert hashed_cov < affine_cov

    def test_depth_bounds_invocations(self):
        prog = irregular_program()
        captured = []

        def factory():
            p = DecoupledVectorRunahead(depth_tiles=8)
            captured.append(p)
            return p

        run(prog, factory)
        assert captured[0].invocations > 0
        # Each invocation covers up to depth_tiles; invocations should be
        # far fewer than tiles.
        assert captured[0].invocations <= prog.n_tiles


class TestOrderingOnIrregular:
    def test_paper_mechanism_ordering(self):
        """Fig. 5/6 shape: none < stream < imp <= dvr on irregular SpMM."""
        prog = irregular_program()
        none_t = run(prog, NullPrefetcher).total_cycles
        stream_t = run(prog, StreamPrefetcher).total_cycles
        imp_t = run(prog, IndirectMemoryPrefetcher).total_cycles
        dvr_t = run(prog, DecoupledVectorRunahead).total_cycles
        assert dvr_t < imp_t < stream_t < none_t
