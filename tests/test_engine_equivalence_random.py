"""Randomized cross-engine equivalence: hypothesis explores the spec space.

``test_engine_equivalence.py`` pins a hand-picked grid; this file lets
hypothesis draw random points from a much larger spec space — every
workload, every mechanism, random scales/seeds, NSB on and off, and NVR
tuning overrides for the NVR mechanism — and asserts the three engines
(``reference``, ``vectorized``, ``batched``) produce byte-for-byte
identical :func:`~repro.runner.pool.execute_spec` payloads on each one.

Settings discipline: ``derandomize=True`` keeps CI deterministic (the
corpus still varies across hypothesis versions, which is the point —
fresh points over time without flaky runs), ``deadline=None`` because a
point is a whole simulation, and small scales keep the draw affordable.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.controller import NVRConfig
from repro.registry import MECHANISM_ORDER
from repro.runner import RunSpec, execute_spec
from repro.workloads.registry import WORKLOAD_ORDER

ENGINES = ("vectorized", "batched")

spec_strategy = st.fixed_dictionaries(
    {
        "workload": st.sampled_from(WORKLOAD_ORDER),
        "mechanism": st.sampled_from(tuple(MECHANISM_ORDER) + ("preload",)),
        "nsb": st.booleans(),
        "scale": st.sampled_from((0.02, 0.03, 0.05)),
        "seed": st.integers(min_value=0, max_value=5),
        "with_base": st.booleans(),
    }
)

nvr_strategy = st.fixed_dictionaries(
    {
        "workload": st.sampled_from(WORKLOAD_ORDER),
        "nsb": st.booleans(),
        "scale": st.sampled_from((0.02, 0.04)),
        "seed": st.integers(min_value=0, max_value=3),
        "vector_width": st.sampled_from((4, 8, 16)),
        "depth_tiles": st.sampled_from((2, 8)),
        "approximate": st.booleans(),
    }
)


class TestRandomizedEquivalence:
    @settings(
        max_examples=15,
        deadline=None,
        derandomize=True,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(point=spec_strategy)
    def test_random_specs_identical_across_engines(self, point):
        reference = execute_spec(RunSpec(**point))
        for engine in ENGINES:
            assert execute_spec(RunSpec(**point, engine=engine)) == reference

    @settings(
        max_examples=10,
        deadline=None,
        derandomize=True,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(point=nvr_strategy)
    def test_random_nvr_tunings_identical_across_engines(self, point):
        nvr = NVRConfig(
            vector_width=point["vector_width"],
            depth_tiles=point["depth_tiles"],
            approximate=point["approximate"],
        )
        base = dict(
            workload=point["workload"],
            mechanism="nvr",
            nsb=point["nsb"],
            scale=point["scale"],
            seed=point["seed"],
            nvr=nvr,
        )
        reference = execute_spec(RunSpec(**base))
        for engine in ENGINES:
            assert execute_spec(RunSpec(**base, engine=engine)) == reference
