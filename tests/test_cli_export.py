"""Tests for the CLI and JSON export."""

import json

import numpy as np
import pytest

from repro.__main__ import build_parser, main
from repro.analysis.export import export_json, run_result_dict
from repro.analysis.experiments import fig1b_sparsity_gap, table1_overhead
from repro.api import run_workload
from repro.errors import ConfigError


class TestCLI:
    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["run", "gcn", "--scale", "0.2"])
        assert args.workload == "gcn"

    def test_run_command(self, capsys):
        assert main(["run", "gcn", "--scale", "0.15"]) == 0
        out = capsys.readouterr().out
        assert "coverage" in out
        assert "cycles" in out

    def test_compare_command(self, capsys):
        assert main(["compare", "st", "--scale", "0.15"]) == 0
        out = capsys.readouterr().out
        for mech in ("inorder", "nvr"):
            assert mech in out

    def test_workloads_command(self, capsys):
        assert main(["workloads", "--scale", "0.15"]) == 0
        out = capsys.readouterr().out
        assert "Switch Transformer" in out

    def test_overhead_command(self, capsys):
        assert main(["overhead"]) == 0
        out = capsys.readouterr().out
        assert "1808" in out

    def test_figures_command(self, tmp_path, capsys):
        target = tmp_path / "EXP.md"
        assert main(["figures", "--scale", "0.1", "-o", str(target)]) == 0
        assert target.exists()
        assert "Fig. 5" in target.read_text()

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "resnet"])


class TestExport:
    def test_run_result_dict(self):
        result = run_workload("gcn", mechanism="nvr", scale=0.15, with_base=True)
        payload = run_result_dict(result)
        assert payload["mechanism"] == "nvr"
        assert payload["total_cycles"] > 0
        assert 0 <= payload["coverage"] <= 1
        json.dumps(payload)  # must be JSON-native

    def test_export_dataclass_tree(self):
        res = fig1b_sparsity_gap(ratios=(1, 4), scale=0.15)
        text = export_json(res)
        parsed = json.loads(text)
        assert parsed["ratios"] == [1, 4]

    def test_export_overhead_report(self):
        text = export_json(table1_overhead())
        parsed = json.loads(text)
        assert len(parsed["structures"]) == 5

    def test_export_to_file(self, tmp_path):
        result = run_workload("st", mechanism="inorder", scale=0.15)
        path = tmp_path / "out.json"
        export_json(result, path=str(path))
        assert json.loads(path.read_text())["program"] == "st"

    def test_numpy_values_converted(self):
        text = export_json({"a": np.int64(3), "b": np.float32(0.5), "c": np.arange(3)})
        parsed = json.loads(text)
        assert parsed == {"a": 3, "b": 0.5, "c": [0, 1, 2]}

    def test_unserialisable_rejected(self):
        with pytest.raises(ConfigError):
            export_json({"x": object()})
