"""The pull-based work queue: claims, leases, crash recovery, identity.

The acceptance properties of the queue backend:

* a unit is claimed by exactly one worker (atomic rename), and enqueues
  are idempotent content-addressed writes;
* a worker that dies mid-unit — SIGKILL included — is detected by lease
  expiry and its unit re-enqueued for the next claimant;
* the merged sweep payload is byte-identical to ``--backend local``
  (the ``queue-smoke`` CI job pins the CLI flavour of this);
* an interrupted run (worker or orchestrator) leaves no orphaned
  ``.tmp``, lease or claimable unit files behind.
"""

import dataclasses
import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.__main__ import main as cli_main
from repro.errors import ConfigError, SimulationError
from repro.runner import (
    QueueBackend,
    ResultCache,
    RunSpec,
    SweepRunner,
    WorkQueue,
    batch_unit_id,
    expand,
    load_results,
    make_backend,
    run_queue_worker,
    unit_id,
    write_results,
)
from repro.session import Session

SCALE = 0.05


def small_specs() -> list[RunSpec]:
    return expand("st", ["inorder", "nvr"], scales=SCALE)


def start_worker(work_dir, **kwargs) -> threading.Thread:
    kwargs.setdefault("poll", 0.02)
    kwargs.setdefault("idle_timeout", 20)
    thread = threading.Thread(
        target=run_queue_worker, args=(work_dir,), kwargs=kwargs, daemon=True
    )
    thread.start()
    return thread


def tree_files(root, pattern: str) -> list:
    return sorted(root.rglob(pattern))


class TestWorkQueue:
    def test_enqueue_is_idempotent_and_content_addressed(self, tmp_path):
        queue = WorkQueue(tmp_path).ensure()
        spec = RunSpec("st", scale=SCALE)
        uid = queue.enqueue(spec)
        assert uid == unit_id(spec)
        assert queue.enqueue(spec) == uid
        assert len(list(queue.queue_dir.iterdir())) == 1

    def test_claim_is_exclusive(self, tmp_path):
        queue = WorkQueue(tmp_path).ensure()
        queue.enqueue(RunSpec("st", scale=SCALE))
        unit = queue.claim_next("w1")
        assert unit is not None
        assert queue.claim_next("w2") is None
        assert queue.claimed_path(unit.id).exists()
        lease = json.loads(queue.lease_path(unit.id).read_text())
        assert lease["worker"] == "w1"

    def test_claim_round_trips_the_spec(self, tmp_path):
        queue = WorkQueue(tmp_path).ensure()
        spec = RunSpec("gcn", mechanism="nvr", dtype="int8", scale=0.2, seed=3)
        queue.enqueue(spec)
        unit = queue.claim_next("w")
        assert unit.spec.key() == spec.key()

    def test_release_returns_unit_to_queue(self, tmp_path):
        queue = WorkQueue(tmp_path).ensure()
        queue.enqueue(RunSpec("st", scale=SCALE))
        unit = queue.claim_next("w")
        queue.release(unit)
        assert queue.queued_path(unit.id).exists()
        assert not queue.claimed_path(unit.id).exists()
        assert not queue.lease_path(unit.id).exists()

    def test_recover_expired_requeues_stale_lease(self, tmp_path):
        queue = WorkQueue(tmp_path).ensure()
        queue.enqueue(RunSpec("st", scale=SCALE))
        unit = queue.claim_next("w")
        past = time.time() - 60
        os.utime(queue.lease_path(unit.id), (past, past))
        assert queue.recover_expired(1.0) == [unit.id]
        assert queue.queued_path(unit.id).exists()
        assert not queue.lease_path(unit.id).exists()

    def test_recover_leaves_fresh_leases_alone(self, tmp_path):
        queue = WorkQueue(tmp_path).ensure()
        queue.enqueue(RunSpec("st", scale=SCALE))
        unit = queue.claim_next("w")
        assert queue.recover_expired(60.0) == []
        assert queue.claimed_path(unit.id).exists()

    def test_recover_claim_without_lease_uses_claim_mtime(self, tmp_path):
        # A worker killed between the claim rename and the lease write.
        queue = WorkQueue(tmp_path).ensure()
        queue.enqueue(RunSpec("st", scale=SCALE))
        unit = queue.claim_next("w")
        queue.lease_path(unit.id).unlink()
        past = time.time() - 60
        os.utime(queue.claimed_path(unit.id), (past, past))
        assert queue.recover_expired(1.0) == [unit.id]
        assert queue.queued_path(unit.id).exists()

    def test_corrupt_unit_file_is_quarantined_not_fatal(self, tmp_path):
        # One bad file must not kill every worker that claims it: the
        # unit is reported as failed and the worker moves on.
        queue = WorkQueue(tmp_path).ensure()
        (queue.queue_dir / "unit-deadbeef.json").write_text("{oops")
        good = RunSpec("st", scale=SCALE)
        queue.enqueue(good)
        unit = queue.claim_next("w")
        assert unit is not None and unit.spec.key() == good.key()
        # Whichever side of the sort order the corrupt file landed on,
        # after one more scan it is quarantined and the queue is idle.
        assert queue.claim_next("w") is None
        report = json.loads(queue.failed_path("deadbeef").read_text())
        assert "not valid JSON" in report["error"]
        assert not list(queue.queue_dir.iterdir())

    def test_misplaced_unit_file_is_quarantined(self, tmp_path):
        queue = WorkQueue(tmp_path).ensure()
        spec = RunSpec("st", scale=SCALE)
        queue.enqueue(spec)
        good = queue.queued_path(unit_id(spec))
        good.rename(queue.queue_dir / f"unit-{'0' * 32}.json")
        assert queue.claim_next("w") is None
        report = json.loads(queue.failed_path("0" * 32).read_text())
        assert "does not match its spec" in report["error"]

    def test_status_counts(self, tmp_path):
        queue = WorkQueue(tmp_path).ensure()
        for spec in small_specs():
            queue.enqueue(spec)
        unit = queue.claim_next("w")
        past = time.time() - 60
        os.utime(queue.lease_path(unit.id), (past, past))
        status = queue.status(lease_timeout=1.0)
        assert status.queued == 1
        assert status.claimed == 1
        assert status.expired == 1
        assert status.results == 0
        assert status.failed == 0
        assert not status.stopping

    def test_status_separates_expired_from_failed(self, tmp_path):
        # A lease-expired unit is *recoverable* (it will be re-enqueued
        # and re-run); a failed unit is a terminal spec error awaiting
        # its orchestrator. The status scan must never conflate them.
        queue = WorkQueue(tmp_path).ensure()
        expired_spec, healthy_spec = small_specs()
        queue.enqueue(expired_spec)
        queue.enqueue(healthy_spec)
        expired = queue.claim_next("dead-worker")
        healthy = queue.claim_next("live-worker")
        past = time.time() - 60
        os.utime(queue.lease_path(expired.id), (past, past))
        queue.heartbeat(healthy)
        queue.report_failure("f" * 32, "w", "boom")
        status = queue.status(lease_timeout=1.0)
        assert status.claimed == 2
        assert status.expired == 1  # only the lapsed lease
        assert status.failed == 1  # the report, not the expiry

    def test_deep_status_counts_points_in_batched_units(self, tmp_path):
        queue = WorkQueue(tmp_path).ensure()
        queue.enqueue_batch(small_specs())
        queue.enqueue(RunSpec("st", scale=SCALE, seed=7))
        status = queue.status(deep=True)
        assert status.queued == 2
        assert status.queued_points == 3
        assert status.corrupt == 0

    def test_deep_status_quarantines_zero_byte_unit(self, tmp_path):
        # An interrupted enqueue can leave a zero-byte unit file; a
        # status scan must diagnose it — through the same failed/ path a
        # worker uses for corrupt claims — not crash or count it queued.
        queue = WorkQueue(tmp_path).ensure()
        queue.enqueue(RunSpec("st", scale=SCALE))
        (queue.queue_dir / "unit-deadbeef.json").touch()
        status = queue.status(deep=True)
        assert status.queued == 1
        assert status.corrupt == 1
        assert status.failed == 1  # the quarantine report
        assert not queue.queued_path("deadbeef").exists()
        report = json.loads(queue.failed_path("deadbeef").read_text())
        assert report["worker"] == "status-scan"
        # The next scan sees a clean queue: quarantine is once-only.
        again = queue.status(deep=True)
        assert again.corrupt == 0
        assert again.failed == 1

    def test_shallow_status_leaves_corrupt_units_alone(self, tmp_path):
        queue = WorkQueue(tmp_path).ensure()
        (queue.queue_dir / "unit-deadbeef.json").touch()
        status = queue.status()
        assert status.queued == 1  # counted, unread
        assert status.corrupt == 0
        assert queue.queued_path("deadbeef").exists()


class TestQueueWorker:
    def test_worker_drains_queue_and_reports(self, tmp_path):
        queue = WorkQueue(tmp_path).ensure()
        specs = small_specs()
        uids = [queue.enqueue(spec) for spec in specs]
        done = run_queue_worker(tmp_path, max_units=len(specs), poll=0.02)
        assert done == len(specs)
        for uid, spec in zip(uids, specs):
            records = load_results(queue.result_path(uid))
            assert len(records) == 1
            assert records[0]["key"] == spec.key()
        assert not list(queue.claimed_dir.iterdir())
        assert not list(queue.lease_dir.iterdir())

    def test_worker_honours_stop_sentinel(self, tmp_path):
        queue = WorkQueue(tmp_path).ensure()
        queue.enqueue(RunSpec("st", scale=SCALE))
        queue.stop_path.touch()
        assert run_queue_worker(tmp_path, poll=0.02) == 0
        assert len(list(queue.queue_dir.iterdir())) == 1  # untouched

    def test_worker_idle_timeout(self, tmp_path):
        start = time.monotonic()
        assert run_queue_worker(tmp_path, idle_timeout=0.1, poll=0.02) == 0
        assert time.monotonic() - start < 5

    def test_failing_spec_is_reported_and_worker_survives(
        self, tmp_path, monkeypatch
    ):
        # A spec that raises inside the simulator must not poison the
        # queue: the worker files a failure report, stays alive for the
        # other units, and the orchestrator raises the error.
        import repro.runner.pool as pool

        bad = RunSpec("st", scale=SCALE, seed=7)
        real_execute = pool.execute_spec

        def flaky_execute(spec):
            if spec.seed == 7:
                raise SimulationError("synthetic failure")
            return real_execute(spec)

        monkeypatch.setattr(pool, "execute_spec", flaky_execute)
        queue = WorkQueue(tmp_path / "work").ensure()
        good = RunSpec("st", scale=SCALE)
        queue.enqueue(bad)
        queue.enqueue(good)
        done = run_queue_worker(tmp_path / "work", max_units=2, poll=0.02)
        assert done == 2  # the failure did not kill the worker
        assert queue.result_path(unit_id(good)).exists()
        report = json.loads(queue.failed_path(unit_id(bad)).read_text())
        assert report["error"] == "synthetic failure"
        assert not list(queue.claimed_dir.iterdir())
        assert not list(queue.lease_dir.iterdir())

        backend = QueueBackend(tmp_path / "work", poll=0.02, timeout=10)
        runner = SweepRunner(backend=backend)
        with pytest.raises(SimulationError, match="synthetic failure"):
            runner.run_plan([bad, good])
        # The report was consumed (a retry re-attempts) and the abandoned
        # run withdrew its units.
        assert not queue.failed_path(unit_id(bad)).exists()
        assert not list(queue.queue_dir.iterdir())

    def test_simulator_bug_is_reported_not_poisonous(self, tmp_path, monkeypatch):
        # A deterministic non-ReproError (a plain bug in the simulator)
        # must be reported like a spec failure, not cycled through every
        # worker until the fleet is dead.
        import repro.runner.pool as pool

        def buggy_execute(spec):
            raise TypeError("boom")

        monkeypatch.setattr(pool, "execute_spec", buggy_execute)
        queue = WorkQueue(tmp_path / "work").ensure()
        uid = queue.enqueue(RunSpec("st", scale=SCALE))
        assert run_queue_worker(tmp_path / "work", max_units=1, poll=0.02) == 1
        report = json.loads(queue.failed_path(uid).read_text())
        assert report["error"] == "TypeError: boom"
        assert not list(queue.claimed_dir.iterdir())

    def test_interrupted_worker_leaves_no_orphans(self, tmp_path, monkeypatch):
        import repro.runner.pool as pool

        def boom(spec):
            raise KeyboardInterrupt

        monkeypatch.setattr(pool, "execute_spec", boom)
        queue = WorkQueue(tmp_path).ensure()
        uid = queue.enqueue(RunSpec("st", scale=SCALE))
        with pytest.raises(KeyboardInterrupt):
            run_queue_worker(tmp_path, poll=0.02)
        # The unit went back to the queue; no lease, claim or temp file
        # survives the interrupt.
        assert queue.queued_path(uid).exists()
        assert not list(queue.claimed_dir.iterdir())
        assert not list(queue.lease_dir.iterdir())
        assert tree_files(tmp_path, "*.tmp") == []


class TestQueueBackend:
    def test_matches_local_bit_for_bit(self, tmp_path):
        specs = small_specs()
        local = SweepRunner(cache=ResultCache(tmp_path / "a"))
        backend = QueueBackend(tmp_path / "work", poll=0.02, timeout=30)
        queued = SweepRunner(cache=ResultCache(tmp_path / "b"), backend=backend)
        start_worker(tmp_path / "work")
        a = [dataclasses.asdict(r) for r in local.run_plan(specs)]
        b = [dataclasses.asdict(r) for r in queued.run_plan(specs)]
        assert a == b
        files_a = sorted(p.name for p in ResultCache(tmp_path / "a").entries())
        files_b = sorted(p.name for p in ResultCache(tmp_path / "b").entries())
        assert files_a == files_b and files_a
        for name in files_a:
            pa = next((tmp_path / "a").glob(f"??/{name}"))
            pb = next((tmp_path / "b").glob(f"??/{name}"))
            assert pa.read_bytes() == pb.read_bytes()

    def test_crashed_worker_lease_recovered(self, tmp_path):
        # Simulate the crash deterministically: claim a unit and stop
        # heartbeating (the claimant is gone), then let the backend's
        # recovery re-enqueue it for a live worker.
        work = tmp_path / "work"
        specs = small_specs()
        queue = WorkQueue(work).ensure()
        crashed = queue.enqueue(specs[0])
        unit = queue.claim_next("crashed-worker")
        assert unit.id == crashed
        past = time.time() - 60
        os.utime(queue.lease_path(unit.id), (past, past))

        backend = QueueBackend(work, lease_timeout=0.5, poll=0.02, timeout=30)
        runner = SweepRunner(cache=ResultCache(tmp_path / "cache"), backend=backend)
        start_worker(work)
        results = runner.run_plan(specs)
        assert len(results) == len(specs)
        # The recovered unit really was re-executed (not stranded), and
        # nothing claimable or leased is left behind.
        assert not list(queue.claimed_dir.iterdir())
        assert not list(queue.lease_dir.iterdir())
        assert not list(queue.queue_dir.iterdir())
        local = SweepRunner(cache=ResultCache(tmp_path / "local"))
        assert [dataclasses.asdict(r) for r in local.run_plan(specs)] == [
            dataclasses.asdict(r) for r in results
        ]

    def test_timeout_without_workers_withdraws_units(self, tmp_path):
        backend = QueueBackend(tmp_path / "work", poll=0.02, timeout=0.3)
        runner = SweepRunner(backend=backend)
        with pytest.raises(SimulationError, match="timed out"):
            runner.run_plan(small_specs())
        queue = WorkQueue(tmp_path / "work")
        assert not list(queue.queue_dir.iterdir())
        assert tree_files(tmp_path, "*.tmp") == []

    def test_keyboard_interrupt_leaves_no_orphans(self, tmp_path):
        # Ctrl-C lands in the orchestrator's poll sleep; the backend must
        # withdraw its still-unclaimed units and leave no temp files.
        def interrupted_sleep(seconds):
            raise KeyboardInterrupt

        backend = QueueBackend(tmp_path / "work", poll=0.02)
        backend._sleep = interrupted_sleep
        runner = SweepRunner(cache=ResultCache(tmp_path / "cache"), backend=backend)
        with pytest.raises(KeyboardInterrupt):
            runner.run_plan(small_specs())
        queue = WorkQueue(tmp_path / "work")
        assert not list(queue.queue_dir.iterdir())
        assert not list(queue.lease_dir.iterdir())
        assert tree_files(tmp_path, "*.tmp") == []

    def test_streamed_results_survive_a_failed_plan(self, tmp_path):
        # The first streamed result is cached before the interrupt, so a
        # retry of the same plan resumes warm (partial-progress contract).
        work = tmp_path / "work"
        specs = small_specs()
        cache = ResultCache(tmp_path / "cache")

        queue = WorkQueue(work).ensure()
        for spec in specs:
            queue.enqueue(spec)
        run_queue_worker(work, max_units=1, poll=0.02)  # one result lands

        def interrupted_sleep(seconds):
            raise KeyboardInterrupt

        backend = QueueBackend(work, poll=0.02)
        backend._sleep = interrupted_sleep
        runner = SweepRunner(cache=cache, backend=backend)
        with pytest.raises(KeyboardInterrupt):
            runner.run_plan(specs)
        assert runner.submitted == 1
        assert runner.last_report.submitted == 1

        retry = SweepRunner(cache=cache, backend=QueueBackend(work, poll=0.02))
        start_worker(work)
        retry.run_plan(specs)
        assert retry.cache_hits == 1
        assert retry.submitted == len(specs) - 1

    def test_stale_salt_result_is_discarded_and_rerun(self, tmp_path):
        # A result left in a reused work dir by a different simulator
        # version (its salt stamp disagrees) must be re-executed, not
        # served — the queue cannot launder stale payloads past the
        # cache's salt verification.
        work = tmp_path / "work"
        spec = RunSpec("st", scale=SCALE)
        queue = WorkQueue(work).ensure()
        uid = queue.enqueue(spec)
        run_queue_worker(work, max_units=1, poll=0.02)
        result_path = queue.result_path(uid)
        document = json.loads(result_path.read_text())
        document["results"][0]["salt"] = "a-previous-code-version"
        result_path.write_text(json.dumps(document))

        backend = QueueBackend(work, poll=0.02, timeout=30)
        runner = SweepRunner(cache=ResultCache(tmp_path / "cache"), backend=backend)
        start_worker(work)
        (result,) = runner.run_plan([spec])
        assert runner.submitted == 1
        local = SweepRunner().run_plan([spec])[0]
        assert dataclasses.asdict(result) == dataclasses.asdict(local)

    def test_version_skew_fails_after_repeated_discards(self, tmp_path):
        # One stale result is discarded and re-run; a worker *actively*
        # producing old-version results would loop forever — after a few
        # consecutive discards the sweep fails with a diagnosis instead.
        backend = QueueBackend(tmp_path / "work", poll=0.02)
        queue = backend.queue.ensure()
        spec = RunSpec("st", scale=SCALE)
        uid = queue.enqueue(spec)
        stale = {
            "key": spec.key(),
            "spec": spec.to_dict(),
            "payload": {"kind": "sim"},
            "salt": "a-previous-code-version",
        }
        discards = {}
        group = [(spec.key(), spec)]
        for _ in range(QueueBackend.MAX_SALT_DISCARDS - 1):
            write_results(queue.result_path(uid), [stale])
            consumed = backend._consume(uid, group, load_results, discards)
            assert consumed is None  # discarded and re-enqueued
            assert queue.queued_path(uid).exists()
        write_results(queue.result_path(uid), [stale])
        with pytest.raises(SimulationError, match="different simulator version"):
            backend._consume(uid, group, load_results, discards)

    def test_stale_failure_report_is_dropped(self, tmp_path):
        # A failed/ report left by a previous simulator version must not
        # abort a new sweep with an obsolete error — it is dropped and
        # the unit executed normally.
        work = tmp_path / "work"
        queue = WorkQueue(work).ensure()
        spec = RunSpec("st", scale=SCALE)
        uid = unit_id(spec)
        queue.report_failure(uid, "old-worker", "obsolete error")
        report_path = queue.failed_path(uid)
        document = json.loads(report_path.read_text())
        document["salt"] = "a-previous-code-version"
        report_path.write_text(json.dumps(document))

        backend = QueueBackend(work, poll=0.02, timeout=30)
        runner = SweepRunner(backend=backend)
        start_worker(work)
        (result,) = runner.run_plan([spec])
        assert result.total_cycles > 0
        assert not report_path.exists()

    def test_work_dir_is_required(self):
        with pytest.raises(ConfigError, match="work"):
            make_backend("queue")
        with pytest.raises(ConfigError, match="work"):
            QueueBackend(None)

    def test_session_remote_front_door(self, tmp_path):
        work = tmp_path / "work"
        start_worker(work)
        with Session.remote(
            work, poll=0.02, timeout=30, cache_dir=tmp_path / "cache"
        ) as session:
            rs = session.sweep(small_specs())
        assert session.submitted == len(small_specs())
        with Session(cache_dir=tmp_path / "local") as session:
            rs_local = session.sweep(small_specs())
        assert rs.to_json() == rs_local.to_json()
        # Warm rerun over the same cache simulates nothing (and never
        # touches the queue, so no worker is needed).
        with Session.remote(
            tmp_path / "work2", timeout=5, cache_dir=tmp_path / "cache"
        ) as session:
            session.sweep(small_specs())
            assert session.submitted == 0


class TestSigkilledWorker:
    def test_sigkilled_worker_unit_is_reclaimed_and_identical(self, tmp_path):
        # The real crash: a `repro queue worker` subprocess is SIGKILLed
        # mid-unit. Its lease must expire, the unit must be re-claimed
        # and re-executed, and the merged payload must be byte-identical
        # to local execution.
        work = tmp_path / "work"
        spec = RunSpec("ds", mechanism="nvr", scale=1.0)  # ~1s of work
        queue = WorkQueue(work).ensure()
        uid = queue.enqueue(spec)

        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "queue",
                "worker",
                "--work-dir",
                str(work),
                "--idle-timeout",
                "30",
                "--poll",
                "0.02",
                "--heartbeat",
                "0.05",
            ],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 30
            while not queue.claimed_path(uid).exists():
                assert time.monotonic() < deadline, "worker never claimed"
                assert proc.poll() is None, "worker exited prematurely"
                time.sleep(0.01)
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=10)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        # Killed mid-unit: claimed but never reported.
        assert queue.claimed_path(uid).exists()
        assert not queue.result_path(uid).exists()

        backend = QueueBackend(work, lease_timeout=0.5, poll=0.02, timeout=60)
        runner = SweepRunner(cache=ResultCache(tmp_path / "cache"), backend=backend)
        start_worker(work, idle_timeout=60)
        (result,) = runner.run_plan([spec])
        assert runner.submitted == 1
        assert not queue.claimed_path(uid).exists()
        assert not queue.lease_path(uid).exists()

        local = SweepRunner(cache=ResultCache(tmp_path / "local"))
        (expected,) = local.run_plan([spec])
        assert dataclasses.asdict(result) == dataclasses.asdict(expected)
        name = next((tmp_path / "cache").glob("??/*.json")).name
        pa = next((tmp_path / "cache").glob(f"??/{name}"))
        pb = next((tmp_path / "local").glob(f"??/{name}"))
        assert pa.read_bytes() == pb.read_bytes()


class TestQueueBatching:
    def test_single_spec_batch_is_wire_compatible(self, tmp_path):
        # batch=1 must share unit ids and documents with un-batched
        # submitters: same content address, classic "spec" key.
        queue = WorkQueue(tmp_path).ensure()
        spec = RunSpec("st", scale=SCALE)
        assert batch_unit_id((spec,)) == unit_id(spec)
        uid = queue.enqueue_batch((spec,))
        document = json.loads(queue.queued_path(uid).read_text())
        assert "spec" in document and "specs" not in document

    def test_batched_unit_round_trip(self, tmp_path):
        queue = WorkQueue(tmp_path).ensure()
        specs = small_specs()
        uid = queue.enqueue_batch(tuple(specs))
        document = json.loads(queue.queued_path(uid).read_text())
        assert len(document["specs"]) == len(specs)
        unit = queue.claim_next("w")
        assert unit.id == uid
        assert [s.key() for s in unit.specs] == [s.key() for s in specs]
        with pytest.raises(ValueError, match="iterate .specs"):
            unit.spec

    def test_empty_batch_rejected(self, tmp_path):
        queue = WorkQueue(tmp_path).ensure()
        with pytest.raises(ConfigError, match="empty batch"):
            queue.enqueue_batch(())

    def test_worker_writes_one_record_per_spec(self, tmp_path):
        queue = WorkQueue(tmp_path).ensure()
        specs = small_specs()
        uid = queue.enqueue_batch(tuple(specs))
        done = run_queue_worker(tmp_path, max_units=1, poll=0.02)
        assert done == 1
        records = load_results(queue.result_path(uid))
        assert [r["key"] for r in records] == [s.key() for s in specs]
        assert not list(queue.claimed_dir.iterdir())
        assert not list(queue.lease_dir.iterdir())

    def test_batched_backend_matches_local_bit_for_bit(self, tmp_path):
        specs = expand("st", ["inorder", "stream", "nvr"], scales=SCALE)
        local = SweepRunner(cache=ResultCache(tmp_path / "a"))
        backend = QueueBackend(tmp_path / "work", poll=0.02, timeout=30, batch=2)
        queued = SweepRunner(cache=ResultCache(tmp_path / "b"), backend=backend)
        start_worker(tmp_path / "work")
        a = [dataclasses.asdict(r) for r in local.run_plan(specs)]
        b = [dataclasses.asdict(r) for r in queued.run_plan(specs)]
        assert a == b
        files_a = sorted(p.name for p in ResultCache(tmp_path / "a").entries())
        files_b = sorted(p.name for p in ResultCache(tmp_path / "b").entries())
        assert files_a == files_b and files_a
        for name in files_a:
            pa = next((tmp_path / "a").glob(f"??/{name}"))
            pb = next((tmp_path / "b").glob(f"??/{name}"))
            assert pa.read_bytes() == pb.read_bytes()
        # Nothing left behind: the batch units were consumed whole.
        queue = WorkQueue(tmp_path / "work")
        assert not list(queue.queue_dir.iterdir())
        assert not list(queue.results_dir.iterdir())

    def test_batched_failure_names_the_failing_spec(self, tmp_path, monkeypatch):
        import repro.runner.pool as pool

        real = pool.execute_spec

        def failing(spec):
            if spec.mechanism == "nvr":
                raise SimulationError("injected failure")
            return real(spec)

        monkeypatch.setattr(pool, "execute_spec", failing)
        queue = WorkQueue(tmp_path).ensure()
        specs = expand("st", ["inorder", "nvr"], scales=SCALE)
        uid = queue.enqueue_batch(tuple(specs))
        run_queue_worker(tmp_path, max_units=1, poll=0.02)
        report = json.loads(queue.failed_path(uid).read_text())
        assert "injected failure" in report["error"]
        assert "nvr" in report["error"]  # the failing spec is named

    def test_batch_must_be_positive(self, tmp_path):
        with pytest.raises(ConfigError, match="batch must be >= 1"):
            QueueBackend(tmp_path / "work", batch=0)

    def test_session_remote_batch_plumbs_through(self, tmp_path):
        session = Session.remote(tmp_path / "work", batch=3, cache=False)
        assert session._build_backend().batch == 3
        session.close()


class TestQueueCLI:
    def test_status_command(self, tmp_path, capsys):
        queue = WorkQueue(tmp_path / "work").ensure()
        queue.enqueue(RunSpec("st", scale=SCALE))
        rc = cli_main(["queue", "status", "--work-dir", str(tmp_path / "work")])
        out = capsys.readouterr().out
        assert rc == 0
        assert "queued    : 1 (1 point(s))" in out
        assert "(0 lease-expired, recoverable)" in out
        assert "failed    : 0" in out
        assert "stopping  : no" in out

    def test_status_command_reports_zero_byte_quarantine(self, tmp_path, capsys):
        queue = WorkQueue(tmp_path / "work").ensure()
        (queue.queue_dir / "unit-deadbeef.json").touch()
        rc = cli_main(["queue", "status", "--work-dir", str(tmp_path / "work")])
        out = capsys.readouterr().out
        assert rc == 0
        assert "queued    : 0" in out
        assert "failed    : 1" in out
        assert "quarantined 1 corrupt unit(s) into failed/" in out

    def test_status_command_shallow_skips_the_deep_scan(self, tmp_path, capsys):
        queue = WorkQueue(tmp_path / "work").ensure()
        (queue.queue_dir / "unit-deadbeef.json").touch()
        rc = cli_main(
            ["queue", "status", "--shallow", "--work-dir", str(tmp_path / "work")]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "queued    : 1\n" in out
        assert "quarantined" not in out

    def test_worker_command_max_units(self, tmp_path, capsys):
        queue = WorkQueue(tmp_path / "work").ensure()
        uid = queue.enqueue(RunSpec("st", scale=SCALE))
        rc = cli_main(
            [
                "queue",
                "worker",
                "--work-dir",
                str(tmp_path / "work"),
                "--max-units",
                "1",
                "--poll",
                "0.02",
            ]
        )
        assert rc == 0
        assert "executed 1 unit(s)" in capsys.readouterr().out
        assert queue.result_path(uid).exists()

    def test_sweep_backend_queue_requires_work_dir(self, tmp_path, capsys):
        rc = cli_main(
            [
                "sweep",
                "--workloads",
                "st",
                "--scales",
                str(SCALE),
                "--backend",
                "queue",
                "--cache-dir",
                str(tmp_path / "cache"),
            ]
        )
        captured = capsys.readouterr()
        assert rc == 2
        assert "work-dir" in captured.err
        assert "Traceback" not in captured.err


class TestWorkerStats:
    def test_record_completion_accumulates(self, tmp_path):
        queue = WorkQueue(tmp_path).ensure()
        queue.record_completion("w1", points=2)
        queue.record_completion("w1", points=3, failed=True)
        queue.record_completion("w2")
        stats = {s["worker"]: s for s in queue.worker_stats()}
        assert stats["w1"]["units"] == 2
        assert stats["w1"]["points"] == 5
        assert stats["w1"]["failures"] == 1
        assert stats["w2"]["units"] == 1
        assert len(stats["w1"]["timestamps"]) == 2
        assert stats["w1"]["started_at"] <= stats["w1"]["last_done_at"]

    def test_timestamps_are_bounded(self, tmp_path):
        bound = WorkQueue.STATS_TIMESTAMPS
        queue = WorkQueue(tmp_path).ensure()
        for _ in range(bound + 10):
            queue.record_completion("w1")
        (stats,) = queue.worker_stats()
        assert len(stats["timestamps"]) == bound
        assert stats["units"] == bound + 10

    def test_units_per_minute(self):
        from repro.runner.queue import units_per_minute

        # 3 completions over 30 seconds: 2 intervals -> 4 units/min.
        assert units_per_minute({"timestamps": [0.0, 10.0, 30.0]}) == 4.0
        assert units_per_minute({"timestamps": [5.0]}) == 0.0
        assert units_per_minute({"timestamps": []}) == 0.0
        assert units_per_minute({}) == 0.0
        # A zero span (same-instant burst) must not divide by zero.
        assert units_per_minute({"timestamps": [7.0, 7.0]}) == 0.0

    def test_worker_ids_are_sanitised_and_corrupt_files_skipped(self, tmp_path):
        queue = WorkQueue(tmp_path).ensure()
        queue.record_completion("host:1/evil id")
        path = queue.worker_stats_path("host:1/evil id")
        assert path.parent == queue.workers_dir
        assert "/" not in path.name.replace(path.suffix, "")
        (queue.workers_dir / "junk.json").write_text("{broken")
        stats = queue.worker_stats()
        assert [s["worker"] for s in stats] == ["host:1/evil id"]

    def test_queue_worker_records_throughput(self, tmp_path):
        queue = WorkQueue(tmp_path).ensure()
        for spec in small_specs():
            queue.enqueue(spec)
        done = run_queue_worker(tmp_path, worker_id="bench", max_units=2, poll=0.02)
        assert done == 2
        (stats,) = queue.worker_stats()
        assert stats["worker"] == "bench"
        assert stats["units"] == 2
        assert stats["points"] == 2
        assert stats["failures"] == 0
        from repro.runner.queue import units_per_minute

        assert units_per_minute(stats) > 0.0

    def test_queue_status_json_contract(self, tmp_path, capsys):
        queue = WorkQueue(tmp_path).ensure()
        queue.enqueue(RunSpec("st", scale=SCALE))
        rc = cli_main(["queue", "status", "--work-dir", str(tmp_path), "--json"])
        assert rc == 0
        document = json.loads(capsys.readouterr().out)
        assert document["work_dir"] == str(tmp_path)
        assert document["queued"] == 1
        assert document["queued_points"] == 1
        assert document["claimed"] == 0
        assert document["stopping"] is False
        # The document mirrors QueueStatus.to_dict(), field for field.
        status = queue.status(deep=True)
        assert {k: v for k, v in document.items() if k != "work_dir"} == (
            status.to_dict()
        )
