"""Tests for two-sides-sparsity lowering (the paper's second Fig. 2 listing)."""

import numpy as np
import pytest

from repro.core import NVRPrefetcher
from repro.errors import ProgramError
from repro.prefetch import (
    DecoupledVectorRunahead,
    IndirectMemoryPrefetcher,
    NullPrefetcher,
)
from repro.sim.npu.isa import STREAM_IA_GATHER, STREAM_IA_METADATA
from repro.sim.npu.program import GatherStream, ProgramConfig
from repro.sim.npu.two_side import build_two_side_program
from repro.sim.soc import System
from repro.sparse.generate import uniform_csr


@pytest.fixture(scope="module")
def operands():
    # Sized so IA's compressed value array meaningfully exceeds what the
    # L2 retains across the run (the regime the pattern targets).
    w = uniform_csr(120, 1024, 0.03, seed=1)
    ia = uniform_csr(1024, 2048, 0.02, seed=2)
    return w, ia


@pytest.fixture(scope="module")
def program(operands):
    w, ia = operands
    return build_two_side_program("2s", w, ia, ProgramConfig(elem_bytes=2))


class TestGatherStreamCompressed:
    def test_address_through_rowptr(self):
        rowptr = np.array([0, 3, 3, 10], dtype=np.int64)
        gs = GatherStream(
            stream_id=3,
            base=0x1000,
            row_bytes=2,
            n_slots=3,
            table_rowptr=rowptr,
            elem_bytes=2,
        )
        assert gs.address(0) == 0x1000
        assert gs.address(2) == 0x1000 + 3 * 2
        assert not gs.affine
        assert gs.compressed

    def test_segment_bytes_dynamic(self):
        rowptr = np.array([0, 3, 3, 10], dtype=np.int64)
        gs = GatherStream(
            stream_id=3,
            base=0,
            row_bytes=2,
            n_slots=3,
            table_rowptr=rowptr,
            elem_bytes=2,
        )
        assert gs.segment_bytes(0) == 6
        assert gs.segment_bytes(1) == 1  # empty row clamps to 1 byte
        assert gs.segment_bytes(2) == 14

    def test_footprint_is_nnz_bytes(self):
        rowptr = np.array([0, 3, 10], dtype=np.int64)
        gs = GatherStream(
            stream_id=3,
            base=0,
            row_bytes=2,
            n_slots=2,
            table_rowptr=rowptr,
            elem_bytes=2,
        )
        assert gs.footprint_bytes() == 20


class TestLowering:
    def test_shape_mismatch_rejected(self, operands):
        w, _ = operands
        bad_ia = uniform_csr(100, 50, 0.1, seed=3)
        with pytest.raises(ProgramError):
            build_two_side_program("x", w, bad_ia, ProgramConfig())

    def test_two_gather_chains_per_tile(self, program):
        for tile in program.tiles:
            streams = [g.stream_id for g in tile.gathers]
            assert streams == [STREAM_IA_METADATA, STREAM_IA_GATHER]

    def test_gathers_are_non_affine(self, program):
        for tile in program.tiles[:5]:
            assert all(not g.affine for g in tile.gathers)

    def test_segment_addresses_match_ia_rowptr(self, operands, program):
        _, ia = operands
        cfg = program.config
        stream = program.gather_streams[STREAM_IA_GATHER]
        for tile in program.tiles[:20]:
            g = tile.gathers[1]
            for pos, idx in enumerate(tile.indices):
                expected = cfg.ia_base + int(ia.rowptr[idx]) * cfg.elem_bytes
                assert g.byte_addrs[pos] == expected
                assert stream.address(int(idx)) == expected

    def test_segment_lengths_match_ia_row_nnz(self, operands, program):
        _, ia = operands
        cfg = program.config
        for tile in program.tiles[:20]:
            g = tile.gathers[1]
            for pos, idx in enumerate(tile.indices):
                nnz = int(ia.rowptr[idx + 1] - ia.rowptr[idx])
                expected = max(1, nnz * cfg.elem_bytes)
                assert g.segment_bytes(pos) == expected

    def test_per_elem_segment_validation(self):
        from repro.sim.npu.isa import VectorGather

        with pytest.raises(ProgramError):
            VectorGather(
                stream_id=3,
                index_values=np.array([1, 2], dtype=np.int64),
                byte_addrs=np.array([0, 64], dtype=np.int64),
                seg_bytes=64,
                affine=False,
                seg_bytes_per_elem=np.array([64], dtype=np.int64),
            )

    def test_element_lines_respect_dynamic_lengths(self):
        from repro.sim.npu.isa import VectorGather

        g = VectorGather(
            stream_id=3,
            index_values=np.array([1, 2], dtype=np.int64),
            byte_addrs=np.array([0, 128], dtype=np.int64),
            seg_bytes=256,
            affine=False,
            seg_bytes_per_elem=np.array([32, 256], dtype=np.int64),
        )
        lines = g.element_lines(64)
        assert list(lines[0]) == [0]
        assert list(lines[1]) == [128, 192, 256, 320]


class TestExecutionAndPrefetch:
    def test_runs_deterministically(self, program):
        a = System(program=program, prefetcher_factory=NullPrefetcher).run()
        b = System(program=program, prefetcher_factory=NullPrefetcher).run()
        assert a.total_cycles == b.total_cycles

    def test_affine_prefetchers_cover_little(self, program):
        nvr = System(program=program, prefetcher_factory=NVRPrefetcher).run()
        for factory in (IndirectMemoryPrefetcher, DecoupledVectorRunahead):
            result = System(program=program, prefetcher_factory=factory).run()
            # They cover the streaming side only; the IA value chain
            # (addressed through rowptr data) stays dark.
            assert result.stats.coverage() < 0.5
            assert result.stats.coverage() < nvr.stats.coverage() - 0.3

    def test_nvr_covers_the_chain(self, program):
        result = System(program=program, prefetcher_factory=NVRPrefetcher).run()
        assert result.stats.coverage() > 0.75
        assert result.stats.prefetch.accuracy > 0.85

    def test_nvr_beats_baselines(self, program):
        nvr = System(program=program, prefetcher_factory=NVRPrefetcher).run()
        baselines = (
            NullPrefetcher,
            IndirectMemoryPrefetcher,
            DecoupledVectorRunahead,
        )
        for factory in baselines:
            other = System(program=program, prefetcher_factory=factory).run()
            assert nvr.total_cycles < other.total_cycles

    def test_functional_equivalence_with_reference_kernel(self, operands):
        """The program touches exactly the IA values the two-side SpMM
        reference reads: every gathered byte range maps to stored nnz."""
        w, ia = operands
        prog = build_two_side_program("2s", w, ia, ProgramConfig(elem_bytes=2))
        cfg = prog.config
        for tile in prog.tiles[:30]:
            g = tile.gathers[1]
            for pos, idx in enumerate(tile.indices):
                start = (g.byte_addrs[pos] - cfg.ia_base) // cfg.elem_bytes
                assert start == ia.rowptr[idx]
