"""Tests for the MSHR file."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.sim.memory.mshr import MSHRFile


class TestMSHRBasics:
    def test_rejects_zero_capacity(self):
        with pytest.raises(ConfigError):
            MSHRFile(0)

    def test_empty_lookup_returns_none(self):
        mshr = MSHRFile(4)
        assert mshr.lookup(0, 0x1000) is None

    def test_allocate_then_lookup_coalesces(self):
        mshr = MSHRFile(4)
        mshr.allocate(0, 0x1000, ready_at=100)
        assert mshr.lookup(10, 0x1000) == 100
        assert mshr.coalesced == 1

    def test_entry_retires_after_ready(self):
        mshr = MSHRFile(4)
        mshr.allocate(0, 0x1000, ready_at=100)
        assert mshr.lookup(101, 0x1000) is None

    def test_occupancy_counts_outstanding(self):
        mshr = MSHRFile(4)
        mshr.allocate(0, 0x1000, ready_at=100)
        mshr.allocate(0, 0x2000, ready_at=150)
        assert mshr.occupancy(50) == 2
        assert mshr.occupancy(120) == 1
        assert mshr.occupancy(200) == 0

    def test_double_allocate_raises(self):
        mshr = MSHRFile(4)
        mshr.allocate(0, 0x1000, ready_at=100)
        with pytest.raises(ConfigError):
            mshr.allocate(0, 0x1000, ready_at=120)


class TestMSHRStructural:
    def test_free_slot_when_not_full(self):
        mshr = MSHRFile(2)
        assert mshr.earliest_free_slot(5) == 5

    def test_full_file_defers_to_oldest_retire(self):
        mshr = MSHRFile(2)
        mshr.allocate(0, 0x1000, ready_at=100)
        mshr.allocate(0, 0x2000, ready_at=150)
        assert mshr.earliest_free_slot(10) == 100
        assert mshr.structural_stalls == 1

    def test_allocate_when_full_raises(self):
        mshr = MSHRFile(1)
        mshr.allocate(0, 0x1000, ready_at=100)
        with pytest.raises(ConfigError):
            mshr.allocate(0, 0x2000, ready_at=150)

    def test_peak_occupancy_tracked(self):
        mshr = MSHRFile(8)
        for i in range(5):
            mshr.allocate(0, 0x1000 * (i + 1), ready_at=100 + i)
        assert mshr.peak_occupancy == 5


class TestMSHRProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=10_000),
                st.integers(min_value=1, max_value=64),
            ),
            min_size=1,
            max_size=64,
        )
    )
    def test_occupancy_never_exceeds_capacity(self, events):
        """Allocating through earliest_free_slot keeps occupancy bounded."""
        capacity = 4
        mshr = MSHRFile(capacity)
        now = 0
        for delay, line_idx in sorted(events):
            now = max(now, delay)
            line = line_idx * 64
            if mshr.lookup(now, line) is not None:
                continue
            start = max(now, mshr.earliest_free_slot(now))
            mshr.allocate(start, line, ready_at=start + 100)
            assert mshr.occupancy(start) <= capacity
