"""Cross-cutting integration tests: paper-shape invariants that span
modules, plus hypothesis properties over randomly generated programs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import run_workload
from repro.core import NVRPrefetcher
from repro.prefetch import NullPrefetcher
from repro.sim.npu.program import ProgramConfig, build_one_side_program
from repro.sim.soc import System
from repro.sparse.csr import CSRMatrix
from repro.workloads import WORKLOAD_ORDER

SCALE = 0.2


class TestDtypeOrdering:
    """Fig. 5's panel structure: wider data -> more lines -> more latency."""

    @pytest.mark.parametrize("workload", ["ds", "gcn"])
    def test_wider_dtype_slower(self, workload):
        cycles = {
            dtype: run_workload(
                workload, mechanism="inorder", dtype=dtype, scale=SCALE
            ).total_cycles
            for dtype in ("int8", "fp16", "int32")
        }
        assert cycles["int8"] < cycles["fp16"] < cycles["int32"]

    def test_wider_dtype_more_offchip(self):
        traffic = {
            dtype: run_workload(
                "ds", mechanism="inorder", dtype=dtype, scale=SCALE
            ).stats.traffic.off_chip_total_bytes
            for dtype in ("int8", "int32")
        }
        assert traffic["int32"] > 2 * traffic["int8"]


class TestNVRUniversality:
    """The paper's closing claim: NVR helps every workload class."""

    @pytest.mark.parametrize("workload", WORKLOAD_ORDER)
    def test_nvr_never_slower_than_inorder(self, workload):
        ino = run_workload(workload, mechanism="inorder", scale=SCALE)
        nvr = run_workload(workload, mechanism="nvr", scale=SCALE)
        assert nvr.total_cycles <= ino.total_cycles

    @pytest.mark.parametrize("workload", WORKLOAD_ORDER)
    def test_miss_reduction_everywhere(self, workload):
        ino = run_workload(workload, mechanism="inorder", scale=SCALE)
        nvr = run_workload(workload, mechanism="nvr", scale=SCALE)
        assert nvr.stats.l2.demand_misses < ino.stats.l2.demand_misses


def random_program(draw_rows, draw_cols, density, seed, vector_width=8):
    rng = np.random.default_rng(seed)
    dense = rng.random((draw_rows, draw_cols)).astype(np.float32)
    dense[dense > density] = 0.0
    dense[0, 0] = 1.0  # guarantee at least one non-zero
    weights = CSRMatrix.from_dense(dense)
    return build_one_side_program(
        "prop",
        weights,
        ProgramConfig(vector_width=vector_width, elem_bytes=2, ia_seg_elems=16),
    )


class TestExecutorProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(min_value=2, max_value=24),
        st.integers(min_value=8, max_value=128),
        st.floats(min_value=0.05, max_value=0.5),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_invariants_random_programs(self, rows, cols, density, seed):
        """For any valid program: determinism, OoO <= InO, perfect <= real,
        accounting identities."""
        program = random_program(rows, cols, density, seed)
        ino = System(program=program, prefetcher_factory=NullPrefetcher).run()
        ino2 = System(program=program, prefetcher_factory=NullPrefetcher).run()
        assert ino.total_cycles == ino2.total_cycles

        ooo = System(
            program=program, prefetcher_factory=NullPrefetcher, mode="ooo"
        ).run()
        assert ooo.total_cycles <= ino.total_cycles

        perfect = System(program=program).run(perfect=True)
        assert perfect.total_cycles <= ino.total_cycles

        stats = ino.stats
        assert stats.l2.demand_hits + stats.l2.demand_inflight_hits + \
            stats.l2.demand_misses == stats.l2.demand_accesses
        assert stats.batch.elements == program.total_demand_elements()
        assert stats.traffic.off_chip_demand_bytes == 64 * stats.l2.demand_misses

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_nvr_safe_on_random_programs(self, seed):
        """NVR must never corrupt accounting or slow a run materially."""
        program = random_program(16, 96, 0.3, seed)
        base = System(program=program, prefetcher_factory=NullPrefetcher).run()
        nvr = System(program=program, prefetcher_factory=NVRPrefetcher).run()
        assert nvr.total_cycles <= base.total_cycles * 1.05
        stats = nvr.stats
        assert stats.prefetch.useful + stats.prefetch.late <= stats.prefetch.issued


class TestNSBPanel:
    def test_nsb_keeps_coverage(self):
        for workload in ("ds", "mk"):
            plain = run_workload(workload, mechanism="nvr", scale=SCALE)
            nsb = run_workload(workload, mechanism="nvr", nsb=True, scale=SCALE)
            assert nsb.stats.coverage() >= plain.stats.coverage() - 0.05

    def test_stream_pollutes_small_nsb(self):
        """Paper: 'NSB activation depends on prefetcher accuracy' — the
        inaccurate stream prefetcher gains little or loses with an NSB."""
        plain = run_workload("scn", mechanism="stream", scale=SCALE)
        nsb = run_workload("scn", mechanism="stream", nsb=True, scale=SCALE)
        nvr_plain = run_workload("scn", mechanism="nvr", scale=SCALE)
        nvr_nsb = run_workload("scn", mechanism="nvr", nsb=True, scale=SCALE)
        stream_gain = plain.total_cycles / nsb.total_cycles
        nvr_gain = nvr_plain.total_cycles / nvr_nsb.total_cycles
        assert nvr_gain >= stream_gain - 0.02
