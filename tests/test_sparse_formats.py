"""Tests for bitmap and run-length sparse encodings."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import WorkloadError
from repro.sparse.csr import CSRMatrix
from repro.sparse.formats import BitmapMatrix, RunLengthMatrix


def dense_strategy(max_dim=10):
    shapes = st.tuples(
        st.integers(min_value=1, max_value=max_dim),
        st.integers(min_value=1, max_value=max_dim),
    )
    return shapes.flatmap(
        lambda s: hnp.arrays(
            dtype=np.float32,
            shape=s,
            elements=st.sampled_from([0.0, 0.0, 1.0, -2.0, 7.5]),
        )
    )


SAMPLE = np.array(
    [[0, 1, 0, 0], [2, 0, 0, 3], [0, 0, 0, 0], [4, 5, 6, 0]], dtype=np.float32
)


class TestBitmap:
    def test_roundtrip(self):
        bm = BitmapMatrix.from_dense(SAMPLE)
        assert np.array_equal(bm.to_dense(), SAMPLE)

    def test_nnz(self):
        assert BitmapMatrix.from_dense(SAMPLE).nnz == 6

    def test_metadata_bits_is_dense_bitcount(self):
        assert BitmapMatrix.from_dense(SAMPLE).metadata_bits == 16

    def test_value_index_popcount(self):
        bm = BitmapMatrix.from_dense(SAMPLE)
        assert bm.value_index(0, 1) == 0
        assert bm.value_index(1, 3) == 2
        assert bm.value_index(3, 2) == 5

    def test_value_index_on_zero_raises(self):
        bm = BitmapMatrix.from_dense(SAMPLE)
        with pytest.raises(WorkloadError):
            bm.value_index(0, 0)

    def test_from_csr(self):
        csr = CSRMatrix.from_dense(SAMPLE)
        bm = BitmapMatrix.from_csr(csr)
        assert np.array_equal(bm.to_dense(), SAMPLE)

    def test_rejects_non_2d(self):
        with pytest.raises(WorkloadError):
            BitmapMatrix.from_dense(np.zeros(3, dtype=np.float32))

    @settings(max_examples=40)
    @given(dense_strategy())
    def test_roundtrip_property(self, dense):
        bm = BitmapMatrix.from_dense(dense)
        assert np.array_equal(bm.to_dense(), dense)


class TestRunLength:
    def test_roundtrip(self):
        rl = RunLengthMatrix.from_dense(SAMPLE)
        assert np.array_equal(rl.to_dense(), SAMPLE)

    def test_nnz(self):
        assert RunLengthMatrix.from_dense(SAMPLE).nnz == 6

    def test_metadata_bits(self):
        assert RunLengthMatrix.from_dense(SAMPLE).metadata_bits == 6 * 32

    def test_runs_encode_zero_gaps(self):
        rl = RunLengthMatrix.from_dense(SAMPLE)
        # Row 0 is [0,1,0,0]: one value after a run of 1 zero.
        assert rl.runs[0] == 1

    def test_from_csr(self):
        csr = CSRMatrix.from_dense(SAMPLE)
        rl = RunLengthMatrix.from_csr(csr)
        assert np.array_equal(rl.to_dense(), SAMPLE)

    def test_rejects_non_2d(self):
        with pytest.raises(WorkloadError):
            RunLengthMatrix.from_dense(np.zeros(3, dtype=np.float32))

    @settings(max_examples=40)
    @given(dense_strategy())
    def test_roundtrip_property(self, dense):
        rl = RunLengthMatrix.from_dense(dense)
        assert np.array_equal(rl.to_dense(), dense)

    @settings(max_examples=40)
    @given(dense_strategy())
    def test_formats_agree(self, dense):
        bm = BitmapMatrix.from_dense(dense)
        rl = RunLengthMatrix.from_dense(dense)
        assert np.array_equal(bm.to_dense(), rl.to_dense())
