"""Tests for networkx-backed graph topologies in the GNN workloads."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads import build_workload
from repro.workloads.gcn import networkx_adjacency


class TestNetworkxAdjacency:
    def test_ba_graph_shape(self):
        adj = networkx_adjacency("ba", n_nodes=256, avg_degree=8, seed=1, n_rows=64)
        assert adj.n_rows == 64
        assert adj.n_cols == 256
        assert adj.nnz > 0

    def test_ba_has_hubs(self):
        adj = networkx_adjacency("ba", n_nodes=512, avg_degree=8, seed=2, n_rows=512)
        degrees = adj.row_nnz()
        assert degrees.max() > 3 * max(1.0, degrees.mean())

    def test_ws_is_regularish(self):
        adj = networkx_adjacency("ws", n_nodes=512, avg_degree=8, seed=3, n_rows=512)
        degrees = adj.row_nnz()
        assert degrees.std() < degrees.mean()

    def test_unknown_model_rejected(self):
        with pytest.raises(WorkloadError):
            networkx_adjacency("erdos", 64, 4, 0, 32)

    def test_deterministic(self):
        a = networkx_adjacency("ba", 256, 8, seed=7, n_rows=64)
        b = networkx_adjacency("ba", 256, 8, seed=7, n_rows=64)
        assert np.array_equal(a.col_indices, b.col_indices)


class TestGCNGraphModels:
    @pytest.mark.parametrize("model", ["ba", "ws"])
    def test_builds_and_runs(self, model):
        program = build_workload("gcn", scale=0.15, graph_model=model)
        assert program.n_tiles > 0

    def test_default_remains_powerlaw(self):
        default = build_workload("gcn", scale=0.15)
        ba = build_workload("gcn", scale=0.15, graph_model="ba")
        assert not np.array_equal(default.col_stream, ba.col_stream)
