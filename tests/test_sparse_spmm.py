"""Tests for the reference SpMM kernels against dense numpy ground truth."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import WorkloadError
from repro.sparse.csr import CSRMatrix
from repro.sparse.generate import uniform_csr
from repro.sparse.spmm import spmm_one_side, spmm_two_side


def sparse_dense(shape):
    return hnp.arrays(
        dtype=np.float32,
        shape=shape,
        elements=st.sampled_from([0.0, 0.0, 0.0, 1.0, -2.0, 0.5]),
    )


class TestOneSide:
    def test_matches_dense_product(self):
        w = uniform_csr(16, 24, 0.2, seed=1)
        ia = np.arange(24 * 8, dtype=np.float32).reshape(24, 8)
        out = spmm_one_side(w, ia)
        expected = w.to_dense() @ ia
        assert np.allclose(out, expected, rtol=1e-5)

    def test_empty_rows_produce_zeros(self):
        w = CSRMatrix.from_dense(np.array([[0, 0], [1, 0]], dtype=np.float32))
        ia = np.ones((2, 3), dtype=np.float32)
        out = spmm_one_side(w, ia)
        assert np.array_equal(out[0], np.zeros(3, dtype=np.float32))

    def test_shape_mismatch_raises(self):
        w = uniform_csr(4, 8, 0.5, seed=0)
        with pytest.raises(WorkloadError):
            spmm_one_side(w, np.ones((9, 2), dtype=np.float32))

    def test_non_2d_activations_raise(self):
        w = uniform_csr(4, 8, 0.5, seed=0)
        with pytest.raises(WorkloadError):
            spmm_one_side(w, np.ones(8, dtype=np.float32))

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=1000),
    )
    def test_random_property(self, m, k, n, seed):
        rng = np.random.default_rng(seed)
        dense_w = rng.random((m, k)).astype(np.float32)
        dense_w[dense_w < 0.6] = 0.0
        ia = rng.random((k, n)).astype(np.float32)
        w = CSRMatrix.from_dense(dense_w)
        assert np.allclose(spmm_one_side(w, ia), dense_w @ ia, atol=1e-4)


class TestTwoSide:
    def test_matches_dense_product(self):
        w = uniform_csr(12, 16, 0.25, seed=2)
        ia = uniform_csr(16, 10, 0.3, seed=3)
        out = spmm_two_side(w, ia)
        expected = w.to_dense() @ ia.to_dense()
        assert np.allclose(out, expected, rtol=1e-5)

    def test_shape_mismatch_raises(self):
        w = uniform_csr(4, 8, 0.5, seed=0)
        ia = uniform_csr(9, 4, 0.5, seed=0)
        with pytest.raises(WorkloadError):
            spmm_two_side(w, ia)

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=1, max_value=7),
        st.integers(min_value=1, max_value=7),
        st.integers(min_value=1, max_value=7),
        st.integers(min_value=0, max_value=1000),
    )
    def test_random_property(self, m, k, n, seed):
        rng = np.random.default_rng(seed)
        dense_w = rng.random((m, k)).astype(np.float32)
        dense_w[dense_w < 0.5] = 0.0
        dense_ia = rng.random((k, n)).astype(np.float32)
        dense_ia[dense_ia < 0.5] = 0.0
        out = spmm_two_side(
            CSRMatrix.from_dense(dense_w), CSRMatrix.from_dense(dense_ia)
        )
        assert np.allclose(out, dense_w @ dense_ia, atol=1e-4)

    def test_agrees_with_one_side_on_dense_ia(self):
        w = uniform_csr(10, 12, 0.3, seed=4)
        dense_ia = np.random.default_rng(5).random((12, 6)).astype(np.float32)
        ia_sparse = CSRMatrix.from_dense(dense_ia)
        assert np.allclose(
            spmm_two_side(w, ia_sparse), spmm_one_side(w, dense_ia), atol=1e-4
        )
