"""End-to-end tests for the composed NVR mechanism."""

import numpy as np
import pytest

from repro.core import NVRConfig, NVRPrefetcher, nsb_config
from repro.core.snooper import Snooper
from repro.errors import SimulationError
from repro.prefetch import (
    DecoupledVectorRunahead,
    IndirectMemoryPrefetcher,
    NullPrefetcher,
    StreamPrefetcher,
)
from repro.sim.memory.hierarchy import MemoryConfig
from repro.sim.npu.program import ProgramConfig, build_one_side_program
from repro.sim.npu.sparse_unit import SparseUnit
from repro.sim.soc import System
from repro.sparse.generate import uniform_csr


def irregular_program(seed=1):
    w = uniform_csr(120, 4096, 0.02, seed=seed)
    return build_one_side_program("irr", w, ProgramConfig(elem_bytes=2))


def hashed_program(seed=2):
    w = uniform_csr(120, 2048, 0.04, seed=seed)
    perm = np.random.default_rng(seed).permutation(2048).astype(np.int64)
    return build_one_side_program(
        "hash", w, ProgramConfig(elem_bytes=2, index_map=perm)
    )


def run(program, factory=NVRPrefetcher, memory=None, mode="inorder"):
    return System(
        program=program,
        memory=memory or MemoryConfig(),
        prefetcher_factory=factory,
        mode=mode,
    ).run()


class TestNVRCoverageAccuracy:
    def test_coverage_above_90_percent_affine(self):
        res = run(irregular_program())
        assert res.stats.coverage() > 0.9

    def test_coverage_above_90_percent_hashed(self):
        """NVR resolves sparse_func on the sparse unit — hash is no barrier."""
        res = run(hashed_program())
        assert res.stats.coverage() > 0.9

    def test_accuracy_above_90_percent(self):
        for prog in (irregular_program(), hashed_program()):
            res = run(prog)
            assert res.stats.prefetch.accuracy > 0.9


class TestNVRBeatsBaselines:
    @pytest.mark.parametrize(
        "baseline",
        [StreamPrefetcher, IndirectMemoryPrefetcher, DecoupledVectorRunahead],
    )
    def test_fewer_cycles_than(self, baseline):
        prog = irregular_program()
        assert run(prog).total_cycles < run(prog, baseline).total_cycles

    def test_miss_reduction_vs_best_baseline(self):
        """Paper headline: ~90% cache-miss reduction vs SOTA prefetchers.

        Count unresolved stall events (true misses plus late prefetches —
        both stall the NPU pipeline).
        """
        prog = irregular_program()
        nvr = run(prog).stats
        dvr = run(prog, DecoupledVectorRunahead).stats
        nvr_stalls = nvr.l2.demand_misses + nvr.prefetch.late
        dvr_stalls = dvr.l2.demand_misses + dvr.prefetch.late
        assert nvr_stalls < 0.3 * dvr_stalls

    def test_speedup_vs_no_prefetch(self):
        """Paper headline: ~4x speedup on sparse workloads vs no prefetch."""
        prog = irregular_program()
        base = run(prog, NullPrefetcher).total_cycles
        nvr = run(prog).total_cycles
        assert base / nvr > 2.5

    def test_dominates_dvr_on_hashed(self):
        prog = hashed_program()
        nvr = run(prog)
        dvr = run(prog, DecoupledVectorRunahead)
        assert nvr.total_cycles < dvr.total_cycles
        assert nvr.stats.coverage() > dvr.stats.coverage() + 0.4


class TestNVRWithNSB:
    def test_nsb_helps_reuse_heavy_pattern(self):
        """NSB pays off where irregular lines are re-referenced (Sec. IV-G:
        "implicit cache line reuse patterns"); low-reuse traces are neutral.
        """
        from repro.sparse.generate import zipf_csr

        w = zipf_csr(150, 4096, 0.03, alpha=1.4, seed=9)
        prog = build_one_side_program("reuse", w, ProgramConfig(elem_bytes=2))
        plain = run(prog)
        with_nsb = run(prog, memory=MemoryConfig().with_nsb(True))
        assert with_nsb.total_cycles < plain.total_cycles
        assert with_nsb.stats.nsb.demand_hits > 0

    def test_nsb_neutral_on_low_reuse(self):
        prog = irregular_program()
        plain = run(prog).total_cycles
        with_nsb = run(prog, memory=MemoryConfig().with_nsb(True)).total_cycles
        assert abs(with_nsb - plain) / plain < 0.05

    def test_nsb_hits_recorded(self):
        prog = irregular_program()
        res = run(prog, memory=MemoryConfig().with_nsb(True))
        assert res.stats.nsb.demand_hits > 0

    def test_nsb_config_shapes(self):
        for kib in (4, 8, 16, 32):
            cfg = nsb_config(size_kib=kib)
            assert cfg.size_bytes == kib * 1024


class TestNVRMechanics:
    def test_runahead_uses_sparse_unit_idle_slots(self):
        prog = irregular_program()
        res = run(prog)
        assert res.stats.runahead_invocations > 0

    def test_controller_counters(self):
        prog = irregular_program()
        captured = []

        def factory():
            p = NVRPrefetcher()
            captured.append(p)
            return p

        run(prog, factory)
        c = captured[0].controller
        assert c.windows_opened > 0
        assert c.exact_prefetches > 0
        assert c.vmig.compression_ratio > 0.5
        assert "nvr:" in captured[0].describe()

    def test_unattached_use_raises(self):
        p = NVRPrefetcher()
        with pytest.raises(SimulationError):
            p.on_data_return(0, 0)

    def test_depth_config_respected(self):
        prog = irregular_program()
        shallow = run(prog, lambda: NVRPrefetcher(NVRConfig(depth_tiles=1)))
        deep = run(prog, lambda: NVRPrefetcher(NVRConfig(depth_tiles=4)))
        # Deeper runahead hides more latency on this workload.
        assert deep.total_cycles <= shallow.total_cycles

    def test_no_approximate_mode_still_covers(self):
        prog = irregular_program()
        res = run(prog, lambda: NVRPrefetcher(NVRConfig(approximate=False)))
        assert res.stats.coverage() > 0.85


class TestSnooper:
    def test_requires_sparse_unit(self):
        s = Snooper()
        with pytest.raises(SimulationError):
            s.read_sparse_window(0)
        with pytest.raises(SimulationError):
            s.current_row()

    def test_reads_window(self):
        prog = irregular_program()
        unit = SparseUnit(prog)
        s = Snooper()
        s.attach_sparse_unit(unit)
        win = s.read_sparse_window(0)
        assert win.row_start == int(prog.rowptr[0])
        assert win.row_end == int(prog.rowptr[1])
        assert s.register_reads == 1

    def test_event_counters(self):
        s = Snooper()
        s.observe_branch(1, 2, 3, 0)
        s.observe_dispatch()
        assert s.branch_events == 1
        assert s.dispatch_events == 1
