"""Multi-tenant cache namespaces: salts, directories, scoped gc/clear.

The isolation contract behind the server's ``X-Repro-Tenant`` header:

* each tenant addresses entries with its own salt *and* its own
  subdirectory, so namespaces are disjoint two independent ways;
* the default (tenant-less) namespace is exactly what local Sessions
  use — tenant traffic never pollutes it;
* ``repro cache gc/clear --tenant`` bound one tenant's quota without
  touching anyone else's entries.
"""

import json

import pytest

from repro.__main__ import main as cli_main
from repro.errors import ConfigError
from repro.runner import ResultCache, RunSpec, tenant_salt, validate_tenant
from repro.runner.cache import TENANTS_DIR
from repro.session import Session

SCALE = 0.05


def payload_for(n: int) -> dict:
    return {"kind": "trace", "trace": {"n": n}}


class TestTenantNames:
    @pytest.mark.parametrize("name", ["alice", "a", "team-7", "a.b_c", "X" * 64])
    def test_valid_names_pass_through(self, name):
        assert validate_tenant(name) == name

    @pytest.mark.parametrize(
        "name", ["", ".hidden", "-flag", "a/b", "a b", "x" * 65, "é", None, 42]
    )
    def test_invalid_names_are_config_errors(self, name):
        with pytest.raises(ConfigError, match="invalid tenant name"):
            validate_tenant(name)

    def test_tenant_salt_suffixes_the_base(self):
        assert tenant_salt("alice", base="S") == "S:tenant:alice"
        assert tenant_salt("alice", base="S") != tenant_salt("bob", base="S")
        # Default base folds in the code fingerprint.
        assert tenant_salt("alice").endswith(":tenant:alice")


class TestTenantNamespaces:
    def test_same_spec_different_tenants_is_disjoint(self, tmp_path):
        spec = RunSpec("st", scale=SCALE)
        default = ResultCache(tmp_path)
        alice = default.for_tenant("alice")
        bob = default.for_tenant("bob")

        assert default.salt != alice.salt != bob.salt
        assert alice.root == tmp_path / TENANTS_DIR / "alice"
        assert alice.key_for(spec) != bob.key_for(spec)
        assert alice.key_for(spec) != default.key_for(spec)

        alice.put(spec, payload_for(1))
        assert alice.get(spec) == payload_for(1)
        assert bob.get(spec) is None
        assert default.get(spec) is None
        # The default namespace's entry scan does not see tenant dirs.
        assert default.entries() == []
        assert len(alice) == 1

    def test_copied_entries_degrade_to_misses_across_namespaces(self, tmp_path):
        # Even with the file copied to the right *path* in another
        # namespace, the stored salt no longer matches: served as a miss.
        spec = RunSpec("st", scale=SCALE)
        alice = ResultCache(tmp_path, tenant="alice")
        bob = ResultCache(tmp_path, tenant="bob")
        source = alice.put(spec, payload_for(1))
        target = bob.path_for(spec)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_bytes(source.read_bytes())
        assert bob.get(spec) is None

    def test_for_tenant_is_identity_on_same_namespace(self, tmp_path):
        cache = ResultCache(tmp_path, tenant="alice")
        assert cache.for_tenant("alice") is cache
        assert cache.for_tenant(None).tenant is None
        assert cache.for_tenant(None).base_salt == cache.base_salt

    def test_tenants_listing(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.tenants() == []
        cache.for_tenant("bob").put(RunSpec("st", scale=SCALE), payload_for(1))
        cache.for_tenant("alice").put(RunSpec("st", scale=SCALE), payload_for(2))
        assert cache.tenants() == ["alice", "bob"]
        # A tenant-scoped cache lists the same set (shared root).
        assert cache.for_tenant("alice").tenants() == ["alice", "bob"]

    def test_default_namespace_matches_local_session(self, tmp_path):
        # A server running the default tenant and a local Session share
        # the namespace: the session's sweep is a warm hit for for_tenant(None).
        spec = RunSpec("st", scale=SCALE)
        with Session(cache_dir=tmp_path) as session:
            session.sweep([spec])
        assert ResultCache(tmp_path).for_tenant(None).get(spec) is not None
        assert ResultCache(tmp_path, tenant="alice").get(spec) is None


class TestTenantScopedCLI:
    def seed(self, tmp_path, tenant, count) -> ResultCache:
        cache = ResultCache(tmp_path, tenant=tenant)
        for n in range(count):
            cache.put(RunSpec("st", scale=SCALE, seed=n), payload_for(n))
        return cache

    def test_gc_tenant_scopes_eviction(self, tmp_path, capsys):
        alice = self.seed(tmp_path, "alice", 4)
        bob = self.seed(tmp_path, "bob", 3)
        default = self.seed(tmp_path, None, 2)
        rc = cli_main(
            [
                "cache",
                "gc",
                "--cache-dir",
                str(tmp_path),
                "--tenant",
                "alice",
                "--max-mb",
                "0",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "evicted 4/4" in out
        assert str(alice.root) in out
        assert len(alice.entries()) == 0
        assert len(bob.entries()) == 3  # untouched
        assert len(default.entries()) == 2  # untouched

    def test_clear_tenant_scopes_deletion(self, tmp_path, capsys):
        self.seed(tmp_path, "alice", 2)
        bob = self.seed(tmp_path, "bob", 2)
        rc = cli_main(
            ["cache", "clear", "--cache-dir", str(tmp_path), "--tenant", "alice"]
        )
        assert rc == 0
        assert "cleared 2 entries" in capsys.readouterr().out
        assert len(bob.entries()) == 2

    def test_stats_lists_tenants(self, tmp_path, capsys):
        self.seed(tmp_path, "alice", 1)
        self.seed(tmp_path, None, 1)
        rc = cli_main(["cache", "--cache-dir", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "entries   : 1" in out
        assert "tenants   : alice" in out
        # Scoped stats report the tenant's own namespace, no listing.
        rc = cli_main(
            ["cache", "--cache-dir", str(tmp_path), "--tenant", "alice"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "tenants   :" not in out
        assert str(TENANTS_DIR) in out

    def test_bad_tenant_name_is_clean_cli_error(self, tmp_path, capsys):
        rc = cli_main(
            ["cache", "--cache-dir", str(tmp_path), "--tenant", "../escape"]
        )
        assert rc == 2
        assert "invalid tenant name" in capsys.readouterr().err
