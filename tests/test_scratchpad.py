"""Tests for the banked scratchpad model."""

import pytest

from repro.errors import ConfigError, SimulationError
from repro.sim.memory.scratchpad import Scratchpad, ScratchpadConfig


class TestConfig:
    def test_defaults(self):
        cfg = ScratchpadConfig()
        assert cfg.size_bytes == 256 * 1024

    def test_zero_size_rejected(self):
        with pytest.raises(ConfigError):
            ScratchpadConfig(size_bytes=0)

    def test_zero_banks_rejected(self):
        with pytest.raises(ConfigError):
            ScratchpadConfig(banks=0)

    def test_unbalanced_banks_rejected(self):
        with pytest.raises(ConfigError):
            ScratchpadConfig(size_bytes=1000, banks=3)

    def test_zero_ports_rejected(self):
        with pytest.raises(ConfigError):
            ScratchpadConfig(ports_per_bank=0)


class TestAllocation:
    def test_allocate_release_cycle(self):
        spad = Scratchpad(ScratchpadConfig(size_bytes=1024, banks=2))
        spad.allocate(512)
        assert spad.free_bytes == 512
        spad.release(512)
        assert spad.free_bytes == 1024

    def test_overflow_raises(self):
        spad = Scratchpad(ScratchpadConfig(size_bytes=1024, banks=2))
        with pytest.raises(SimulationError):
            spad.allocate(2048)

    def test_over_release_raises(self):
        spad = Scratchpad(ScratchpadConfig(size_bytes=1024, banks=2))
        spad.allocate(100)
        with pytest.raises(SimulationError):
            spad.release(200)

    def test_negative_allocate_raises(self):
        spad = Scratchpad(ScratchpadConfig(size_bytes=1024, banks=2))
        with pytest.raises(SimulationError):
            spad.allocate(-1)


class TestBandwidth:
    def test_write_cycles_scale_with_bytes(self):
        spad = Scratchpad(ScratchpadConfig())
        assert spad.write(64 * 1024) > spad.write(1024)

    def test_more_banks_fewer_cycles(self):
        narrow = Scratchpad(ScratchpadConfig(banks=1))
        wide = Scratchpad(ScratchpadConfig(banks=8))
        assert wide.write(64 * 1024) < narrow.write(64 * 1024)

    def test_traffic_recorded(self):
        spad = Scratchpad(ScratchpadConfig())
        spad.write(4096)
        spad.read(1024)
        assert spad.bytes_written == 4096
        assert spad.bytes_read == 1024

    def test_bank_bytes(self):
        spad = Scratchpad(ScratchpadConfig(size_bytes=1024, banks=4))
        assert spad.bank_bytes == 256
