"""The distributed sweep backend: plans on the wire, workers, merging.

The acceptance properties of the subsystem:

* plans round-trip through JSON for every registered mechanism, engine
  and workload, and corrupt wire files fail with ``ConfigError``;
* sharding is a pure function of (plan content, shard count);
* a sharded run — whether driven by hand through the ``plan``/``worker``
  CLIs or by ``--backend shards`` — produces payloads bit-identical to
  local execution, and merged results serve as ordinary cache hits;
* cache gc and worker-result merging serialise on the cache lock.
"""

import dataclasses
import json
import threading
import time

import pytest

from repro.__main__ import main as cli_main
from repro.analysis.experiments import (
    fig1b_plan,
    fig6c_data_movement,
    fig6c_plan,
    fig7_bandwidth_allocation,
    fig7_plan,
    table2_plan,
    table2_workloads,
)
from repro.analysis.paperfigs import figures_plan
from repro.errors import ConfigError
from repro.llm import calibration_plan, layer_miss_plan
from repro.registry import MECHANISMS
from repro.runner import (
    FileShardBackend,
    MemorySpec,
    NVRSpec,
    Plan,
    ResultCache,
    RunSpec,
    SweepRunner,
    expand,
    load_results,
    merge_results,
    run_shard,
    write_results,
)
from repro.sim.npu.executor import ENGINES, ExecutorConfig
from repro.workloads import WORKLOAD_ORDER

SCALE = 0.05


def small_plan() -> Plan:
    return Plan(specs=expand(["st", "ds"], ["inorder", "nvr"], scales=SCALE))


def as_dicts(results):
    return [dataclasses.asdict(r) for r in results]


def spec_for_mechanism(mechanism: str) -> RunSpec:
    """A spec exercising every override the mechanism accepts."""
    return RunSpec(
        "gcn",
        mechanism=mechanism,
        dtype="int8",
        scale=0.2,
        seed=3,
        memory=MemorySpec(l2_kib=128, nsb_kib=8),
        nvr=(
            NVRSpec(depth_tiles=4)
            if MECHANISMS.get(mechanism).uses_nvr_config
            else None
        ),
        executor=ExecutorConfig(issue_width=4),
        workload_args=(("feature_dim", 32),),
    )


class TestPlanWireFormat:
    def test_round_trip_preserves_specs_and_meta(self):
        plan = Plan(specs=small_plan().specs, meta={"source": "test", "n": 1})
        clone = Plan.from_json(plan.to_json())
        assert [s.key() for s in clone.specs] == [s.key() for s in plan.specs]
        assert clone.meta == plan.meta

    @pytest.mark.parametrize("mechanism", sorted(MECHANISMS.names()))
    def test_round_trip_every_mechanism(self, mechanism):
        plan = Plan(specs=[spec_for_mechanism(mechanism)])
        clone = Plan.from_json(plan.to_json())
        assert clone.specs[0] == plan.specs[0]
        assert clone.specs[0].key() == plan.specs[0].key()

    def test_every_engine_reachable_from_some_mechanism(self):
        # The per-mechanism round trips above cover every engine iff the
        # registries stay in sync; pin that so a new engine grows a
        # mechanism (and thereby a wire-format test) with it. Kernel
        # dispatchers (needs_mode) are mode-agnostic and exempt.
        modes = {MECHANISMS.get(m).mode for m in MECHANISMS.names()}
        engine_modes = {
            name
            for name in ENGINES.names()
            if not getattr(ENGINES.get(name), "needs_mode", False)
        }
        assert modes == engine_modes

    @pytest.mark.parametrize("workload", WORKLOAD_ORDER)
    def test_round_trip_every_workload(self, workload):
        specs = [
            RunSpec(workload, scale=0.3, seed=1),
            RunSpec(workload, kind="trace", scale=0.3),
        ]
        clone = Plan.from_json(Plan(specs=specs).to_json())
        assert [s.key() for s in clone.specs] == [s.key() for s in specs]

    def test_rejects_bad_json(self):
        with pytest.raises(ConfigError, match="not valid JSON"):
            Plan.from_json("{truncated")

    def test_rejects_non_object(self):
        with pytest.raises(ConfigError, match="JSON object"):
            Plan.from_json("[1, 2]")

    def test_rejects_wrong_format_version(self):
        with pytest.raises(ConfigError, match="unsupported plan format"):
            Plan.from_dict({"format": 99, "specs": []})

    def test_rejects_unknown_fields(self):
        with pytest.raises(ConfigError, match="unknown plan field"):
            Plan.from_dict({"format": 1, "specs": [], "shards": 2})

    def test_rejects_malformed_spec_with_index(self):
        document = {
            "format": 1,
            "specs": [RunSpec("st").to_dict(), {"workload": "st", "bogus": 1}],
        }
        with pytest.raises(ConfigError, match="spec #1"):
            Plan.from_dict(document)

    def test_load_missing_file_is_config_error(self, tmp_path):
        with pytest.raises(ConfigError, match="cannot read plan file"):
            Plan.load(tmp_path / "nope.json")

    def test_save_load_round_trip(self, tmp_path):
        plan = small_plan()
        path = plan.save(tmp_path / "deep" / "plan.json")
        loaded = Plan.load(path)
        assert [s.key() for s in loaded.specs] == [s.key() for s in plan.specs]


class TestSharding:
    def test_partition_is_disjoint_balanced_and_complete(self):
        plan = small_plan()
        shards = plan.shard(3)
        keys = [{s.key() for s in shard.specs} for shard in shards]
        assert sum(len(k) for k in keys) == len(plan.unique_specs())
        assert set().union(*keys) == {s.key() for s in plan.unique_specs()}
        sizes = sorted(len(k) for k in keys)
        assert sizes[-1] - sizes[0] <= 1

    def test_partition_depends_only_on_content(self):
        specs = small_plan().specs
        forward = Plan(specs=specs).shard(2)
        reversed_ = Plan(specs=list(reversed(specs)) * 2).shard(2)
        assert [
            [s.key() for s in shard.specs] for shard in forward
        ] == [[s.key() for s in shard.specs] for shard in reversed_]

    def test_more_shards_than_specs_leaves_empties(self):
        shards = Plan(specs=[RunSpec("st", scale=SCALE)]).shard(3)
        assert [len(s) for s in shards] == [1, 0, 0]

    def test_shard_meta_records_coordinates(self):
        shards = Plan(specs=small_plan().specs, meta={"source": "x"}).shard(2)
        assert shards[1].meta == {
            "source": "x",
            "shard": {"index": 1, "of": 2},
        }

    def test_zero_shards_rejected(self):
        with pytest.raises(ConfigError, match="shard count"):
            small_plan().shard(0)


class TestWorkerResults:
    def test_run_shard_returns_sorted_content_addressed_records(self):
        plan = Plan(specs=expand("st", ["inorder", "nvr"], scales=SCALE))
        records = run_shard(plan)
        assert len(records) == 2
        assert [r["key"] for r in records] == sorted(r["key"] for r in records)
        for record in records:
            assert RunSpec.from_dict(record["spec"]).key() == record["key"]
            assert record["payload"]["kind"] == "sim"

    def test_run_shard_deduplicates(self):
        spec = RunSpec("st", scale=SCALE)
        assert len(run_shard(Plan(specs=[spec, spec]))) == 1

    def test_write_load_round_trip(self, tmp_path):
        records = run_shard(Plan(specs=[RunSpec("st", scale=SCALE)]))
        path = write_results(tmp_path / "r.json", records)
        loaded = load_results(path)
        assert loaded == records
        # Loaded records stay pure wire data: rewriting them (e.g. to
        # combine result files) must reproduce the file byte for byte.
        rewritten = write_results(tmp_path / "r2.json", loaded)
        assert rewritten.read_bytes() == path.read_bytes()

    def test_write_results_maps_nonfinite_to_null(self, tmp_path):
        # Worker result files follow the same rule as `sweep --json`:
        # non-finite metrics become null, never bare NaN/Infinity
        # literals that a strict JSON parser rejects.
        records = [
            {"key": "k", "spec": {}, "payload": {"cv": float("nan")}},
        ]
        path = write_results(tmp_path / "r.json", records)
        text = path.read_text(encoding="utf-8")
        assert "NaN" not in text
        assert json.loads(text)["results"][0]["payload"]["cv"] is None

    def test_load_rejects_corrupt_file(self, tmp_path):
        path = tmp_path / "r.json"
        path.write_text("{oops")
        with pytest.raises(ConfigError, match="not valid JSON"):
            load_results(path)

    def test_load_rejects_wrong_format(self, tmp_path):
        path = tmp_path / "r.json"
        path.write_text(json.dumps({"format": 9, "results": []}))
        with pytest.raises(ConfigError, match="unsupported result format"):
            load_results(path)

    def test_load_rejects_key_spec_mismatch(self, tmp_path):
        records = run_shard(Plan(specs=[RunSpec("st", scale=SCALE)]))
        records[0] = dict(records[0], key="0" * 64)
        path = write_results(tmp_path / "r.json", records)
        with pytest.raises(ConfigError, match="does not match its spec"):
            load_results(path)

    def test_merge_turns_worker_results_into_cache_hits(self, tmp_path):
        plan = small_plan()
        paths = [
            write_results(tmp_path / f"r{i}.json", run_shard(shard))
            for i, shard in enumerate(plan.shard(2))
        ]
        cache = ResultCache(tmp_path / "cache")
        report = merge_results(paths, cache)
        assert report.files == 2
        assert report.merged == len(plan.unique_specs())
        assert report.refreshed == 0
        warm = SweepRunner(cache=ResultCache(tmp_path / "cache"))
        warm.run_plan(plan.specs)
        assert warm.submitted == 0
        # Re-merging refreshes rather than duplicating.
        again = merge_results(paths, ResultCache(tmp_path / "cache"))
        assert again.merged == 0
        assert again.refreshed == report.records

    def test_merge_aborts_whole_batch_on_one_corrupt_file(self, tmp_path):
        good = write_results(
            tmp_path / "good.json",
            run_shard(Plan(specs=[RunSpec("st", scale=SCALE)])),
        )
        bad = tmp_path / "bad.json"
        bad.write_text("nope")
        cache = ResultCache(tmp_path / "cache")
        with pytest.raises(ConfigError):
            merge_results([good, bad], cache)
        assert len(cache) == 0  # nothing half-applied


class TestLocalVsSharded:
    def test_file_shard_backend_matches_local(self, tmp_path):
        plan = small_plan()
        local = SweepRunner(cache=ResultCache(tmp_path / "a"))
        backend = FileShardBackend(shards=2, work_dir=tmp_path / "work")
        sharded = SweepRunner(cache=ResultCache(tmp_path / "b"), backend=backend)
        try:
            assert as_dicts(sharded.run_plan(plan.specs)) == as_dicts(
                local.run_plan(plan.specs)
            )
        finally:
            sharded.close()
        # The cached payload files are byte-identical across backends.
        files_a = sorted(p.name for p in ResultCache(tmp_path / "a").entries())
        files_b = sorted(p.name for p in ResultCache(tmp_path / "b").entries())
        assert files_a == files_b and files_a
        for name in files_a:
            pa = next((tmp_path / "a").glob(f"??/{name}"))
            pb = next((tmp_path / "b").glob(f"??/{name}"))
            assert pa.read_bytes() == pb.read_bytes()

    def test_cli_export_shard_work_merge_flow(self, tmp_path, capsys):
        plan_path = tmp_path / "plan.json"
        argv = [
            "plan",
            "export",
            "--workloads",
            "st",
            "--mechanisms",
            "inorder,nvr",
            "--scales",
            str(SCALE),
            "--out",
            str(plan_path),
        ]
        assert cli_main(argv) == 0
        shard_argv = ["plan", "shard", str(plan_path), "--shards", "2"]
        shard_argv += ["--out-dir", str(tmp_path / "shards")]
        assert cli_main(shard_argv) == 0
        result_paths = []
        for index in range(2):
            shard = tmp_path / "shards" / f"plan-shard-{index}-of-2.json"
            out = tmp_path / f"r{index}.json"
            worker_argv = ["worker", "run", str(shard), "--out", str(out)]
            assert cli_main(worker_argv) == 0
            result_paths.append(out)
        merge_argv = ["plan", "merge", *map(str, result_paths)]
        merge_argv += ["--cache-dir", str(tmp_path / "cache")]
        assert cli_main(merge_argv) == 0
        capsys.readouterr()
        # Warm sweep over the merged cache: zero simulations, and the
        # payload records equal a from-scratch local run bit for bit.
        merged_json = tmp_path / "merged.json"
        sweep_argv = ["sweep", "--spec", str(plan_path)]
        warm_argv = sweep_argv + ["--cache-dir", str(tmp_path / "cache")]
        assert cli_main(warm_argv + ["--json", str(merged_json)]) == 0
        assert "0 simulated" in capsys.readouterr().out
        local_json = tmp_path / "local.json"
        local_argv = sweep_argv + ["--backend", "local"]
        local_argv += ["--cache-dir", str(tmp_path / "cache2")]
        assert cli_main(local_argv + ["--json", str(local_json)]) == 0
        assert merged_json.read_bytes() == local_json.read_bytes()

    def test_sweep_backend_shards_flag(self, tmp_path, capsys):
        base = [
            "sweep",
            "--workloads",
            "st",
            "--mechanisms",
            "inorder,nvr",
            "--scales",
            str(SCALE),
        ]
        shards_argv = base + ["--backend", "shards", "--jobs", "2"]
        assert cli_main(shards_argv + ["--cache-dir", str(tmp_path / "a")]) == 0
        sharded = capsys.readouterr().out
        assert cli_main(base + ["--cache-dir", str(tmp_path / "b")]) == 0
        local = capsys.readouterr().out
        assert sharded == local

    def test_worker_cli_corrupt_shard_is_clean_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"format": 1, "specs": "nope"}')
        out = tmp_path / "out.json"
        rc = cli_main(["worker", "run", str(bad), "--out", str(out)])
        captured = capsys.readouterr()
        assert rc == 2
        assert captured.err.startswith("error:")
        assert "Traceback" not in captured.err
        assert not out.exists()

    def test_merge_cli_corrupt_results_is_clean_error(self, tmp_path, capsys):
        bad = tmp_path / "r.json"
        bad.write_text("[]")
        rc = cli_main(["plan", "merge", str(bad), "--cache-dir", str(tmp_path)])
        captured = capsys.readouterr()
        assert rc == 2
        assert captured.err.startswith("error:")


class TestCacheLock:
    def test_lock_serialises_gc_against_merge(self, tmp_path):
        records = run_shard(Plan(specs=[RunSpec("st", scale=SCALE)]))
        results = write_results(tmp_path / "r.json", records)
        cache = ResultCache(tmp_path / "cache")
        events: list[str] = []

        def gc_thread():
            events.append("gc-start")
            ResultCache(tmp_path / "cache").gc(max_bytes=0)
            events.append("gc-done")

        with cache.lock():
            thread = threading.Thread(target=gc_thread)
            thread.start()
            # The gc pass must block on the lock we hold...
            time.sleep(0.3)
            assert events == ["gc-start"]
            # ...so the merge happening under the same lock cannot have
            # its fresh entries collected mid-flight.
            for record in load_results(results):
                cache.put(RunSpec.from_dict(record["spec"]), record["payload"])
        thread.join(timeout=10)
        assert events == ["gc-start", "gc-done"]
        # The gc (max_bytes=0) ran strictly after the merge and evicted
        # everything — but never interleaved: entries were either all
        # present or all gone, not half-merged.
        assert len(ResultCache(tmp_path / "cache")) == 0

    def test_merge_waits_for_held_lock(self, tmp_path):
        records = run_shard(Plan(specs=[RunSpec("st", scale=SCALE)]))
        results = write_results(tmp_path / "r.json", records)
        cache = ResultCache(tmp_path / "cache")
        done = threading.Event()

        def merge_thread():
            merge_results([results], ResultCache(tmp_path / "cache"))
            done.set()

        with cache.lock():
            thread = threading.Thread(target=merge_thread)
            thread.start()
            time.sleep(0.3)
            assert not done.is_set()
        thread.join(timeout=10)
        assert done.is_set()
        assert len(ResultCache(tmp_path / "cache")) == 1


class TestFiguresPlan:
    def test_deterministic_and_wire_clean(self):
        a = figures_plan(scale=0.1)
        b = figures_plan(scale=0.1)
        assert a.to_json() == b.to_json()
        assert a.meta["source"] == "figures"
        assert len(a.unique_specs()) > 100

    def test_covers_cheap_figure_runners(self, tmp_path):
        # Contract per figure: the plan builder emits exactly what the
        # runner submits. Checked on the cheap figures here; the full
        # generate_report coverage (every figure, zero warm submissions)
        # is pinned by the distributed-smoke CI job.
        scale = SCALE
        keys = {s.key() for s in figures_plan(scale=scale).specs}
        for plan_specs in (
            fig1b_plan(scale=scale),
            fig6c_plan(scale=scale),
            fig7_plan(scale=scale),
            table2_plan(scale=scale),
            layer_miss_plan(("inorder", "nvr"), scale=scale),
            calibration_plan("nvr", scale=scale),
        ):
            assert {s.key() for s in plan_specs} <= keys

    def test_figure_runner_submits_only_plan_specs(self, tmp_path):
        class RecordingRunner(SweepRunner):
            def __init__(self):
                super().__init__(cache=ResultCache(tmp_path))
                self.seen = []

            def run_plan(self, specs):
                self.seen.extend(specs)
                return super().run_plan(specs)

        for runner_fn, plan_fn in (
            (fig6c_data_movement, fig6c_plan),
            (fig7_bandwidth_allocation, fig7_plan),
            (table2_workloads, table2_plan),
        ):
            recorder = RecordingRunner()
            runner_fn(scale=SCALE, runner=recorder)
            assert [s.key() for s in recorder.seen] == [
                s.key() for s in plan_fn(scale=SCALE)
            ]
