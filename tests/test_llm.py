"""Tests for the LLMCompass-lite system-level model."""

import pytest

from repro.errors import ConfigError
from repro.llm import (
    MemoryCalibration,
    NPUHardware,
    TransformerSpec,
    calibrate_memory_efficiency,
    decode_throughput,
    layer_miss_rates,
    prefill_throughput,
)


@pytest.fixture(scope="module")
def calib_pair():
    return (
        calibrate_memory_efficiency("inorder", scale=0.2),
        calibrate_memory_efficiency("nvr", scale=0.2),
    )


class TestTransformerSpec:
    def test_head_dim(self):
        assert TransformerSpec().head_dim == 128

    def test_invalid_heads(self):
        with pytest.raises(ConfigError):
            TransformerSpec(d_model=100, n_heads=3)

    def test_kv_cache_grows_linearly(self):
        spec = TransformerSpec()
        assert spec.kv_cache_bytes(2048) == 2 * spec.kv_cache_bytes(1024)

    def test_decode_gather_scales_with_context(self):
        spec = TransformerSpec()
        assert spec.decode_gather_bytes_per_token(
            2048
        ) == 4 * spec.decode_gather_bytes_per_token(512)

    def test_topk_reduces_gather(self):
        dense = TransformerSpec(topk_ratio=1)
        sparse = TransformerSpec(topk_ratio=16)
        assert dense.decode_gather_bytes_per_token(
            2048
        ) == 16 * sparse.decode_gather_bytes_per_token(2048)

    def test_batch_amortises_weights(self):
        b1 = TransformerSpec(batch_size=1)
        b8 = TransformerSpec(batch_size=8)
        assert b1.decode_stream_bytes_per_token() == pytest.approx(
            8 * b8.decode_stream_bytes_per_token()
        )

    def test_prefill_flops_superlinear(self):
        spec = TransformerSpec()
        assert spec.prefill_flops(4096) > 2 * spec.prefill_flops(2048)

    def test_weight_bytes(self):
        spec = TransformerSpec(
            n_layers=1, d_model=8, n_heads=2, ffn_mult=4, elem_bytes=2
        )
        # 4*64 proj + 2*8*32 ffn = 256 + 512 params, x2 bytes
        assert spec.weight_bytes_per_layer == (4 * 64 + 2 * 8 * 32) * 2


class TestHardware:
    def test_peak_flops(self):
        hw = NPUHardware(macs_per_cycle=100, freq_ghz=1.0)
        assert hw.peak_flops == pytest.approx(2e11)

    def test_memory_time_positive_bandwidth(self):
        hw = NPUHardware()
        with pytest.raises(ConfigError):
            hw.memory_time(1, 0)

    def test_invalid_config(self):
        with pytest.raises(ConfigError):
            NPUHardware(macs_per_cycle=0)


class TestCalibration:
    def test_validation(self):
        with pytest.raises(ConfigError):
            MemoryCalibration("x", gather_efficiency=0.0, traffic_ratio=1.0)
        with pytest.raises(ConfigError):
            MemoryCalibration("x", gather_efficiency=0.5, traffic_ratio=0.0)

    def test_nvr_far_more_efficient_than_inorder(self, calib_pair):
        base, nvr = calib_pair
        assert nvr.gather_efficiency > 5 * base.gather_efficiency

    def test_traffic_ratios_near_unity(self, calib_pair):
        base, nvr = calib_pair
        assert base.traffic_ratio == pytest.approx(1.0)
        assert 0.8 < nvr.traffic_ratio < 1.3


class TestThroughputShapes:
    def test_decode_gain_grows_with_context(self, calib_pair):
        """Fig. 8c: the NVR advantage grows with sequence length."""
        base, nvr = calib_pair
        spec, hw = TransformerSpec(), NPUHardware()
        gains = [
            decode_throughput(spec, hw, l, 1600, nvr)
            / decode_throughput(spec, hw, l, 1600, base)
            for l in (512, 1024, 2048)
        ]
        assert gains[0] < gains[1] < gains[2]
        assert gains[2] > 1.3  # paper: ~50% average IO-bound gain

    def test_decode_monotone_in_bandwidth(self, calib_pair):
        base, _ = calib_pair
        spec, hw = TransformerSpec(), NPUHardware()
        tputs = [
            decode_throughput(spec, hw, 1024, bw, base)
            for bw in (200, 400, 800, 1600)
        ]
        assert tputs == sorted(tputs)

    def test_prefill_plateaus(self, calib_pair):
        """Fig. 8b: prefill is compute-bound at high bandwidth."""
        _, nvr = calib_pair
        spec, hw = TransformerSpec(), NPUHardware()
        hi = prefill_throughput(spec, hw, 2048, 3200, nvr)
        hi2 = prefill_throughput(spec, hw, 2048, 4000, nvr)
        assert hi == pytest.approx(hi2, rel=1e-6)

    def test_prefill_nvr_reaches_plateau_earlier(self, calib_pair):
        base, nvr = calib_pair
        spec, hw = TransformerSpec(), NPUHardware()
        low_bw = 300
        assert prefill_throughput(
            spec, hw, 2048, low_bw, nvr
        ) > prefill_throughput(spec, hw, 2048, low_bw, base)


class TestLayerMissRates:
    def test_fig8a_shape(self):
        """QKV streams (low miss); QKT/AV gathers miss heavily under InO
        and drop by orders of magnitude under NVR."""
        rates = layer_miss_rates(scale=0.2)
        for layer in ("qkv", "qkt", "av"):
            assert layer in rates
        ino_qkt_batch = rates["qkt"]["inorder"][0]
        nvr_qkt_batch = rates["qkt"]["nvr"][0]
        assert ino_qkt_batch > 0.5
        assert nvr_qkt_batch < 0.2 * ino_qkt_batch
        # The streaming layer misses far less than the gather layers.
        assert rates["qkv"]["inorder"][0] < 0.3 * ino_qkt_batch

    def test_batch_rate_tracks_element_rate(self):
        """A batch misses when any element does, so the batch rate sits at
        or above the element rate — up to variable batch widths (short
        row-tail tiles), which allow a small inversion."""
        rates = layer_miss_rates(scale=0.2)
        for layer_rates in rates.values():
            for batch_rate, elem_rate in layer_rates.values():
                assert batch_rate >= 0.8 * elem_rate
