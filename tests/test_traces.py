"""Tests for reuse-distance trace analysis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.traces import (
    gather_line_trace,
    miss_rate_curve,
    profile_trace,
    reuse_distances,
)
from repro.errors import ConfigError
from repro.workloads import build_workload


def _reference_distances(trace):
    """Naive O(N^2) stack distances for cross-checking."""
    out = []
    for i, line in enumerate(trace):
        prev = None
        for j in range(i - 1, -1, -1):
            if trace[j] == line:
                prev = j
                break
        if prev is None:
            out.append(-1)
        else:
            out.append(len(set(trace[prev + 1 : i])))
    return out


class TestReuseDistances:
    def test_all_cold(self):
        d = reuse_distances(np.array([1, 2, 3], dtype=np.int64))
        assert list(d) == [-1, -1, -1]

    def test_immediate_reuse_zero_distance(self):
        d = reuse_distances(np.array([1, 1], dtype=np.int64))
        assert list(d) == [-1, 0]

    def test_known_sequence(self):
        trace = np.array([1, 2, 3, 1, 2, 1], dtype=np.int64)
        assert list(reuse_distances(trace)) == [-1, -1, -1, 2, 2, 1]

    def test_empty(self):
        assert len(reuse_distances(np.zeros(0, dtype=np.int64))) == 0

    @settings(max_examples=40)
    @given(st.lists(st.integers(min_value=0, max_value=12), min_size=1, max_size=80))
    def test_matches_naive_reference(self, trace_list):
        trace = np.asarray(trace_list, dtype=np.int64)
        fast = list(reuse_distances(trace))
        assert fast == _reference_distances(trace_list)


class TestMissRateCurve:
    def test_monotone_in_capacity(self):
        rng = np.random.default_rng(0)
        trace = rng.integers(0, 64, size=500).astype(np.int64)
        curve = miss_rate_curve(trace, [1, 4, 16, 64, 256])
        rates = list(curve.values())
        assert rates == sorted(rates, reverse=True)

    def test_infinite_cache_leaves_cold_misses(self):
        trace = np.array([1, 2, 1, 2], dtype=np.int64)
        curve = miss_rate_curve(trace, [100])
        assert curve[100] == pytest.approx(0.5)  # 2 cold of 4

    def test_capacity_one_thrashes_alternation(self):
        trace = np.array([1, 2, 1, 2], dtype=np.int64)
        assert miss_rate_curve(trace, [1])[1] == 1.0

    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigError):
            miss_rate_curve(np.zeros(1, dtype=np.int64), [0])

    def test_empty_trace(self):
        assert miss_rate_curve(np.zeros(0, dtype=np.int64), [4]) == {4: 0.0}


class TestProgramTraces:
    def test_gather_trace_counts(self):
        prog = build_workload("gcn", scale=0.15)
        trace = gather_line_trace(prog)
        # At least one line per gather element.
        assert len(trace) >= prog.total_demand_elements()

    def test_profile_fields(self):
        prog = build_workload("ds", scale=0.15)
        profile = profile_trace(prog)
        assert profile.accesses > 0
        assert 0 < profile.unique_lines <= profile.accesses
        assert 0 <= profile.cold_fraction <= 1

    def test_st_reuses_more_than_scn(self):
        st_prof = profile_trace(build_workload("st", scale=0.15))
        scn_prof = profile_trace(build_workload("scn", scale=0.15))
        assert st_prof.cold_fraction < scn_prof.cold_fraction

    def test_curve_explains_simulator_misses(self):
        """The analytic LRU curve must bracket the simulated L2 demand
        miss rate for a cold-run workload (set conflicts make the
        simulator slightly worse than fully-associative LRU)."""
        from repro.api import run_workload

        prog = build_workload("gcn", scale=0.15)
        trace = gather_line_trace(prog)
        l2_lines = 256 * 1024 // 64
        analytic = miss_rate_curve(trace, [l2_lines])[l2_lines]
        result = run_workload("gcn", mechanism="inorder", scale=0.15)
        stats = result.stats
        gather_accesses = len(trace)
        # Simulated misses include the W streams too; compare rates
        # loosely: simulator within [0.7x, 2.0x] of the analytic gather
        # miss rate.
        simulated = stats.l2.demand_misses / stats.l2.demand_accesses
        assert 0.7 * analytic < simulated < 2.0 * analytic + 0.05
