"""Tests for the set-associative non-blocking cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.sim.memory.cache import Cache, CacheConfig, LookupKind


def small_cache(assoc=2, sets=4, line=64, **kw) -> Cache:
    return Cache(
        CacheConfig(
            size_bytes=assoc * sets * line,
            assoc=assoc,
            line_bytes=line,
            **kw,
        )
    )


class TestCacheConfig:
    def test_valid_geometry(self):
        cfg = CacheConfig(size_bytes=256 * 1024, assoc=8)
        assert cfg.n_sets == 512

    def test_non_pow2_line_rejected(self):
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=1024, assoc=2, line_bytes=48)

    def test_size_not_multiple_of_line_rejected(self):
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=1000, assoc=2)

    def test_assoc_must_divide_lines(self):
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=64 * 16, assoc=3)

    def test_zero_hit_latency_rejected(self):
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=1024, assoc=2, hit_latency=0)


class TestAddressMath:
    def test_line_addr_alignment(self):
        cache = small_cache()
        assert cache.line_addr(0x12345) == 0x12340

    def test_distinct_sets(self):
        cache = small_cache(assoc=1, sets=4)
        idxs = {cache._set_index(i * 64) for i in range(4)}
        assert idxs == {0, 1, 2, 3}


class TestLookupAllocate:
    def test_miss_on_empty(self):
        cache = small_cache()
        kind, line = cache.lookup(0, 0x1000)
        assert kind == LookupKind.MISS
        assert line is None

    def test_hit_after_ready(self):
        cache = small_cache()
        cache.allocate(0, 0x1000, ready_at=50, by_prefetch=False)
        kind, line = cache.lookup(60, 0x1000)
        assert kind == LookupKind.HIT
        assert line is not None

    def test_inflight_before_ready(self):
        cache = small_cache()
        cache.allocate(0, 0x1000, ready_at=50, by_prefetch=False)
        kind, line = cache.lookup(10, 0x1000)
        assert kind == LookupKind.INFLIGHT
        assert line.ready_at == 50

    def test_refill_keeps_earlier_ready(self):
        cache = small_cache()
        cache.allocate(0, 0x1000, ready_at=50, by_prefetch=False)
        cache.allocate(60, 0x1000, ready_at=200, by_prefetch=True)
        kind, _ = cache.lookup(70, 0x1000)
        assert kind == LookupKind.HIT

    def test_probe_does_not_touch_lru(self):
        cache = small_cache(assoc=2, sets=1)
        cache.allocate(0, 0x000, ready_at=0, by_prefetch=False)
        cache.allocate(0, 0x040, ready_at=0, by_prefetch=False)
        cache.probe(0x000)  # must NOT refresh recency of 0x000
        cache.allocate(0, 0x080, ready_at=0, by_prefetch=False)
        assert cache.probe(0x000) is None  # LRU victim was 0x000
        assert cache.probe(0x040) is not None


class TestLRUEviction:
    def test_lru_victim_selected(self):
        cache = small_cache(assoc=2, sets=1)
        cache.allocate(0, 0x000, ready_at=0, by_prefetch=False)
        cache.allocate(0, 0x040, ready_at=0, by_prefetch=False)
        cache.lookup(1, 0x000)  # refresh 0x000 -> LRU is 0x040
        cache.allocate(2, 0x080, ready_at=2, by_prefetch=False)
        assert cache.probe(0x040) is None
        assert cache.probe(0x000) is not None
        assert cache.evictions == 1

    def test_unused_prefetch_eviction_counted(self):
        cache = small_cache(assoc=1, sets=1)
        cache.allocate(0, 0x000, ready_at=0, by_prefetch=True)
        cache.allocate(1, 0x040, ready_at=1, by_prefetch=False)
        assert cache.prefetch_evicted_unused == 1

    def test_touched_prefetch_eviction_not_counted(self):
        cache = small_cache(assoc=1, sets=1)
        line = cache.allocate(0, 0x000, ready_at=0, by_prefetch=True)
        line.demand_touched = True
        cache.allocate(1, 0x040, ready_at=1, by_prefetch=False)
        assert cache.prefetch_evicted_unused == 0


class TestOccupancy:
    def test_resident_lines_counts(self):
        cache = small_cache(assoc=2, sets=4)
        for i in range(3):
            cache.allocate(0, i * 64, ready_at=0, by_prefetch=False)
        assert cache.resident_lines() == 3

    def test_occupancy_fraction(self):
        cache = small_cache(assoc=2, sets=4)
        for i in range(4):
            cache.allocate(0, i * 64, ready_at=0, by_prefetch=False)
        assert cache.occupancy_fraction() == pytest.approx(0.5)


class TestCacheProperties:
    @settings(max_examples=50)
    @given(st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=300))
    def test_repeated_access_always_hits_within_capacity(self, line_idxs):
        """Any working set <= capacity never evicts: second pass all hits."""
        working_set = sorted(set(line_idxs))[:8]  # 8 lines fit in 8-line cache
        cache = small_cache(assoc=2, sets=4)
        for idx in working_set:
            cache.allocate(0, idx * 64 * 4, ready_at=0, by_prefetch=False)
        # Use widely spaced addresses may map to same set; instead assert
        # only that lines we know resident still hit.
        resident = [idx for idx in working_set if cache.probe(idx * 64 * 4) is not None]
        for idx in resident:
            kind, _ = cache.lookup(10, idx * 64 * 4)
            assert kind == LookupKind.HIT

    @settings(max_examples=50)
    @given(st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=200))
    def test_set_occupancy_never_exceeds_assoc(self, line_idxs):
        cache = small_cache(assoc=2, sets=4)
        for t, idx in enumerate(line_idxs):
            cache.allocate(t, idx * 64, ready_at=t, by_prefetch=False)
            for cache_set in cache._sets:
                assert len(cache_set) <= 2
