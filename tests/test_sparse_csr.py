"""Tests for the CSR matrix substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import WorkloadError
from repro.sparse.csr import CSRMatrix


def dense_strategy(max_dim=12):
    shapes = st.tuples(
        st.integers(min_value=1, max_value=max_dim),
        st.integers(min_value=1, max_value=max_dim),
    )
    return shapes.flatmap(
        lambda s: hnp.arrays(
            dtype=np.float32,
            shape=s,
            elements=st.sampled_from([0.0, 0.0, 0.0, 1.0, 2.5, -3.0]),
        )
    )


class TestConstruction:
    def test_from_dense_roundtrip(self):
        dense = np.array([[1, 0, 2], [0, 0, 0], [0, 3, 0]], dtype=np.float32)
        csr = CSRMatrix.from_dense(dense)
        assert csr.nnz == 3
        assert np.array_equal(csr.to_dense(), dense)

    def test_from_coo_sorts_and_dedups(self):
        csr = CSRMatrix.from_coo(
            2, 3, rows=[1, 0, 1, 1], cols=[2, 1, 0, 2], values=[5, 1, 4, 9]
        )
        assert csr.nnz == 3  # duplicate (1,2) removed
        cols, _ = csr.row_slice(1)
        assert list(cols) == [0, 2]

    def test_rejects_bad_rowptr_length(self):
        with pytest.raises(WorkloadError):
            CSRMatrix(
                2,
                2,
                rowptr=np.array([0, 1], dtype=np.int64),
                col_indices=np.array([0], dtype=np.int64),
                values=np.ones(1, dtype=np.float32),
            )

    def test_rejects_decreasing_rowptr(self):
        with pytest.raises(WorkloadError):
            CSRMatrix(
                2,
                2,
                rowptr=np.array([0, 2, 1], dtype=np.int64),
                col_indices=np.array([0], dtype=np.int64),
                values=np.ones(1, dtype=np.float32),
            )

    def test_rejects_out_of_range_col(self):
        with pytest.raises(WorkloadError):
            CSRMatrix(
                1,
                2,
                rowptr=np.array([0, 1], dtype=np.int64),
                col_indices=np.array([5], dtype=np.int64),
                values=np.ones(1, dtype=np.float32),
            )

    def test_rejects_non_2d_dense(self):
        with pytest.raises(WorkloadError):
            CSRMatrix.from_dense(np.zeros(4, dtype=np.float32))


class TestViews:
    def test_density_and_sparsity(self):
        dense = np.eye(4, dtype=np.float32)
        csr = CSRMatrix.from_dense(dense)
        assert csr.density == pytest.approx(0.25)
        assert csr.sparsity == pytest.approx(0.75)

    def test_row_nnz(self):
        dense = np.array([[1, 1, 0], [0, 0, 0], [1, 1, 1]], dtype=np.float32)
        csr = CSRMatrix.from_dense(dense)
        assert list(csr.row_nnz()) == [2, 0, 3]

    def test_iter_rows_skips_empty(self):
        dense = np.array([[1, 0], [0, 0]], dtype=np.float32)
        csr = CSRMatrix.from_dense(dense)
        rows = [r for r, _, _ in csr.iter_rows()]
        assert rows == [0]

    def test_transpose(self):
        dense = np.array([[1, 2, 0], [0, 0, 3]], dtype=np.float32)
        csr = CSRMatrix.from_dense(dense)
        assert np.array_equal(csr.transpose().to_dense(), dense.T)

    def test_repr_contains_shape(self):
        csr = CSRMatrix.from_dense(np.eye(3, dtype=np.float32))
        assert "3x3" in repr(csr)


class TestProperties:
    @settings(max_examples=60)
    @given(dense_strategy())
    def test_dense_roundtrip_identity(self, dense):
        csr = CSRMatrix.from_dense(dense)
        assert np.array_equal(csr.to_dense(), dense)

    @settings(max_examples=60)
    @given(dense_strategy())
    def test_nnz_matches_dense(self, dense):
        csr = CSRMatrix.from_dense(dense)
        assert csr.nnz == int(np.count_nonzero(dense))

    @settings(max_examples=60)
    @given(dense_strategy())
    def test_double_transpose_identity(self, dense):
        csr = CSRMatrix.from_dense(dense)
        assert np.array_equal(csr.transpose().transpose().to_dense(), dense)

    @settings(max_examples=60)
    @given(dense_strategy())
    def test_col_indices_sorted_per_row(self, dense):
        csr = CSRMatrix.from_dense(dense)
        for r in range(csr.n_rows):
            cols, _ = csr.row_slice(r)
            assert np.all(np.diff(cols) > 0) or len(cols) <= 1
