"""Tests for the Table II workload generators."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.sim.npu.isa import STREAM_IA_GATHER
from repro.workloads import (
    WORKLOAD_INFO,
    WORKLOAD_ORDER,
    build_workload,
    trace_stats,
)
from repro.workloads.base import scaled
from repro.workloads.double_sparsity import build_selection_rows, rows_to_csr
from repro.utils import make_rng

SCALE = 0.3  # keep unit tests quick


class TestRegistry:
    def test_all_eight_present(self):
        assert set(WORKLOAD_ORDER) == set(WORKLOAD_INFO)
        assert len(WORKLOAD_ORDER) == 8

    def test_table2_domains(self):
        assert WORKLOAD_INFO["ds"].domain == "large language model"
        assert WORKLOAD_INFO["mk"].domain == "point cloud"
        assert WORKLOAD_INFO["st"].domain == "mixture of experts"
        assert WORKLOAD_INFO["gcn"].domain == "graph neural networks"

    def test_unknown_workload_rejected(self):
        with pytest.raises(WorkloadError):
            build_workload("resnet")

    def test_case_insensitive(self):
        prog = build_workload("DS", scale=SCALE)
        assert prog.name == "ds"

    @pytest.mark.parametrize("short", WORKLOAD_ORDER)
    def test_builds_and_is_deterministic(self, short):
        a = build_workload(short, scale=SCALE, seed=5)
        b = build_workload(short, scale=SCALE, seed=5)
        assert a.nnz == b.nnz
        assert np.array_equal(a.col_stream, b.col_stream)

    @pytest.mark.parametrize("short", WORKLOAD_ORDER)
    def test_seed_changes_trace(self, short):
        a = build_workload(short, scale=SCALE, seed=1)
        b = build_workload(short, scale=SCALE, seed=2)
        assert not (a.nnz == b.nnz and np.array_equal(a.col_stream, b.col_stream))

    @pytest.mark.parametrize("short", WORKLOAD_ORDER)
    def test_footprint_exceeds_l2(self, short):
        """Every workload's gather space must outsize the 256 KiB L2."""
        prog = build_workload(short, scale=SCALE)
        assert prog.gather_footprint_bytes() > 256 * 1024

    @pytest.mark.parametrize("short", WORKLOAD_ORDER)
    def test_scale_grows_trace(self, short):
        small = build_workload(short, scale=0.2)
        big = build_workload(short, scale=0.6)
        assert big.total_demand_elements() > small.total_demand_elements()

    @pytest.mark.parametrize("short", WORKLOAD_ORDER)
    def test_dtype_applied(self, short):
        prog = build_workload(short, scale=SCALE, elem_bytes=4)
        assert prog.config.elem_bytes == 4


class TestWorkloadCharacter:
    """Each workload must exhibit its domain's decisive traits."""

    def test_hashed_workloads_non_affine(self):
        for short in ("mk", "scn"):
            prog = build_workload(short, scale=SCALE)
            assert not prog.gather_streams[STREAM_IA_GATHER].affine

    def test_matrix_workloads_affine(self):
        for short in ("ds", "gcn", "gat", "gsabt", "h2o", "st"):
            prog = build_workload(short, scale=SCALE)
            assert prog.gather_streams[STREAM_IA_GATHER].affine

    def test_gat_has_dual_gather(self):
        prog = build_workload("gat", scale=SCALE)
        assert all(len(t.gathers) == 2 for t in prog.tiles)

    def test_st_most_local(self):
        st = trace_stats(build_workload("st", scale=SCALE))
        others = [
            trace_stats(build_workload(s, scale=SCALE)).locality_score
            for s in ("ds", "gcn", "mk")
        ]
        assert st.locality_score > max(others)

    def test_hash_workloads_zero_locality(self):
        for short in ("mk", "scn"):
            ts = trace_stats(build_workload(short, scale=SCALE))
            assert ts.locality_score < 0.05

    def test_graph_workloads_dynamic_bounds(self):
        """Power-law degrees: high row-length variation (MoE/GNN trait)."""
        gcn = trace_stats(build_workload("gcn", scale=SCALE))
        ds = trace_stats(build_workload("ds", scale=SCALE))
        assert gcn.row_length_cv > 1.0
        assert ds.row_length_cv < 0.2  # TopK rows are near-constant

    def test_h2o_reuses_more_than_uniform_selection(self):
        h2o = trace_stats(build_workload("h2o", scale=SCALE))
        assert h2o.reuse_factor > 2.0

    def test_st_highest_reuse(self):
        st = trace_stats(build_workload("st", scale=SCALE))
        for other in ("ds", "gcn", "mk", "scn"):
            ts = trace_stats(build_workload(other, scale=SCALE))
            assert st.reuse_factor > ts.reuse_factor


class TestDSBuildingBlocks:
    def test_selection_rows_sizes(self):
        rng = make_rng(0)
        rows = build_selection_rows(
            rng, steps=5, kv_len=1000, k=100, drift=0.1, recent_window=16
        )
        assert len(rows) == 5
        for r in rows:
            assert 100 <= len(r) <= 132  # k plus window overlap slack
            assert np.all(np.diff(r) > 0)

    def test_selection_drift_persistence(self):
        rng = make_rng(0)
        rows = build_selection_rows(
            rng, steps=3, kv_len=4096, k=200, drift=0.1, recent_window=0
        )
        overlap = len(set(rows[0].tolist()) & set(rows[1].tolist()))
        assert overlap > 150  # most of the selection persists

    def test_selection_k_too_large(self):
        with pytest.raises(WorkloadError):
            build_selection_rows(make_rng(0), 1, 10, 50, 0.1, 0)

    def test_rows_to_csr(self):
        rows = [np.array([1, 3], dtype=np.int64), np.array([0], dtype=np.int64)]
        csr = rows_to_csr(rows, 5)
        assert csr.nnz == 3
        assert list(csr.rowptr) == [0, 2, 3]

    def test_topk_ratio_controls_density(self):
        dense = build_workload("ds", scale=SCALE, topk_ratio=4)
        sparse = build_workload("ds", scale=SCALE, topk_ratio=32)
        dense_k = np.diff(dense.rowptr).max()
        sparse_k = np.diff(sparse.rowptr).max()
        assert dense_k > 4 * sparse_k

    def test_bad_ratio_rejected(self):
        with pytest.raises(WorkloadError):
            build_workload("ds", topk_ratio=0)


class TestScaledHelper:
    def test_scaled_rounds(self):
        assert scaled(10, 0.25) == 2
        assert scaled(10, 1.0) == 10

    def test_scaled_minimum(self):
        assert scaled(2, 0.01) == 1

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(WorkloadError):
            scaled(10, 0.0)
