"""Tests for the shared-L2 CPU background-traffic model."""

import pytest

from repro import run_workload
from repro.errors import ConfigError
from repro.sim.memory.hierarchy import (
    CPUTrafficConfig,
    MemoryConfig,
    MemorySystem,
)
from repro.sim.request import Access, AccessType
from repro.sim.stats import RunStats


class TestConfig:
    def test_defaults_valid(self):
        CPUTrafficConfig()

    def test_zero_rate_rejected(self):
        with pytest.raises(ConfigError):
            CPUTrafficConfig(lines_per_kcycle=0)

    def test_tiny_footprint_rejected(self):
        with pytest.raises(ConfigError):
            CPUTrafficConfig(footprint_bytes=32)

    def test_with_cpu_traffic_copy(self):
        mem = MemoryConfig().with_cpu_traffic()
        assert mem.cpu_traffic is not None
        assert MemoryConfig().cpu_traffic is None

    def test_with_nsb_preserves_cpu_traffic(self):
        mem = MemoryConfig().with_cpu_traffic().with_nsb(True)
        assert mem.cpu_traffic is not None
        assert mem.nsb is not None


class TestInjection:
    def _system(self, rate=100):
        cfg = MemoryConfig().with_cpu_traffic(CPUTrafficConfig(lines_per_kcycle=rate))
        return MemorySystem(cfg, RunStats())

    def test_traffic_injected_over_time(self):
        mem = self._system()
        mem.demand_access(0, Access(0x1000, AccessType.DEMAND), irregular=True)
        mem.demand_access(100_000, Access(0x2000, AccessType.DEMAND), irregular=True)
        assert mem.cpu_accesses > 0

    def test_no_injection_without_config(self):
        mem = MemorySystem(MemoryConfig(), RunStats())
        mem.demand_access(50_000, Access(0x1000, AccessType.DEMAND), irregular=True)
        assert mem.cpu_accesses == 0

    def test_injection_bounded_per_call(self):
        mem = self._system(rate=1000)
        mem.demand_access(10_000_000, Access(0x1000, AccessType.DEMAND), irregular=True)
        assert mem.cpu_accesses <= MemorySystem._MAX_INJECT_PER_CALL

    def test_deterministic(self):
        a = self._system()
        b = self._system()
        for t in (0, 10_000, 20_000, 50_000):
            a.demand_access(t, Access(0x1000, AccessType.DEMAND), True)
            b.demand_access(t, Access(0x1000, AccessType.DEMAND), True)
        assert a.cpu_accesses == b.cpu_accesses
        assert a.cpu_misses == b.cpu_misses

    def test_cpu_misses_consume_dram(self):
        mem = self._system()
        mem.demand_access(0, Access(0x1000, AccessType.DEMAND), True)
        before = mem.dram.transfers
        mem.demand_access(200_000, Access(0x2000, AccessType.DEMAND), True)
        assert mem.dram.transfers > before + 1  # demand + CPU fills


class TestContentionEffect:
    def test_contention_never_speeds_up_npu(self):
        quiet = run_workload("h2o", mechanism="nvr", scale=0.2)
        noisy = run_workload(
            "h2o", mechanism="nvr", scale=0.2,
            memory=MemoryConfig().with_cpu_traffic(
                CPUTrafficConfig(lines_per_kcycle=200)
            ),
        )
        assert noisy.total_cycles >= quiet.total_cycles

    def test_nsb_is_contention_immune(self):
        """The NSB is NPU-private: CPU traffic cannot evict from it."""
        mem = MemoryConfig().with_nsb(True).with_cpu_traffic(
            CPUTrafficConfig(lines_per_kcycle=200)
        )
        result = run_workload("h2o", mechanism="nvr", scale=0.2, memory=mem)
        assert result.stats.nsb.demand_hits > 0
