"""Tests for program lowering (build_one_side_program)."""

import numpy as np
import pytest

from repro.errors import ProgramError
from repro.sim.npu.isa import STREAM_IA_GATHER, STREAM_IA_GATHER_2
from repro.sim.npu.program import (
    GatherStream,
    ProgramConfig,
    build_one_side_program,
)
from repro.sparse.csr import CSRMatrix
from repro.sparse.generate import uniform_csr


def small_program(**cfg_kw):
    w = uniform_csr(32, 512, 0.05, seed=3)
    return w, build_one_side_program("t", w, ProgramConfig(**cfg_kw))


class TestGatherStream:
    def test_affine_address(self):
        gs = GatherStream(stream_id=3, base=0x1000, row_bytes=128, n_slots=100)
        assert gs.address(5) == 0x1000 + 5 * 128
        assert gs.affine

    def test_mapped_address(self):
        perm = np.array([7, 3, 1], dtype=np.int64)
        gs = GatherStream(3, 0x1000, 64, n_slots=8, index_map=perm)
        assert gs.address(1) == 0x1000 + 3 * 64
        assert not gs.affine

    def test_footprint(self):
        gs = GatherStream(3, 0, 128, n_slots=100)
        assert gs.footprint_bytes() == 12800


class TestLowering:
    def test_tiles_never_cross_rows(self):
        w, prog = small_program(vector_width=4)
        for tile in prog.tiles:
            lo, hi = int(w.rowptr[tile.row]), int(w.rowptr[tile.row + 1])
            assert lo <= tile.j_start < tile.j_end <= hi

    def test_every_nnz_covered_exactly_once(self):
        w, prog = small_program(vector_width=8)
        covered = []
        for tile in prog.tiles:
            covered.extend(range(tile.j_start, tile.j_end))
        assert covered == list(range(w.nnz))

    def test_indices_match_csr(self):
        w, prog = small_program()
        for tile in prog.tiles:
            expected = w.col_indices[tile.j_start : tile.j_end]
            assert np.array_equal(tile.indices, expected)

    def test_gather_addresses_affine(self):
        w, prog = small_program(elem_bytes=2, ia_seg_elems=64)
        stream = prog.gather_streams[STREAM_IA_GATHER]
        for tile in prog.tiles[:10]:
            g = tile.gathers[0]
            expected = stream.base + tile.indices * stream.row_bytes
            assert np.array_equal(g.byte_addrs, expected)

    def test_last_in_row_flags(self):
        w, prog = small_program(vector_width=4)
        for tile in prog.tiles:
            hi = int(w.rowptr[tile.row + 1])
            assert tile.last_in_row == (tile.j_end == hi)

    def test_store_only_on_last_tile(self):
        _, prog = small_program(vector_width=4, with_stores=True)
        for tile in prog.tiles:
            assert (tile.store is not None) == tile.last_in_row

    def test_dual_gather_adds_stream(self):
        _, prog = small_program(dual_gather=True)
        assert STREAM_IA_GATHER_2 in prog.gather_streams
        assert all(len(t.gathers) == 2 for t in prog.tiles)

    def test_index_map_applied(self):
        w = uniform_csr(16, 64, 0.1, seed=4)
        perm = np.random.default_rng(0).permutation(64).astype(np.int64)
        prog = build_one_side_program(
            "h", w, ProgramConfig(index_map=perm, ia_seg_elems=32, elem_bytes=2)
        )
        stream = prog.gather_streams[STREAM_IA_GATHER]
        assert not stream.affine
        tile = prog.tiles[0]
        expected = stream.base + perm[tile.indices] * stream.row_bytes
        assert np.array_equal(tile.gathers[0].byte_addrs, expected)

    def test_short_index_map_rejected(self):
        w = uniform_csr(8, 64, 0.2, seed=5)
        with pytest.raises(ProgramError):
            build_one_side_program(
                "h", w, ProgramConfig(index_map=np.arange(10, dtype=np.int64))
            )

    def test_empty_matrix_rejected(self):
        empty = CSRMatrix(
            2,
            2,
            rowptr=np.zeros(3, dtype=np.int64),
            col_indices=np.zeros(0, dtype=np.int64),
            values=np.zeros(0, dtype=np.float32),
        )
        with pytest.raises(ProgramError):
            build_one_side_program("e", empty, ProgramConfig())

    def test_compute_cycles_positive(self):
        _, prog = small_program()
        assert all(t.compute.cycles > 0 for t in prog.tiles)

    def test_describe_mentions_name(self):
        _, prog = small_program()
        assert "t:" in prog.describe()

    def test_col_stream_matches(self):
        w, prog = small_program()
        assert np.array_equal(prog.col_stream, w.col_indices)


class TestProgramConfig:
    def test_bad_elem_bytes(self):
        with pytest.raises(ProgramError):
            ProgramConfig(elem_bytes=3)

    def test_bad_vector_width(self):
        with pytest.raises(ProgramError):
            ProgramConfig(vector_width=0)

    def test_bad_seg(self):
        with pytest.raises(ProgramError):
            ProgramConfig(ia_seg_elems=0)
