"""Tests for derived metrics and report rendering."""

import pytest

from repro.analysis.metrics import (
    bandwidth_shares,
    geomean_speedup,
    miss_reduction,
    normalised_latency,
    stall_events,
    stall_fraction,
)
from repro.analysis.report import format_grid, format_series, format_table
from repro.errors import ConfigError
from repro.sim.soc import RunResult
from repro.sim.stats import RunStats


def result(name: str, cycles: int, base: int | None = None, **stats_kw) -> RunResult:
    stats = RunStats()
    for key, value in stats_kw.items():
        obj, attr = key.split("__")
        setattr(getattr(stats, obj), attr, value)
    r = RunResult(
        program_name="p",
        mechanism=name,
        mode="inorder",
        total_cycles=cycles,
        stats=stats,
    )
    if base is not None:
        r.base_cycles = base
    return r


class TestNormalisedLatency:
    def test_baseline_is_one(self):
        results = {"inorder": result("inorder", 1000), "nvr": result("nvr", 250)}
        norm = normalised_latency(results)
        assert norm["inorder"] == 1.0
        assert norm["nvr"] == 0.25

    def test_missing_baseline_raises(self):
        with pytest.raises(ConfigError):
            normalised_latency({"nvr": result("nvr", 10)})


class TestStall:
    def test_stall_fraction(self):
        r = result("inorder", 1000, base=300)
        assert stall_fraction(r) == pytest.approx(0.7)

    def test_requires_base(self):
        with pytest.raises(ConfigError):
            stall_fraction(result("x", 10))

    def test_stall_events_sum(self):
        r = result("x", 10, l2__demand_misses=5, prefetch__late=3)
        assert stall_events(r.stats) == 8


class TestMissReduction:
    def test_reduction(self):
        ours = result("nvr", 10, l2__demand_misses=10)
        ref = result("dvr", 10, l2__demand_misses=100)
        assert miss_reduction(ours, ref) == pytest.approx(0.9)

    def test_zero_reference(self):
        assert miss_reduction(result("a", 1), result("b", 1)) == 0.0


class TestGeomean:
    def test_speedup(self):
        per_wl = {
            "w1": {"inorder": result("inorder", 100), "nvr": result("nvr", 25)},
            "w2": {"inorder": result("inorder", 100), "nvr": result("nvr", 100)},
        }
        assert geomean_speedup(per_wl, "nvr") == pytest.approx(2.0)


class TestBandwidthShares:
    def test_keys(self):
        shares = bandwidth_shares(RunStats())
        assert set(shares) == {
            "off_chip_demand",
            "off_chip_prefetch",
            "off_chip_total",
            "l2_to_npu",
            "nsb_to_npu",
        }


class TestReportRendering:
    def test_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [30, 4.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "2.500" in text

    def test_table_title(self):
        text = format_table(["x"], [[1]], title="T")
        assert text.startswith("T\n")

    def test_grid(self):
        text = format_grid([4, 8], [64, 128], [[1.0, 2.0], [3.0, 4.0]])
        assert "64" in text and "4.00" in text

    def test_series(self):
        text = format_series("bw", [100, 200], {"base": [1.0, 2.0], "nvr": [3.0, 4.0]})
        assert "bw" in text and "nvr" in text
        assert len(text.splitlines()) == 4
