"""Hypothesis property tests over random memory-hierarchy interleavings."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.memory.cache import CacheConfig
from repro.sim.memory.dram import DRAMConfig
from repro.sim.memory.hierarchy import MemoryConfig, MemorySystem, default_nsb_config
from repro.sim.request import Access, AccessType
from repro.sim.stats import RunStats


def make_system(nsb: bool) -> MemorySystem:
    cfg = MemoryConfig(
        l2=CacheConfig(size_bytes=4 * 1024, assoc=4, mshr_entries=8, name="l2"),
        dram=DRAMConfig(latency=80, bytes_per_cycle=16),
        nsb=default_nsb_config() if nsb else None,
    )
    return MemorySystem(cfg, RunStats())


# One event: (time delta, line index, is_prefetch, irregular)
events_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=200),
        st.integers(min_value=0, max_value=63),
        st.booleans(),
        st.booleans(),
    ),
    min_size=1,
    max_size=150,
)


class TestHierarchyInvariants:
    @settings(max_examples=60, deadline=None)
    @given(events_strategy, st.booleans())
    def test_random_interleavings_keep_accounting_consistent(self, events, nsb):
        mem = make_system(nsb)
        stats = mem.stats
        now = 0
        for delta, line_idx, is_prefetch, irregular in events:
            now += delta
            line = line_idx * 64
            if is_prefetch:
                ready = mem.prefetch_line(now, line, irregular)
                assert ready is None or ready >= now
            else:
                res = mem.demand_access(now, Access(line, AccessType.DEMAND), irregular)
                # Completion is causal and at least a hit latency away
                # from issue at the serving level.
                assert res.complete_at > now

            # Accounting identities hold after every step.
            l2 = stats.l2
            assert (
                l2.demand_hits + l2.demand_inflight_hits + l2.demand_misses
                == l2.demand_accesses
            )
            pf = stats.prefetch
            assert pf.useful + pf.late <= pf.issued
            assert pf.issued_lines_off_chip <= pf.issued
            assert (
                stats.traffic.off_chip_prefetch_bytes
                == 64 * pf.issued_lines_off_chip
            )
            assert stats.traffic.off_chip_demand_bytes == 64 * l2.demand_misses
            # MSHR occupancy respects capacity.
            assert mem.l2.mshr.occupancy(now) <= mem.l2.mshr.capacity

    @settings(max_examples=30, deadline=None)
    @given(events_strategy)
    def test_prefetched_then_demanded_is_credited_at_most_once(self, events):
        mem = make_system(nsb=False)
        now = 0
        for delta, line_idx, is_prefetch, irregular in events:
            now += delta
            line = line_idx * 64
            if is_prefetch:
                mem.prefetch_line(now, line, irregular)
            else:
                mem.demand_access(now, Access(line, AccessType.DEMAND), irregular)
        pf = mem.stats.prefetch
        # Each issued prefetch can earn at most one credit (useful or late).
        assert pf.useful + pf.late <= pf.issued

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=15), min_size=2, max_size=60))
    def test_second_touch_never_off_chip_within_small_set(self, lines):
        """A working set that fits in the cache never re-misses."""
        mem = make_system(nsb=False)
        seen: set[int] = set()
        now = 0
        for line_idx in lines:
            line = line_idx * 64  # 16 distinct lines; L2 holds 64
            res = mem.demand_access(
                now, Access(line, AccessType.DEMAND), irregular=True
            )
            if line in seen:
                assert not res.off_chip
            seen.add(line)
            now = res.complete_at + 1
