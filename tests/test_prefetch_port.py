"""Tests for the shared prefetch issue port (budget + plumbing)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sparse_chain_detector import SparseChainDetector
from repro.core.stride_detector import StrideDetector
from repro.errors import ConfigError
from repro.prefetch.base import PrefetchPort
from repro.sim.memory.hierarchy import MemoryConfig, MemorySystem
from repro.sim.stats import RunStats


def make_port(budget=4) -> PrefetchPort:
    mem = MemorySystem(MemoryConfig(), RunStats())
    return PrefetchPort(mem, burst_budget=budget)


class TestPortBudget:
    def test_zero_budget_rejected(self):
        with pytest.raises(ConfigError):
            make_port(budget=0)

    def test_budget_caps_same_cycle_burst(self):
        port = make_port(budget=4)
        issued = 0
        for i in range(10):
            if port.prefetch(100, i * 64, irregular=True) is not None:
                issued += 1
        assert issued == 4
        assert port.dropped_over_budget == 6

    def test_budget_resets_next_cycle(self):
        port = make_port(budget=4)
        for i in range(4):
            port.prefetch(100, i * 64, True)
        assert port.prefetch(101, 0x9000, True) is not None

    def test_redundant_prefetch_does_not_consume_budget(self):
        port = make_port(budget=2)
        assert port.prefetch(0, 0x1000, True) is not None
        # Same line again: squashed for free.
        assert port.prefetch(0, 0x1000, True) is None
        assert port.prefetch(0, 0x2000, True) is not None
        assert port.dropped_over_budget == 0

    def test_is_resident_probe(self):
        port = make_port()
        assert not port.is_resident(0x1000)
        port.prefetch(0, 0x1000, True)
        assert port.is_resident(0x1000)

    def test_line_addr_helper(self):
        port = make_port()
        assert port.line_addr(0x1234) == 0x1200
        assert port.line_bytes == 64


class TestDetectorRecoveryProperties:
    @settings(max_examples=40)
    @given(
        st.integers(min_value=0, max_value=1 << 30),
        st.integers(min_value=0, max_value=12),
        st.lists(
            st.integers(min_value=0, max_value=1000),
            min_size=4,
            max_size=12,
            unique=True,
        ),
    )
    def test_scd_recovers_any_affine_map(self, base, shift, indices):
        """The IPT fit must recover an arbitrary (base, shift) pair."""
        scd = SparseChainDetector(lock_confidence=2)
        for idx in indices:
            scd.record_resolution(3, idx, base + (idx << shift))
        probe = 12345
        predicted = scd.formula_address(3, probe)
        # With >= 3 distinct pairs the fit must be locked and exact -
        # unless another (base', shift') reproduces the same addresses
        # (ambiguity is possible for degenerate index sets), in which
        # case prediction may legitimately differ but training addresses
        # must be reproduced.
        if predicted is not None:
            for idx in indices[-2:]:
                assert scd.formula_address(3, idx) == base + (idx << shift)

    @settings(max_examples=40)
    @given(
        st.integers(min_value=1, max_value=1 << 16),
        st.integers(min_value=1, max_value=64),
    )
    def test_sd_frontier_never_overlaps(self, stride, n_windows):
        """Successive predict_window calls tile the stream seamlessly."""
        sd = StrideDetector()
        for i in range(5):
            sd.observe(1, i * stride)
        end = None
        for _ in range(min(n_windows, 16)):
            window = sd.predict_window(1, stride)
            assert window is not None
            start, new_end = window
            if end is not None:
                assert start == end
            assert new_end == start + stride
            end = new_end
