"""Tests for the top-level convenience API."""

import pytest

from repro import (
    MECHANISM_ORDER,
    MECHANISMS,
    WORKLOADS,
    compare_mechanisms,
    make_system,
    run_workload,
)
from repro.core import NVRConfig
from repro.errors import ConfigError
from repro.sim.memory.hierarchy import MemoryConfig
from repro.workloads import build_workload


class TestRegistry:
    def test_mechanism_registry(self):
        # The paper's six Fig. 5 bars plus the explicit-preload baseline.
        assert set(MECHANISM_ORDER) <= set(MECHANISMS)
        assert len(MECHANISM_ORDER) == 6
        assert "preload" in MECHANISMS

    def test_eight_workloads(self):
        assert len(WORKLOADS) == 8


class TestRunWorkload:
    def test_basic_run(self):
        result = run_workload("gcn", mechanism="nvr", scale=0.2)
        assert result.total_cycles > 0
        assert result.mechanism == "nvr"

    def test_with_base(self):
        result = run_workload("gcn", mechanism="inorder", scale=0.2, with_base=True)
        assert result.base_cycles is not None
        assert result.base_cycles < result.total_cycles

    def test_unknown_mechanism(self):
        with pytest.raises(ConfigError):
            run_workload("gcn", mechanism="magic")

    def test_unknown_dtype(self):
        with pytest.raises(ConfigError):
            run_workload("gcn", dtype="fp64")

    def test_nsb_flag(self):
        result = run_workload("ds", mechanism="nvr", nsb=True, scale=0.2)
        assert result.stats.nsb.demand_accesses > 0

    def test_workload_kwargs_forwarded(self):
        small = run_workload("ds", mechanism="inorder", scale=0.2, topk_ratio=64)
        big = run_workload("ds", mechanism="inorder", scale=0.2, topk_ratio=8)
        assert small.stats.batch.elements < big.stats.batch.elements

    def test_nvr_config_forwarded(self):
        shallow = run_workload(
            "gcn",
            mechanism="nvr",
            scale=0.2,
            nvr_config=NVRConfig(depth_tiles=1),
        )
        deep = run_workload(
            "gcn",
            mechanism="nvr",
            scale=0.2,
            nvr_config=NVRConfig(depth_tiles=8),
        )
        assert deep.total_cycles <= shallow.total_cycles


class TestCompare:
    def test_compare_returns_all(self):
        results = compare_mechanisms("gcn", mechanisms=("inorder", "nvr"), scale=0.2)
        assert set(results) == {"inorder", "nvr"}
        assert results["nvr"].total_cycles < results["inorder"].total_cycles


class TestMakeSystem:
    def test_memory_override(self):
        program = build_workload("gcn", scale=0.2)
        memory = MemoryConfig().with_nsb(True)
        system = make_system(program, mechanism="nvr", memory=memory)
        assert system.memory.nsb is not None

    def test_nsb_flag_upgrades_memory(self):
        program = build_workload("gcn", scale=0.2)
        system = make_system(program, mechanism="nvr", nsb=True)
        assert system.memory.nsb is not None

    def test_rejects_nvr_config_for_baseline(self):
        program = build_workload("gcn", scale=0.2)
        with pytest.raises(ConfigError, match="nvr config"):
            make_system(program, mechanism="inorder", nvr_config=NVRConfig())

    def test_rejects_nsb_flag_with_nsb_memory(self):
        program = build_workload("gcn", scale=0.2)
        with pytest.raises(ConfigError, match="nsb=True conflicts"):
            make_system(
                program,
                mechanism="nvr",
                nsb=True,
                memory=MemoryConfig().with_nsb(True),
            )

    def test_executor_override(self):
        from repro.sim.npu.executor import ExecutorConfig

        program = build_workload("gcn", scale=0.2)
        system = make_system(
            program,
            mechanism="inorder",
            executor=ExecutorConfig(issue_width=8),
        )
        assert system.executor.issue_width == 8
